//! Inclusion-policy behaviour across crates: drive the full `System` on
//! real workload traces under all three policies and verify the structural
//! invariants and the §III-C predictions.

use redhip_repro::prelude::*;
use redhip_repro::sim::System;

fn drive_system(mechanism: Mechanism, policy: InclusionPolicy, steps: usize) -> System {
    let mut cfg = SimConfig::new(demo_scale(), mechanism);
    cfg.policy = policy;
    cfg.refs_per_core = steps;
    cfg.recalib_period = Some(4_096);
    let mut system = System::new(cfg);
    let mut traces: Vec<_> = (0..8)
        .map(|c| Benchmark::Soplex.trace(c, Scale::Smoke))
        .collect();
    for step in 0..steps * 8 {
        let core = step % 8;
        let mut rec = traces[core].next().expect("infinite");
        rec.addr |= (core as u64) << 44;
        system.step(core, &rec);
    }
    system
}

#[test]
fn inclusive_invariant_holds_under_redhip() {
    let s = drive_system(Mechanism::Redhip, InclusionPolicy::Inclusive, 8_000);
    s.hierarchy().check_invariants().expect("inclusive");
    assert!(s.prediction_stats().bypasses > 0);
}

#[test]
fn hybrid_invariant_holds_under_redhip() {
    let s = drive_system(Mechanism::Redhip, InclusionPolicy::Hybrid, 8_000);
    s.hierarchy().check_invariants().expect("hybrid");
    // Hybrid keeps the single-LLC-table design unchanged (§III-C).
    assert!(s.prediction_stats().bypasses > 0);
}

#[test]
fn exclusive_invariant_holds_under_multi_table_redhip() {
    let s = drive_system(Mechanism::Redhip, InclusionPolicy::Exclusive, 8_000);
    s.hierarchy().check_invariants().expect("exclusive");
    // The per-level tables fire too (skipped levels or full bypasses).
    let p = s.prediction_stats();
    assert!(p.lookups > 0);
    assert!(p.bypasses + p.walk_hits + p.false_positives == p.lookups);
}

#[test]
fn exclusive_holds_more_distinct_data_than_inclusive() {
    // The §V-B3 observation: exclusivity increases effective capacity.
    let inc = drive_system(Mechanism::Base, InclusionPolicy::Inclusive, 8_000);
    let exc = drive_system(Mechanism::Base, InclusionPolicy::Exclusive, 8_000);
    let distinct = |s: &System| {
        let h = s.hierarchy();
        let mut blocks = std::collections::HashSet::new();
        for core in 0..h.cores() {
            for lvl in 0..h.levels() - 1 {
                blocks.extend(h.private_cache(core, lvl).resident_blocks());
            }
        }
        blocks.extend(h.llc().resident_blocks());
        blocks.len()
    };
    assert!(
        distinct(&exc) > distinct(&inc),
        "exclusive {} !> inclusive {}",
        distinct(&exc),
        distinct(&inc)
    );
}

#[test]
fn all_base_policies_preserve_invariants_on_every_workload() {
    for benchmark in Benchmark::ALL {
        for policy in [
            InclusionPolicy::Inclusive,
            InclusionPolicy::Exclusive,
            InclusionPolicy::Hybrid,
        ] {
            let mut cfg = SimConfig::new(demo_scale(), Mechanism::Base);
            cfg.policy = policy;
            cfg.refs_per_core = 2_000;
            let mut system = System::new(cfg);
            let mut traces: Vec<_> = (0..8).map(|c| benchmark.trace(c, Scale::Smoke)).collect();
            for step in 0..16_000 {
                let core = step % 8;
                let mut rec = traces[core].next().expect("infinite");
                rec.addr |= (core as u64) << 44;
                system.step(core, &rec);
            }
            system
                .hierarchy()
                .check_invariants()
                .unwrap_or_else(|e| panic!("{benchmark} / {policy:?}: {e}"));
        }
    }
}
