//! Determinism guarantees of the work-stealing sweep engine.
//!
//! The engine's contract is that worker count is invisible in the output:
//! `--jobs 1`, `--jobs 4` and the host default must produce byte-identical
//! figure JSON, and routing the golden-diff cells through the pool must
//! reproduce the committed snapshots exactly. The memoizing cache must
//! never change bytes either — a rehydrated result re-serializes
//! identically — and repeated cells across figures are simulated once.

use bench::figures::{self, Settings};
use bench::harness::FigureScale;
use energy_model::presets::demo_scale;
use mem_trace::synth::{PointerChase, Region, SequentialStream, ZipfOverRecords};
use minijson::ToJson;
use sim::{run_traces, CoreTrace, Mechanism, SimConfig};
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;
use sweep::{ResultCache, SweepEngine, SweepPlan};
use workloads::Benchmark;

fn test_settings() -> Settings {
    let mut s = Settings::new(FigureScale::Smoke, Some(1_500));
    s.workloads = vec![Benchmark::Mcf, Benchmark::Lbm];
    s
}

/// Plans the full figure set (matrix + every parameter sweep) into one
/// job graph, the way the `figures` binary does for `all`.
fn plan_figure_set(
    s: &Settings,
    plan: &mut SweepPlan,
) -> (
    figures::MatrixPlan,
    figures::MatrixPlan,
    figures::Fig11Plan,
    figures::Fig12Plan,
    figures::Fig13Plan,
    figures::Fig1415Plan,
) {
    (
        figures::plan_matrix(s, plan),
        figures::plan_shootout(s, plan),
        figures::plan_fig11(s, plan),
        figures::plan_fig12(s, plan),
        figures::plan_fig13(s, plan),
        figures::plan_fig14_15(s, plan),
    )
}

/// Renders every figure of the set to one concatenated JSON string —
/// the byte-level artifact the determinism guarantee is stated over.
fn render_figure_set(s: &Settings, engine: &SweepEngine) -> (String, u64, u64) {
    let mut plan = SweepPlan::new();
    let (mp, sp, p11, p12, p13, p1415) = plan_figure_set(s, &mut plan);
    let dedup = plan.dedup_hits();
    let res = engine.run(&plan, "[test] sweep").expect("sweep runs");
    let m = figures::matrix_from(s, &mp, &res);
    let sm = figures::matrix_from(s, &sp, &res);
    let mut out = String::new();
    for f in [
        figures::fig6(&m),
        figures::fig7(&m),
        figures::fig8(&m),
        figures::fig9(&m),
        figures::fig10(&m),
        figures::shootout(&sm),
        figures::fig11_from(s, &p11, &res),
        figures::fig12_from(s, &p12, &res),
        figures::fig13_from(s, &p13, &res),
    ] {
        out.push_str(f.name);
        out.push('\n');
        out.push_str(&f.json.pretty());
        out.push('\n');
        out.push_str(&f.text);
    }
    let (f14, f15) = figures::fig14_15_from(s, &p1415, &res);
    for f in [f14, f15] {
        out.push_str(f.name);
        out.push('\n');
        out.push_str(&f.json.pretty());
        out.push('\n');
        out.push_str(&f.text);
    }
    (out, dedup, res.stats.simulated)
}

#[test]
fn figure_set_is_byte_identical_across_worker_counts() {
    let s = test_settings();
    let (one, dedup1, sim1) = render_figure_set(&s, &SweepEngine::new(1).quiet());
    let (four, dedup4, sim4) = render_figure_set(&s, &SweepEngine::new(4).quiet());
    let (host, _, _) = render_figure_set(&s, &SweepEngine::new(sweep::default_jobs()).quiet());
    assert_eq!(one, four, "--jobs 1 vs --jobs 4 diverged");
    assert_eq!(one, host, "--jobs 1 vs host default diverged");
    // The figure set genuinely shares cells (base runs, matrix overlap);
    // the sweep would silently lose its point if planning stopped deduping.
    assert!(dedup1 > 0, "no cross-figure dedup in the figure set");
    assert_eq!(dedup1, dedup4);
    assert_eq!(sim1, sim4);
}

#[test]
fn repeated_cells_are_simulated_exactly_once() {
    let s = test_settings();
    let mut plan = SweepPlan::new();
    let _ = plan_figure_set(&s, &mut plan);
    let unique = plan.len() as u64;
    let engine = SweepEngine::new(2).quiet();
    let first = engine.run(&plan, "[test] first").expect("first run");
    assert_eq!(first.stats.simulated, unique);
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(
        engine
            .cache()
            .counters
            .misses
            .load(std::sync::atomic::Ordering::Relaxed),
        unique
    );
    // Re-planning the same figures against the same engine touches the
    // simulator zero times: every cell is a memory-cache hit.
    let mut again = SweepPlan::new();
    let _ = plan_figure_set(&s, &mut again);
    let second = engine.run(&again, "[test] second").expect("second run");
    assert_eq!(second.stats.simulated, 0);
    assert_eq!(second.stats.cache_hits, unique);
    assert_eq!(second.stats.refs_simulated, 0);
}

#[test]
fn disk_cache_rehydration_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("sweep-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut s = test_settings();
    s.workloads = vec![Benchmark::Mcf];
    let cold = SweepEngine::new(2)
        .with_cache(ResultCache::with_disk(dir.clone()))
        .quiet();
    let (first, _, simulated) = render_figure_set(&s, &cold);
    assert!(simulated > 0);
    // A fresh engine (fresh process, conceptually) serves everything from
    // disk and must render the very same bytes.
    let warm = SweepEngine::new(2)
        .with_cache(ResultCache::with_disk(dir.clone()))
        .quiet();
    let (second, _, resimulated) = render_figure_set(&s, &warm);
    assert_eq!(resimulated, 0, "disk cache missed");
    assert!(
        warm.cache()
            .counters
            .disk_hits
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    assert_eq!(first, second, "disk rehydration changed figure bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- golden cells through the pool --------------------------------------
//
// Mirrors tests/golden_diff.rs (integration tests cannot import each
// other): the same 15 cells, but executed by the work-stealing pool with 4
// workers. The committed snapshots must be reproduced byte-identically —
// the pool adds no nondeterminism to the simulator.

const GOLDEN_MECHANISMS: [Mechanism; 8] = [
    Mechanism::Base,
    Mechanism::Phased,
    Mechanism::Cbf,
    Mechanism::Redhip,
    Mechanism::Oracle,
    Mechanism::LevelPred,
    Mechanism::Perceptron,
    Mechanism::WayMemo,
];
const GOLDEN_WORKLOADS: [&str; 3] = ["stream", "zipf", "chase"];
const GOLDEN_CORES: usize = 2;

fn golden_trace(workload: &str, core: usize) -> CoreTrace {
    let seed = 0x601D_BA5E + core as u64;
    match workload {
        "stream" => Box::new(
            SequentialStream::new(Region::new(0x1000_0000, 4 << 20), 64, 0x400, 7, 2)
                .with_repeats(3),
        ),
        "zipf" => Box::new(ZipfOverRecords::new(
            Region::new(0x2000_0000, 32 << 20),
            64,
            0.9,
            seed,
            0x500,
            0.2,
            3,
        )),
        "chase" => Box::new(PointerChase::new(0x3000_0000, 1 << 15, 64, seed, 0x600, 1)),
        other => panic!("unknown golden workload {other}"),
    }
}

fn golden_config(mechanism: Mechanism) -> SimConfig {
    let mut platform = demo_scale();
    platform.cores = GOLDEN_CORES;
    let mut cfg = SimConfig::new(platform, mechanism);
    cfg.refs_per_core = 12_000;
    cfg.recalib_period = Some(1_500);
    cfg
}

#[test]
fn golden_cells_through_the_pool_match_committed_snapshots() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    let cells: Vec<(&str, Mechanism)> = GOLDEN_WORKLOADS
        .iter()
        .flat_map(|&w| GOLDEN_MECHANISMS.iter().map(move |&m| (w, m)))
        .collect();
    let slots: Vec<Mutex<Option<String>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let order: Vec<usize> = (0..cells.len()).collect();
    let ticks = AtomicU64::new(0);
    sweep::pool::run_ordered(
        4,
        &order,
        &ticks,
        |_| {},
        |i| {
            let (workload, mechanism) = cells[i];
            let cfg = golden_config(mechanism);
            let traces = (0..GOLDEN_CORES)
                .map(|c| golden_trace(workload, c))
                .collect();
            let mut text = run_traces(&cfg, traces).to_json().pretty();
            text.push('\n');
            *slots[i].lock().expect("slot") = Some(text);
        },
    )
    .expect("pool run");
    for (i, (workload, mechanism)) in cells.iter().enumerate() {
        let name = format!("{workload}_{}.json", mechanism.name());
        let want = std::fs::read_to_string(dir.join(&name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        let got = slots[i]
            .lock()
            .expect("slot")
            .take()
            .expect("cell produced output");
        assert!(want == got, "pooled run diverged from golden {name}");
    }
}
