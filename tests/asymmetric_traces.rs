//! End-to-end coverage for traces of unequal length: the scheduler must
//! drain every core to its own end, and `cycles_per_ref` must keep the
//! per-core-average semantics its unit tests pin, on a real run.

use redhip_repro::prelude::*;

const FULL: usize = 20_000;
const SHORT: u64 = 1_000;

fn asymmetric_run(mechanism: Mechanism) -> RunResult {
    let mut platform = demo_scale();
    platform.cores = 2;
    let mut cfg = SimConfig::new(platform, mechanism);
    cfg.refs_per_core = FULL;
    cfg.avg_cpi = Benchmark::Mcf.avg_cpi();
    cfg.recalib_period = Some(4_096);
    // Core 0 runs out of trace early; core 1 runs to the configured target.
    let short: CoreTrace = Box::new(Benchmark::Mcf.trace(0, Scale::Smoke).take(SHORT as usize));
    let full: CoreTrace = Benchmark::Mcf.trace(1, Scale::Smoke);
    run_traces(&cfg, vec![short, full])
}

#[test]
fn unequal_trace_lengths_drain_each_core_independently() {
    for mechanism in [Mechanism::Base, Mechanism::Redhip, Mechanism::Phased] {
        let r = asymmetric_run(mechanism);
        assert_eq!(
            r.refs_per_core,
            vec![SHORT, FULL as u64],
            "{mechanism:?}: exhausted core must stop at its trace end"
        );
        assert_eq!(r.total_refs(), SHORT + FULL as u64);
        assert!(r.cycles > 0);
    }
}

#[test]
fn cycles_per_ref_uses_per_core_average_on_asymmetric_runs() {
    let r = asymmetric_run(Mechanism::Base);
    // cycles_per_ref is cycles divided by the *mean* per-core reference
    // count — cycles * cores / total_refs — not cycles / total_refs.
    let cores = r.refs_per_core.len() as f64;
    let expected = r.cycles as f64 * cores / r.total_refs() as f64;
    assert!(
        (r.cycles_per_ref() - expected).abs() < 1e-9,
        "cycles_per_ref {} != cycles*cores/total_refs {}",
        r.cycles_per_ref(),
        expected
    );
    // Sanity: on this workload the metric must sit strictly between the
    // naive per-ref quotient and the single-core quotient.
    let naive = r.cycles as f64 / r.total_refs() as f64;
    assert!(
        r.cycles_per_ref() > naive,
        "per-core average must exceed naive"
    );
}

/// Asymmetric config inside the parallel engine's envelope: the default
/// `avg_cpi` (1.5 = 384/256) is exact on the engine's 1/256-cycle clock
/// grid, unlike Mcf's stamped 2.2, which exercises the documented
/// sequential fallback instead of the engine.
fn envelope_cfg(mechanism: Mechanism) -> SimConfig {
    let mut platform = demo_scale();
    platform.cores = 2;
    let mut cfg = SimConfig::new(platform, mechanism);
    cfg.refs_per_core = FULL;
    cfg.recalib_period = Some(4_096);
    cfg
}

fn asymmetric_traces() -> Vec<CoreTrace> {
    let short: CoreTrace = Box::new(Benchmark::Mcf.trace(0, Scale::Smoke).take(SHORT as usize));
    let full: CoreTrace = Benchmark::Mcf.trace(1, Scale::Smoke);
    vec![short, full]
}

#[test]
fn unequal_drain_parallel_runs_match_sequential_byte_for_byte() {
    // Cores drain at different points (one hits its trace end, the other
    // its target), so the bound-weave engine's horizon logic sees active
    // and finished cores coexist — the result must not move by a byte.
    use minijson::ToJson;
    for mechanism in [Mechanism::Base, Mechanism::Redhip] {
        let cfg = envelope_cfg(mechanism);
        assert!(parallel_supported(&cfg), "test must exercise the engine");
        let seq = run_traces(&cfg, asymmetric_traces()).to_json().pretty();
        for jobs in [2usize, 8] {
            let par = run_traces_par(&cfg, asymmetric_traces(), &IntraOptions::with_jobs(jobs))
                .to_json()
                .pretty();
            assert_eq!(seq, par, "{mechanism:?} diverged at intra_jobs={jobs}");
        }
    }
}

/// Collects the core index of every sequential L1 miss — the reference
/// `(clock, core)` order the weave phase promises to reproduce.
#[derive(Default)]
struct MissOrder(Vec<usize>);

impl SimObserver for MissOrder {
    fn on_level_access(&mut self, core: usize, level: u8, hit: bool) {
        if level == 0 && !hit {
            self.0.push(core);
        }
    }
}

#[test]
fn weave_commit_order_is_the_sequential_clock_core_order() {
    use mem_trace::IterFeed;
    use sim::parallel::run_feeds_par_commitlog;
    use sim::run_feeds_with;
    let cfg = envelope_cfg(Mechanism::Redhip);
    let feeds = || -> Vec<CoreFeed> {
        let short = Benchmark::Mcf.trace(0, Scale::Smoke).take(SHORT as usize);
        let full = Benchmark::Mcf.trace(1, Scale::Smoke);
        vec![
            Box::new(IterFeed::new(short)),
            Box::new(IterFeed::new(full)),
        ]
    };
    let (_, obs) = run_feeds_with(&cfg, feeds(), MissOrder::default());
    let (_, log) = run_feeds_par_commitlog(&cfg, feeds(), &IntraOptions::with_jobs(2));
    assert!(!log.is_empty(), "no shared events committed");
    // The weave commits exactly the sequential scheduler's L1-miss
    // sequence, and the log is lexicographically (clock, core)-sorted —
    // the argmin order made explicit.
    let committed: Vec<usize> = log.iter().map(|&(_, core)| core).collect();
    assert_eq!(obs.0, committed, "commit order diverged from sequential");
    assert!(
        log.windows(2).all(|w| w[0] <= w[1]),
        "commit log is not (clock, core)-sorted"
    );
}

#[test]
fn asymmetric_runs_are_deterministic() {
    // The batched scheduler takes a data-dependent number of inner steps
    // per outer pick; re-running the same asymmetric workload must give
    // bit-identical cycles and energy.
    let a = asymmetric_run(Mechanism::Redhip);
    let b = asymmetric_run(Mechanism::Redhip);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.refs_per_core, b.refs_per_core);
    assert_eq!(
        a.energy.total_dynamic_j().to_bits(),
        b.energy.total_dynamic_j().to_bits()
    );
    assert_eq!(a.prediction.recalibrations, b.prediction.recalibrations);
}
