//! Deterministic observer replay: the parallel engine must deliver the
//! exact sequential hook stream, so a `WindowedCollector`'s JSONL is
//! byte-identical at every `--intra-jobs` value, and conflict rollbacks
//! (which re-observe the epoch through the sequential replay) must be
//! invisible in the stream while still being counted by the metrics
//! registry.

use energy_model::presets::demo_scale;
use mem_trace::record::{MemOp, TraceRecord};
use sim::{
    run_traces_par_with, run_traces_with, CoreTrace, IntraOptions, Mechanism, SimConfig,
    WindowedCollector,
};

fn telemetry_cfg(mechanism: Mechanism) -> SimConfig {
    let mut platform = demo_scale();
    platform.cores = 2;
    let mut cfg = SimConfig::new(platform, mechanism);
    cfg.refs_per_core = 30_000;
    cfg.recalib_period = Some(2_000);
    cfg
}

/// Mixed hot/cold stream (same shape as the `sim` unit-test workload): a
/// hot region the L1 absorbs plus cold misses the predictor learns.
fn stream(seed: u64) -> CoreTrace {
    Box::new((0..u64::MAX).map(move |i| {
        let x = (i.wrapping_mul(6364136223846793005).wrapping_add(seed)) >> 33;
        let addr = if i % 8 != 0 {
            (x % 128) * 64
        } else {
            0x1000_0000 + (x % (1 << 22)) * 64
        };
        let op = if i % 5 == 0 {
            MemOp::Store
        } else {
            MemOp::Load
        };
        TraceRecord::new(0x400 + (i % 7) * 4, addr, op, 2)
    }))
}

fn traces(cfg: &SimConfig) -> Vec<CoreTrace> {
    (0..cfg.platform.cores)
        .map(|c| stream(c as u64 + 1))
        .collect()
}

fn jsonl_at(cfg: &SimConfig, jobs: usize) -> String {
    let collector = WindowedCollector::new(7_000, cfg.platform.levels.len());
    let (_, obs) = if jobs <= 1 {
        run_traces_with(cfg, traces(cfg), collector)
    } else {
        run_traces_par_with(cfg, traces(cfg), &IntraOptions::with_jobs(jobs), collector)
    };
    obs.to_jsonl()
}

/// The windowed JSONL — window counters, recalibration markers, energy
/// floats, ordering, formatting — is byte-for-byte the sequential stream
/// at every worker count, for mechanisms with and without recalibration.
#[test]
fn windowed_jsonl_is_byte_identical_across_intra_jobs() {
    for mech in [Mechanism::Redhip, Mechanism::Cbf] {
        let cfg = telemetry_cfg(mech);
        let seq = jsonl_at(&cfg, 1);
        assert!(!seq.is_empty(), "{mech:?}: sequential run emitted nothing");
        for jobs in [2, 8] {
            let par = jsonl_at(&cfg, jobs);
            assert_eq!(
                seq.as_bytes(),
                par.as_bytes(),
                "{mech:?}: JSONL diverged at intra-jobs {jobs}"
            );
        }
    }
}

/// A shared LLC far smaller than the private columns makes almost every
/// LLC eviction victimize a privately resident block: the weave's
/// conflict check trips, epochs roll back and replay sequentially. The
/// rollback counter must fire, and the observer stream must not notice.
#[test]
fn rollbacks_fire_the_metric_and_stay_invisible_to_observers() {
    let mut cfg = telemetry_cfg(Mechanism::Redhip);
    cfg.platform.levels[3].capacity_bytes = 8 << 10;
    cfg.refs_per_core = 20_000;

    metrics::enable();
    let before = metrics::PAR_ROLLBACKS.get();
    let seq = jsonl_at(&cfg, 1);
    let par = jsonl_at(&cfg, 2);
    let rollbacks = metrics::PAR_ROLLBACKS.get() - before;

    assert!(
        rollbacks > 0,
        "conflict-heavy LLC produced no rollbacks — the conflict path never ran"
    );
    assert_eq!(
        seq.as_bytes(),
        par.as_bytes(),
        "JSONL diverged under conflict-heavy rollbacks"
    );
}
