//! Golden differential tests for the simulator hot path.
//!
//! Every mechanism × three synthetic workloads at fixed seeds, snapshotted
//! as full `RunResult` JSON (cycles, energy breakdown, per-level hit rates,
//! predictor counters) under `tests/golden/`. The snapshots were taken from
//! the pre-optimization simulator; the optimized hot path must reproduce
//! each one **byte-identically** — any drift in replacement decisions,
//! float accumulation order, interleaving, or counter bookkeeping fails
//! here before it can silently skew a figure.
//!
//! Regenerate (only when an *intentional* semantic change is made, with a
//! PR note explaining why):
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test golden_diff
//! ```

use energy_model::presets::demo_scale;
use mem_trace::synth::{PointerChase, Region, SequentialStream, ZipfOverRecords};
use minijson::ToJson;
use sim::{run_traces, run_traces_par, CoreTrace, IntraOptions, Mechanism, SimConfig};
use std::path::PathBuf;

const MECHANISMS: [Mechanism; 8] = [
    Mechanism::Base,
    Mechanism::Phased,
    Mechanism::Cbf,
    Mechanism::Redhip,
    Mechanism::Oracle,
    Mechanism::LevelPred,
    Mechanism::Perceptron,
    Mechanism::WayMemo,
];

const WORKLOADS: [&str; 3] = ["stream", "zipf", "chase"];

/// Cores in the golden configuration (kept small so the suite stays fast in
/// debug builds while still covering multi-core interleaving).
const CORES: usize = 2;
const REFS_PER_CORE: usize = 12_000;
const RECALIB_PERIOD: u64 = 1_500;

/// One synthetic per-core trace at a fixed seed. The three workloads cover
/// the regimes that stress different hot-path branches: a mostly-L1-hitting
/// sequential stream, a Zipf-skewed mix with heavy LLC traffic, and a
/// serially-dependent pointer chase sized between L2 and LLC.
fn trace(workload: &str, core: usize) -> CoreTrace {
    let seed = 0x601D_BA5E + core as u64;
    match workload {
        "stream" => Box::new(
            SequentialStream::new(Region::new(0x1000_0000, 4 << 20), 64, 0x400, 7, 2)
                .with_repeats(3),
        ),
        "zipf" => Box::new(ZipfOverRecords::new(
            Region::new(0x2000_0000, 32 << 20),
            64,
            0.9,
            seed,
            0x500,
            0.2,
            3,
        )),
        "chase" => Box::new(PointerChase::new(0x3000_0000, 1 << 15, 64, seed, 0x600, 1)),
        other => panic!("unknown golden workload {other}"),
    }
}

fn golden_config(mechanism: Mechanism) -> SimConfig {
    let mut platform = demo_scale();
    platform.cores = CORES;
    let mut cfg = SimConfig::new(platform, mechanism);
    cfg.refs_per_core = REFS_PER_CORE;
    cfg.recalib_period = Some(RECALIB_PERIOD);
    cfg
}

fn run_one(workload: &str, mechanism: Mechanism) -> String {
    let cfg = golden_config(mechanism);
    let traces = (0..CORES).map(|c| trace(workload, c)).collect();
    let result = run_traces(&cfg, traces);
    let mut text = result.to_json().pretty();
    text.push('\n');
    text
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Points at the first differing line so a golden failure is diagnosable
/// without an external diff tool.
fn first_diff(want: &str, got: &str) -> String {
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            return format!(
                "first difference at line {}:\n  golden: {w}\n  got   : {g}",
                i + 1
            );
        }
    }
    format!(
        "line count differs: golden {} vs got {}",
        want.lines().count(),
        got.lines().count()
    )
}

#[test]
fn golden_run_results_are_reproduced_byte_identically() {
    let regen = std::env::var_os("REGEN_GOLDEN").is_some();
    let dir = golden_dir();
    if regen {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    for workload in WORKLOADS {
        for mechanism in MECHANISMS {
            let name = format!("{workload}_{}.json", mechanism.name());
            let path = dir.join(&name);
            let got = run_one(workload, mechanism);
            if regen {
                std::fs::write(&path, &got).expect("write golden");
                eprintln!("regenerated {name}");
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden {name} ({e}); run REGEN_GOLDEN=1 cargo test --test golden_diff"
                )
            });
            assert!(
                want == got,
                "golden mismatch for {name}: {}",
                first_diff(&want, &got)
            );
        }
    }
}

/// Every golden, reproduced through the intra-run parallel entry point at
/// several thread counts, must still match the snapshots byte for byte —
/// the bound–weave engine's determinism contract, pinned against the same
/// files the sequential hot path is pinned against. (Phased and the
/// registry mechanisms — LevelPred, Perceptron, WayMemo — are outside the
/// engine's envelope and exercise the documented sequential fallback; the
/// other four run the engine proper at jobs > 1.)
#[test]
fn golden_run_results_match_at_every_intra_jobs() {
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        return; // the sequential test regenerates; nothing to pin yet
    }
    let dir = golden_dir();
    for intra_jobs in [1usize, 2, 8] {
        let opts = IntraOptions::with_jobs(intra_jobs);
        for workload in WORKLOADS {
            for mechanism in MECHANISMS {
                let name = format!("{workload}_{}.json", mechanism.name());
                let cfg = golden_config(mechanism);
                let traces = (0..CORES).map(|c| trace(workload, c)).collect();
                let result = run_traces_par(&cfg, traces, &opts);
                let mut got = result.to_json().pretty();
                got.push('\n');
                let want = std::fs::read_to_string(dir.join(&name))
                    .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
                assert!(
                    want == got,
                    "parallel golden mismatch for {name} at intra_jobs={intra_jobs}: {}",
                    first_diff(&want, &got)
                );
            }
        }
    }
}

/// The snapshots themselves must stay meaningful: valid JSON carrying the
/// fields the differential assertion is advertised to pin.
#[test]
fn golden_snapshots_are_complete_run_results() {
    for workload in WORKLOADS {
        for mechanism in MECHANISMS {
            let name = format!("{workload}_{}.json", mechanism.name());
            let text = std::fs::read_to_string(golden_dir().join(&name))
                .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
            let doc = minijson::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(doc.u64_of("cycles").unwrap() > 0, "{name}: zero cycles");
            let refs: u64 = doc
                .arr_of("refs_per_core")
                .unwrap()
                .iter()
                .map(|v| v.as_u64().unwrap())
                .sum();
            assert_eq!(refs, (CORES * REFS_PER_CORE) as u64, "{name}: truncated");
            for key in ["energy", "hierarchy", "prediction", "prefetch"] {
                assert!(doc.get(key).is_some(), "{name}: missing {key}");
            }
            // Predictor mechanisms must actually exercise the predictor in
            // their goldens, or the differential test pins nothing.
            if mechanism.has_predictor() || mechanism == Mechanism::Oracle {
                assert!(
                    doc.get("prediction").unwrap().u64_of("lookups").unwrap() > 0,
                    "{name}: predictor never consulted"
                );
            }
        }
    }
}
