//! The central correctness property: bypassing is *safe*.
//!
//! This test reimplements the simulator's demand loop with its own
//! ground-truth checks: before honoring any `Absent` prediction it probes
//! the whole hierarchy and asserts the block is genuinely absent (in the
//! inclusive hierarchy, absence from the LLC ⇒ absence everywhere). Runs
//! against real workload traces for both ReDHiP's table and the CBF.

use redhip_repro::cache_sim::{CacheConfig, DeepHierarchy, HierarchyConfig, Traversal};
use redhip_repro::prelude::*;
use redhip_repro::redhip::CbfConfig;

fn tiny_hierarchy() -> DeepHierarchy {
    DeepHierarchy::new(&HierarchyConfig {
        cores: 2,
        private_levels: vec![
            CacheConfig::lru(8 << 10, 4, 64),
            CacheConfig::lru(32 << 10, 8, 64),
            CacheConfig::lru(64 << 10, 16, 64),
        ],
        shared_llc: CacheConfig::lru(512 << 10, 16, 64),
        policy: InclusionPolicy::Inclusive,
    })
}

fn drive<P: PresencePredictor>(
    predictor: &mut P,
    benchmark: Benchmark,
    recalibrate_every: Option<u64>,
    steps: usize,
) -> (u64, u64) {
    let mut h = tiny_hierarchy();
    let llc = h.llc_level();
    let mut traces: Vec<_> = (0..2).map(|c| benchmark.trace(c, Scale::Smoke)).collect();
    let mut t = Traversal::new();
    let (mut bypasses, mut l1_misses) = (0u64, 0u64);
    for step in 0..steps {
        let core = step % 2;
        let rec = traces[core].next().expect("infinite trace");
        // Disjoint per-core address spaces, like the simulator.
        let block = (rec.addr >> 6) | ((core as u64) << 40);
        t.clear();
        if !h.access_first(core, block, rec.op.is_store(), &mut t) {
            l1_misses += 1;
            if predictor.predict(block) == Prediction::Absent {
                // THE INVARIANT: a bypass may never skip resident data.
                assert!(
                    !h.llc().probe(block),
                    "{benchmark}: false negative — bypassed a block resident in the LLC"
                );
                assert!(
                    !h.resident_anywhere(core, block),
                    "{benchmark}: inclusive hierarchy held the block above the LLC"
                );
                bypasses += 1;
                h.fill_from_memory(core, block, rec.op.is_store(), &mut t);
            } else {
                let mut hit = false;
                for lvl in 1..h.levels() {
                    if h.lookup(core, lvl, block, &mut t) {
                        h.promote(core, lvl, block, rec.op.is_store(), &mut t);
                        hit = true;
                        break;
                    }
                }
                if !hit {
                    h.fill_from_memory(core, block, rec.op.is_store(), &mut t);
                }
            }
            if let Some(period) = recalibrate_every {
                if l1_misses % period == 0 && predictor.supports_recalibration() {
                    predictor.recalibrate(&mut h.llc().resident_blocks());
                }
            }
        }
        for b in t.inserted_at(llc) {
            predictor.on_fill(b);
        }
        if predictor.wants_eviction_events() {
            for b in t.removed_at(llc) {
                predictor.on_evict(b);
            }
        }
    }
    h.check_invariants().expect("inclusive invariant");
    (bypasses, l1_misses)
}

#[test]
fn prediction_table_never_false_negative_on_real_traces() {
    for benchmark in [Benchmark::Mcf, Benchmark::Blas, Benchmark::Soplex] {
        let mut table = PredictionTable::from_capacity_bytes(4 << 10);
        let (bypasses, misses) = drive(&mut table, benchmark, Some(2_048), 120_000);
        assert!(bypasses > 0, "{benchmark}: the table never fired");
        assert!(bypasses <= misses);
    }
}

#[test]
fn prediction_table_without_recalibration_is_still_safe() {
    // Staleness only creates false positives, never false negatives.
    let mut table = PredictionTable::from_capacity_bytes(4 << 10);
    let (bypasses, _) = drive(&mut table, Benchmark::Astar, None, 120_000);
    // It may fire less often, but must stay safe (asserted inside drive).
    let _ = bypasses;
}

#[test]
fn cbf_never_false_negative_on_real_traces() {
    for benchmark in [Benchmark::Mcf, Benchmark::Pmf] {
        let mut cbf = CountingBloomFilter::new(CbfConfig {
            index_bits: 13,
            counter_bits: 3, // deliberately narrow: force overflow handling
            num_hashes: 1,
        });
        let (bypasses, _) = drive(&mut cbf, benchmark, None, 120_000);
        assert!(bypasses > 0, "{benchmark}: the CBF never fired");
    }
}

#[test]
fn tiny_saturating_cbf_stays_safe_under_pressure() {
    // A pathologically small 2-bit filter saturates constantly; safety
    // must come from sticky disabling, not from luck.
    let mut cbf = CountingBloomFilter::new(CbfConfig {
        index_bits: 6,
        counter_bits: 2,
        num_hashes: 2,
    });
    let (_, misses) = drive(&mut cbf, Benchmark::Blas, None, 60_000);
    assert!(misses > 0);
    assert!(
        cbf.disabled_counters() > 0,
        "pressure should overflow counters"
    );
}
