//! Differential fuzz harness over the predictor registry.
//!
//! Seeded-random configurations × synthetic workloads, checked against the
//! physics every mechanism must respect rather than against snapshots:
//!
//! * references are conserved — no mechanism drops or invents work;
//! * the state-preserving overlays (Phased, LevelPred, Perceptron,
//!   WayMemo) keep fills, per-level hits, memory fetches and writebacks
//!   identical to Base — their steer re-prices lookups, never state;
//! * Oracle's bypass accuracy bounds every predictor's from above (and
//!   its false-positive count is exactly zero);
//! * LevelPred degenerates to Base pricing when its confidence threshold
//!   can never be met and prediction overhead is uncounted;
//! * every configuration produces byte-identical `RunResult` JSON at
//!   `--intra-jobs 1` and `--intra-jobs 4` (the engine proper inside the
//!   envelope, the documented sequential fallback outside it).
//!
//! The PRNG is a fixed-seed splitmix64, so failures replay exactly.

use energy_model::presets::demo_scale;
use mem_trace::synth::{PointerChase, Region, SequentialStream, ZipfOverRecords};
use minijson::ToJson;
use sim::{
    parse_spec, run_traces, run_traces_par, CoreTrace, IntraOptions, Mechanism, RunResult,
    SimConfig,
};

const CORES: usize = 2;
const ROUNDS: u64 = 4;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `lo..=hi`.
fn draw(state: &mut u64, lo: u64, hi: u64) -> u64 {
    lo + splitmix(state) % (hi - lo + 1)
}

/// One synthetic per-core trace: the same three regimes the golden suite
/// covers (sequential stream, Zipf mix, pointer chase), but at fuzzed
/// seeds and footprints.
fn trace(kind: u64, seed: u64, core: usize) -> CoreTrace {
    let s = seed ^ (core as u64).wrapping_mul(0x9E37_79B9);
    match kind % 3 {
        0 => Box::new(
            SequentialStream::new(Region::new(0x1000_0000, 2 << 20), 64, 0x400, 7, 2)
                .with_repeats(2 + (seed % 3) as u32),
        ),
        1 => Box::new(ZipfOverRecords::new(
            Region::new(0x2000_0000, 16 << 20),
            64,
            0.9,
            s,
            0x500,
            0.2,
            3,
        )),
        _ => Box::new(PointerChase::new(0x3000_0000, 1 << 14, 64, s, 0x600, 1)),
    }
}

fn fuzz_config(spec: &str, refs: usize, recalib: Option<u64>) -> SimConfig {
    let parsed = parse_spec(spec).expect("fuzz spec parses");
    let mut platform = demo_scale();
    platform.cores = CORES;
    let mut cfg = SimConfig::new(platform, parsed.mechanism);
    parsed.apply(&mut cfg);
    cfg.refs_per_core = refs;
    cfg.recalib_period = recalib;
    cfg.validate().expect("fuzz config is valid");
    cfg
}

fn run_cfg(cfg: &SimConfig, kind: u64, seed: u64) -> RunResult {
    let traces = (0..CORES).map(|c| trace(kind, seed, c)).collect();
    run_traces(cfg, traces)
}

/// `1 - false_positives/lookups`: the fraction of predictor consultations
/// that did not end in a penalized wrong call.
fn accuracy(r: &RunResult) -> f64 {
    if r.prediction.lookups == 0 {
        1.0
    } else {
        1.0 - r.prediction.false_positives as f64 / r.prediction.lookups as f64
    }
}

/// Mechanisms whose walk is exactly Base's walk (state-preserving): the
/// steer or phasing only re-prices lookups.
fn preserves_state(m: Mechanism) -> bool {
    matches!(
        m,
        Mechanism::Phased | Mechanism::LevelPred | Mechanism::Perceptron | Mechanism::WayMemo
    )
}

#[test]
fn seeded_random_configs_respect_cross_mechanism_invariants() {
    let mut rng = 0xD1FF_F00Du64;
    for round in 0..ROUNDS {
        let kind = draw(&mut rng, 0, 2);
        let seed = splitmix(&mut rng);
        let refs = draw(&mut rng, 3_000, 7_000) as usize;
        let recalib = match draw(&mut rng, 0, 2) {
            0 => None,
            _ => Some(draw(&mut rng, 400, 2_500)),
        };
        let ctx = format!("round={round} kind={kind} seed={seed:#x} refs={refs}");

        let base = run_cfg(&fuzz_config("base", refs, recalib), kind, seed);
        let oracle = run_cfg(&fuzz_config("oracle", refs, recalib), kind, seed);
        assert_eq!(
            oracle.prediction.false_positives, 0,
            "{ctx}: oracle mispredicted"
        );

        let specs = [
            "redhip".to_string(),
            "cbf".to_string(),
            "phased".to_string(),
            format!(
                "level-pred:conf={},max={},penalty={}",
                draw(&mut rng, 1, 4),
                draw(&mut rng, 1, 7),
                draw(&mut rng, 0, 16)
            ),
            format!(
                "perceptron:theta={},history={}",
                draw(&mut rng, 0, 40),
                draw(&mut rng, 0, 12)
            ),
            format!(
                "way-memo:entries={},penalty={}",
                1u64 << draw(&mut rng, 4, 10),
                draw(&mut rng, 0, 4)
            ),
        ];
        for spec in &specs {
            let cfg = fuzz_config(spec, refs, recalib);
            let r = run_cfg(&cfg, kind, seed);

            // Work conservation: every core simulated exactly its target.
            assert_eq!(r.refs_per_core, base.refs_per_core, "{ctx} {spec}");

            // Oracle bounds every predictor's bypass accuracy from above.
            assert!(
                accuracy(&oracle) >= accuracy(&r) - 1e-12,
                "{ctx} {spec}: predictor beat the oracle ({} > {})",
                accuracy(&r),
                accuracy(&oracle)
            );

            if preserves_state(cfg.mechanism) {
                // The walk is Base's walk: state counters must agree
                // exactly, level by level.
                for (lvl, (b, n)) in base
                    .hierarchy
                    .levels
                    .iter()
                    .zip(r.hierarchy.levels.iter())
                    .enumerate()
                {
                    assert_eq!(n.fills, b.fills, "{ctx} {spec}: L{lvl} fills");
                    assert_eq!(n.hits, b.hits, "{ctx} {spec}: L{lvl} hits");
                    assert_eq!(n.evictions, b.evictions, "{ctx} {spec}: L{lvl} evictions");
                }
                assert_eq!(
                    r.hierarchy.memory_fetches, base.hierarchy.memory_fetches,
                    "{ctx} {spec}: memory fetches"
                );
                assert_eq!(
                    r.hierarchy.memory_writebacks, base.hierarchy.memory_writebacks,
                    "{ctx} {spec}: memory writebacks"
                );
            }
            if matches!(cfg.mechanism, Mechanism::Phased | Mechanism::WayMemo) {
                // These never steer, so even the charged lookup counts
                // match Base: the whole hierarchy block is identical.
                assert_eq!(
                    r.hierarchy.to_json().pretty(),
                    base.hierarchy.to_json().pretty(),
                    "{ctx} {spec}: hierarchy diverged from Base"
                );
            }

            // --intra-jobs 1 and 4 must be byte-identical: the engine
            // proper inside the envelope, the sequential fallback outside.
            let seq = r.to_json().pretty();
            for jobs in [1usize, 4] {
                let traces = (0..CORES).map(|c| trace(kind, seed, c)).collect();
                let par = run_traces_par(&cfg, traces, &IntraOptions::with_jobs(jobs));
                assert_eq!(
                    seq,
                    par.to_json().pretty(),
                    "{ctx} {spec}: intra_jobs={jobs} diverged"
                );
            }
        }
    }
}

#[test]
fn level_pred_degenerates_to_base_when_never_confident() {
    let mut rng = 0xBA5E_CA5Eu64;
    for round in 0..ROUNDS {
        let kind = draw(&mut rng, 0, 2);
        let seed = splitmix(&mut rng);
        let refs = draw(&mut rng, 3_000, 6_000) as usize;
        let ctx = format!("round={round} kind={kind} seed={seed:#x}");

        let mut base_cfg = fuzz_config("base", refs, Some(1_500));
        base_cfg.count_prediction_overhead = false;
        let base = run_cfg(&base_cfg, kind, seed);

        // conf > max can never be met: every probe steers Walk, and with
        // prediction overhead uncounted the pricing is exactly Base's.
        let mut cfg = fuzz_config("level-pred:conf=9,max=3", refs, Some(1_500));
        cfg.count_prediction_overhead = false;
        let r = run_cfg(&cfg, kind, seed);

        assert_eq!(r.cycles, base.cycles, "{ctx}: cycles diverged");
        assert_eq!(
            r.hierarchy.to_json().pretty(),
            base.hierarchy.to_json().pretty(),
            "{ctx}: hierarchy diverged"
        );
        assert_eq!(
            r.energy.dynamic_by_level_j, base.energy.dynamic_by_level_j,
            "{ctx}: dynamic energy diverged"
        );
        // The predictor is still consulted (and still pays leakage) — only
        // its *effect* degenerates.
        assert!(r.prediction.lookups > 0, "{ctx}: predictor never probed");
    }
}
