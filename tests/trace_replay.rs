//! End-to-end guarantees of the streaming trace pipeline.
//!
//! The contract the v2 codec and `StreamTrace` must keep: a recorded
//! trace file replayed through `run_feeds` produces **byte-identical**
//! `SimStats` to simulating the original generators in process — for
//! every mechanism — while holding only a bounded window of the file
//! resident. Sharding must be a partition: re-merging the interleave
//! shards reconstructs the original record sequence exactly.

use mem_trace::codec::ChunkWriter;
use mem_trace::stream::{write_v2_file, StreamTrace};
use mem_trace::{ShardSpec, TraceRecord};
use minijson::ToJson;
use sim::{run_feeds, run_traces, CoreFeed, CoreTrace, Mechanism, SimConfig};
use workloads::{Benchmark, FileMode, Scale, TraceFileWorkload};

const REFS_PER_CORE: usize = 6_000;

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("redhip-replay-{}-{tag}.trace", std::process::id()))
}

fn config(mechanism: Mechanism) -> SimConfig {
    let mut cfg = SimConfig::new(energy_model::presets::demo_scale(), mechanism);
    cfg.refs_per_core = REFS_PER_CORE;
    cfg.recalib_period = Some(8_192);
    cfg
}

/// Records `cores` per-core generator streams round-robin into one v2
/// file, the way `redhip-sim trace record` does.
fn record_interleaved(path: &std::path::Path, benchmark: Benchmark, cores: usize, chunk: u32) {
    let mut streams: Vec<_> = (0..cores)
        .map(|c| benchmark.trace(c, Scale::Smoke))
        .collect();
    let sink = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
    let mut w = ChunkWriter::with_chunk_target(sink, chunk).unwrap();
    for _ in 0..REFS_PER_CORE {
        for s in streams.iter_mut() {
            w.push(s.next().unwrap()).unwrap();
        }
    }
    w.finish().unwrap();
}

#[test]
fn replay_matches_synthesis_for_every_mechanism() {
    let path = temp_path("mech");
    let cores = config(Mechanism::Base).platform.cores;
    record_interleaved(&path, Benchmark::Mcf, cores, 1 << 12);
    let workload = TraceFileWorkload::open(&path, FileMode::Interleave).unwrap();

    for mechanism in [
        Mechanism::Base,
        Mechanism::Redhip,
        Mechanism::Cbf,
        Mechanism::Phased,
        Mechanism::Oracle,
    ] {
        let cfg = config(mechanism);
        let traces: Vec<CoreTrace> = (0..cores)
            .map(|c| Benchmark::Mcf.trace(c, Scale::Smoke))
            .collect();
        let synth = run_traces(&cfg, traces);

        let feeds: Vec<CoreFeed> = (0..cores)
            .map(|c| Box::new(workload.feed(c, cores)) as CoreFeed)
            .collect();
        let replay = run_feeds(&cfg, feeds);

        assert_eq!(
            synth.to_json().pretty(),
            replay.to_json().pretty(),
            "{}: replay diverged from in-process simulation",
            mechanism.name()
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn replay_is_identical_across_backends_and_chunk_sizes() {
    let cores = config(Mechanism::Redhip).platform.cores;
    let cfg = config(Mechanism::Redhip);
    let mut reference = None;
    for (tag, chunk) in [("small", 512u32), ("large", 1 << 15)] {
        let path = temp_path(tag);
        record_interleaved(&path, Benchmark::Soplex, cores, chunk);
        for workload in [
            TraceFileWorkload::open(&path, FileMode::Interleave).unwrap(),
            TraceFileWorkload::open_buffered(&path, FileMode::Interleave).unwrap(),
        ] {
            let feeds: Vec<CoreFeed> = (0..cores)
                .map(|c| Box::new(workload.feed(c, cores)) as CoreFeed)
                .collect();
            let got = run_feeds(&cfg, feeds).to_json().pretty();
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(want, &got, "chunk {chunk}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn interleave_shards_partition_and_remerge_exactly() {
    let path = temp_path("shard");
    let original: Vec<TraceRecord> = Benchmark::Milc
        .trace(0, Scale::Smoke)
        .take(30_000)
        .collect();
    write_v2_file(&path, original.iter().copied(), 1 << 10).unwrap();
    let stream = StreamTrace::open(&path).unwrap();

    for shards in [2u32, 3, 8] {
        let parts: Vec<Vec<TraceRecord>> = (0..shards)
            .map(|index| {
                stream
                    .shard(ShardSpec::Interleave { shards, index })
                    .collect()
            })
            .collect();
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, original.len(), "{shards} shards lost records");
        let mut merged = Vec::with_capacity(total);
        for i in 0..original.len() {
            merged.push(parts[i % shards as usize][i / shards as usize]);
        }
        assert_eq!(merged, original, "{shards}-way remerge diverged");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn streaming_keeps_resident_window_bounded() {
    let path = temp_path("resident");
    let chunk = 1 << 10;
    let records = 200_000u64;
    let source = (0..records).map(|i| TraceRecord::load(0x400 + i % 17, (i * 4093) % (1 << 30)));
    write_v2_file(&path, source, chunk).unwrap();

    let mut cursor = StreamTrace::open_buffered(&path).unwrap();
    let mut seen = 0u64;
    while cursor.next().is_some() {
        seen += 1;
        // The decoded scratch never grows beyond one chunk, no matter how
        // far the cursor advances through the file.
        assert!(
            cursor.resident_records() <= chunk as usize,
            "resident window {} exceeds chunk target {chunk} after {seen} records",
            cursor.resident_records()
        );
    }
    assert_eq!(seen, records);
    let _ = std::fs::remove_file(&path);
}
