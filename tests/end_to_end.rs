//! Cross-crate end-to-end tests: each mechanism's headline property must
//! hold on real workload traces through the full simulator.

use redhip_repro::prelude::*;

const REFS: usize = 25_000;

fn run(mechanism: Mechanism, benchmark: Benchmark) -> RunResult {
    let mut cfg = SimConfig::new(demo_scale(), mechanism);
    cfg.refs_per_core = REFS;
    cfg.avg_cpi = benchmark.avg_cpi();
    cfg.recalib_period = Some(16_384);
    let traces = (0..cfg.platform.cores)
        .map(|core| benchmark.trace(core, Scale::Smoke))
        .collect();
    run_traces(&cfg, traces)
}

#[test]
fn redhip_saves_dynamic_energy_on_every_ablation_workload() {
    for b in [
        Benchmark::Mcf,
        Benchmark::Lbm,
        Benchmark::Astar,
        Benchmark::Blas,
    ] {
        let base = run(Mechanism::Base, b);
        let red = run(Mechanism::Redhip, b);
        let c = Comparison::new(&base, &red);
        assert!(
            c.dynamic_saving() > 0.0,
            "{b}: ReDHiP must save dynamic energy (got {:.3})",
            c.dynamic_saving()
        );
        assert!(red.prediction.bypasses > 0, "{b}: no bypasses happened");
    }
}

#[test]
fn oracle_bounds_redhip_on_energy() {
    for b in [Benchmark::Mcf, Benchmark::Soplex] {
        let red = run(Mechanism::Redhip, b);
        let ora = run(Mechanism::Oracle, b);
        assert!(
            ora.energy.total_dynamic_j() <= red.energy.total_dynamic_j() * 1.01,
            "{b}: oracle must lower-bound ReDHiP's dynamic energy"
        );
        assert_eq!(ora.prediction.false_positives, 0, "{b}: oracle is perfect");
    }
}

#[test]
fn phased_trades_latency_for_energy() {
    let base = run(Mechanism::Base, Benchmark::Mcf);
    let ph = run(Mechanism::Phased, Benchmark::Mcf);
    let c = Comparison::new(&base, &ph);
    assert!(c.dynamic_saving() > 0.1, "phased must save lookup energy");
    assert!(c.speedup() <= 0.0, "phased must not be faster than base");
}

#[test]
fn cbf_is_conservative_and_less_accurate_than_redhip() {
    let red = run(Mechanism::Redhip, Benchmark::Mcf);
    let cbf = run(Mechanism::Cbf, Benchmark::Mcf);
    // Both are conservative: every bypass is a true miss, so coverage ≤ 1.
    assert!(cbf.prediction.miss_coverage() <= 1.0);
    assert!(red.prediction.miss_coverage() <= 1.0);
    // CBF at the same budget catches fewer misses (the paper's comparison).
    assert!(
        cbf.prediction.miss_coverage() <= red.prediction.miss_coverage() + 0.05,
        "CBF coverage {:.3} vs ReDHiP {:.3}",
        cbf.prediction.miss_coverage(),
        red.prediction.miss_coverage()
    );
}

#[test]
fn mechanisms_agree_on_cache_contents() {
    // Prediction only skips futile lookups: the number of memory fetches
    // must agree between Base and Oracle up to interleaving noise (timing
    // shifts reorder the shared-LLC contention slightly).
    let base = run(Mechanism::Base, Benchmark::Pmf);
    let ora = run(Mechanism::Oracle, Benchmark::Pmf);
    let (a, b) = (
        base.hierarchy.memory_fetches as f64,
        ora.hierarchy.memory_fetches as f64,
    );
    assert!(
        (a - b).abs() / a.max(1.0) < 0.02,
        "bypassing must not change which requests go to memory: {a} vs {b}"
    );
    assert!(base.cycles > ora.cycles, "oracle strictly helps pmf");
}

#[test]
fn hit_rates_improve_under_redhip() {
    // Fig 9/10's effect: lower-level hit rates rise because bypassed
    // lookups (which would all have missed) never happen.
    let base = run(Mechanism::Base, Benchmark::Mcf);
    let red = run(Mechanism::Redhip, Benchmark::Mcf);
    for lvl in 1..4 {
        assert!(
            red.hit_rate(lvl) >= base.hit_rate(lvl) - 1e-9,
            "L{} hit rate should not degrade: {:.3} vs {:.3}",
            lvl + 1,
            red.hit_rate(lvl),
            base.hit_rate(lvl)
        );
    }
}

#[test]
fn recalibration_stalls_are_visible_in_cycles() {
    let with = run(Mechanism::Redhip, Benchmark::Mcf);
    assert!(with.prediction.recalibrations > 0);
    // Same run with recalibration disabled: fewer stall cycles but more
    // false positives. Both effects must be measurable.
    let mut cfg = SimConfig::new(demo_scale(), Mechanism::Redhip);
    cfg.refs_per_core = REFS;
    cfg.avg_cpi = Benchmark::Mcf.avg_cpi();
    cfg.recalib_period = None;
    let traces = (0..cfg.platform.cores)
        .map(|core| Benchmark::Mcf.trace(core, Scale::Smoke))
        .collect();
    let without = run_traces(&cfg, traces);
    assert_eq!(without.prediction.recalibrations, 0);
    assert!(
        without.prediction.false_positives >= with.prediction.false_positives,
        "never recalibrating must not reduce false positives"
    );
}

#[test]
fn duplicated_traces_compete_in_the_shared_llc() {
    // One core running alone must see a better LLC hit rate than eight
    // copies competing (the multi-programming pressure the paper studies).
    // Needs a longer window than the other tests: astar only develops LLC
    // reuse once its random walk has revisited the graph region.
    const LLC_REFS: usize = 100_000;
    let mut solo_platform = demo_scale();
    solo_platform.cores = 1;
    let mut cfg = SimConfig::new(solo_platform, Mechanism::Base);
    cfg.refs_per_core = LLC_REFS;
    cfg.avg_cpi = Benchmark::Astar.avg_cpi();
    let solo = run_traces(&cfg, vec![Benchmark::Astar.trace(0, Scale::Smoke)]);
    let mut cfg8 = SimConfig::new(demo_scale(), Mechanism::Base);
    cfg8.refs_per_core = LLC_REFS;
    cfg8.avg_cpi = Benchmark::Astar.avg_cpi();
    let traces = (0..cfg8.platform.cores)
        .map(|core| Benchmark::Astar.trace(core, Scale::Smoke))
        .collect();
    let eight = run_traces(&cfg8, traces);
    assert!(
        solo.hit_rate(3) >= eight.hit_rate(3),
        "solo L4 {:.3} vs shared {:.3}",
        solo.hit_rate(3),
        eight.hit_rate(3)
    );
}
