//! Telemetry integration tests: the windowed JSONL stream must exactly
//! reproduce the end-of-run aggregates, be byte-identical across
//! same-seed runs, and expose the paper's accuracy sawtooth around
//! recalibration events.

use energy_model::presets::demo_scale;
use mem_trace::record::{MemOp, TraceRecord};
use sim::{
    run_traces, run_traces_with, CoreTrace, Mechanism, RunResult, SimConfig, TelemetryRecord,
    WindowedCollector,
};

fn telemetry_cfg(cores: usize) -> SimConfig {
    let mut platform = demo_scale();
    platform.cores = cores;
    let mut cfg = SimConfig::new(platform, Mechanism::Redhip);
    cfg.refs_per_core = 30_000;
    cfg.recalib_period = Some(2_000);
    cfg
}

/// Mixed hot/cold stream (same shape as the `sim` unit-test workload): a
/// hot 8 KB region the L1 absorbs plus cold never-reused misses the
/// predictor learns to bypass.
fn stream(seed: u64) -> CoreTrace {
    Box::new((0..u64::MAX).map(move |i| {
        let x = (i.wrapping_mul(6364136223846793005).wrapping_add(seed)) >> 33;
        let addr = if i % 8 != 0 {
            (x % 128) * 64
        } else {
            0x1000_0000 + (x % (1 << 22)) * 64
        };
        let op = if i % 5 == 0 {
            MemOp::Store
        } else {
            MemOp::Load
        };
        TraceRecord::new(0x400 + (i % 7) * 4, addr, op, 2)
    }))
}

fn run_collected(cfg: &SimConfig, window: u64) -> (RunResult, WindowedCollector) {
    let traces = (0..cfg.platform.cores)
        .map(|c| stream(c as u64 + 1))
        .collect();
    let collector = WindowedCollector::new(window, cfg.platform.levels.len());
    run_traces_with(cfg, traces, collector)
}

/// Summing every window's integer counters (and the markers' energy)
/// reproduces the final `RunResult` aggregates exactly.
#[test]
fn window_sums_reproduce_aggregates() {
    let cfg = telemetry_cfg(2);
    // Window width that does not divide refs_per_core: forces partial
    // final windows, which must still be emitted and counted.
    let (result, obs) = run_collected(&cfg, 7_000);

    let total_window_refs: u64 = obs.windows().map(|w| w.refs).sum();
    assert_eq!(total_window_refs, result.total_refs());

    // Per-level demand counters, level by level.
    for (lvl, agg) in result.hierarchy.levels.iter().enumerate() {
        let lookups: u64 = obs
            .windows()
            .map(|w| w.level_lookups.get(lvl).copied().unwrap_or(0))
            .sum();
        let hits: u64 = obs
            .windows()
            .map(|w| w.level_hits.get(lvl).copied().unwrap_or(0))
            .sum();
        let fills: u64 = obs
            .windows()
            .map(|w| w.level_fills.get(lvl).copied().unwrap_or(0))
            .sum();
        assert_eq!(lookups, agg.lookups, "L{} lookups", lvl + 1);
        assert_eq!(hits, agg.hits, "L{} hits", lvl + 1);
        assert_eq!(fills, agg.fills, "L{} fills", lvl + 1);
    }

    // Predictor outcomes.
    let p = &result.prediction;
    let bypasses: u64 = obs.windows().map(|w| w.bypasses).sum();
    let walk_hits: u64 = obs.windows().map(|w| w.walk_hits).sum();
    let false_positives: u64 = obs.windows().map(|w| w.false_positives).sum();
    let lookups: u64 = obs.windows().map(|w| w.pred_lookups()).sum();
    assert_eq!(bypasses, p.bypasses);
    assert_eq!(walk_hits, p.walk_hits);
    assert_eq!(false_positives, p.false_positives);
    assert_eq!(lookups, p.lookups);
    assert!(p.bypasses > 0, "workload produced no bypasses");

    // One marker per completed recalibration, in stream order.
    assert_eq!(obs.recalibrations().count() as u64, p.recalibrations);
    assert!(p.recalibrations > 0, "workload produced no recalibrations");
    for (i, m) in obs.recalibrations().enumerate() {
        assert_eq!(m.index as usize, i);
        assert_eq!(m.core_refs.len(), cfg.platform.cores);
    }

    // The latency histogram covers every reference.
    let hist_refs: u64 = obs
        .windows()
        .map(|w| w.latency_hist.iter().sum::<u64>())
        .sum();
    assert_eq!(hist_refs, result.total_refs());

    // Energy: window deltas plus recalibration markers account for the
    // whole dynamic total (f64 accumulation order differs, so compare to
    // relative tolerance rather than bit equality).
    let window_nj: f64 = obs.windows().map(|w| w.energy_nj).sum();
    let marker_nj: f64 = obs.recalibrations().map(|m| m.energy_nj).sum();
    let total_j = (window_nj + marker_nj) * 1e-9;
    let agg_j = result.energy.total_dynamic_j();
    assert!(
        (total_j - agg_j).abs() <= agg_j * 1e-9,
        "telemetry energy {total_j} vs aggregate {agg_j}"
    );
}

/// Two identical runs emit byte-identical JSONL (telemetry is
/// deterministic, suitable for golden files and run diffing).
#[test]
fn same_seed_runs_are_byte_identical() {
    let cfg = telemetry_cfg(2);
    let (_, a) = run_collected(&cfg, 5_000);
    let (_, b) = run_collected(&cfg, 5_000);
    let ja = a.to_jsonl();
    assert_eq!(ja.as_bytes(), b.to_jsonl().as_bytes());

    // And the stream round-trips through the parser.
    let parsed = WindowedCollector::parse_jsonl(&ja).expect("valid JSONL");
    assert_eq!(parsed.len(), a.records().len());
}

/// The collector-attached run must not change simulation results.
#[test]
fn observer_does_not_perturb_the_simulation() {
    let cfg = telemetry_cfg(2);
    let (with_obs, _) = run_collected(&cfg, 5_000);
    let plain = run_traces(&cfg, (0..2).map(|c| stream(c as u64 + 1)).collect());
    assert_eq!(with_obs.cycles, plain.cycles);
    assert_eq!(with_obs.prediction.lookups, plain.prediction.lookups);
    assert_eq!(with_obs.prediction.bypasses, plain.prediction.bypasses);
    assert_eq!(
        with_obs.hierarchy.memory_fetches,
        plain.hierarchy.memory_fetches
    );
}

/// The paper's temporal claim (Figs. 9-12): prediction-table accuracy
/// decays as the table goes stale and snaps back at recalibration. On a
/// drift-inducing trace, the window right after each recalibration must be
/// more accurate than the window right before it.
#[test]
fn recalibration_restores_window_accuracy_on_drifting_trace() {
    // Shrink the LLC to 1 MB (16 K lines) so evictions cycle within a
    // short run; a single core keeps the inclusive hierarchy valid.
    let mut platform = demo_scale();
    platform.cores = 1;
    platform.levels.last_mut().unwrap().capacity_bytes = 1 << 20;
    let mut cfg = SimConfig::new(platform, Mechanism::Redhip);
    cfg.refs_per_core = 48_000;
    cfg.recalib_period = Some(8_000);

    // Drift: uniform random over a 2 MB region — twice the LLC. Every miss
    // fills a line (setting its table bit) and evicts another whose bit
    // goes stale, so false positives accumulate between recalibrations and
    // vanish right after one rebuilds the table from cache contents.
    let drift: CoreTrace = Box::new((0..u64::MAX).map(|i| {
        let mut z = i
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        z ^= z >> 31;
        TraceRecord::new(0x400, 0x4000_0000 + (z % 32_768) * 64, MemOp::Load, 1)
    }));
    let collector = WindowedCollector::new(1_000, cfg.platform.levels.len());
    let (_, obs) = run_traces_with(&cfg, vec![drift], collector);

    assert!(
        obs.recalibrations().count() >= 2,
        "drift trace must trigger recalibrations"
    );

    // Walk the chronological stream: for each marker compare the windows
    // immediately before and after it.
    let records = obs.records();
    let mut pre_acc = Vec::new();
    let mut post_acc = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        if let TelemetryRecord::Recalib(_) = rec {
            let before = records[..i].iter().rev().find_map(|r| match r {
                TelemetryRecord::Window(w) => Some(w),
                _ => None,
            });
            let after = records[i + 1..].iter().find_map(|r| match r {
                TelemetryRecord::Window(w) => Some(w),
                _ => None,
            });
            if let (Some(b), Some(a)) = (before, after) {
                pre_acc.push(b.accuracy());
                post_acc.push(a.accuracy());
            }
        }
    }
    assert!(!pre_acc.is_empty());
    let pre = pre_acc.iter().sum::<f64>() / pre_acc.len() as f64;
    let post = post_acc.iter().sum::<f64>() / post_acc.len() as f64;
    assert!(
        post > pre,
        "expected the sawtooth recovery: post-recalibration accuracy {post:.4} \
         must exceed pre-recalibration accuracy {pre:.4}"
    );
}
