//! Smoke tests of the figure-regeneration harness: every figure function
//! produces well-formed output at smoke scale. (The real runs live in the
//! `figures` binary; see EXPERIMENTS.md.)

use bench::figures::{self, Settings};
use bench::harness::FigureScale;
use workloads::Benchmark;

fn settings() -> Settings {
    let mut s = Settings::new(FigureScale::Smoke, Some(2_500));
    s.workloads = vec![Benchmark::Mcf, Benchmark::Blas];
    s
}

#[test]
fn figures_6_through_10_from_one_matrix() {
    let s = settings();
    let m = figures::run_matrix(&s);
    let outs = [
        figures::fig6(&m),
        figures::fig7(&m),
        figures::fig8(&m),
        figures::fig9(&m),
        figures::fig10(&m),
    ];
    for f in &outs {
        assert!(
            f.text.contains("average"),
            "{} lacks an average row",
            f.name
        );
        assert!(f.json.is_object(), "{} json malformed", f.name);
        // Every workload appears in the rendered table.
        for w in &s.workloads {
            assert!(f.text.contains(w.name()), "{} missing {}", f.name, w);
        }
    }
    // Fig 10 carries the paper-vs-measured hit-rate deltas.
    assert!(outs[4].json.get("improvement_vs_base_pp").is_some());
}

#[test]
fn sweep_figures_have_expected_axes() {
    let mut s = settings();
    s.workloads = vec![Benchmark::Mcf];
    let f11 = figures::fig11(&s);
    assert_eq!(f11.json["sizes_bytes"].as_array().unwrap().len(), 6);
    let f12 = figures::fig12(&s);
    assert_eq!(f12.json["periods_l1_misses"].as_array().unwrap().len(), 7);
    let f13 = figures::fig13(&s);
    assert_eq!(f13.json["policies"].as_array().unwrap().len(), 3);
}

#[test]
fn prefetch_figures_pair() {
    let mut s = settings();
    s.workloads = vec![Benchmark::Bwaves];
    let (f14, f15) = figures::fig14_15(&s);
    assert_eq!(f14.json["configs"].as_array().unwrap().len(), 3);
    assert_eq!(f15.json["configs"].as_array().unwrap().len(), 3);
    // The stride-friendly workload must actually issue prefetches: SP-only
    // speedup should differ from zero in some direction.
    let sp = f14.json["speedup"][0][0].as_f64().unwrap();
    assert!(sp.is_finite());
}

#[test]
fn table1_matches_figure_scale() {
    let demo = figures::table1(FigureScale::Demo);
    assert!(demo.text.contains("8192K"), "demo LLC is 8 MB");
    let paper = figures::table1(FigureScale::Paper);
    assert!(paper.text.contains("65536K"), "paper LLC is 64 MB");
}
