//! Umbrella crate for the ReDHiP reproduction workspace.
//!
//! Re-exports the public API of every member crate so examples and
//! downstream users can depend on a single crate:
//!
//! * [`redhip`] — the paper's contribution: prediction table, recalibration
//!   engine, CBF baseline.
//! * [`cache_sim`] — the deep-hierarchy simulation substrate.
//! * [`energy_model`] — Table I parameters and energy accounting.
//! * [`sim`] — the multi-core trace-driven simulator.
//! * [`workloads`] — the 11 evaluation workloads.
//! * [`mem_trace`] — trace records, synthetic streams, codec, statistics.
//! * [`prefetch`] — the stride prefetcher of §V-C.
//!
//! # Quickstart
//!
//! ```
//! use redhip_repro::prelude::*;
//!
//! // Paper-default ReDHiP on the demo-scale platform.
//! let mut cfg = SimConfig::new(demo_scale(), Mechanism::Redhip);
//! cfg.refs_per_core = 20_000;
//! let traces = (0..cfg.platform.cores)
//!     .map(|core| Benchmark::Mcf.trace(core, Scale::Smoke))
//!     .collect();
//! let result = run_traces(&cfg, traces);
//! assert!(result.prediction.bypasses > 0);
//! ```

pub use cache_sim;
pub use energy_model;
pub use mem_trace;
pub use prefetch;
pub use redhip;
pub use sim;
pub use workloads;

/// Everything needed for typical experiments.
pub mod prelude {
    pub use cache_sim::{DeepHierarchy, HierarchyConfig, InclusionPolicy, ReplacementPolicy};
    pub use energy_model::presets::{demo_scale, table_i};
    pub use mem_trace::{
        MemOp, ShardSpec, StreamTrace, TraceFeed, TraceRecord, TraceSource, TraceSourceExt,
    };
    pub use prefetch::{StrideConfig, StridePrefetcher};
    pub use redhip::{
        CountingBloomFilter, Prediction, PredictionTable, PresencePredictor, RecalibrationEngine,
    };
    pub use sim::{
        parallel_supported, run_duplicated, run_feeds, run_feeds_par, run_traces, run_traces_par,
        run_traces_with, Comparison, CoreFeed, CoreTrace, Heartbeat, HeartbeatObserver,
        IntraOptions, Mechanism, NullObserver, RecalibMarker, RunResult, SimConfig, SimObserver,
        Tee, TelemetryRecord, WindowSample, WindowedCollector,
    };
    pub use workloads::{Benchmark, FileMode, Scale, TraceFileWorkload, WorkloadSource};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_pulls_a_working_pipeline() {
        let mut cfg = SimConfig::new(demo_scale(), Mechanism::Base);
        cfg.refs_per_core = 1_000;
        let traces = (0..cfg.platform.cores)
            .map(|core| Benchmark::Lbm.trace(core, Scale::Smoke))
            .collect();
        let r = run_traces(&cfg, traces);
        assert_eq!(r.total_refs(), 8_000);
    }
}
