//! In-tree work-stealing worker pool.
//!
//! crossbeam was vendored out in PR 1, so the pool is built from std
//! atomics alone: one fixed-capacity Chase–Lev deque per worker plus a
//! global injector for work submitted mid-run. The whole job graph of a
//! sweep is known up front, so every deque is pre-sized to the full job
//! count and never reallocates — which is exactly the condition under
//! which the classic Chase–Lev algorithm is safe without epoch-based
//! memory reclamation (elements are plain `usize` job indices held in
//! `AtomicUsize` slots; a torn ABA ring-swap cannot occur because the
//! ring never moves).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A job panicked (or the pool could not run); the sweep fails cleanly
/// instead of hanging on a poisoned barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Stringified payload of the first panic observed.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker job panicked: {}", self.message)
    }
}

impl std::error::Error for PoolError {}

/// Fixed-capacity Chase–Lev work-stealing deque of job indices.
///
/// The owner pushes and pops at the bottom (LIFO — the highest-priority
/// job it was seeded with comes back first); thieves steal from the top.
struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buf: Box<[AtomicUsize]>,
    mask: usize,
}

impl Deque {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Owner-side push. Capacity is never exceeded because the deque is
    /// pre-sized to the whole job graph.
    fn push(&self, job: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        debug_assert!((b - t) as usize <= self.mask, "deque overflow");
        self.buf[b as usize & self.mask].store(job, Ordering::Relaxed);
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Owner-side pop (LIFO end).
    fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = self.buf[b as usize & self.mask].load(Ordering::Relaxed);
            if t == b {
                // Last element: race against thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(job)
            } else {
                Some(job)
            }
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side steal (FIFO end). `None` covers both "empty" and "lost
    /// the race"; callers simply move on to the next victim.
    fn steal(&self) -> Option<usize> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let job = self.buf[t as usize & self.mask].load(Ordering::Relaxed);
            self.top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
                .then_some(job)
        } else {
            None
        }
    }
}

/// Global FIFO injector for jobs submitted while the pool is running
/// (none of the current sweeps spawn mid-run work, but the sweep server
/// will; the pool drains it between the local deque and stealing).
struct Injector {
    queue: Mutex<std::collections::VecDeque<usize>>,
}

impl Injector {
    fn new() -> Self {
        Self {
            queue: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    fn pop(&self) -> Option<usize> {
        self.queue.lock().expect("injector poisoned").pop_front()
    }
}

struct Shared<'a> {
    deques: Vec<Deque>,
    injector: Injector,
    /// Jobs submitted but not yet completed; workers exit at zero.
    pending: AtomicUsize,
    /// Completed jobs, for the caller's progress reporting.
    ticks: &'a AtomicU64,
    /// First panic wins; everyone else shuts down.
    abort: AtomicBool,
    panic_msg: Mutex<Option<String>>,
}

impl Shared<'_> {
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut slot = self.panic_msg.lock().expect("panic slot poisoned");
        if slot.is_none() {
            *slot = Some(msg);
        }
        self.abort.store(true, Ordering::Release);
    }

    /// Next job for worker `me`: local deque, then the injector, then a
    /// round-robin steal sweep over every other worker.
    fn find_job(&self, me: usize) -> Option<usize> {
        if let Some(j) = self.deques[me].pop() {
            return Some(j);
        }
        if let Some(j) = self.injector.pop() {
            return Some(j);
        }
        let n = self.deques.len();
        for k in 1..n {
            if let Some(j) = self.deques[(me + k) % n].steal() {
                metrics::POOL_STEALS.incr();
                return Some(j);
            }
        }
        None
    }
}

fn worker_loop<F: Fn(usize) + Sync>(shared: &Shared<'_>, me: usize, job: &F) {
    let mut idle_spins = 0u32;
    loop {
        if shared.abort.load(Ordering::Acquire) {
            break;
        }
        match shared.find_job(me) {
            Some(i) => {
                idle_spins = 0;
                // Depth at acquisition: how much runnable work was still
                // outstanding when this worker picked up a job.
                metrics::POOL_QUEUE_DEPTH.record(shared.pending.load(Ordering::Relaxed) as u64);
                let busy = metrics::enabled().then(std::time::Instant::now);
                let outcome = catch_unwind(AssertUnwindSafe(|| job(i)));
                if let Some(t0) = busy {
                    metrics::POOL_BUSY_NS.add(t0.elapsed().as_nanos() as u64);
                }
                shared.ticks.fetch_add(1, Ordering::Relaxed);
                shared.pending.fetch_sub(1, Ordering::AcqRel);
                if let Err(payload) = outcome {
                    shared.record_panic(payload);
                    break;
                }
            }
            None => {
                if shared.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Someone is still running the tail jobs; nothing to start.
                idle_spins += 1;
                let idle = metrics::enabled().then(std::time::Instant::now);
                if idle_spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_millis(1));
                }
                if let Some(t0) = idle {
                    metrics::POOL_IDLE_NS.add(t0.elapsed().as_nanos() as u64);
                }
            }
        }
    }
}

/// Runs the job indices in `order` (highest priority first) across
/// `workers` OS threads with work stealing.
///
/// Jobs are seeded round-robin across the per-worker deques so every
/// worker starts on one of the most expensive jobs; imbalance drains via
/// stealing. `job(i)` is invoked exactly once per index (unless a job
/// panics, in which case unstarted work is abandoned and the first panic
/// is returned as the error — the pool never hangs). `ticks` counts
/// completed jobs and `progress` is invoked with its running value about
/// every 100 ms from the calling thread, which blocks until the pool
/// drains.
pub fn run_ordered<F>(
    workers: usize,
    order: &[usize],
    ticks: &AtomicU64,
    mut progress: impl FnMut(u64),
    job: F,
) -> Result<(), PoolError>
where
    F: Fn(usize) + Sync,
{
    if order.is_empty() {
        return Ok(());
    }
    let workers = workers.clamp(1, order.len());
    metrics::POOL_WORKERS.set(workers as u64);
    metrics::POOL_JOBS.add(order.len() as u64);
    let shared = Shared {
        deques: (0..workers).map(|_| Deque::new(order.len())).collect(),
        injector: Injector::new(),
        pending: AtomicUsize::new(order.len()),
        ticks,
        abort: AtomicBool::new(false),
        panic_msg: Mutex::new(None),
    };
    // Seed round-robin, striped in reverse so each owner pops its
    // highest-priority job first (the owner end is LIFO).
    for (k, &i) in order.iter().enumerate().rev() {
        shared.deques[k % workers].push(i);
    }
    std::thread::scope(|s| {
        for w in 0..workers {
            let shared = &shared;
            let job = &job;
            s.spawn(move || worker_loop(shared, w, job));
        }
        // The calling thread is the telemetry drain until the pool empties.
        // The poll interval backs off so short batches return promptly and
        // long sweeps cost one wakeup per 100 ms.
        let mut poll_ms = 1u64;
        while shared.pending.load(Ordering::Acquire) > 0 && !shared.abort.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(poll_ms));
            poll_ms = (poll_ms * 2).min(100);
            progress(ticks.load(Ordering::Relaxed));
        }
    });
    progress(ticks.load(Ordering::Relaxed));
    match shared.panic_msg.into_inner().expect("panic slot poisoned") {
        Some(message) => Err(PoolError { message }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn run_square_jobs(workers: usize, n: usize) -> Vec<u64> {
        let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let ticks = AtomicU64::new(0);
        let order: Vec<usize> = (0..n).collect();
        run_ordered(
            workers,
            &order,
            &ticks,
            |_| {},
            |i| {
                slots[i].store((i * i) as u64 + 1, Ordering::Relaxed);
            },
        )
        .expect("no panics");
        assert_eq!(ticks.load(Ordering::Relaxed), n as u64);
        slots.into_iter().map(|s| s.into_inner()).collect()
    }

    #[test]
    fn every_job_runs_exactly_once_single_worker() {
        let out = run_square_jobs(1, 37);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64 + 1);
        }
    }

    #[test]
    fn every_job_runs_exactly_once_many_workers() {
        let out = run_square_jobs(8, 203);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64 + 1);
        }
    }

    #[test]
    fn workers_clamped_to_job_count() {
        let out = run_square_jobs(64, 3);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_order_is_a_noop() {
        let ticks = AtomicU64::new(0);
        run_ordered(4, &[], &ticks, |_| {}, |_| panic!("never called")).unwrap();
    }

    #[test]
    fn panicking_job_fails_cleanly_instead_of_hanging() {
        let ticks = AtomicU64::new(0);
        let order: Vec<usize> = (0..100).collect();
        let err = run_ordered(
            4,
            &order,
            &ticks,
            |_| {},
            |i| {
                if i == 17 {
                    panic!("job 17 exploded");
                }
            },
        )
        .expect_err("must propagate the panic");
        assert!(err.message.contains("job 17 exploded"), "{err}");
    }

    #[test]
    fn steal_balances_a_skewed_seed() {
        // One enormous job index range seeded mostly onto worker 0; the
        // others must steal to finish. Completion of all jobs proves the
        // steal path executes (with 2+ workers and 1000 jobs, worker 1
        // starts with half the graph but both drain everything).
        let n = 1000;
        let done: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let ticks = AtomicU64::new(0);
        let order: Vec<usize> = (0..n).collect();
        run_ordered(
            4,
            &order,
            &ticks,
            |_| {},
            |i| {
                done[i].fetch_add(1, Ordering::Relaxed);
            },
        )
        .unwrap();
        for (i, d) in done.iter().enumerate() {
            assert_eq!(
                d.load(Ordering::Relaxed),
                1,
                "job {i} ran wrong number of times"
            );
        }
    }

    #[test]
    fn progress_reports_final_count() {
        let ticks = AtomicU64::new(0);
        let order: Vec<usize> = (0..10).collect();
        let mut last = 0;
        run_ordered(2, &order, &ticks, |t| last = t, |_| {}).unwrap();
        assert_eq!(last, 10);
    }

    #[test]
    fn deque_pop_and_steal_agree_on_singleton() {
        let d = Deque::new(8);
        d.push(42);
        // Either side may win a singleton, but never both.
        assert_eq!(d.pop(), Some(42));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
        d.push(7);
        assert_eq!(d.steal(), Some(7));
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop(), None);
    }
}
