//! Hardware stride prefetcher (§V-C of the paper).
//!
//! The paper pairs ReDHiP with "a simple hardware stride prefetcher"
//! (its reference 8, Fu, Patel & Janssens) with a table "large enough so that its accuracy
//! is comparable with the best prefetching techniques". We implement the
//! classic PC-indexed reference prediction table with the two-bit
//! Chen/Baer state machine: each static load/store instruction gets an
//! entry tracking its last address and stride; once the stride repeats
//! (state `Steady`), the next `degree` strided blocks are prefetched.

pub mod stride;

pub use stride::{StrideConfig, StridePrefetcher, StrideStats};
