//! PC-indexed reference prediction table with the Chen/Baer 2-bit FSM.

use minijson::{json, FromJson, Json, ToJson};

/// Stride prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// log2 of the number of RPT entries.
    pub index_bits: u32,
    /// Prefetch degree: how many strided addresses to issue per trigger.
    pub degree: u32,
    /// Minimum lookahead per degree step in bytes. Small strides (unit-
    /// stride FP loops) advance less than a cache line per access; real
    /// stride prefetchers therefore prefetch at least the next *line*, not
    /// the next element. 64 = one block.
    pub min_advance: u32,
}

impl Default for StrideConfig {
    fn default() -> Self {
        // A generously sized table, per the paper ("large enough that its
        // accuracy is comparable with the best prefetching techniques").
        Self {
            index_bits: 14, // 16K entries
            degree: 2,
            min_advance: 64,
        }
    }
}

impl ToJson for StrideConfig {
    fn to_json(&self) -> Json {
        json!({
            "index_bits": self.index_bits,
            "degree": self.degree,
            "min_advance": self.min_advance,
        })
    }
}

impl FromJson for StrideConfig {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            index_bits: v.u64_of("index_bits")? as u32,
            degree: v.u64_of("degree")? as u32,
            min_advance: v.u64_of("min_advance")? as u32,
        })
    }
}

/// Per-instruction prediction state (Chen & Baer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum State {
    /// Entry newly allocated; stride not yet confirmed.
    #[default]
    Initial,
    /// Stride changed recently; one confirmation away from steady.
    Transient,
    /// Stride confirmed; prefetches are issued.
    Steady,
    /// Irregular pattern detected; prediction suppressed.
    NoPred,
}

#[derive(Debug, Clone, Copy, Default)]
struct RptEntry {
    tag: u64,
    last_addr: u64,
    stride: i64,
    state: State,
    valid: bool,
    /// Block address of the furthest prefetch issued, for duplicate
    /// filtering (the role an MSHR / prefetch queue plays in hardware).
    last_pf_block: u64,
}

/// Counters exposed by the prefetcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrideStats {
    /// Training observations (one per memory reference fed in).
    pub trains: u64,
    /// Prefetch addresses issued.
    pub issued: u64,
    /// Entry allocations (RPT misses).
    pub allocations: u64,
}

/// The stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    config: StrideConfig,
    entries: Vec<RptEntry>,
    mask: u64,
    stats: StrideStats,
}

impl StridePrefetcher {
    /// Builds an empty prefetcher.
    pub fn new(config: StrideConfig) -> Self {
        assert!((4..=24).contains(&config.index_bits));
        assert!(config.degree >= 1);
        let n = 1usize << config.index_bits;
        Self {
            config,
            entries: vec![RptEntry::default(); n],
            mask: (n - 1) as u64,
            stats: StrideStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> StrideConfig {
        self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> StrideStats {
        self.stats
    }

    /// Observes one memory reference and appends any prefetch candidate
    /// *byte addresses* to `out` (caller-owned scratch, not cleared here).
    pub fn train(&mut self, pc: u64, addr: u64, out: &mut Vec<u64>) {
        self.stats.trains += 1;
        // Drop the usual 4-byte instruction alignment from the index.
        let idx = ((pc >> 2) & self.mask) as usize;
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != pc {
            *e = RptEntry {
                tag: pc,
                last_addr: addr,
                stride: 0,
                state: State::Initial,
                valid: true,
                last_pf_block: u64::MAX,
            };
            self.stats.allocations += 1;
            return;
        }
        let new_stride = addr.wrapping_sub(e.last_addr) as i64;
        let correct = new_stride == e.stride;
        let was_steady = e.state == State::Steady;
        e.state = match (e.state, correct) {
            (State::Initial, true) => State::Steady,
            (State::Initial, false) => State::Transient,
            (State::Transient, true) => State::Steady,
            (State::Transient, false) => State::NoPred,
            (State::Steady, true) => State::Steady,
            (State::Steady, false) => State::Initial,
            (State::NoPred, true) => State::Transient,
            (State::NoPred, false) => State::NoPred,
        };
        // Chen/Baer: on a mispredicted stride the stride field is updated,
        // except when leaving the Steady state — a single noise access must
        // not retrain a steady stream. Any mispredict also resets the
        // duplicate-filter watermark (the stream moved somewhere new).
        if !correct {
            if !was_steady {
                e.stride = new_stride;
            }
            e.last_pf_block = u64::MAX;
        }
        e.last_addr = addr;
        if e.state == State::Steady && e.stride != 0 {
            // Advance at least `min_advance` per degree step so unit-stride
            // streams prefetch future lines rather than the current one.
            let step = if e.stride.unsigned_abs() >= u64::from(self.config.min_advance) {
                e.stride
            } else if e.stride > 0 {
                i64::from(self.config.min_advance)
            } else {
                -i64::from(self.config.min_advance)
            };
            for d in 1..=self.config.degree {
                let target = addr.wrapping_add((step * i64::from(d)) as u64);
                // Duplicate filter: hardware prefetchers squash requests for
                // lines already requested (MSHR / prefetch-queue role). The
                // watermark is the furthest block issued in stream direction.
                let block = target >> 6;
                let fresh = e.last_pf_block == u64::MAX
                    || (step > 0 && block > e.last_pf_block)
                    || (step < 0 && block < e.last_pf_block);
                if fresh {
                    e.last_pf_block = block;
                    out.push(target);
                    self.stats.issued += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(StrideConfig {
            index_bits: 8,
            degree: 1,
            min_advance: 1,
        })
    }

    #[test]
    fn steady_stride_triggers_prefetch() {
        let mut p = pf();
        let mut out = Vec::new();
        p.train(0x400, 1000, &mut out); // allocate
        p.train(0x400, 1064, &mut out); // stride 64 learned (Initial→Transient)
        p.train(0x400, 1128, &mut out); // confirmed → Steady, prefetch 1192
        assert_eq!(out, vec![1192]);
        out.clear();
        p.train(0x400, 1192, &mut out);
        assert_eq!(out, vec![1256]);
        // Duplicate filtering: the 1256 line was already requested, so the
        // next trains only issue lines beyond the watermark.
        out.clear();
        p.train(0x400, 1256, &mut out);
        p.train(0x400, 1256 + 64, &mut out);
        assert_eq!(out, vec![1320, 1384]);
    }

    #[test]
    fn degree_issues_multiple_lookahead() {
        let mut p = StridePrefetcher::new(StrideConfig {
            index_bits: 8,
            degree: 3,
            min_advance: 1,
        });
        let mut out = Vec::new();
        for a in [0u64, 64, 128, 192] {
            p.train(0x10, a, &mut out);
        }
        // Steady at 128 issues 192/256/320; at 192 only the line beyond the
        // 320 watermark (384) survives the duplicate filter.
        assert_eq!(out, vec![192, 256, 320, 384]);
        assert_eq!(p.stats().issued, 4);
    }

    #[test]
    fn random_pattern_reaches_nopred_and_stays_quiet() {
        let mut p = pf();
        let mut out = Vec::new();
        let addrs = [10u64, 500, 17, 2000, 333, 90, 4444, 21];
        for &a in &addrs {
            p.train(0x20, a, &mut out);
        }
        assert!(out.is_empty(), "no prefetch for irregular stream: {out:?}");
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = pf();
        let mut out = Vec::new();
        for _ in 0..10 {
            p.train(0x30, 4096, &mut out);
        }
        assert!(
            out.is_empty(),
            "repeated same-address access is not a stream"
        );
    }

    #[test]
    fn steady_state_survives_one_noise_access() {
        let mut p = pf();
        let mut out = Vec::new();
        for a in [0u64, 64, 128, 192] {
            p.train(0x40, a, &mut out);
        }
        out.clear();
        p.train(0x40, 5000, &mut out); // noise: Steady → Initial, stride kept
        assert!(out.is_empty());
        p.train(0x40, 5064, &mut out); // stride 64 matches again → Steady
        assert_eq!(out, vec![5128], "stream resumes after one noise access");
    }

    #[test]
    fn conflicting_pcs_evict_each_other() {
        let mut p = pf();
        let mut out = Vec::new();
        // Two PCs mapping to the same entry (index uses pc >> 2 low 8 bits).
        let pc_a = 0x1000u64;
        let pc_b = pc_a + (1 << 10); // same low index bits after >>2
        p.train(pc_a, 0, &mut out);
        p.train(pc_b, 0, &mut out);
        p.train(pc_a, 64, &mut out); // reallocated: no stride history
        assert!(out.is_empty());
        assert!(p.stats().allocations >= 3);
    }

    #[test]
    fn negative_strides_work() {
        let mut p = pf();
        let mut out = Vec::new();
        for a in [1000u64, 936, 872, 808] {
            out.clear();
            p.train(0x50, a, &mut out);
        }
        assert_eq!(out, vec![744]);
    }

    #[test]
    fn min_advance_jumps_whole_lines_for_unit_strides() {
        let mut p = StridePrefetcher::new(StrideConfig {
            index_bits: 8,
            degree: 2,
            min_advance: 64,
        });
        let mut out = Vec::new();
        for a in [0u64, 8, 16, 24] {
            p.train(0x70, a, &mut out);
        }
        // Stride 8 < 64 → prefetch the next lines, not the next bytes
        // (Steady at addr 16 issues +64 and +128; the window at 24 is
        // squashed by the duplicate filter).
        assert_eq!(out, vec![80, 144]);
        // Large strides keep their own advance (the train at 512 issued
        // 768 and 1024; at 768 only 1280 passes the duplicate filter).
        let mut out2 = Vec::new();
        for a in [0u64, 256, 512, 768] {
            out2.clear();
            p.train(0x80, a, &mut out2);
        }
        assert_eq!(out2, vec![1280]);
    }

    #[test]
    fn stats_count_trains_and_issues() {
        let mut p = pf();
        let mut out = Vec::new();
        for a in [0u64, 64, 128, 192, 256] {
            p.train(0x60, a, &mut out);
        }
        let s = p.stats();
        assert_eq!(s.trains, 5);
        assert_eq!(s.issued, out.len() as u64);
        assert!(s.issued >= 2);
    }
}
