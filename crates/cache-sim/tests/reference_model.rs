//! Reference-model equivalence: the production `Cache` must behave
//! identically to an obviously-correct per-set LRU stack model under
//! arbitrary operation sequences. This is the strongest correctness
//! statement we can make about the substrate every result rests on.

use cache_sim::{Cache, CacheConfig};
use std::collections::VecDeque;

/// Obviously-correct model: one LRU stack (front = MRU) per set, entries
/// `(block, dirty)`.
struct ModelCache {
    sets: Vec<VecDeque<(u64, bool)>>,
    set_mask: u64,
    assoc: usize,
}

impl ModelCache {
    fn new(sets: usize, assoc: usize) -> Self {
        Self {
            sets: (0..sets).map(|_| VecDeque::new()).collect(),
            set_mask: sets as u64 - 1,
            assoc,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block & self.set_mask) as usize
    }

    fn probe(&self, block: u64) -> bool {
        self.sets[self.set_of(block)]
            .iter()
            .any(|&(b, _)| b == block)
    }

    fn access(&mut self, block: u64, store: bool) -> bool {
        let set = self.set_of(block);
        if let Some(pos) = self.sets[set].iter().position(|&(b, _)| b == block) {
            let (b, d) = self.sets[set].remove(pos).expect("present");
            self.sets[set].push_front((b, d || store));
            true
        } else {
            false
        }
    }

    fn fill(&mut self, block: u64, dirty: bool) -> Option<(u64, bool)> {
        let set = self.set_of(block);
        let evicted = if self.sets[set].len() == self.assoc {
            self.sets[set].pop_back()
        } else {
            None
        };
        self.sets[set].push_front((block, dirty));
        evicted
    }

    fn invalidate(&mut self, block: u64) -> Option<(u64, bool)> {
        let set = self.set_of(block);
        let pos = self.sets[set].iter().position(|&(b, _)| b == block)?;
        self.sets[set].remove(pos)
    }

    fn occupancy(&self) -> u64 {
        self.sets.iter().map(|s| s.len() as u64).sum()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(u64, bool),
    Fill(u64, bool),
    Invalidate(u64),
    MarkDirty(u64),
}

/// Tiny deterministic PRNG (SplitMix64) so this test needs no external
/// crates; 512 random cases mirror the old property-test configuration.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_op(st: &mut u64) -> Op {
    // A narrow block universe (0..96) keeps sets contended.
    let block = splitmix(st) % 96;
    let flag = splitmix(st) & 1 == 1;
    match splitmix(st) % 4 {
        0 => Op::Access(block, flag),
        1 => Op::Fill(block, flag),
        2 => Op::Invalidate(block),
        _ => Op::MarkDirty(block),
    }
}

#[test]
fn cache_matches_lru_stack_model() {
    let mut st = 0xCAC4E_u64;
    for _case in 0..512 {
        let len = 1 + (splitmix(&mut st) % 399) as usize;
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut st)).collect();
        // 8 sets × 4 ways, LRU.
        let mut cache = Cache::new(CacheConfig::lru(2048, 4, 64));
        let mut model = ModelCache::new(8, 4);
        for op in ops {
            match op {
                Op::Access(b, s) => {
                    assert_eq!(cache.access(b, s), model.access(b, s), "access {}", b);
                }
                Op::Fill(b, d) => {
                    // The production cache forbids double-fill; mirror that.
                    if !model.probe(b) {
                        let got = cache.fill(b, d);
                        let want = model.fill(b, d);
                        assert_eq!(
                            got.map(|e| (e.block, e.dirty)),
                            want,
                            "fill {} evicted differently",
                            b
                        );
                    }
                }
                Op::Invalidate(b) => {
                    let got = cache.invalidate(b);
                    let want = model.invalidate(b);
                    assert_eq!(got.map(|e| (e.block, e.dirty)), want, "invalidate {}", b);
                }
                Op::MarkDirty(b) => {
                    let got = cache.mark_dirty(b);
                    let set = model.set_of(b);
                    let want = model.sets[set]
                        .iter_mut()
                        .find(|e| e.0 == b)
                        .map(|e| {
                            e.1 = true;
                        })
                        .is_some();
                    assert_eq!(got, want, "mark_dirty {}", b);
                }
            }
            assert_eq!(cache.occupancy(), model.occupancy());
        }
        // Final residency agreement, block by block.
        for b in 0..96u64 {
            assert_eq!(cache.probe(b), model.probe(b), "final residency of {}", b);
        }
    }
}
