//! One set-associative writeback cache array.

use crate::config::CacheConfig;
use crate::geometry::BlockGeometry;
use crate::replacement::ReplacerState;

const META_VALID: u8 = 1;
const META_DIRTY: u8 = 2;

/// A line evicted or invalidated out of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Block address of the displaced line.
    pub block: u64,
    /// Whether the line held modified data (requires a writeback).
    pub dirty: bool,
}

/// A set-associative cache storing tags and per-line valid/dirty metadata.
///
/// The cache is *mechanically pure*: it tracks residency and replacement
/// order only. Hit/miss counting, timing and energy belong to the caller
/// (see `sim`), which keeps this hot path minimal.
#[derive(Debug, Clone)]
pub struct Cache {
    geom: BlockGeometry,
    assoc: usize,
    tags: Vec<u64>,
    meta: Vec<u8>,
    repl: ReplacerState,
    live_lines: u64,
}

impl Cache {
    /// Builds an empty cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let geom = config.geometry();
        let lines = (geom.sets() as usize) * config.assoc;
        Self {
            geom,
            assoc: config.assoc,
            tags: vec![0; lines],
            meta: vec![0; lines],
            repl: ReplacerState::new(config.policy, geom.sets() as usize, config.assoc),
            live_lines: 0,
        }
    }

    /// Address geometry of this array.
    pub fn geometry(&self) -> BlockGeometry {
        self.geom
    }

    /// Ways per set.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.geom.sets()
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> u64 {
        self.live_lines
    }

    /// Set index for a block address.
    #[inline]
    pub fn set_of(&self, block: u64) -> u64 {
        self.geom.set_of(block)
    }

    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.assoc;
        (0..self.assoc)
            .find(|&w| self.meta[base + w] & META_VALID != 0 && self.tags[base + w] == tag)
    }

    /// Checks residency without touching replacement state (used by the
    /// oracle predictor and by invariant checks).
    #[inline]
    pub fn probe(&self, block: u64) -> bool {
        let set = self.geom.set_of(block) as usize;
        self.find_way(set, self.geom.tag_of(block)).is_some()
    }

    /// Demand access: on hit updates replacement recency and (for stores)
    /// the dirty bit. Returns whether the access hit.
    #[inline]
    pub fn access(&mut self, block: u64, is_store: bool) -> bool {
        let set = self.geom.set_of(block) as usize;
        let tag = self.geom.tag_of(block);
        match self.find_way(set, tag) {
            Some(w) => {
                self.repl.on_hit(set, w, self.assoc);
                if is_store {
                    self.meta[set * self.assoc + w] |= META_DIRTY;
                }
                true
            }
            None => false,
        }
    }

    /// Inserts `block`, evicting a victim if the set is full. The block must
    /// not already be resident (enforced in debug builds).
    pub fn fill(&mut self, block: u64, dirty: bool) -> Option<Evicted> {
        let set = self.geom.set_of(block) as usize;
        let tag = self.geom.tag_of(block);
        debug_assert!(
            self.find_way(set, tag).is_none(),
            "fill of already-resident block {block:#x}"
        );
        let base = set * self.assoc;
        // Prefer an invalid way.
        let mut way = None;
        for w in 0..self.assoc {
            if self.meta[base + w] & META_VALID == 0 {
                way = Some(w);
                break;
            }
        }
        let (way, evicted) = match way {
            Some(w) => (w, None),
            None => {
                let w = self.repl.victim(set, self.assoc);
                let old_block = self.geom.block_from_parts(self.tags[base + w], set as u64);
                let evicted = Evicted {
                    block: old_block,
                    dirty: self.meta[base + w] & META_DIRTY != 0,
                };
                self.live_lines -= 1;
                (w, Some(evicted))
            }
        };
        self.tags[base + way] = tag;
        self.meta[base + way] = META_VALID | if dirty { META_DIRTY } else { 0 };
        self.repl.on_fill(set, way, self.assoc);
        self.live_lines += 1;
        evicted
    }

    /// Removes `block` if resident, reporting its dirtiness. Used both for
    /// back-invalidation (inclusive) and for move-up extraction (exclusive).
    pub fn invalidate(&mut self, block: u64) -> Option<Evicted> {
        let set = self.geom.set_of(block) as usize;
        let tag = self.geom.tag_of(block);
        let w = self.find_way(set, tag)?;
        let idx = set * self.assoc + w;
        let dirty = self.meta[idx] & META_DIRTY != 0;
        self.meta[idx] = 0;
        self.live_lines -= 1;
        Some(Evicted { block, dirty })
    }

    /// Marks a resident block dirty (writeback arriving from an upper level).
    /// Returns false when the block is not resident.
    pub fn mark_dirty(&mut self, block: u64) -> bool {
        let set = self.geom.set_of(block) as usize;
        let tag = self.geom.tag_of(block);
        match self.find_way(set, tag) {
            Some(w) => {
                self.meta[set * self.assoc + w] |= META_DIRTY;
                true
            }
            None => false,
        }
    }

    /// Iterates the block addresses of all valid lines in `set` — the
    /// tag-array read that ReDHiP's recalibration hardware performs.
    pub fn blocks_in_set(&self, set: u64) -> impl Iterator<Item = u64> + '_ {
        let base = set as usize * self.assoc;
        (0..self.assoc).filter_map(move |w| {
            if self.meta[base + w] & META_VALID != 0 {
                Some(self.geom.block_from_parts(self.tags[base + w], set))
            } else {
                None
            }
        })
    }

    /// Iterates all resident block addresses (diagnostics / invariants).
    pub fn resident_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.sets()).flat_map(move |s| self.blocks_in_set(s))
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.meta.fill(0);
        self.live_lines = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementPolicy;

    fn small_cache() -> Cache {
        // 4 sets × 2 ways × 64B blocks.
        Cache::new(CacheConfig::lru(512, 2, 64))
    }

    /// Block address landing in `set` with the given tag.
    fn blk(tag: u64, set: u64) -> u64 {
        (tag << 2) | set
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert!(!c.access(blk(1, 0), false));
        assert_eq!(c.fill(blk(1, 0), false), None);
        assert!(c.access(blk(1, 0), false));
        assert!(c.probe(blk(1, 0)));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn fill_evicts_lru_victim() {
        let mut c = small_cache();
        c.fill(blk(1, 0), false);
        c.fill(blk(2, 0), false);
        c.access(blk(1, 0), false); // tag 1 MRU, tag 2 LRU
        let ev = c.fill(blk(3, 0), false).expect("set full, must evict");
        assert_eq!(ev.block, blk(2, 0));
        assert!(!ev.dirty);
        assert!(c.probe(blk(1, 0)) && c.probe(blk(3, 0)) && !c.probe(blk(2, 0)));
    }

    #[test]
    fn store_dirties_line_and_eviction_reports_it() {
        let mut c = small_cache();
        c.fill(blk(1, 1), false);
        c.access(blk(1, 1), true);
        c.fill(blk(2, 1), false);
        let ev = c.fill(blk(3, 1), false).unwrap();
        assert_eq!(ev.block, blk(1, 1));
        assert!(ev.dirty);
    }

    #[test]
    fn fill_with_dirty_flag() {
        let mut c = small_cache();
        c.fill(blk(7, 2), true);
        let ev = c.invalidate(blk(7, 2)).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_missing_block_is_none() {
        let mut c = small_cache();
        assert_eq!(c.invalidate(blk(9, 3)), None);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small_cache();
        c.fill(blk(1, 0), false);
        c.fill(blk(2, 0), false);
        // Probing tag 1 must NOT refresh it; tag 1 is still LRU.
        assert!(c.probe(blk(1, 0)));
        let ev = c.fill(blk(3, 0), false).unwrap();
        assert_eq!(ev.block, blk(1, 0));
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut c = small_cache();
        assert!(!c.mark_dirty(blk(1, 0)));
        c.fill(blk(1, 0), false);
        assert!(c.mark_dirty(blk(1, 0)));
        let ev = c.invalidate(blk(1, 0)).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn blocks_in_set_reconstructs_full_addresses() {
        let mut c = small_cache();
        c.fill(blk(5, 2), false);
        c.fill(blk(9, 2), false);
        let mut in_set: Vec<u64> = c.blocks_in_set(2).collect();
        in_set.sort_unstable();
        assert_eq!(in_set, vec![blk(5, 2), blk(9, 2)]);
        assert_eq!(c.blocks_in_set(0).count(), 0);
    }

    #[test]
    fn resident_blocks_and_flush() {
        let mut c = small_cache();
        for s in 0..4 {
            c.fill(blk(1, s), false);
        }
        assert_eq!(c.resident_blocks().count(), 4);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.resident_blocks().count(), 0);
    }

    #[test]
    fn invalid_ways_are_preferred_over_eviction() {
        let mut c = small_cache();
        c.fill(blk(1, 0), false);
        c.fill(blk(2, 0), false);
        c.invalidate(blk(1, 0));
        // Set has a hole; filling must not evict tag 2.
        assert_eq!(c.fill(blk(3, 0), false), None);
        assert!(c.probe(blk(2, 0)));
    }

    #[test]
    fn random_policy_cache_works_end_to_end() {
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 1024,
            assoc: 4,
            block_bytes: 64,
            policy: ReplacementPolicy::Random,
        });
        for i in 0..100u64 {
            let b = i * 7 + 3;
            if !c.access(b, false) {
                c.fill(b, false);
            }
        }
        assert!(c.occupancy() <= 16);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small_cache();
        for i in 0..1000u64 {
            if !c.access(i, i % 3 == 0) {
                c.fill(i, false);
            }
        }
        assert!(c.occupancy() <= 8);
    }
}
