//! One set-associative writeback cache array.

use crate::config::CacheConfig;
use crate::geometry::BlockGeometry;
use crate::replacement::ReplacerState;

const ENTRY_VALID: u64 = 1;
const ENTRY_DIRTY: u64 = 1 << 1;
const ENTRY_TAG_SHIFT: u32 = 2;

/// Mask selecting the low `assoc` bits of a per-set validity word.
#[inline]
fn way_mask(assoc: usize) -> u64 {
    if assoc == 64 {
        u64::MAX
    } else {
        (1 << assoc) - 1
    }
}

/// Iterates the set bit positions of a word, ascending.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let w = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(w)
    }
}

/// A line evicted or invalidated out of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Block address of the displaced line.
    pub block: u64,
    /// Whether the line held modified data (requires a writeback).
    pub dirty: bool,
}

/// A set-associative cache storing tags and per-line valid/dirty metadata.
///
/// The cache is *mechanically pure*: it tracks residency and replacement
/// order only. Hit/miss counting, timing and energy belong to the caller
/// (see `sim`), which keeps this hot path minimal.
///
/// Tag and metadata live in one contiguous word array — entry layout
/// `tag << 2 | dirty << 1 | valid` — so the way-scan on every access is a
/// single load, mask, and compare per way over one cache-resident stripe.
#[derive(Debug, Clone)]
pub struct Cache {
    geom: BlockGeometry,
    assoc: usize,
    entries: Vec<u64>,
    /// Per-set validity bitmask (bit `w` ⇔ way `w` valid), mirroring the
    /// valid bits in `entries`. Fills pick an invalid way from it in one
    /// bit-scan, and recalibration sweeps (`resident_blocks`) skip empty
    /// sets wholesale instead of touching every entry word.
    valid: Vec<u64>,
    repl: ReplacerState,
    live_lines: u64,
}

/// Touches one word per page so the OS maps the array up front. Zeroed
/// `Vec`s are backed by lazily-faulted pages; without this, a large LLC
/// tag array takes thousands of random-order page faults in the middle
/// of the simulated reference stream instead of a sequential sweep here.
fn prefault<T: Copy>(v: &mut [T]) {
    const PAGE: usize = 4096;
    let step = (PAGE / std::mem::size_of::<T>().max(1)).max(1);
    let mut i = 0;
    while i < v.len() {
        // SAFETY: `i` is in bounds; the element is rewritten with its own
        // value, so contents are unchanged.
        unsafe {
            let p = v.as_mut_ptr().add(i);
            std::ptr::write_volatile(p, std::ptr::read(p));
        }
        i += step;
    }
}

impl Cache {
    /// Builds an empty cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let geom = config.geometry();
        let lines = (geom.sets() as usize) * config.assoc;
        assert!(config.assoc <= 64, "valid mask holds at most 64 ways");
        let mut entries = vec![0; lines];
        let mut valid = vec![0; geom.sets() as usize];
        prefault(&mut entries);
        prefault(&mut valid);
        Self {
            geom,
            assoc: config.assoc,
            entries,
            valid,
            repl: ReplacerState::new(config.policy, geom.sets() as usize, config.assoc),
            live_lines: 0,
        }
    }

    /// Address geometry of this array.
    pub fn geometry(&self) -> BlockGeometry {
        self.geom
    }

    /// Ways per set.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.geom.sets()
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> u64 {
        self.live_lines
    }

    /// Set index for a block address.
    #[inline]
    pub fn set_of(&self, block: u64) -> u64 {
        self.geom.set_of(block)
    }

    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.assoc;
        // Masking out the dirty bit leaves `tag | valid`: one compare
        // answers "valid and tag matches" per way. The scan visits only
        // the valid ways — a lookup in an empty set (the common case deep
        // in a large, lightly loaded level) is a single mask load.
        let want = (tag << ENTRY_TAG_SHIFT) | ENTRY_VALID;
        let mut m = self.valid[set];
        if m == way_mask(self.assoc) {
            // Full set — the steady state of a hot upper level, and the
            // case the L1-hit fast path takes on nearly every reference.
            // A straight scan beats per-way bit extraction here.
            for w in 0..self.assoc {
                if self.entries[base + w] & !ENTRY_DIRTY == want {
                    return Some(w);
                }
            }
            return None;
        }
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            if self.entries[base + w] & !ENTRY_DIRTY == want {
                return Some(w);
            }
            m &= m - 1;
        }
        None
    }

    /// Hints the host CPU to pull `block`'s set stripe (entries + validity
    /// mask) into cache. The arrays of a large simulated level exceed the
    /// host's caches, so a demand walk pays a host-DRAM miss per level;
    /// issuing the loads for every level up front overlaps those misses
    /// instead of serializing them. No architectural effect — behaviour is
    /// identical with or without the hint.
    #[inline]
    pub fn prefetch_set(&self, block: u64) {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let set = self.geom.set_of(block) as usize;
            let entries = self.entries.as_ptr().add(set * self.assoc);
            _mm_prefetch(entries.cast::<i8>(), _MM_HINT_T0);
            if self.assoc > 8 {
                // A stripe wider than 8 ways spans a second 64-byte line,
                // and fills/victim scans touch every way.
                _mm_prefetch(entries.add(8).cast::<i8>(), _MM_HINT_T0);
            }
            _mm_prefetch(self.valid.as_ptr().add(set).cast::<i8>(), _MM_HINT_T0);
            self.repl.prefetch_set(set, self.assoc);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = block;
        }
    }

    /// Checks residency without touching replacement state (used by the
    /// oracle predictor and by invariant checks).
    #[inline]
    pub fn probe(&self, block: u64) -> bool {
        let set = self.geom.set_of(block) as usize;
        self.find_way(set, self.geom.tag_of(block)).is_some()
    }

    /// Demand access: on hit updates replacement recency and (for stores)
    /// the dirty bit. Returns whether the access hit.
    #[inline]
    pub fn access(&mut self, block: u64, is_store: bool) -> bool {
        let set = self.geom.set_of(block) as usize;
        let tag = self.geom.tag_of(block);
        match self.find_way(set, tag) {
            Some(w) => {
                self.repl.on_hit(set, w, self.assoc);
                if is_store {
                    self.entries[set * self.assoc + w] |= ENTRY_DIRTY;
                }
                true
            }
            None => false,
        }
    }

    /// Inserts `block`, evicting a victim if the set is full. The block must
    /// not already be resident (enforced in debug builds).
    pub fn fill(&mut self, block: u64, dirty: bool) -> Option<Evicted> {
        let set = self.geom.set_of(block) as usize;
        let tag = self.geom.tag_of(block);
        debug_assert!(
            self.find_way(set, tag).is_none(),
            "fill of already-resident block {block:#x}"
        );
        debug_assert!(
            tag.leading_zeros() >= ENTRY_TAG_SHIFT,
            "tag {tag:#x} does not leave room for the entry flag bits"
        );
        let base = set * self.assoc;
        // Prefer the lowest invalid way (one bit-scan of the set's mask).
        let free = !self.valid[set] & way_mask(self.assoc);
        let (way, evicted) = match free {
            m if m != 0 => (m.trailing_zeros() as usize, None),
            _ => {
                let w = self.repl.victim(set, self.assoc);
                let old = self.entries[base + w];
                let evicted = Evicted {
                    block: self
                        .geom
                        .block_from_parts(old >> ENTRY_TAG_SHIFT, set as u64),
                    dirty: old & ENTRY_DIRTY != 0,
                };
                self.live_lines -= 1;
                (w, Some(evicted))
            }
        };
        self.entries[base + way] =
            (tag << ENTRY_TAG_SHIFT) | ENTRY_VALID | if dirty { ENTRY_DIRTY } else { 0 };
        self.valid[set] |= 1 << way;
        self.repl.on_fill(set, way, self.assoc);
        self.live_lines += 1;
        evicted
    }

    /// Removes `block` if resident, reporting its dirtiness. Used both for
    /// back-invalidation (inclusive) and for move-up extraction (exclusive).
    pub fn invalidate(&mut self, block: u64) -> Option<Evicted> {
        let set = self.geom.set_of(block) as usize;
        let tag = self.geom.tag_of(block);
        let w = self.find_way(set, tag)?;
        let idx = set * self.assoc + w;
        let dirty = self.entries[idx] & ENTRY_DIRTY != 0;
        self.entries[idx] = 0;
        self.valid[set] &= !(1 << w);
        self.live_lines -= 1;
        Some(Evicted { block, dirty })
    }

    /// Marks a resident block dirty (writeback arriving from an upper level).
    /// Returns false when the block is not resident.
    pub fn mark_dirty(&mut self, block: u64) -> bool {
        let set = self.geom.set_of(block) as usize;
        let tag = self.geom.tag_of(block);
        match self.find_way(set, tag) {
            Some(w) => {
                self.entries[set * self.assoc + w] |= ENTRY_DIRTY;
                true
            }
            None => false,
        }
    }

    /// Iterates the block addresses of all valid lines in `set` — the
    /// tag-array read that ReDHiP's recalibration hardware performs.
    pub fn blocks_in_set(&self, set: u64) -> impl Iterator<Item = u64> + '_ {
        let base = set as usize * self.assoc;
        self.entries[base..base + self.assoc]
            .iter()
            .filter(|&&e| e & ENTRY_VALID != 0)
            .map(move |&e| self.geom.block_from_parts(e >> ENTRY_TAG_SHIFT, set))
    }

    /// Iterates all resident block addresses (recalibration, diagnostics).
    /// Driven by the per-set validity masks, so the sweep costs one word
    /// per set plus one load per *resident* line — on a lightly loaded
    /// cache it never touches the bulk of the entry array.
    pub fn resident_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.valid
            .iter()
            .enumerate()
            .filter(|&(_, &mask)| mask != 0)
            .flat_map(move |(set, &mask)| {
                let base = set * self.assoc;
                BitIter(mask).map(move |w| {
                    self.geom
                        .block_from_parts(self.entries[base + w] >> ENTRY_TAG_SHIFT, set as u64)
                })
            })
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.entries.fill(0);
        self.valid.fill(0);
        self.live_lines = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementPolicy;

    fn small_cache() -> Cache {
        // 4 sets × 2 ways × 64B blocks.
        Cache::new(CacheConfig::lru(512, 2, 64))
    }

    /// Block address landing in `set` with the given tag.
    fn blk(tag: u64, set: u64) -> u64 {
        (tag << 2) | set
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert!(!c.access(blk(1, 0), false));
        assert_eq!(c.fill(blk(1, 0), false), None);
        assert!(c.access(blk(1, 0), false));
        assert!(c.probe(blk(1, 0)));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn fill_evicts_lru_victim() {
        let mut c = small_cache();
        c.fill(blk(1, 0), false);
        c.fill(blk(2, 0), false);
        c.access(blk(1, 0), false); // tag 1 MRU, tag 2 LRU
        let ev = c.fill(blk(3, 0), false).expect("set full, must evict");
        assert_eq!(ev.block, blk(2, 0));
        assert!(!ev.dirty);
        assert!(c.probe(blk(1, 0)) && c.probe(blk(3, 0)) && !c.probe(blk(2, 0)));
    }

    #[test]
    fn store_dirties_line_and_eviction_reports_it() {
        let mut c = small_cache();
        c.fill(blk(1, 1), false);
        c.access(blk(1, 1), true);
        c.fill(blk(2, 1), false);
        let ev = c.fill(blk(3, 1), false).unwrap();
        assert_eq!(ev.block, blk(1, 1));
        assert!(ev.dirty);
    }

    #[test]
    fn fill_with_dirty_flag() {
        let mut c = small_cache();
        c.fill(blk(7, 2), true);
        let ev = c.invalidate(blk(7, 2)).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_missing_block_is_none() {
        let mut c = small_cache();
        assert_eq!(c.invalidate(blk(9, 3)), None);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small_cache();
        c.fill(blk(1, 0), false);
        c.fill(blk(2, 0), false);
        // Probing tag 1 must NOT refresh it; tag 1 is still LRU.
        assert!(c.probe(blk(1, 0)));
        let ev = c.fill(blk(3, 0), false).unwrap();
        assert_eq!(ev.block, blk(1, 0));
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut c = small_cache();
        assert!(!c.mark_dirty(blk(1, 0)));
        c.fill(blk(1, 0), false);
        assert!(c.mark_dirty(blk(1, 0)));
        let ev = c.invalidate(blk(1, 0)).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn blocks_in_set_reconstructs_full_addresses() {
        let mut c = small_cache();
        c.fill(blk(5, 2), false);
        c.fill(blk(9, 2), false);
        let mut in_set: Vec<u64> = c.blocks_in_set(2).collect();
        in_set.sort_unstable();
        assert_eq!(in_set, vec![blk(5, 2), blk(9, 2)]);
        assert_eq!(c.blocks_in_set(0).count(), 0);
    }

    #[test]
    fn resident_blocks_and_flush() {
        let mut c = small_cache();
        for s in 0..4 {
            c.fill(blk(1, s), false);
        }
        assert_eq!(c.resident_blocks().count(), 4);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.resident_blocks().count(), 0);
    }

    #[test]
    fn invalid_ways_are_preferred_over_eviction() {
        let mut c = small_cache();
        c.fill(blk(1, 0), false);
        c.fill(blk(2, 0), false);
        c.invalidate(blk(1, 0));
        // Set has a hole; filling must not evict tag 2.
        assert_eq!(c.fill(blk(3, 0), false), None);
        assert!(c.probe(blk(2, 0)));
    }

    #[test]
    fn random_policy_cache_works_end_to_end() {
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 1024,
            assoc: 4,
            block_bytes: 64,
            policy: ReplacementPolicy::Random,
        });
        for i in 0..100u64 {
            let b = i * 7 + 3;
            if !c.access(b, false) {
                c.fill(b, false);
            }
        }
        assert!(c.occupancy() <= 16);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small_cache();
        for i in 0..1000u64 {
            if !c.access(i, i % 3 == 0) {
                c.fill(i, false);
            }
        }
        assert!(c.occupancy() <= 8);
    }
}
