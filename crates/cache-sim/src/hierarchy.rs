//! Multi-core deep cache hierarchy with the paper's three inclusion policies.
//!
//! The hierarchy exposes *mechanism-agnostic* primitives — `access_first`,
//! `lookup`, `promote`, `fill_from_memory` — and the `sim` crate sequences
//! them according to the active mechanism (Base walks every level; ReDHiP
//! may jump straight from the L1 miss to `fill_from_memory`; the exclusive
//! multi-table configuration may skip individual levels). All inclusion
//! bookkeeping (back-invalidation, victim cascading, writeback folding)
//! happens here so the invariants hold no matter what the mechanism does.

use crate::cache::{Cache, Evicted};
use crate::config::CacheConfig;
use crate::traversal::{HierarchyStats, LevelId, Traversal, MEMORY};

/// Inclusion policy of the hierarchy (§III-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InclusionPolicy {
    /// Every level contains all data of the levels above it (paper default).
    Inclusive,
    /// Every level holds distinct data; lower levels act as victim caches.
    Exclusive,
    /// Private levels (L1..L3) are exclusive among themselves; the shared
    /// LLC is inclusive of everything.
    Hybrid,
}

impl minijson::ToJson for InclusionPolicy {
    fn to_json(&self) -> minijson::Json {
        minijson::Json::Str(
            match self {
                InclusionPolicy::Inclusive => "Inclusive",
                InclusionPolicy::Exclusive => "Exclusive",
                InclusionPolicy::Hybrid => "Hybrid",
            }
            .to_string(),
        )
    }
}

impl minijson::FromJson for InclusionPolicy {
    fn from_json(v: &minijson::Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Inclusive") => Ok(InclusionPolicy::Inclusive),
            Some("Exclusive") => Ok(InclusionPolicy::Exclusive),
            Some("Hybrid") => Ok(InclusionPolicy::Hybrid),
            _ => Err(format!("not an InclusionPolicy: {v:?}")),
        }
    }
}

/// Static description of a hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Number of cores (each gets a private copy of `private_levels`).
    pub cores: usize,
    /// Per-core private levels, outermost first (L1, L2, L3, ...).
    pub private_levels: Vec<CacheConfig>,
    /// The shared last-level cache.
    pub shared_llc: CacheConfig,
    /// Inclusion policy.
    pub policy: InclusionPolicy,
}

impl HierarchyConfig {
    /// Total number of levels including the LLC.
    pub fn levels(&self) -> usize {
        self.private_levels.len() + 1
    }
}

/// A multi-core hierarchy: per-core private caches plus one shared LLC.
#[derive(Debug, Clone)]
pub struct DeepHierarchy {
    cores: usize,
    policy: InclusionPolicy,
    /// Private caches flattened core-major: entry `core * (levels-1) + level`,
    /// level 0 = L1. One contiguous array means the per-reference cache pick
    /// is a single indexed load instead of a nested-`Vec` double pointer
    /// chase.
    private: Vec<Cache>,
    shared: Cache,
    stats: HierarchyStats,
    levels: u8,
}

impl DeepHierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    /// Panics if there are no private levels or no cores.
    pub fn new(config: &HierarchyConfig) -> Self {
        assert!(config.cores >= 1, "need at least one core");
        assert!(
            !config.private_levels.is_empty(),
            "need at least one private level above the LLC"
        );
        assert!(
            config.levels() <= crate::traversal::MAX_LEVELS,
            "hierarchy depth {} exceeds the traversal event-list capacity {}",
            config.levels(),
            crate::traversal::MAX_LEVELS
        );
        let private = (0..config.cores)
            .flat_map(|_| config.private_levels.iter().map(|c| Cache::new(*c)))
            .collect();
        Self {
            cores: config.cores,
            policy: config.policy,
            private,
            shared: Cache::new(config.shared_llc),
            stats: HierarchyStats::new(config.levels()),
            levels: config.levels() as u8,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Number of levels including the LLC.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Level index of the shared LLC.
    pub fn llc_level(&self) -> LevelId {
        self.levels - 1
    }

    /// Inclusion policy.
    pub fn policy(&self) -> InclusionPolicy {
        self.policy
    }

    /// Read access to the shared LLC (oracle probes, recalibration).
    pub fn llc(&self) -> &Cache {
        &self.shared
    }

    /// Index of `(core, level)` in the flattened private-cache array.
    #[inline]
    fn pidx(&self, core: usize, level: LevelId) -> usize {
        core * (self.levels as usize - 1) + level as usize
    }

    /// Read access to a private cache (multi-table recalibration).
    pub fn private_cache(&self, core: usize, level: LevelId) -> &Cache {
        &self.private[self.pidx(core, level)]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Folds a completed traversal into the aggregate statistics.
    pub fn absorb_stats(&mut self, t: &Traversal) {
        self.stats.absorb(t);
    }

    /// Mutable statistics access, for callers that fold a traversal's
    /// events and price them in a single pass (the simulator miss path)
    /// instead of walking the event lists once here and once for energy.
    pub fn stats_mut(&mut self) -> &mut HierarchyStats {
        &mut self.stats
    }

    fn cache_mut(&mut self, core: usize, level: LevelId) -> &mut Cache {
        if level == self.levels - 1 {
            &mut self.shared
        } else {
            let i = self.pidx(core, level);
            &mut self.private[i]
        }
    }

    fn cache_ref(&self, core: usize, level: LevelId) -> &Cache {
        if level == self.levels - 1 {
            &self.shared
        } else {
            &self.private[self.pidx(core, level)]
        }
    }

    /// Hints the host CPU to pull the set stripes an imminent walk of
    /// levels `1..levels` will touch (see [`Cache::prefetch_set`]). Called
    /// right after an L1 miss is detected, it overlaps the host-memory
    /// latency of the per-level array reads instead of paying them one
    /// dependent load at a time.
    #[inline]
    pub fn prefetch_walk_sets(&self, core: usize, block: u64) {
        for lvl in 1..self.levels {
            self.cache_ref(core, lvl).prefetch_set(block);
        }
    }

    /// L1 demand access. Logs the lookup; returns true on hit.
    pub fn access_first(
        &mut self,
        core: usize,
        block: u64,
        is_store: bool,
        t: &mut Traversal,
    ) -> bool {
        let i = self.pidx(core, 0);
        let hit = self.private[i].access(block, is_store);
        t.lookups.push((0, hit));
        if hit {
            t.hit_level = Some(0);
        }
        hit
    }

    /// L1 demand access that counts its own statistics instead of logging
    /// a traversal — the hot path for the (overwhelmingly common) L1 hit.
    /// On a hit, the effect on hierarchy state and stats is identical to
    /// `access_first` + `absorb_stats` of the one-lookup traversal. On a
    /// miss nothing is counted: the caller restarts through
    /// [`DeepHierarchy::access_first`] so the full traversal carries the
    /// miss, exactly as before.
    #[inline]
    pub fn try_first_hit(&mut self, core: usize, block: u64, is_store: bool) -> bool {
        let i = self.pidx(core, 0);
        let hit = self.private[i].access(block, is_store);
        if hit {
            let s = &mut self.stats.levels[0];
            s.lookups += 1;
            s.hits += 1;
        }
        hit
    }

    /// Demand lookup at an arbitrary level (> L1). Logs the lookup and
    /// updates replacement recency on hit, but performs no data movement —
    /// follow a hit with [`DeepHierarchy::promote`].
    pub fn lookup(&mut self, core: usize, level: LevelId, block: u64, t: &mut Traversal) -> bool {
        debug_assert!(level > 0 && level < self.levels);
        // Recency is updated on hit; dirtiness is managed during promotion.
        let hit = self.cache_mut(core, level).access(block, false);
        t.lookups.push((level, hit));
        if hit {
            t.hit_level = Some(level);
        }
        hit
    }

    /// Moves/copies the block found at `hit_level` up to L1 according to the
    /// inclusion policy.
    pub fn promote(
        &mut self,
        core: usize,
        hit_level: LevelId,
        block: u64,
        is_store: bool,
        t: &mut Traversal,
    ) {
        debug_assert!(hit_level > 0, "L1 hits need no promotion");
        match self.policy {
            InclusionPolicy::Inclusive => {
                // Install into every level above the hit, top of the fill
                // order being the level just above the hit.
                for lvl in (0..hit_level).rev() {
                    let dirty = lvl == 0 && is_store;
                    self.fill_private_inclusive(core, lvl, block, dirty, t);
                }
            }
            InclusionPolicy::Exclusive => {
                let ev = self
                    .cache_mut(core, hit_level)
                    .invalidate(block)
                    .expect("exclusive promote: block vanished from hit level");
                t.removed.push((hit_level, block));
                self.insert_top_exclusive(core, block, ev.dirty || is_store, self.levels, t);
            }
            InclusionPolicy::Hybrid => {
                if hit_level == self.llc_level() {
                    // LLC is inclusive: copy up, leave the LLC line resident.
                    self.insert_top_exclusive(core, block, is_store, self.levels - 1, t);
                } else {
                    let ev = self
                        .cache_mut(core, hit_level)
                        .invalidate(block)
                        .expect("hybrid promote: block vanished from hit level");
                    t.removed.push((hit_level, block));
                    self.insert_top_exclusive(
                        core,
                        block,
                        ev.dirty || is_store,
                        self.levels - 1,
                        t,
                    );
                }
            }
        }
    }

    /// Brings a block in from memory after a full (or predicted) miss.
    pub fn fill_from_memory(&mut self, core: usize, block: u64, is_store: bool, t: &mut Traversal) {
        match self.policy {
            InclusionPolicy::Inclusive => {
                self.fill_llc_inclusive(block, t);
                for lvl in (0..self.levels - 1).rev() {
                    let dirty = lvl == 0 && is_store;
                    self.fill_private_inclusive(core, lvl, block, dirty, t);
                }
            }
            InclusionPolicy::Exclusive => {
                self.insert_top_exclusive(core, block, is_store, self.levels, t);
            }
            InclusionPolicy::Hybrid => {
                self.fill_llc_inclusive(block, t);
                self.insert_top_exclusive(core, block, is_store, self.levels - 1, t);
            }
        }
    }

    /// Installs `block` into the (inclusive) shared LLC, handling victim
    /// back-invalidation across all cores.
    fn fill_llc_inclusive(&mut self, block: u64, t: &mut Traversal) {
        let llc = self.llc_level();
        let evicted = self.shared.fill(block, false);
        t.fills.push(llc);
        t.inserted.push((llc, block));
        if let Some(v) = evicted {
            self.stats.count_eviction(llc);
            t.removed.push((llc, v.block));
            let mut dirty = v.dirty;
            // Inclusion: purge every upper copy in every core.
            for core in 0..self.cores {
                for lvl in 0..(self.levels - 1) {
                    t.probes.push(lvl);
                    let i = self.pidx(core, lvl);
                    if let Some(up) = self.private[i].invalidate(v.block) {
                        self.stats.count_invalidation(lvl);
                        t.removed.push((lvl, v.block));
                        dirty |= up.dirty;
                    }
                }
            }
            if dirty {
                t.writebacks.push(MEMORY);
            }
        }
    }

    /// Installs `block` into private level `lvl` of `core` (inclusive
    /// policy), invalidating the victim's upper copies and folding dirty
    /// data down to `lvl + 1`.
    fn fill_private_inclusive(
        &mut self,
        core: usize,
        lvl: LevelId,
        block: u64,
        dirty: bool,
        t: &mut Traversal,
    ) {
        let i = self.pidx(core, lvl);
        let evicted = self.private[i].fill(block, dirty);
        t.fills.push(lvl);
        t.inserted.push((lvl, block));
        if let Some(v) = evicted {
            self.stats.count_eviction(lvl);
            t.removed.push((lvl, v.block));
            let mut wb_dirty = v.dirty;
            for up in 0..lvl {
                t.probes.push(up);
                let i = self.pidx(core, up);
                if let Some(e) = self.private[i].invalidate(v.block) {
                    self.stats.count_invalidation(up);
                    t.removed.push((up, v.block));
                    wb_dirty |= e.dirty;
                }
            }
            if wb_dirty {
                let below = lvl + 1;
                t.writebacks.push(below);
                let ok = self.cache_mut(core, below).mark_dirty(v.block);
                debug_assert!(
                    ok,
                    "inclusion violated: victim {0:#x} absent below",
                    v.block
                );
            }
        }
    }

    /// Exclusive-style insert into L1 with victim cascade down to
    /// `cascade_end` (exclusive: `levels`, i.e. through the LLC; hybrid:
    /// `levels - 1`, the last private level — its victim stays in the
    /// inclusive LLC). Dirty victims leaving the cascade are written back.
    fn insert_top_exclusive(
        &mut self,
        core: usize,
        block: u64,
        dirty: bool,
        cascade_end: u8,
        t: &mut Traversal,
    ) {
        let mut incoming: Option<Evicted> = Some(Evicted { block, dirty });
        let mut lvl: LevelId = 0;
        while let Some(line) = incoming.take() {
            if lvl >= cascade_end {
                // Victim leaves the cascade.
                if cascade_end == self.levels {
                    // Fully exclusive: LLC victim goes to memory.
                    if line.dirty {
                        t.writebacks.push(MEMORY);
                    }
                } else {
                    // Hybrid: last private victim merges into the inclusive
                    // LLC copy.
                    if line.dirty {
                        t.writebacks.push(self.levels - 1);
                        let ok = self.shared.mark_dirty(line.block);
                        debug_assert!(
                            ok,
                            "hybrid inclusion violated: private victim {0:#x} absent in LLC",
                            line.block
                        );
                    }
                }
                break;
            }
            // The shared LLC can already hold the block when several cores
            // reference the same addresses (the paper's workloads are
            // multi-programmed with disjoint address spaces, but we stay
            // robust without a coherence protocol): merge instead of
            // double-filling.
            if lvl == self.levels - 1 && self.shared.probe(line.block) {
                if line.dirty {
                    let ok = self.shared.mark_dirty(line.block);
                    debug_assert!(ok);
                    t.writebacks.push(lvl);
                }
                break;
            }
            let evicted = self.cache_mut(core, lvl).fill(line.block, line.dirty);
            t.fills.push(lvl);
            t.inserted.push((lvl, line.block));
            if let Some(v) = evicted {
                self.stats.count_eviction(lvl);
                t.removed.push((lvl, v.block));
                incoming = Some(v);
            }
            lvl += 1;
        }
    }

    // ----- Prefetch support (inclusive policy only) ---------------------

    /// Probes a level without updating recency (prefetch presence check).
    /// Logs a lookup (tag access) against the level.
    pub fn prefetch_probe(
        &mut self,
        core: usize,
        level: LevelId,
        block: u64,
        t: &mut Traversal,
    ) -> bool {
        let hit = self.cache_ref(core, level).probe(block);
        t.lookups.push((level, hit));
        if hit {
            t.hit_level = Some(level);
        }
        hit
    }

    /// Installs a prefetched block into the inclusive hierarchy at every
    /// level from the LLC up to `up_to_level` (exclusive of L1 when
    /// `up_to_level > 0`). Panics outside the inclusive policy.
    pub fn prefetch_fill(
        &mut self,
        core: usize,
        up_to_level: LevelId,
        block: u64,
        t: &mut Traversal,
    ) {
        assert_eq!(
            self.policy,
            InclusionPolicy::Inclusive,
            "prefetching is modelled for the inclusive hierarchy only"
        );
        if !self.shared.probe(block) {
            self.fill_llc_inclusive(block, t);
        }
        let mut lvl = self.levels - 2;
        loop {
            if !self.private[self.pidx(core, lvl)].probe(block) {
                self.fill_private_inclusive(core, lvl, block, false, t);
            }
            if lvl == up_to_level {
                break;
            }
            lvl -= 1;
        }
    }

    // ----- Invariant checks (tests / debugging) --------------------------

    /// Verifies the inclusion invariant appropriate to the policy. O(cache
    /// size); intended for tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self.policy {
            InclusionPolicy::Inclusive => {
                for core in 0..self.cores {
                    for lvl in 0..(self.levels as usize - 1) {
                        for b in self.private[self.pidx(core, lvl as u8)].resident_blocks() {
                            let below_ok = if lvl + 2 == self.levels as usize {
                                self.shared.probe(b)
                            } else {
                                self.private[self.pidx(core, lvl as u8 + 1)].probe(b)
                            };
                            if !below_ok {
                                return Err(format!(
                                    "inclusive: core {core} L{} block {b:#x} missing below",
                                    lvl + 1
                                ));
                            }
                        }
                    }
                }
            }
            InclusionPolicy::Exclusive => {
                for core in 0..self.cores {
                    for a in 0..(self.levels as usize - 1) {
                        for b in self.private[self.pidx(core, a as u8)].resident_blocks() {
                            for other in (a + 1)..(self.levels as usize - 1) {
                                if self.private[self.pidx(core, other as u8)].probe(b) {
                                    return Err(format!(
                                        "exclusive: core {core} block {b:#x} in both L{} and L{}",
                                        a + 1,
                                        other + 1
                                    ));
                                }
                            }
                            if self.shared.probe(b) {
                                return Err(format!(
                                    "exclusive: core {core} block {b:#x} in both L{} and LLC",
                                    a + 1
                                ));
                            }
                        }
                    }
                }
            }
            InclusionPolicy::Hybrid => {
                for core in 0..self.cores {
                    for a in 0..(self.levels as usize - 1) {
                        for b in self.private[self.pidx(core, a as u8)].resident_blocks() {
                            for other in (a + 1)..(self.levels as usize - 1) {
                                if self.private[self.pidx(core, other as u8)].probe(b) {
                                    return Err(format!(
                                        "hybrid: core {core} block {b:#x} in both L{} and L{}",
                                        a + 1,
                                        other + 1
                                    ));
                                }
                            }
                            if !self.shared.probe(b) {
                                return Err(format!(
                                    "hybrid: core {core} L{} block {b:#x} not covered by LLC",
                                    a + 1
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// True when `block` resides at any level reachable by `core`.
    pub fn resident_anywhere(&self, core: usize, block: u64) -> bool {
        let base = self.pidx(core, 0);
        let end = base + self.levels as usize - 1;
        self.private[base..end].iter().any(|c| c.probe(block)) || self.shared.probe(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementPolicy;

    fn tiny_config(policy: InclusionPolicy) -> HierarchyConfig {
        HierarchyConfig {
            cores: 2,
            private_levels: vec![
                CacheConfig::lru(128, 2, 64), // L1: 1 set × 2 ways
                CacheConfig::lru(256, 2, 64), // L2: 2 sets × 2 ways
                CacheConfig::lru(512, 2, 64), // L3: 4 sets × 2 ways
            ],
            shared_llc: CacheConfig::lru(2048, 4, 64), // L4: 8 sets × 4 ways
            policy,
        }
    }

    /// Runs a full demand access the way the Base mechanism would.
    fn demand(h: &mut DeepHierarchy, core: usize, block: u64, store: bool, t: &mut Traversal) {
        t.clear();
        if h.access_first(core, block, store, t) {
            h.absorb_stats(t);
            return;
        }
        for lvl in 1..h.levels() {
            if h.lookup(core, lvl, block, t) {
                h.promote(core, lvl, block, store, t);
                h.absorb_stats(t);
                return;
            }
        }
        h.fill_from_memory(core, block, store, t);
        h.absorb_stats(t);
    }

    #[test]
    fn inclusive_miss_fills_all_levels() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Inclusive));
        let mut t = Traversal::new();
        demand(&mut h, 0, 0x40, false, &mut t);
        assert_eq!(t.lookups.len(), 4);
        assert_eq!(t.fills.len(), 4);
        assert!(h.private_cache(0, 0).probe(0x40));
        assert!(h.private_cache(0, 1).probe(0x40));
        assert!(h.private_cache(0, 2).probe(0x40));
        assert!(h.llc().probe(0x40));
        h.check_invariants().unwrap();
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Inclusive));
        let mut t = Traversal::new();
        demand(&mut h, 0, 0x40, false, &mut t);
        demand(&mut h, 0, 0x40, false, &mut t);
        assert_eq!(t.hit_level, Some(0));
        assert_eq!(t.lookups.len(), 1);
        assert_eq!(h.stats().levels[0].hits, 1);
    }

    #[test]
    fn inclusive_llc_eviction_back_invalidates() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Inclusive));
        let mut t = Traversal::new();
        // LLC set 0 holds 4 ways; blocks mapping to LLC set 0 are multiples
        // of 8 blocks (8 sets). Fill 5 such blocks to force an LLC eviction.
        let blocks: Vec<u64> = (0..5).map(|i| i * 8).collect();
        for &b in &blocks {
            demand(&mut h, 0, b, false, &mut t);
        }
        // The LLC victim must have vanished from the private levels too.
        let victim = t
            .removed
            .iter()
            .find(|&&(l, _)| l == 3)
            .map(|&(_, b)| b)
            .expect("LLC eviction expected");
        assert!(!h.resident_anywhere(0, victim));
        h.check_invariants().unwrap();
    }

    #[test]
    fn inclusive_dirty_l1_eviction_writes_back_to_l2() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Inclusive));
        let mut t = Traversal::new();
        // L1 has 1 set × 2 ways; three blocks that share L1 set but spread
        // over LLC sets: any blocks work since L1 has a single set.
        demand(&mut h, 0, 1, true, &mut t); // store → dirty in L1
        demand(&mut h, 0, 2, false, &mut t);
        demand(&mut h, 0, 3, false, &mut t); // evicts block 1 from L1
                                             // A writeback must have arrived at L2 (level 1).
        assert!(h.stats().levels[1].writebacks_in >= 1);
        h.check_invariants().unwrap();
    }

    #[test]
    fn inclusive_hit_at_llc_promotes_to_upper_levels() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Inclusive));
        let mut t = Traversal::new();
        demand(&mut h, 0, 0x40, false, &mut t);
        // Evict 0x40 from L1/L2/L3 by filling conflicting blocks, but keep
        // it in the larger LLC: blocks 1..3 share L1 set (1 set) and L2/L3
        // sets cycle faster than LLC's 8 sets.
        for b in [0x48u64, 0x50, 0x58, 0x60, 0x68] {
            demand(&mut h, 0, b, false, &mut t);
        }
        if h.llc().probe(0x40) && !h.private_cache(0, 0).probe(0x40) {
            demand(&mut h, 0, 0x40, false, &mut t);
            assert!(t.hit_level.is_some());
            assert!(h.private_cache(0, 0).probe(0x40), "promoted to L1");
        }
        h.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_full_miss_fills_only_l1() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Exclusive));
        let mut t = Traversal::new();
        demand(&mut h, 0, 0x40, false, &mut t);
        assert!(h.private_cache(0, 0).probe(0x40));
        assert!(!h.private_cache(0, 1).probe(0x40));
        assert!(!h.private_cache(0, 2).probe(0x40));
        assert!(!h.llc().probe(0x40));
        h.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_victims_cascade_down() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Exclusive));
        let mut t = Traversal::new();
        // L1 = 2 ways/1 set. Three distinct blocks: third fill pushes the
        // first block into L2.
        demand(&mut h, 0, 1, false, &mut t);
        demand(&mut h, 0, 2, false, &mut t);
        demand(&mut h, 0, 3, false, &mut t);
        assert!(h.private_cache(0, 1).probe(1), "victim moved to L2");
        assert!(!h.private_cache(0, 0).probe(1));
        h.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_hit_moves_block_up_and_out_of_lower_level() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Exclusive));
        let mut t = Traversal::new();
        demand(&mut h, 0, 1, false, &mut t);
        demand(&mut h, 0, 2, false, &mut t);
        demand(&mut h, 0, 3, false, &mut t); // block 1 now in L2
        demand(&mut h, 0, 1, false, &mut t); // hit in L2 → move back to L1
        assert!(h.private_cache(0, 0).probe(1));
        assert!(
            !h.private_cache(0, 1).probe(1),
            "exclusive: removed from L2"
        );
        h.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_dirty_line_keeps_dirty_through_moves() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Exclusive));
        let mut t = Traversal::new();
        demand(&mut h, 0, 1, true, &mut t); // dirty in L1
                                            // Push it all the way down: L1(2) → L2(4 lines) → L3(8) → LLC(32).
        for b in 2..20u64 {
            demand(&mut h, 0, b, false, &mut t);
        }
        // Wherever block 1 is now, re-accessing and then displacing it to
        // memory must produce a memory writeback eventually. Flush it out by
        // filling more conflicting lines.
        let before = h.stats().memory_writebacks;
        let _ = before;
        let mut wb_seen = false;
        for b in 20..200u64 {
            t.clear();
            demand(&mut h, 0, b, false, &mut t);
            if t.writebacks.contains(&MEMORY) {
                wb_seen = true;
            }
        }
        assert!(
            wb_seen,
            "dirty data must reach memory when displaced off-chip"
        );
        h.check_invariants().unwrap();
    }

    #[test]
    fn hybrid_llc_covers_private_levels() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Hybrid));
        let mut t = Traversal::new();
        for b in 0..30u64 {
            demand(&mut h, 0, b, b % 4 == 0, &mut t);
            demand(&mut h, 1, b + 1000, false, &mut t);
        }
        h.check_invariants().unwrap();
    }

    #[test]
    fn hybrid_hit_in_llc_copies_rather_than_extracts() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Hybrid));
        let mut t = Traversal::new();
        demand(&mut h, 0, 1, false, &mut t);
        // Displace 1 from the private levels (exclusive chain has 2+4+8 = 14
        // lines; 20 extra blocks push it out into... dropped, still in LLC).
        for b in 2..30u64 {
            demand(&mut h, 0, b, false, &mut t);
        }
        if h.llc().probe(1) && !h.private_cache(0, 0).probe(1) {
            demand(&mut h, 0, 1, false, &mut t);
            assert_eq!(t.hit_level, Some(3));
            assert!(h.llc().probe(1), "LLC keeps its copy (inclusive)");
            assert!(h.private_cache(0, 0).probe(1), "copy promoted to L1");
        }
        h.check_invariants().unwrap();
    }

    #[test]
    fn hybrid_private_victim_dirty_merges_into_llc() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Hybrid));
        let mut t = Traversal::new();
        demand(&mut h, 0, 1, true, &mut t); // dirty
        let mut saw_llc_wb = false;
        for b in 2..40u64 {
            t.clear();
            demand(&mut h, 0, b, false, &mut t);
            if t.writebacks.contains(&3) {
                saw_llc_wb = true;
            }
        }
        assert!(saw_llc_wb, "dirty private victim must write back into LLC");
        h.check_invariants().unwrap();
    }

    #[test]
    fn cores_have_isolated_private_caches() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Inclusive));
        let mut t = Traversal::new();
        demand(&mut h, 0, 0x40, false, &mut t);
        assert!(h.private_cache(0, 0).probe(0x40));
        assert!(!h.private_cache(1, 0).probe(0x40));
        // Core 1 hits in the shared LLC though.
        demand(&mut h, 1, 0x40, false, &mut t);
        assert_eq!(t.hit_level, Some(3));
        h.check_invariants().unwrap();
    }

    #[test]
    fn prefetch_fill_installs_down_to_l2_not_l1() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Inclusive));
        let mut t = Traversal::new();
        h.prefetch_fill(0, 1, 0x80, &mut t);
        assert!(!h.private_cache(0, 0).probe(0x80));
        assert!(h.private_cache(0, 1).probe(0x80));
        assert!(h.private_cache(0, 2).probe(0x80));
        assert!(h.llc().probe(0x80));
        h.check_invariants().unwrap();
    }

    #[test]
    fn prefetch_fill_is_idempotent_for_resident_blocks() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Inclusive));
        let mut t = Traversal::new();
        h.prefetch_fill(0, 1, 0x80, &mut t);
        let fills_before = h.stats().levels[1].fills;
        let _ = fills_before;
        t.clear();
        h.prefetch_fill(0, 1, 0x80, &mut t);
        assert!(t.fills.is_empty(), "no refill of resident block");
    }

    #[test]
    #[should_panic]
    fn prefetch_fill_rejected_outside_inclusive() {
        let mut h = DeepHierarchy::new(&tiny_config(InclusionPolicy::Exclusive));
        let mut t = Traversal::new();
        h.prefetch_fill(0, 1, 0x80, &mut t);
    }

    #[test]
    fn random_workload_preserves_invariants_all_policies() {
        for policy in [
            InclusionPolicy::Inclusive,
            InclusionPolicy::Exclusive,
            InclusionPolicy::Hybrid,
        ] {
            let mut cfg = tiny_config(policy);
            cfg.private_levels[0].policy = ReplacementPolicy::TreePlru;
            let mut h = DeepHierarchy::new(&cfg);
            let mut t = Traversal::new();
            let mut x = 0x1234_5678u64;
            for i in 0..3000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let core = (x % 2) as usize;
                // Per-core disjoint block ranges, as the simulator runs
                // multi-programmed workloads (exclusive hierarchies have no
                // chip-wide single-copy guarantee under sharing without a
                // coherence protocol, which the paper does not model).
                let block = (x % 97) | ((core as u64) << 20);
                demand(&mut h, core, block, i % 5 == 0, &mut t);
            }
            h.check_invariants()
                .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        }
    }
}
