//! Address geometry: splitting a byte address into block offset, set index,
//! and tag — the format of the paper's Figure 3.

/// Geometry of one cache array. All simulator-internal addressing works on
/// *block addresses* (`byte_addr >> block_bits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGeometry {
    /// log2 of the block size in bytes (6 → 64-byte blocks, as in the paper).
    pub block_bits: u32,
    /// log2 of the number of sets ("k" in the paper's Figure 3).
    pub set_bits: u32,
}

impl BlockGeometry {
    /// Builds a geometry from a total capacity, associativity and block size.
    ///
    /// # Panics
    /// Panics unless `capacity / (assoc × block)` is a power of two ≥ 1.
    pub fn from_capacity(capacity_bytes: u64, assoc: usize, block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be 2^n");
        assert!(assoc >= 1, "associativity must be ≥ 1");
        let lines = capacity_bytes / block_bytes;
        assert!(
            lines.is_multiple_of(assoc as u64),
            "capacity {capacity_bytes} not divisible into {assoc}-way sets of {block_bytes}B blocks"
        );
        let sets = lines / assoc as u64;
        assert!(
            sets.is_power_of_two() && sets >= 1,
            "set count {sets} must be a power of two"
        );
        Self {
            block_bits: block_bytes.trailing_zeros(),
            set_bits: sets.trailing_zeros(),
        }
    }

    /// Number of sets (2^k).
    pub fn sets(&self) -> u64 {
        1 << self.set_bits
    }

    /// Converts a byte address to a block address.
    pub fn block_of_addr(&self, addr: u64) -> u64 {
        addr >> self.block_bits
    }

    /// Set index of a block address (low `set_bits` bits).
    pub fn set_of(&self, block: u64) -> u64 {
        block & (self.sets() - 1)
    }

    /// Tag of a block address (bits above the set index).
    pub fn tag_of(&self, block: u64) -> u64 {
        block >> self.set_bits
    }

    /// Reconstructs the block address from `(tag, set)` — the inverse of
    /// [`BlockGeometry::set_of`] / [`BlockGeometry::tag_of`].
    pub fn block_from_parts(&self, tag: u64, set: u64) -> u64 {
        (tag << self.set_bits) | set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l4_geometry() {
        // 64 MB, 16-way, 64 B blocks → 65536 sets → k = 16 (paper §III-B).
        let g = BlockGeometry::from_capacity(64 << 20, 16, 64);
        assert_eq!(g.block_bits, 6);
        assert_eq!(g.set_bits, 16);
        assert_eq!(g.sets(), 65536);
    }

    #[test]
    fn paper_l1_geometry() {
        // 32 KB, 4-way, 64 B blocks → 128 sets.
        let g = BlockGeometry::from_capacity(32 << 10, 4, 64);
        assert_eq!(g.sets(), 128);
    }

    #[test]
    fn split_and_reassemble() {
        let g = BlockGeometry::from_capacity(4 << 20, 16, 64);
        let addr = 0xdead_beef_1234u64;
        let block = g.block_of_addr(addr);
        assert_eq!(block, addr >> 6);
        let (tag, set) = (g.tag_of(block), g.set_of(block));
        assert_eq!(g.block_from_parts(tag, set), block);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two_sets() {
        let _ = BlockGeometry::from_capacity(96 << 10, 4, 64);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two_block() {
        let _ = BlockGeometry::from_capacity(32 << 10, 4, 48);
    }

    /// Tiny deterministic PRNG for the randomized tests below (this crate
    /// intentionally has no dependencies, not even on `mem-trace`).
    fn splitmix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn parts_roundtrip_randomized() {
        let mut st = 0x6E0u64;
        for case in 0..2048u32 {
            let set_bits = case % 20;
            let g = BlockGeometry {
                block_bits: 6,
                set_bits,
            };
            let block = splitmix(&mut st) >> 6; // keep tag within u64 after shift back
            assert_eq!(g.block_from_parts(g.tag_of(block), g.set_of(block)), block);
        }
    }

    #[test]
    fn same_set_blocks_share_low_bits_randomized() {
        let mut st = 0x6E1u64;
        let g = BlockGeometry {
            block_bits: 6,
            set_bits: 12,
        };
        for _ in 0..4096 {
            // Force set collisions often by masking to a small universe.
            let a = splitmix(&mut st) & 0x3_ffff;
            let b = splitmix(&mut st) & 0x3_ffff;
            if g.set_of(a) == g.set_of(b) {
                assert_eq!(a & 0xfff, b & 0xfff);
            }
        }
    }
}
