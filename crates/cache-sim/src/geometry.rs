//! Address geometry: splitting a byte address into block offset, set index,
//! and tag — the format of the paper's Figure 3.

use serde::{Deserialize, Serialize};

/// Geometry of one cache array. All simulator-internal addressing works on
/// *block addresses* (`byte_addr >> block_bits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockGeometry {
    /// log2 of the block size in bytes (6 → 64-byte blocks, as in the paper).
    pub block_bits: u32,
    /// log2 of the number of sets ("k" in the paper's Figure 3).
    pub set_bits: u32,
}

impl BlockGeometry {
    /// Builds a geometry from a total capacity, associativity and block size.
    ///
    /// # Panics
    /// Panics unless `capacity / (assoc × block)` is a power of two ≥ 1.
    pub fn from_capacity(capacity_bytes: u64, assoc: usize, block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be 2^n");
        assert!(assoc >= 1, "associativity must be ≥ 1");
        let lines = capacity_bytes / block_bytes;
        assert!(
            lines.is_multiple_of(assoc as u64),
            "capacity {capacity_bytes} not divisible into {assoc}-way sets of {block_bytes}B blocks"
        );
        let sets = lines / assoc as u64;
        assert!(
            sets.is_power_of_two() && sets >= 1,
            "set count {sets} must be a power of two"
        );
        Self {
            block_bits: block_bytes.trailing_zeros(),
            set_bits: sets.trailing_zeros(),
        }
    }

    /// Number of sets (2^k).
    pub fn sets(&self) -> u64 {
        1 << self.set_bits
    }

    /// Converts a byte address to a block address.
    pub fn block_of_addr(&self, addr: u64) -> u64 {
        addr >> self.block_bits
    }

    /// Set index of a block address (low `set_bits` bits).
    pub fn set_of(&self, block: u64) -> u64 {
        block & (self.sets() - 1)
    }

    /// Tag of a block address (bits above the set index).
    pub fn tag_of(&self, block: u64) -> u64 {
        block >> self.set_bits
    }

    /// Reconstructs the block address from `(tag, set)` — the inverse of
    /// [`BlockGeometry::set_of`] / [`BlockGeometry::tag_of`].
    pub fn block_from_parts(&self, tag: u64, set: u64) -> u64 {
        (tag << self.set_bits) | set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_l4_geometry() {
        // 64 MB, 16-way, 64 B blocks → 65536 sets → k = 16 (paper §III-B).
        let g = BlockGeometry::from_capacity(64 << 20, 16, 64);
        assert_eq!(g.block_bits, 6);
        assert_eq!(g.set_bits, 16);
        assert_eq!(g.sets(), 65536);
    }

    #[test]
    fn paper_l1_geometry() {
        // 32 KB, 4-way, 64 B blocks → 128 sets.
        let g = BlockGeometry::from_capacity(32 << 10, 4, 64);
        assert_eq!(g.sets(), 128);
    }

    #[test]
    fn split_and_reassemble() {
        let g = BlockGeometry::from_capacity(4 << 20, 16, 64);
        let addr = 0xdead_beef_1234u64;
        let block = g.block_of_addr(addr);
        assert_eq!(block, addr >> 6);
        let (tag, set) = (g.tag_of(block), g.set_of(block));
        assert_eq!(g.block_from_parts(tag, set), block);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two_sets() {
        let _ = BlockGeometry::from_capacity(96 << 10, 4, 64);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two_block() {
        let _ = BlockGeometry::from_capacity(32 << 10, 4, 48);
    }

    proptest! {
        #[test]
        fn prop_parts_roundtrip(block in any::<u64>(), set_bits in 0u32..20) {
            let g = BlockGeometry { block_bits: 6, set_bits };
            let block = block >> 6; // keep tag within u64 after shift back
            prop_assert_eq!(g.block_from_parts(g.tag_of(block), g.set_of(block)), block);
        }

        #[test]
        fn prop_same_set_blocks_share_low_bits(a in any::<u64>(), b in any::<u64>()) {
            let g = BlockGeometry { block_bits: 6, set_bits: 12 };
            if g.set_of(a) == g.set_of(b) {
                prop_assert_eq!(a & 0xfff, b & 0xfff);
            }
        }
    }
}
