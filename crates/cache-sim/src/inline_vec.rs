//! A tiny fixed-capacity inline vector.
//!
//! The per-access [`Traversal`](crate::traversal::Traversal) log runs on the
//! simulator's hottest path; a heap-allocating `Vec` per event list would
//! dominate runtime. Event counts per access are small and statically
//! bounded (≤ levels + cascade depth), so a stack array suffices. We
//! implement our own rather than pull in `arrayvec`/`smallvec` (not in the
//! approved offline dependency set).

/// Fixed-capacity, `Copy`-element inline vector.
#[derive(Debug, Clone, Copy)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    items: [T; N],
    len: u8,
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        assert!(N <= u8::MAX as usize);
        Self {
            items: [T::default(); N],
            len: 0,
        }
    }

    /// Appends an item.
    ///
    /// # Panics
    /// Panics when full — event lists are sized for the worst-case cascade,
    /// so overflow indicates a logic bug, not a data-dependent condition.
    #[inline]
    pub fn push(&mut self, item: T) {
        assert!(
            (self.len as usize) < N,
            "InlineVec overflow (capacity {N}): traversal produced more events than the hierarchy worst case"
        );
        self.items[self.len as usize] = item;
        self.len += 1;
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all items.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Slice view of the stored items.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }

    /// Iterates references to the stored items.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Appends every item of an iterator.
    ///
    /// # Panics
    /// Panics when the items do not fit (same contract as [`push`]).
    ///
    /// [`push`]: InlineVec::push
    #[inline]
    pub fn extend(&mut self, items: impl IntoIterator<Item = T>) {
        for item in items {
            self.push(item);
        }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        v.push(10);
        v.push(20);
        assert_eq!(v.len(), 2);
        assert_eq!(v.as_slice(), &[10, 20]);
        assert_eq!(v.iter().sum::<u32>(), 30);
        assert_eq!((&v).into_iter().count(), 2);
    }

    #[test]
    fn extend_appends_in_order() {
        let mut v: InlineVec<u8, 4> = InlineVec::new();
        v.push(1);
        v.extend([2, 3]);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn clear_resets_len() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(1);
        v.clear();
        assert!(v.is_empty());
        v.push(2);
        assert_eq!(v.as_slice(), &[2]);
    }

    #[test]
    fn deref_gives_slice_ops() {
        let mut v: InlineVec<u64, 8> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.first(), Some(&0));
        assert_eq!(v[4], 4);
        assert!(v.contains(&3));
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut v: InlineVec<u8, 1> = InlineVec::new();
        v.push(1);
        v.push(2);
    }
}
