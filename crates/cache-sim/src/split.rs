//! Splittable hierarchy state for two-phase parallel simulation.
//!
//! The deterministic bound–weave scheduler in the `sim` crate advances each
//! core's *private* levels independently on worker threads (the bound
//! phase) and commits shared-LLC state in sequential order afterwards (the
//! weave phase). [`DeepHierarchy`](crate::hierarchy::DeepHierarchy) owns
//! both halves in one structure, so this module factors the inclusive-fill
//! mechanics out as free functions over the two pieces a split simulation
//! actually holds:
//!
//! * a per-core *column* of private caches (`&mut [Cache]`, level 0 = L1),
//!   with [`fill_private_column`] / [`promote_column`] reproducing
//!   `fill_private_inclusive` / `promote` exactly — victim cascades, upper
//!   purges, and dirty folding included — except that a dirty victim of the
//!   *last* private level is returned to the caller instead of being marked
//!   in the shared LLC (the caller commits it in global order);
//! * the shared LLC bank, with [`fill_shared_commit`] performing the
//!   install + eviction half of `fill_llc_inclusive` and returning the
//!   victim so the caller can back-invalidate (or prove it need not).
//!
//! Statistics deltas accumulate into an ordinary [`HierarchyStats`]; the
//! counters are plain sums, so per-thread deltas merged with
//! [`HierarchyStats::merge`] reproduce the sequential totals exactly.

use crate::cache::{Cache, Evicted};
use crate::traversal::{HierarchyStats, LevelId};

/// Installs `block` into private level `lvl` of one core's column under the
/// inclusive policy, cascading exactly like
/// `DeepHierarchy::fill_private_inclusive`: the victim's upper copies are
/// purged and dirty data folds down one level. Every replacement victim is
/// appended to `victims` (a bound phase collects them so the weave phase
/// can prove a shared-LLC eviction touches no private copy). Returns the
/// victim block that must be marked dirty in the shared LLC when `lvl` is
/// the last private level and the victim (or a purged upper copy) was
/// dirty — the one private→shared effect a bound phase cannot apply
/// locally.
pub fn fill_private_column(
    column: &mut [Cache],
    lvl: LevelId,
    block: u64,
    dirty: bool,
    stats: &mut HierarchyStats,
    victims: &mut Vec<u64>,
) -> Option<u64> {
    let evicted = column[lvl as usize].fill(block, dirty);
    stats.levels[lvl as usize].fills += 1;
    let v = evicted?;
    victims.push(v.block);
    stats.count_eviction(lvl);
    let mut wb_dirty = v.dirty;
    for up in 0..lvl {
        if let Some(e) = column[up as usize].invalidate(v.block) {
            stats.count_invalidation(up);
            wb_dirty |= e.dirty;
        }
    }
    if !wb_dirty {
        return None;
    }
    let below = lvl as usize + 1;
    if below < column.len() {
        stats.levels[below].writebacks_in += 1;
        let ok = column[below].mark_dirty(v.block);
        debug_assert!(
            ok,
            "inclusion violated: victim {0:#x} absent below",
            v.block
        );
        None
    } else {
        // Last private level: the writeback lands in the shared LLC. The
        // caller logs it and commits (stats + `mark_dirty`) in order.
        Some(v.block)
    }
}

/// Promotes a private hit at `hit_level` up to L1, mirroring
/// `DeepHierarchy::promote` for the inclusive policy. Never produces a
/// shared-LLC writeback: promotion fills levels strictly above the hit,
/// so every victim folds into a private level at or above `hit_level`.
pub fn promote_column(
    column: &mut [Cache],
    hit_level: LevelId,
    block: u64,
    is_store: bool,
    stats: &mut HierarchyStats,
    victims: &mut Vec<u64>,
) {
    for lvl in (0..hit_level).rev() {
        let dirty = lvl == 0 && is_store;
        let wb = fill_private_column(column, lvl, block, dirty, stats, victims);
        debug_assert!(wb.is_none(), "promotion reached the shared level");
    }
}

/// Installs `block` into the shared inclusive LLC (the commit half of
/// `DeepHierarchy::fill_llc_inclusive`), counting the fill and any
/// eviction against `llc_level`. The victim — whose private copies the
/// caller must purge, or prove absent — is returned untouched.
pub fn fill_shared_commit(
    shared: &mut Cache,
    llc_level: LevelId,
    block: u64,
    stats: &mut HierarchyStats,
) -> Option<Evicted> {
    let evicted = shared.fill(block, false);
    stats.levels[llc_level as usize].fills += 1;
    if evicted.is_some() {
        stats.count_eviction(llc_level);
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::hierarchy::{DeepHierarchy, HierarchyConfig, InclusionPolicy};
    use crate::traversal::Traversal;

    fn tiny() -> HierarchyConfig {
        HierarchyConfig {
            cores: 1,
            private_levels: vec![
                CacheConfig::lru(128, 2, 64),
                CacheConfig::lru(256, 2, 64),
                CacheConfig::lru(512, 2, 64),
            ],
            shared_llc: CacheConfig::lru(2048, 4, 64),
            policy: InclusionPolicy::Inclusive,
        }
    }

    fn column_from(cfg: &HierarchyConfig) -> Vec<Cache> {
        cfg.private_levels.iter().map(|c| Cache::new(*c)).collect()
    }

    /// The split fill path must evolve cache contents and statistics
    /// identically to `DeepHierarchy` driven the way the simulator drives
    /// it (LLC first, then the private column top-down).
    #[test]
    fn split_fill_matches_hierarchy_fill_from_memory() {
        let cfg = tiny();
        let mut h = DeepHierarchy::new(&cfg);
        let mut t = Traversal::new();
        let mut column = column_from(&cfg);
        let mut shared = Cache::new(cfg.shared_llc);
        let mut stats = HierarchyStats::new(cfg.levels());
        let mut victims = Vec::new();
        let llc = (cfg.levels() - 1) as LevelId;

        let mut x = 0x9e37_79b9u64;
        for i in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let block = x % 300;
            let store = i % 4 == 0;

            // Reference hierarchy.
            t.clear();
            if !h.access_first(0, block, store, &mut t) {
                let mut hit = false;
                for lvl in 1..h.levels() {
                    if h.lookup(0, lvl, block, &mut t) {
                        h.promote(0, lvl, block, store, &mut t);
                        hit = true;
                        break;
                    }
                }
                if !hit {
                    h.fill_from_memory(0, block, store, &mut t);
                }
            }
            h.absorb_stats(&t);

            // Split replica.
            let l1_hit = column[0].access(block, store);
            stats.levels[0].lookups += 1;
            if l1_hit {
                stats.levels[0].hits += 1;
            } else {
                let mut hit_at = None;
                for lvl in 1..llc {
                    let hit = column[lvl as usize].access(block, false);
                    stats.levels[lvl as usize].lookups += 1;
                    if hit {
                        stats.levels[lvl as usize].hits += 1;
                        hit_at = Some(lvl);
                        break;
                    }
                }
                match hit_at {
                    Some(lvl) => {
                        promote_column(&mut column, lvl, block, store, &mut stats, &mut victims)
                    }
                    None => {
                        let llc_hit = shared.access(block, false);
                        stats.levels[llc as usize].lookups += 1;
                        if llc_hit {
                            stats.levels[llc as usize].hits += 1;
                        } else {
                            let ev = fill_shared_commit(&mut shared, llc, block, &mut stats);
                            if let Some(v) = ev {
                                let mut dirty = v.dirty;
                                for lvl in 0..llc {
                                    if let Some(up) = column[lvl as usize].invalidate(v.block) {
                                        stats.count_invalidation(lvl);
                                        dirty |= up.dirty;
                                    }
                                }
                                if dirty {
                                    stats.memory_writebacks += 1;
                                }
                            }
                            stats.memory_fetches += 1;
                        }
                        for lvl in (0..llc).rev() {
                            let dirty = lvl == 0 && store;
                            if let Some(wb) = fill_private_column(
                                &mut column,
                                lvl,
                                block,
                                dirty,
                                &mut stats,
                                &mut victims,
                            ) {
                                stats.levels[llc as usize].writebacks_in += 1;
                                let ok = shared.mark_dirty(wb);
                                assert!(ok, "LLC lost a covered victim");
                            }
                        }
                    }
                }
            }
        }

        let href = h.stats();
        for lvl in 0..cfg.levels() {
            assert_eq!(href.levels[lvl], stats.levels[lvl], "level {lvl}");
        }
        assert_eq!(href.memory_writebacks, stats.memory_writebacks);
        assert_eq!(href.memory_fetches, stats.memory_fetches);
        for lvl in 0..3u8 {
            let mut a: Vec<u64> = h.private_cache(0, lvl).resident_blocks().collect();
            let mut b: Vec<u64> = column[lvl as usize].resident_blocks().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "private level {lvl} contents diverged");
        }
        let mut a: Vec<u64> = h.llc().resident_blocks().collect();
        let mut b: Vec<u64> = shared.resident_blocks().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "LLC contents diverged");
    }

    #[test]
    fn last_level_dirty_victim_is_returned_not_applied() {
        let cfg = tiny();
        let mut column = column_from(&cfg);
        let mut stats = HierarchyStats::new(cfg.levels());
        let mut victims = Vec::new();
        // L3 (level 2) has 4 sets x 2 ways; blocks 0 and 8 share set 0 with
        // block 16. Make block 0 dirty in L1 so its L3 eviction folds dirty.
        for b in [0u64, 8, 16] {
            for lvl in (0..3u8).rev() {
                let dirty = lvl == 0 && b == 0;
                let wb = fill_private_column(&mut column, lvl, b, dirty, &mut stats, &mut victims);
                if b == 16 && lvl == 2 {
                    assert_eq!(wb, Some(0), "dirty L3 victim must surface");
                } else {
                    assert_eq!(wb, None);
                }
            }
        }
        // The one replacement victim was reported: L3 evicted block 0 to
        // admit block 16 (the upper purges remove it before L2/L1 fill, so
        // no further replacement happens).
        assert_eq!(victims, vec![0]);
    }
}
