//! Static configuration of one cache array.

use crate::geometry::BlockGeometry;
use crate::replacement::ReplacementPolicy;

/// Configuration of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Ways per set.
    pub assoc: usize,
    /// Block size in bytes (64 in the paper).
    pub block_bytes: u64,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Convenience constructor with LRU replacement.
    pub fn lru(capacity_bytes: u64, assoc: usize, block_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            assoc,
            block_bytes,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Derived geometry. Panics on invalid size combinations (see
    /// [`BlockGeometry::from_capacity`]).
    pub fn geometry(&self) -> BlockGeometry {
        BlockGeometry::from_capacity(self.capacity_bytes, self.assoc, self.block_bytes)
    }

    /// Total number of cache lines.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_constructor_and_lines() {
        let c = CacheConfig::lru(256 << 10, 8, 64);
        assert_eq!(c.policy, ReplacementPolicy::Lru);
        assert_eq!(c.lines(), 4096);
        assert_eq!(c.geometry().sets(), 512);
    }

    #[test]
    fn table_i_line_counts() {
        assert_eq!(CacheConfig::lru(32 << 10, 4, 64).lines(), 512); // L1
        assert_eq!(CacheConfig::lru(256 << 10, 8, 64).lines(), 4096); // L2
        assert_eq!(CacheConfig::lru(4 << 20, 16, 64).lines(), 65536); // L3
        assert_eq!(CacheConfig::lru(64 << 20, 16, 64).lines(), 1 << 20); // L4: "1 million tags"
    }
}
