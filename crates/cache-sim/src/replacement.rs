//! Replacement policies.
//!
//! The paper's hierarchy uses LRU throughout; the other policies exist for
//! ablations (and because lower-level caches in practice often run PLRU or
//! RRIP). Each policy keeps its own per-set state and exposes three hooks:
//! `on_hit`, `on_fill`, and `victim`.

/// Which replacement policy a cache runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Exact least-recently-used (per-way timestamps).
    Lru,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
    /// First-in first-out.
    Fifo,
    /// Uniform random (xorshift64*, deterministic per cache).
    Random,
    /// Static re-reference interval prediction, 2-bit RRPV (Jaleel et al.).
    Srrip,
}

impl minijson::ToJson for ReplacementPolicy {
    fn to_json(&self) -> minijson::Json {
        minijson::Json::Str(
            match self {
                ReplacementPolicy::Lru => "Lru",
                ReplacementPolicy::TreePlru => "TreePlru",
                ReplacementPolicy::Fifo => "Fifo",
                ReplacementPolicy::Random => "Random",
                ReplacementPolicy::Srrip => "Srrip",
            }
            .to_string(),
        )
    }
}

impl minijson::FromJson for ReplacementPolicy {
    fn from_json(v: &minijson::Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Lru") => Ok(ReplacementPolicy::Lru),
            Some("TreePlru") => Ok(ReplacementPolicy::TreePlru),
            Some("Fifo") => Ok(ReplacementPolicy::Fifo),
            Some("Random") => Ok(ReplacementPolicy::Random),
            Some("Srrip") => Ok(ReplacementPolicy::Srrip),
            _ => Err(format!("not a ReplacementPolicy: {v:?}")),
        }
    }
}

/// Runtime replacement state for a whole cache.
#[derive(Debug, Clone)]
pub(crate) enum ReplacerState {
    Lru { stamp: Vec<u64>, clock: u64 },
    TreePlru { bits: Vec<u16> },
    Fifo { next: Vec<u8> },
    Random { state: u64 },
    Srrip { rrpv: Vec<u8> },
}

const SRRIP_MAX: u8 = 3; // 2-bit RRPV
const SRRIP_INSERT: u8 = 2; // "long re-reference" insertion

impl ReplacerState {
    pub(crate) fn new(policy: ReplacementPolicy, sets: usize, assoc: usize) -> Self {
        match policy {
            ReplacementPolicy::Lru => ReplacerState::Lru {
                stamp: vec![0; sets * assoc],
                clock: 0,
            },
            ReplacementPolicy::TreePlru => {
                assert!(
                    assoc.is_power_of_two(),
                    "tree-PLRU requires power-of-two associativity, got {assoc}"
                );
                assert!(assoc <= 16, "tree-PLRU state packed in u16 (assoc ≤ 16)");
                ReplacerState::TreePlru {
                    bits: vec![0; sets],
                }
            }
            ReplacementPolicy::Fifo => ReplacerState::Fifo {
                next: vec![0; sets],
            },
            ReplacementPolicy::Random => ReplacerState::Random {
                state: 0x9e37_79b9_7f4a_7c15,
            },
            ReplacementPolicy::Srrip => ReplacerState::Srrip {
                rrpv: vec![SRRIP_MAX; sets * assoc],
            },
        }
    }

    /// Records a hit on `way` of `set`.
    #[inline]
    pub(crate) fn on_hit(&mut self, set: usize, way: usize, assoc: usize) {
        match self {
            ReplacerState::Lru { stamp, clock } => {
                *clock += 1;
                stamp[set * assoc + way] = *clock;
            }
            ReplacerState::TreePlru { bits } => {
                bits[set] = plru_touch(bits[set], assoc, way);
            }
            ReplacerState::Fifo { .. } => {}
            ReplacerState::Random { .. } => {}
            ReplacerState::Srrip { rrpv } => {
                rrpv[set * assoc + way] = 0;
            }
        }
    }

    /// Records a fill into `way` of `set`.
    #[inline]
    pub(crate) fn on_fill(&mut self, set: usize, way: usize, assoc: usize) {
        match self {
            ReplacerState::Lru { stamp, clock } => {
                *clock += 1;
                stamp[set * assoc + way] = *clock;
            }
            ReplacerState::TreePlru { bits } => {
                bits[set] = plru_touch(bits[set], assoc, way);
            }
            ReplacerState::Fifo { next } => {
                // Advance the queue pointer past the way we just filled.
                next[set] = ((way + 1) % assoc) as u8;
            }
            ReplacerState::Random { .. } => {}
            ReplacerState::Srrip { rrpv } => {
                rrpv[set * assoc + way] = SRRIP_INSERT;
            }
        }
    }

    /// Chooses a victim way within a fully-valid `set`.
    #[inline]
    pub(crate) fn victim(&mut self, set: usize, assoc: usize) -> usize {
        match self {
            ReplacerState::Lru { stamp, .. } => {
                let base = set * assoc;
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                for w in 0..assoc {
                    let s = stamp[base + w];
                    if s < best_stamp {
                        best_stamp = s;
                        best = w;
                    }
                }
                best
            }
            ReplacerState::TreePlru { bits } => plru_victim(bits[set], assoc),
            ReplacerState::Fifo { next } => next[set] as usize,
            ReplacerState::Random { state } => {
                // xorshift64*
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as usize % assoc
            }
            ReplacerState::Srrip { rrpv } => {
                let base = set * assoc;
                loop {
                    for w in 0..assoc {
                        if rrpv[base + w] >= SRRIP_MAX {
                            return w;
                        }
                    }
                    for w in 0..assoc {
                        rrpv[base + w] += 1;
                    }
                }
            }
        }
    }
}

/// Walks the PLRU tree toward `way`, flipping each node to point away from
/// the touched half. Bit convention: node bit 1 ⇒ the LRU side is the right
/// half. Nodes are indexed heap-style from 1; bit of node `i` is `1 << (i-1)`.
#[inline]
fn plru_touch(mut bits: u16, assoc: usize, way: usize) -> u16 {
    let mut idx = 1usize;
    let (mut lo, mut hi) = (0usize, assoc);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let bit = 1u16 << (idx - 1);
        if way < mid {
            bits |= bit; // touched left → LRU on the right
            idx *= 2;
            hi = mid;
        } else {
            bits &= !bit; // touched right → LRU on the left
            idx = idx * 2 + 1;
            lo = mid;
        }
    }
    bits
}

/// Follows the PLRU tree toward the LRU leaf.
#[inline]
fn plru_victim(bits: u16, assoc: usize) -> usize {
    let mut idx = 1usize;
    let (mut lo, mut hi) = (0usize, assoc);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let bit = 1u16 << (idx - 1);
        if bits & bit != 0 {
            idx = idx * 2 + 1; // LRU on the right
            lo = mid;
        } else {
            idx *= 2; // LRU on the left
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = ReplacerState::new(ReplacementPolicy::Lru, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w, 4);
        }
        r.on_hit(0, 0, 4); // way 0 becomes MRU; way 1 is now LRU
        assert_eq!(r.victim(0, 4), 1);
        r.on_hit(0, 1, 4);
        r.on_hit(0, 2, 4);
        assert_eq!(r.victim(0, 4), 3);
    }

    #[test]
    fn lru_stack_property() {
        // Accessing ways in order leaves the first-accessed as victim.
        let mut r = ReplacerState::new(ReplacementPolicy::Lru, 2, 8);
        for w in 0..8 {
            r.on_fill(1, w, 8);
        }
        for w in [3usize, 5, 0, 7, 2, 6, 4] {
            r.on_hit(1, w, 8);
        }
        // way 1 never re-touched after fill → LRU
        assert_eq!(r.victim(1, 8), 1);
    }

    #[test]
    fn plru_never_victimizes_most_recent() {
        let mut r = ReplacerState::new(ReplacementPolicy::TreePlru, 1, 8);
        for w in 0..8 {
            r.on_fill(0, w, 8);
        }
        for w in 0..8 {
            r.on_hit(0, w, 8);
            assert_ne!(r.victim(0, 8), w, "PLRU must not pick the MRU way");
        }
    }

    #[test]
    fn plru_victim_then_touch_alternates_halves() {
        let mut r = ReplacerState::new(ReplacementPolicy::TreePlru, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w, 4);
        }
        let v1 = r.victim(0, 4);
        r.on_hit(0, v1, 4);
        let v2 = r.victim(0, 4);
        // After touching the previous victim the new victim is in the other half.
        assert_ne!(v1 / 2, v2 / 2);
    }

    #[test]
    #[should_panic]
    fn plru_rejects_non_power_of_two() {
        let _ = ReplacerState::new(ReplacementPolicy::TreePlru, 1, 6);
    }

    #[test]
    fn fifo_cycles_in_order() {
        let mut r = ReplacerState::new(ReplacementPolicy::Fifo, 1, 4);
        for w in 0..4 {
            assert_eq!(r.victim(0, 4), w % 4);
            r.on_fill(0, w, 4);
        }
        // Hits must not disturb FIFO order.
        r.on_hit(0, 3, 4);
        assert_eq!(r.victim(0, 4), 0);
    }

    #[test]
    fn random_victims_cover_all_ways() {
        let mut r = ReplacerState::new(ReplacementPolicy::Random, 1, 4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.victim(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "random should reach every way");
    }

    #[test]
    fn srrip_prefers_distant_rrpv() {
        let mut r = ReplacerState::new(ReplacementPolicy::Srrip, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w, 4);
        }
        r.on_hit(0, 2, 4); // rrpv[2] = 0
                           // All others sit at 2; aging promotes them to 3 before way 2.
        let v = r.victim(0, 4);
        assert_ne!(v, 2);
    }

    #[test]
    fn srrip_victim_terminates_and_ages() {
        let mut r = ReplacerState::new(ReplacementPolicy::Srrip, 1, 2);
        r.on_fill(0, 0, 2);
        r.on_fill(0, 1, 2);
        r.on_hit(0, 0, 2);
        r.on_hit(0, 1, 2);
        // Both at rrpv 0 → two aging rounds, then way 0 wins.
        assert_eq!(r.victim(0, 2), 0);
    }
}
