//! Replacement policies.
//!
//! The paper's hierarchy uses LRU throughout; the other policies exist for
//! ablations (and because lower-level caches in practice often run PLRU or
//! RRIP). Each policy keeps its own per-set state and exposes three hooks:
//! `on_hit`, `on_fill`, and `victim`.

/// Which replacement policy a cache runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Exact least-recently-used (per-way timestamps).
    Lru,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
    /// First-in first-out.
    Fifo,
    /// Uniform random (xorshift64*, deterministic per cache).
    Random,
    /// Static re-reference interval prediction, 2-bit RRPV (Jaleel et al.).
    Srrip,
}

impl minijson::ToJson for ReplacementPolicy {
    fn to_json(&self) -> minijson::Json {
        minijson::Json::Str(
            match self {
                ReplacementPolicy::Lru => "Lru",
                ReplacementPolicy::TreePlru => "TreePlru",
                ReplacementPolicy::Fifo => "Fifo",
                ReplacementPolicy::Random => "Random",
                ReplacementPolicy::Srrip => "Srrip",
            }
            .to_string(),
        )
    }
}

impl minijson::FromJson for ReplacementPolicy {
    fn from_json(v: &minijson::Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Lru") => Ok(ReplacementPolicy::Lru),
            Some("TreePlru") => Ok(ReplacementPolicy::TreePlru),
            Some("Fifo") => Ok(ReplacementPolicy::Fifo),
            Some("Random") => Ok(ReplacementPolicy::Random),
            Some("Srrip") => Ok(ReplacementPolicy::Srrip),
            _ => Err(format!("not a ReplacementPolicy: {v:?}")),
        }
    }
}

/// Runtime replacement state for a whole cache.
#[derive(Debug, Clone)]
pub(crate) enum ReplacerState {
    /// Exact LRU, one recency *rank* byte per way packed into a `u128` per
    /// set (assoc ≤ [`PACKED_LRU_MAX_ASSOC`]). Rank 0 = MRU, rank
    /// `assoc-1` = LRU; a touch runs branch-free SWAR over the whole set.
    PackedLru {
        ranks: Vec<u128>,
    },
    /// Exact LRU via per-way timestamps (fallback for wide sets).
    Lru {
        stamp: Vec<u64>,
        clock: u64,
    },
    TreePlru {
        bits: Vec<u16>,
    },
    Fifo {
        next: Vec<u8>,
    },
    Random {
        state: u64,
    },
    Srrip {
        rrpv: Vec<u8>,
    },
}

impl ReplacerState {
    /// Hints the host CPU to pull `set`'s replacement metadata into cache
    /// (see `Cache::prefetch_set`). No-op for stateless policies.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    pub(crate) fn prefetch_set(&self, set: usize, assoc: usize) {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        unsafe {
            match self {
                ReplacerState::PackedLru { ranks } => {
                    _mm_prefetch(ranks.as_ptr().add(set).cast::<i8>(), _MM_HINT_T0);
                }
                ReplacerState::Lru { stamp, .. } => {
                    _mm_prefetch(stamp.as_ptr().add(set * assoc).cast::<i8>(), _MM_HINT_T0);
                }
                ReplacerState::TreePlru { bits } => {
                    _mm_prefetch(bits.as_ptr().add(set).cast::<i8>(), _MM_HINT_T0);
                }
                ReplacerState::Fifo { next } => {
                    _mm_prefetch(next.as_ptr().add(set).cast::<i8>(), _MM_HINT_T0);
                }
                ReplacerState::Random { .. } => {}
                ReplacerState::Srrip { rrpv } => {
                    _mm_prefetch(rrpv.as_ptr().add(set * assoc).cast::<i8>(), _MM_HINT_T0);
                }
            }
        }
    }
}

const SRRIP_MAX: u8 = 3; // 2-bit RRPV
const SRRIP_INSERT: u8 = 2; // "long re-reference" insertion

/// Widest associativity the packed rank representation covers (one byte
/// lane per way in a `u128`).
pub(crate) const PACKED_LRU_MAX_ASSOC: usize = 16;

/// 0x01 repeated in every byte lane.
const LANE_LSB: u128 = 0x0101_0101_0101_0101_0101_0101_0101_0101;
/// 0x80 repeated in every byte lane.
const LANE_MSB: u128 = LANE_LSB << 7;

/// Per-lane unsigned `lane < n` for byte lanes holding values ≤ 127:
/// returns `0x80` in every lane where the comparison holds. `x | MSB`
/// keeps every lane ≥ 128 ≥ n, so the subtraction never borrows across
/// lanes and each lane's top bit is exact.
#[inline]
fn lanes_lt(x: u128, n: u128) -> u128 {
    !((x | LANE_MSB) - n * LANE_LSB) & LANE_MSB
}

/// Initial rank word for one set: lane `w` holds rank `w` for real ways,
/// `0xFF` (inert: never "less than" any rank, never equal to a victim
/// rank) for lanes beyond the associativity.
fn packed_lru_init(assoc: usize) -> u128 {
    let mut word = 0u128;
    for lane in 0..PACKED_LRU_MAX_ASSOC {
        let v = if lane < assoc { lane as u128 } else { 0xFF };
        word |= v << (8 * lane);
    }
    word
}

impl ReplacerState {
    pub(crate) fn new(policy: ReplacementPolicy, sets: usize, assoc: usize) -> Self {
        match policy {
            ReplacementPolicy::Lru if assoc <= PACKED_LRU_MAX_ASSOC => ReplacerState::PackedLru {
                ranks: vec![packed_lru_init(assoc); sets],
            },
            ReplacementPolicy::Lru => ReplacerState::Lru {
                stamp: vec![0; sets * assoc],
                clock: 0,
            },
            ReplacementPolicy::TreePlru => {
                assert!(
                    assoc.is_power_of_two(),
                    "tree-PLRU requires power-of-two associativity, got {assoc}"
                );
                assert!(assoc <= 16, "tree-PLRU state packed in u16 (assoc ≤ 16)");
                ReplacerState::TreePlru {
                    bits: vec![0; sets],
                }
            }
            ReplacementPolicy::Fifo => ReplacerState::Fifo {
                next: vec![0; sets],
            },
            ReplacementPolicy::Random => ReplacerState::Random {
                state: 0x9e37_79b9_7f4a_7c15,
            },
            ReplacementPolicy::Srrip => ReplacerState::Srrip {
                rrpv: vec![SRRIP_MAX; sets * assoc],
            },
        }
    }

    /// Moves `way` to rank 0, aging every way that was more recent.
    #[inline]
    fn packed_touch(ranks: &mut [u128], set: usize, way: usize) {
        let x = ranks[set];
        let r = (x >> (8 * way)) & 0xFF;
        // Lanes more recent than the touched way (rank < r) age by one;
        // ranks stay ≤ 15 so the add never carries between lanes.
        let aged = x + (lanes_lt(x, r) >> 7);
        ranks[set] = aged & !(0xFFu128 << (8 * way));
    }

    /// Records a hit on `way` of `set`.
    #[inline]
    pub(crate) fn on_hit(&mut self, set: usize, way: usize, assoc: usize) {
        match self {
            ReplacerState::PackedLru { ranks } => Self::packed_touch(ranks, set, way),
            ReplacerState::Lru { stamp, clock } => {
                *clock += 1;
                stamp[set * assoc + way] = *clock;
            }
            ReplacerState::TreePlru { bits } => {
                bits[set] = plru_touch(bits[set], assoc, way);
            }
            ReplacerState::Fifo { .. } => {}
            ReplacerState::Random { .. } => {}
            ReplacerState::Srrip { rrpv } => {
                rrpv[set * assoc + way] = 0;
            }
        }
    }

    /// Records a fill into `way` of `set`.
    #[inline]
    pub(crate) fn on_fill(&mut self, set: usize, way: usize, assoc: usize) {
        match self {
            ReplacerState::PackedLru { ranks } => Self::packed_touch(ranks, set, way),
            ReplacerState::Lru { stamp, clock } => {
                *clock += 1;
                stamp[set * assoc + way] = *clock;
            }
            ReplacerState::TreePlru { bits } => {
                bits[set] = plru_touch(bits[set], assoc, way);
            }
            ReplacerState::Fifo { next } => {
                // Advance the queue pointer past the way we just filled.
                next[set] = ((way + 1) % assoc) as u8;
            }
            ReplacerState::Random { .. } => {}
            ReplacerState::Srrip { rrpv } => {
                rrpv[set * assoc + way] = SRRIP_INSERT;
            }
        }
    }

    /// Chooses a victim way within a fully-valid `set`.
    #[inline]
    pub(crate) fn victim(&mut self, set: usize, assoc: usize) -> usize {
        match self {
            ReplacerState::PackedLru { ranks } => {
                // The LRU way holds rank assoc-1. Victims are only chosen
                // in fully-valid sets, where every way has been filled at
                // least once and the ranks form a permutation, so exactly
                // one lane matches (inert lanes sit at 0xFF).
                let diff = ranks[set] ^ ((assoc as u128 - 1) * LANE_LSB);
                let zero = !((diff | LANE_MSB) - LANE_LSB) & LANE_MSB;
                debug_assert_eq!(zero.count_ones(), 1, "ranks must be a permutation");
                (zero.trailing_zeros() / 8) as usize
            }
            ReplacerState::Lru { stamp, .. } => {
                let base = set * assoc;
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                for w in 0..assoc {
                    let s = stamp[base + w];
                    if s < best_stamp {
                        best_stamp = s;
                        best = w;
                    }
                }
                best
            }
            ReplacerState::TreePlru { bits } => plru_victim(bits[set], assoc),
            ReplacerState::Fifo { next } => next[set] as usize,
            ReplacerState::Random { state } => {
                // xorshift64*
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as usize % assoc
            }
            ReplacerState::Srrip { rrpv } => {
                let base = set * assoc;
                loop {
                    for w in 0..assoc {
                        if rrpv[base + w] >= SRRIP_MAX {
                            return w;
                        }
                    }
                    for w in 0..assoc {
                        rrpv[base + w] += 1;
                    }
                }
            }
        }
    }
}

/// Walks the PLRU tree toward `way`, flipping each node to point away from
/// the touched half. Bit convention: node bit 1 ⇒ the LRU side is the right
/// half. Nodes are indexed heap-style from 1; bit of node `i` is `1 << (i-1)`.
#[inline]
fn plru_touch(mut bits: u16, assoc: usize, way: usize) -> u16 {
    let mut idx = 1usize;
    let (mut lo, mut hi) = (0usize, assoc);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let bit = 1u16 << (idx - 1);
        if way < mid {
            bits |= bit; // touched left → LRU on the right
            idx *= 2;
            hi = mid;
        } else {
            bits &= !bit; // touched right → LRU on the left
            idx = idx * 2 + 1;
            lo = mid;
        }
    }
    bits
}

/// Follows the PLRU tree toward the LRU leaf.
#[inline]
fn plru_victim(bits: u16, assoc: usize) -> usize {
    let mut idx = 1usize;
    let (mut lo, mut hi) = (0usize, assoc);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let bit = 1u16 << (idx - 1);
        if bits & bit != 0 {
            idx = idx * 2 + 1; // LRU on the right
            lo = mid;
        } else {
            idx *= 2; // LRU on the left
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = ReplacerState::new(ReplacementPolicy::Lru, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w, 4);
        }
        r.on_hit(0, 0, 4); // way 0 becomes MRU; way 1 is now LRU
        assert_eq!(r.victim(0, 4), 1);
        r.on_hit(0, 1, 4);
        r.on_hit(0, 2, 4);
        assert_eq!(r.victim(0, 4), 3);
    }

    #[test]
    fn lru_stack_property() {
        // Accessing ways in order leaves the first-accessed as victim.
        let mut r = ReplacerState::new(ReplacementPolicy::Lru, 2, 8);
        for w in 0..8 {
            r.on_fill(1, w, 8);
        }
        for w in [3usize, 5, 0, 7, 2, 6, 4] {
            r.on_hit(1, w, 8);
        }
        // way 1 never re-touched after fill → LRU
        assert_eq!(r.victim(1, 8), 1);
    }

    #[test]
    fn plru_never_victimizes_most_recent() {
        let mut r = ReplacerState::new(ReplacementPolicy::TreePlru, 1, 8);
        for w in 0..8 {
            r.on_fill(0, w, 8);
        }
        for w in 0..8 {
            r.on_hit(0, w, 8);
            assert_ne!(r.victim(0, 8), w, "PLRU must not pick the MRU way");
        }
    }

    #[test]
    fn plru_victim_then_touch_alternates_halves() {
        let mut r = ReplacerState::new(ReplacementPolicy::TreePlru, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w, 4);
        }
        let v1 = r.victim(0, 4);
        r.on_hit(0, v1, 4);
        let v2 = r.victim(0, 4);
        // After touching the previous victim the new victim is in the other half.
        assert_ne!(v1 / 2, v2 / 2);
    }

    #[test]
    #[should_panic]
    fn plru_rejects_non_power_of_two() {
        let _ = ReplacerState::new(ReplacementPolicy::TreePlru, 1, 6);
    }

    #[test]
    fn fifo_cycles_in_order() {
        let mut r = ReplacerState::new(ReplacementPolicy::Fifo, 1, 4);
        for w in 0..4 {
            assert_eq!(r.victim(0, 4), w % 4);
            r.on_fill(0, w, 4);
        }
        // Hits must not disturb FIFO order.
        r.on_hit(0, 3, 4);
        assert_eq!(r.victim(0, 4), 0);
    }

    #[test]
    fn random_victims_cover_all_ways() {
        let mut r = ReplacerState::new(ReplacementPolicy::Random, 1, 4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.victim(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "random should reach every way");
    }

    #[test]
    fn srrip_prefers_distant_rrpv() {
        let mut r = ReplacerState::new(ReplacementPolicy::Srrip, 1, 4);
        for w in 0..4 {
            r.on_fill(0, w, 4);
        }
        r.on_hit(0, 2, 4); // rrpv[2] = 0
                           // All others sit at 2; aging promotes them to 3 before way 2.
        let v = r.victim(0, 4);
        assert_ne!(v, 2);
    }

    fn splitmix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Naive LRU reference: a recency queue per set, most-recent at the
    /// back. The victim is the front.
    struct VecDequeLru {
        queues: Vec<std::collections::VecDeque<usize>>,
    }

    impl VecDequeLru {
        fn new(sets: usize) -> Self {
            Self {
                queues: (0..sets)
                    .map(|_| std::collections::VecDeque::new())
                    .collect(),
            }
        }

        fn touch(&mut self, set: usize, way: usize) {
            let q = &mut self.queues[set];
            if let Some(pos) = q.iter().position(|&w| w == way) {
                q.remove(pos);
            }
            q.push_back(way);
        }

        fn victim(&self, set: usize) -> usize {
            *self.queues[set].front().expect("victim of an empty set")
        }
    }

    /// The packed SWAR LRU must agree with the naive `VecDeque` model on
    /// every victim choice under random access sequences, across the
    /// associativities the hierarchy actually uses.
    #[test]
    fn packed_lru_matches_vecdeque_reference_model() {
        let mut st = 0x9ACC_ED1Du64;
        for assoc in [2usize, 4, 8, 12, 16] {
            let sets = 4;
            let mut packed = ReplacerState::new(ReplacementPolicy::Lru, sets, assoc);
            assert!(
                matches!(packed, ReplacerState::PackedLru { .. }),
                "assoc {assoc} must select the packed representation"
            );
            let mut model = VecDequeLru::new(sets);
            // Fill every way first — victims are only consulted on full sets.
            for set in 0..sets {
                for way in 0..assoc {
                    packed.on_fill(set, way, assoc);
                    model.touch(set, way);
                }
            }
            for _ in 0..2_000 {
                let set = (splitmix(&mut st) as usize) % sets;
                let way = (splitmix(&mut st) as usize) % assoc;
                if splitmix(&mut st).is_multiple_of(3) {
                    packed.on_fill(set, way, assoc);
                } else {
                    packed.on_hit(set, way, assoc);
                }
                model.touch(set, way);
                assert_eq!(
                    packed.victim(set, assoc),
                    model.victim(set),
                    "assoc {assoc}: packed LRU diverged from the reference model"
                );
            }
        }
    }

    /// The packed and timestamp representations are the same policy: drive
    /// both with one random sequence and compare every victim.
    #[test]
    fn packed_lru_equals_stamp_lru() {
        let assoc = 16;
        let sets = 8;
        let mut packed = ReplacerState::new(ReplacementPolicy::Lru, sets, assoc);
        let mut stamps = ReplacerState::Lru {
            stamp: vec![0; sets * assoc],
            clock: 0,
        };
        let mut st = 0x57A_3B5u64;
        for set in 0..sets {
            for way in 0..assoc {
                packed.on_fill(set, way, assoc);
                stamps.on_fill(set, way, assoc);
            }
        }
        for _ in 0..5_000 {
            let set = (splitmix(&mut st) as usize) % sets;
            let way = (splitmix(&mut st) as usize) % assoc;
            packed.on_hit(set, way, assoc);
            stamps.on_hit(set, way, assoc);
            assert_eq!(packed.victim(set, assoc), stamps.victim(set, assoc));
        }
    }

    #[test]
    fn wide_lru_falls_back_to_stamps() {
        let r = ReplacerState::new(ReplacementPolicy::Lru, 2, 32);
        assert!(matches!(r, ReplacerState::Lru { .. }));
    }

    #[test]
    fn srrip_victim_terminates_and_ages() {
        let mut r = ReplacerState::new(ReplacementPolicy::Srrip, 1, 2);
        r.on_fill(0, 0, 2);
        r.on_fill(0, 1, 2);
        r.on_hit(0, 0, 2);
        r.on_hit(0, 1, 2);
        // Both at rrpv 0 → two aging rounds, then way 0 wins.
        assert_eq!(r.victim(0, 2), 0);
    }
}
