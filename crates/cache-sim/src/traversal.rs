//! Per-access event log and aggregate hierarchy statistics.
//!
//! Every demand access (and every prefetch probe) produces a [`Traversal`]:
//! the ordered list of array lookups, where the request was satisfied, and
//! every fill / writeback / removal that resulted. The `sim` crate prices
//! these events for latency and energy, and feeds insert/remove events to
//! the predictors (ReDHiP's table on LLC fills, CBF on fills *and*
//! evictions, the per-level tables of the exclusive configuration on every
//! level's events).
//!
//! `Traversal` is designed as a reusable scratch object: call
//! [`Traversal::clear`] and hand it back to the hierarchy. Its vectors
//! retain capacity, so steady-state simulation performs no allocation.

use crate::inline_vec::InlineVec;

/// Cache level index: 0 = L1, `levels-1` = LLC.
pub type LevelId = u8;

/// Pseudo-level denoting main memory in writeback targets.
pub const MEMORY: LevelId = u8::MAX;

/// Capacity of the per-level-bounded event lists: one entry per level of
/// the deepest supported hierarchy (`DeepHierarchy::new` asserts ≤ 8
/// levels). Lists that can grow with the core count (`removed`, `probes`)
/// stay heap-backed.
pub const MAX_LEVELS: usize = 8;

/// Event log of a single hierarchy operation.
///
/// The per-level event lists are fixed-capacity inline arrays: every
/// demand access writes and reads them, and keeping them off the heap
/// keeps the whole log in two cache lines of scratch.
#[derive(Debug, Clone, Default)]
pub struct Traversal {
    /// Array lookups in issue order: `(level, hit)`.
    pub lookups: InlineVec<(LevelId, bool), MAX_LEVELS>,
    /// Fill (line install) events per level, in order.
    pub fills: InlineVec<LevelId, MAX_LEVELS>,
    /// Writeback data arriving at a level (`MEMORY` = off-chip), at most
    /// one per filled level.
    pub writebacks: InlineVec<LevelId, MAX_LEVELS>,
    /// Level that supplied the data; `None` when served from memory.
    pub hit_level: Option<LevelId>,
    /// Blocks installed into a level.
    pub inserted: InlineVec<(LevelId, u64), MAX_LEVELS>,
    /// Blocks displaced from a level (replacement victim, back-invalidation,
    /// or exclusive move-up extraction). Back-invalidation sweeps every
    /// core, so this is unbounded by the level count.
    pub removed: Vec<(LevelId, u64)>,
    /// Tag-array probes performed for back-invalidation (inclusive
    /// victims), one entry per probed level — every core, so heap-backed.
    pub probes: Vec<LevelId>,
}

impl Traversal {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the log, retaining allocation capacity.
    pub fn clear(&mut self) {
        self.lookups.clear();
        self.fills.clear();
        self.writebacks.clear();
        self.hit_level = None;
        self.inserted.clear();
        self.removed.clear();
        self.probes.clear();
    }

    /// Blocks inserted into `level` during this operation.
    pub fn inserted_at(&self, level: LevelId) -> impl Iterator<Item = u64> + '_ {
        self.inserted
            .iter()
            .filter(move |&&(l, _)| l == level)
            .map(|&(_, b)| b)
    }

    /// Blocks removed from `level` during this operation.
    pub fn removed_at(&self, level: LevelId) -> impl Iterator<Item = u64> + '_ {
        self.removed
            .iter()
            .filter(move |&&(l, _)| l == level)
            .map(|&(_, b)| b)
    }

    /// Whether the demand data was found on chip.
    pub fn on_chip_hit(&self) -> bool {
        self.hit_level.is_some()
    }
}

/// Counters for one cache level, aggregated across cores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Demand lookups performed against this level's arrays.
    pub lookups: u64,
    /// Demand lookups that hit.
    pub hits: u64,
    /// Lines installed.
    pub fills: u64,
    /// Lines displaced by replacement.
    pub evictions: u64,
    /// Writeback data received from an upper level.
    pub writebacks_in: u64,
    /// Lines removed by back-invalidation (inclusion enforcement).
    pub invalidations: u64,
}

impl LevelStats {
    /// Hit rate over performed lookups (0 when never looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

impl minijson::ToJson for LevelStats {
    fn to_json(&self) -> minijson::Json {
        minijson::json!({
            "lookups": self.lookups,
            "hits": self.hits,
            "fills": self.fills,
            "evictions": self.evictions,
            "writebacks_in": self.writebacks_in,
            "invalidations": self.invalidations,
        })
    }
}

/// Aggregate statistics for a whole hierarchy.
#[derive(Debug, Clone, Default)]
pub struct HierarchyStats {
    /// Per-level counters, index 0 = L1.
    pub levels: Vec<LevelStats>,
    /// Writebacks that left the LLC for memory.
    pub memory_writebacks: u64,
    /// Demand requests served by memory.
    pub memory_fetches: u64,
}

impl HierarchyStats {
    /// Creates zeroed stats for `levels` cache levels.
    pub fn new(levels: usize) -> Self {
        Self {
            levels: vec![LevelStats::default(); levels],
            memory_writebacks: 0,
            memory_fetches: 0,
        }
    }

    /// Folds one traversal into the aggregate.
    pub fn absorb(&mut self, t: &Traversal) {
        for &(lvl, hit) in &t.lookups {
            let s = &mut self.levels[lvl as usize];
            s.lookups += 1;
            if hit {
                s.hits += 1;
            }
        }
        for &lvl in &t.fills {
            self.levels[lvl as usize].fills += 1;
        }
        for &lvl in &t.writebacks {
            if lvl == MEMORY {
                self.memory_writebacks += 1;
            } else {
                self.levels[lvl as usize].writebacks_in += 1;
            }
        }
        if t.hit_level.is_none() && !t.fills.is_empty() {
            self.memory_fetches += 1;
        }
    }

    /// Records a replacement eviction at `level` (called by the hierarchy).
    pub fn count_eviction(&mut self, level: LevelId) {
        self.levels[level as usize].evictions += 1;
    }

    /// Records a back-invalidation at `level`.
    pub fn count_invalidation(&mut self, level: LevelId) {
        self.levels[level as usize].invalidations += 1;
    }

    /// Adds every counter of `other` into `self`. The counters are plain
    /// sums over events, so per-thread deltas merged in any order
    /// reproduce the totals a single sequential accumulator would hold.
    pub fn merge(&mut self, other: &HierarchyStats) {
        debug_assert_eq!(self.levels.len(), other.levels.len());
        for (s, o) in self.levels.iter_mut().zip(&other.levels) {
            s.lookups += o.lookups;
            s.hits += o.hits;
            s.fills += o.fills;
            s.evictions += o.evictions;
            s.writebacks_in += o.writebacks_in;
            s.invalidations += o.invalidations;
        }
        self.memory_writebacks += other.memory_writebacks;
        self.memory_fetches += other.memory_fetches;
    }
}

impl minijson::ToJson for HierarchyStats {
    fn to_json(&self) -> minijson::Json {
        minijson::json!({
            "levels": minijson::Json::Arr(self.levels.iter().map(|l| l.to_json()).collect()),
            "memory_writebacks": self.memory_writebacks,
            "memory_fetches": self.memory_fetches,
        })
    }
}

impl minijson::FromJson for LevelStats {
    fn from_json(v: &minijson::Json) -> Result<Self, String> {
        Ok(Self {
            lookups: v.u64_of("lookups")?,
            hits: v.u64_of("hits")?,
            fills: v.u64_of("fills")?,
            evictions: v.u64_of("evictions")?,
            writebacks_in: v.u64_of("writebacks_in")?,
            invalidations: v.u64_of("invalidations")?,
        })
    }
}

impl minijson::FromJson for HierarchyStats {
    fn from_json(v: &minijson::Json) -> Result<Self, String> {
        Ok(Self {
            levels: v
                .arr_of("levels")?
                .iter()
                .map(minijson::FromJson::from_json)
                .collect::<Result<_, _>>()?,
            memory_writebacks: v.u64_of("memory_writebacks")?,
            memory_fetches: v.u64_of("memory_fetches")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_resets_every_list() {
        let mut t = Traversal::new();
        t.lookups.push((0, true));
        t.inserted.push((1, 42));
        t.probes.push(2);
        t.hit_level = Some(0);
        t.clear();
        assert!(t.lookups.is_empty());
        assert!(t.inserted.is_empty());
        assert!(t.probes.is_empty());
        assert_eq!(t.hit_level, None);
    }

    #[test]
    fn inserted_and_removed_filters_by_level() {
        let mut t = Traversal::new();
        t.inserted.push((0, 1));
        t.inserted.push((3, 2));
        t.removed.push((3, 9));
        assert_eq!(t.inserted_at(3).collect::<Vec<_>>(), vec![2]);
        assert_eq!(t.removed_at(3).collect::<Vec<_>>(), vec![9]);
        assert_eq!(t.inserted_at(2).count(), 0);
    }

    #[test]
    fn stats_absorb_counts_lookups_and_memory() {
        let mut s = HierarchyStats::new(4);
        let mut t = Traversal::new();
        t.lookups
            .extend([(0, false), (1, false), (2, false), (3, false)]);
        t.fills.extend([3, 2, 1, 0]);
        t.writebacks.push(MEMORY);
        t.hit_level = None;
        s.absorb(&t);
        assert_eq!(s.levels[0].lookups, 1);
        assert_eq!(s.levels[3].fills, 1);
        assert_eq!(s.memory_writebacks, 1);
        assert_eq!(s.memory_fetches, 1);
    }

    #[test]
    fn hit_rate_computation() {
        let mut s = LevelStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.lookups = 10;
        s.hits = 9;
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn on_chip_hit_reflects_hit_level() {
        let mut t = Traversal::new();
        assert!(!t.on_chip_hit());
        t.hit_level = Some(2);
        assert!(t.on_chip_hit());
    }
}
