//! Set-associative cache and deep-hierarchy simulation substrate.
//!
//! The ReDHiP paper evaluates on a 4-level hierarchy (private L1–L3, shared
//! L4) simulated trace-by-trace. This crate provides that substrate from
//! scratch:
//!
//! * [`geometry::BlockGeometry`] — address ↔ (tag, set, offset) math.
//! * [`replacement`] — LRU, tree-PLRU, FIFO, random, and SRRIP policies.
//! * [`cache::Cache`] — one set-associative writeback cache with probe /
//!   access / fill / invalidate / extract primitives and tag-array iteration
//!   (the recalibration engine reads LLC tags through this).
//! * [`traversal::Traversal`] — a reusable per-access event log: which
//!   arrays were looked up, where the access hit, every fill, writeback and
//!   invalidation, and every block inserted into or removed from each level
//!   (consumed by the predictors and the energy model).
//! * [`hierarchy::DeepHierarchy`] — a multi-core hierarchy implementing the
//!   paper's three inclusion policies (fully inclusive, fully exclusive, and
//!   the hybrid of §III-C) with correct back-invalidation and victim
//!   cascading.
//!
//! The crate is deliberately free of timing and energy knowledge: it reports
//! *what happened* per access and the `sim` crate prices it.

pub mod cache;
pub mod config;
pub mod geometry;
pub mod hierarchy;
pub mod inline_vec;
pub mod replacement;
pub mod split;
pub mod traversal;

pub use cache::{Cache, Evicted};
pub use config::CacheConfig;
pub use geometry::BlockGeometry;
pub use hierarchy::{DeepHierarchy, HierarchyConfig, InclusionPolicy};
pub use replacement::ReplacementPolicy;
pub use traversal::{HierarchyStats, LevelId, LevelStats, Traversal};
