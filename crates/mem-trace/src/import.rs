//! Importer for Valgrind/lackey-style text traces.
//!
//! `valgrind --tool=lackey --trace-mem=yes` (and several Pin tools that
//! mimic it) emit one event per line:
//!
//! ```text
//! I  0400d7d4,8      instruction fetch at pc
//!  L 0421c7f0,4      data load
//!  S 0421c7f0,4      data store
//!  M 0421c7f0,4      modify (load + store)
//! ```
//!
//! [`LackeyParser`] folds that into [`TraceRecord`]s: each data line
//! becomes one record (an `M` becomes a load followed by a store at the
//! same address), `pc` is the most recent instruction fetch address, and
//! `gap` is the number of instruction lines since the previous record not
//! counting the one carrying the reference — exactly the "non-memory
//! instructions between references" the simulator charges at the
//! workload's CPI. Blank lines, `#` comments, and `==…` Valgrind banners
//! are skipped. The parser reuses one line buffer, so importing is
//! allocation-free per record; [`import_lackey`] streams the result
//! straight into a v2 file through a [`codec::ChunkWriter`].

use crate::codec::{self, WriteSummary};
use crate::record::{MemOp, TraceRecord};
use std::fs::File;
use std::io::{self, BufRead, BufWriter};
use std::path::Path;

/// Why an import failed.
#[derive(Debug)]
pub enum ImportError {
    /// Reading the text or writing the output failed.
    Io(io::Error),
    /// A line did not parse; `line` is 1-based.
    Parse {
        /// 1-based line number of the offending line.
        line: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "trace import I/O failed: {e}"),
            ImportError::Parse { line, reason } => {
                write!(f, "trace import failed at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Io(e) => Some(e),
            ImportError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ImportError {
    fn from(e: io::Error) -> Self {
        ImportError::Io(e)
    }
}

/// Streaming parser: an iterator of `Result<TraceRecord, ImportError>`
/// over lackey-style text. See the module docs for the line grammar.
#[derive(Debug)]
pub struct LackeyParser<R: BufRead> {
    reader: R,
    line: String,
    lineno: u64,
    last_pc: u64,
    /// Instruction lines seen since the last emitted record.
    pending_gap: u64,
    /// Second half of an `M` line, emitted on the next pull.
    queued: Option<TraceRecord>,
    failed: bool,
}

impl<R: BufRead> LackeyParser<R> {
    /// Wraps a line-oriented reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            line: String::new(),
            lineno: 0,
            last_pc: 0,
            pending_gap: 0,
            queued: None,
            failed: false,
        }
    }

    /// Lines consumed so far (for progress reporting).
    pub fn lines_read(&self) -> u64 {
        self.lineno
    }

    fn parse_err(&mut self, reason: &'static str) -> ImportError {
        self.failed = true;
        ImportError::Parse {
            line: self.lineno,
            reason,
        }
    }
}

/// Parses the `addr[,size]` operand of an event line (hex, with or
/// without a `0x` prefix; anything after `,` or whitespace is ignored).
fn parse_addr(operand: &str) -> Option<u64> {
    let addr = operand
        .split([',', ' ', '\t'])
        .next()
        .filter(|s| !s.is_empty())?;
    let addr = addr.strip_prefix("0x").unwrap_or(addr);
    u64::from_str_radix(addr, 16).ok()
}

impl<R: BufRead> Iterator for LackeyParser<R> {
    type Item = Result<TraceRecord, ImportError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if let Some(r) = self.queued.take() {
            return Some(Ok(r));
        }
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e.into()));
                }
            }
            self.lineno += 1;
            let t = self.line.trim();
            if t.is_empty() || t.starts_with('#') || t.starts_with("==") {
                continue;
            }
            let (tag, rest) = t.split_at(1);
            let rest = rest.trim_start();
            let op = match tag {
                "I" => {
                    match parse_addr(rest) {
                        Some(pc) => {
                            self.last_pc = pc;
                            self.pending_gap += 1;
                        }
                        None => return Some(Err(self.parse_err("bad instruction address"))),
                    }
                    continue;
                }
                "L" => MemOp::Load,
                "S" => MemOp::Store,
                "M" => MemOp::Load, // store half queued below
                _ => return Some(Err(self.parse_err("unrecognized event tag"))),
            };
            let Some(addr) = parse_addr(rest) else {
                return Some(Err(self.parse_err("bad data address")));
            };
            // The instruction carrying this reference is not a "gap"
            // (non-memory) instruction; everything before it is.
            let gap = self.pending_gap.saturating_sub(1).min(u64::from(u32::MAX)) as u32;
            self.pending_gap = 0;
            let record = TraceRecord::new(self.last_pc, addr, op, gap);
            if tag == "M" {
                self.queued = Some(TraceRecord::new(self.last_pc, addr, MemOp::Store, 0));
            }
            return Some(Ok(record));
        }
    }
}

/// Streams lackey-style text from `input` into a v2 trace file at
/// `output`. Memory use is one chunk plus one line, independent of trace
/// length.
pub fn import_lackey(
    input: impl BufRead,
    output: impl AsRef<Path>,
    chunk_target: u32,
) -> Result<WriteSummary, ImportError> {
    let sink = BufWriter::new(File::create(output.as_ref())?);
    let mut writer = codec::ChunkWriter::with_chunk_target(sink, chunk_target)?;
    for record in LackeyParser::new(input) {
        writer.push(record?)?;
    }
    let (sink, summary) = writer.finish()?;
    sink.into_inner().map_err(io::IntoInnerError::into_error)?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
==1234== Lackey, an example tool
# synthetic sample
I  0400d7d4,8
I  0400d7d8,4
 L 0421c7f0,4
I  0400d7dc,4
 S 0421c7f4,8
I  0400d7e0,4
I  0400d7e4,4
I  0400d7e8,4
 M 0421c7f8,4

I  0400d7ec,4
";

    fn parse_all(text: &str) -> Vec<TraceRecord> {
        LackeyParser::new(text.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
    }

    #[test]
    fn parses_loads_stores_and_modifies() {
        let records = parse_all(SAMPLE);
        assert_eq!(records.len(), 4); // L, S, M -> load + store
        assert_eq!(
            records[0],
            TraceRecord::new(0x0400d7d8, 0x0421c7f0, MemOp::Load, 1)
        );
        assert_eq!(
            records[1],
            TraceRecord::new(0x0400d7dc, 0x0421c7f4, MemOp::Store, 0)
        );
        assert_eq!(
            records[2],
            TraceRecord::new(0x0400d7e8, 0x0421c7f8, MemOp::Load, 2)
        );
        assert_eq!(
            records[3],
            TraceRecord::new(0x0400d7e8, 0x0421c7f8, MemOp::Store, 0)
        );
    }

    #[test]
    fn accepts_0x_prefixes_and_sizeless_operands() {
        let records = parse_all("I 0x400,4\n L 0xff00\n");
        assert_eq!(
            records,
            vec![TraceRecord::new(0x400, 0xff00, MemOp::Load, 0)]
        );
    }

    #[test]
    fn reports_line_numbers_on_bad_input() {
        let mut p = LackeyParser::new("I 400,4\n L zzz,4\n".as_bytes());
        let err = p.next().unwrap().unwrap_err();
        match err {
            ImportError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        // A failed parser stops rather than resyncing mid-garbage.
        assert!(p.next().is_none());
    }

    #[test]
    fn rejects_unknown_tags() {
        let err = LackeyParser::new("X 123,4\n".as_bytes())
            .next()
            .unwrap()
            .unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn imports_to_v2_file() {
        let dir = std::env::temp_dir().join(format!("redhip-import-{}.trace", std::process::id()));
        let summary = import_lackey(SAMPLE.as_bytes(), &dir, 2).unwrap();
        assert_eq!(summary.records, 4);
        assert_eq!(summary.chunks, 2);
        let back = crate::stream::read_any(&dir).unwrap();
        assert_eq!(back.records(), parse_all(SAMPLE));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn error_chain_preserves_io_cause() {
        use std::error::Error;
        let e = ImportError::from(io::Error::other("disk gone"));
        assert!(e.source().is_some());
        let p = ImportError::Parse {
            line: 7,
            reason: "x",
        };
        assert!(p.source().is_none());
    }
}
