//! The fundamental trace record type.

use minijson::{json, FromJson, Json, ToJson};

/// Kind of memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A data load (read).
    Load,
    /// A data store (write). Stores mark the cached block dirty, which later
    /// charges a writeback access at the next level on eviction.
    Store,
}

impl MemOp {
    /// True for [`MemOp::Store`].
    pub fn is_store(self) -> bool {
        matches!(self, MemOp::Store)
    }

    /// Compact one-byte encoding used by the binary codec.
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            MemOp::Load => 0,
            MemOp::Store => 1,
        }
    }

    /// Inverse of [`MemOp::to_byte`].
    pub(crate) fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(MemOp::Load),
            1 => Some(MemOp::Store),
            _ => None,
        }
    }
}

/// One memory reference as collected by the (simulated) instrumentation.
///
/// Mirrors what the paper's pintool records: the referencing instruction's
/// address (needed by the PC-indexed stride prefetcher), the data address,
/// whether it is a load or a store, and how many non-memory instructions
/// executed since the previous reference (`gap`). The simulator charges
/// `gap × avg_cpi` cycles of compute time between references, matching the
/// paper's average-CPI timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Address of the instruction performing the access.
    pub pc: u64,
    /// Virtual/physical data address accessed (byte-granular).
    pub addr: u64,
    /// Non-memory instructions executed since the previous record.
    pub gap: u32,
    /// Load or store.
    pub op: MemOp,
}

impl TraceRecord {
    /// Creates a record with an explicit gap.
    pub fn new(pc: u64, addr: u64, op: MemOp, gap: u32) -> Self {
        Self { pc, addr, gap, op }
    }

    /// Convenience: a load with zero compute gap.
    pub fn load(pc: u64, addr: u64) -> Self {
        Self::new(pc, addr, MemOp::Load, 0)
    }

    /// Convenience: a store with zero compute gap.
    pub fn store(pc: u64, addr: u64) -> Self {
        Self::new(pc, addr, MemOp::Store, 0)
    }

    /// Returns the record with its compute gap replaced.
    pub fn with_gap(mut self, gap: u32) -> Self {
        self.gap = gap;
        self
    }

    /// Returns the record with its data address shifted by `offset`
    /// (wrapping; used for per-core address-space separation).
    pub fn with_addr_offset(mut self, offset: u64) -> Self {
        self.addr = self.addr.wrapping_add(offset);
        self
    }

    /// The block (cache-line) address for a given block-offset width.
    /// `block_bits = 6` corresponds to the paper's 64-byte lines.
    pub fn block(&self, block_bits: u32) -> u64 {
        self.addr >> block_bits
    }
}

impl ToJson for MemOp {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                MemOp::Load => "Load",
                MemOp::Store => "Store",
            }
            .to_string(),
        )
    }
}

impl FromJson for MemOp {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Load") => Ok(MemOp::Load),
            Some("Store") => Ok(MemOp::Store),
            _ => Err(format!("not a MemOp: {v:?}")),
        }
    }
}

impl ToJson for TraceRecord {
    fn to_json(&self) -> Json {
        json!({
            "pc": self.pc,
            "addr": self.addr,
            "gap": self.gap,
            "op": self.op.to_json(),
        })
    }
}

impl FromJson for TraceRecord {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            pc: v.u64_of("pc")?,
            addr: v.u64_of("addr")?,
            gap: v.u64_of("gap")? as u32,
            op: MemOp::from_json(v.member("op")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_byte_roundtrip() {
        for op in [MemOp::Load, MemOp::Store] {
            assert_eq!(MemOp::from_byte(op.to_byte()), Some(op));
        }
        assert_eq!(MemOp::from_byte(7), None);
    }

    #[test]
    fn block_address_strips_offset_bits() {
        let r = TraceRecord::load(0, 0x12345);
        assert_eq!(r.block(6), 0x12345 >> 6);
        assert_eq!(r.block(0), 0x12345);
    }

    #[test]
    fn builders_set_fields() {
        let r = TraceRecord::store(0x400, 0x80).with_gap(9);
        assert_eq!(r.op, MemOp::Store);
        assert_eq!(r.gap, 9);
        assert!(r.op.is_store());
        let r2 = r.with_addr_offset(0x100);
        assert_eq!(r2.addr, 0x180);
    }

    #[test]
    fn addr_offset_wraps() {
        let r = TraceRecord::load(0, u64::MAX).with_addr_offset(1);
        assert_eq!(r.addr, 0);
    }

    #[test]
    fn json_roundtrip() {
        let r = TraceRecord::new(1, 2, MemOp::Store, 3);
        let s = r.to_json().dump();
        let back = TraceRecord::from_json(&minijson::parse(&s).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
