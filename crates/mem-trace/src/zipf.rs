//! Zipfian sampling used by irregular workload generators.
//!
//! Graph and sparse workloads (Graph500 BFS frontiers, PMF item popularity,
//! `mcf`'s arc accesses) exhibit heavily skewed reuse. This module provides
//! an O(1)-expected-time Zipf sampler based on rejection inversion
//! (Hörmann & Derflinger 1996, as popularized by Apache Commons RNG), which
//! samples `k ∈ [1, n]` with `P(k) ∝ 1/k^s` without precomputing tables.

use crate::rng::Rng64;

/// Rejection-inversion Zipf sampler over `1..=n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `s > 0` (`s == 1` is the
    /// classic harmonic case and is handled exactly).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf support must be non-empty");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let h_integral = |x: f64| h_integral(x, s);
        let h_integral_x1 = h_integral(1.5) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0, s), s);
        Self {
            n,
            exponent: s,
            h_integral_x1,
            h_integral_n,
            threshold,
        }
    }

    /// Draws one sample in `[1, n]`.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let s = self.exponent;
        loop {
            let u = self.h_integral_n + rng.gen_f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, s);
            let mut k = (x + 0.5) as i64;
            if k < 1 {
                k = 1;
            } else if k as u64 > self.n {
                k = self.n as i64;
            }
            let kf = k as f64;
            if kf - x <= self.threshold || u >= h_integral(kf + 0.5, s) - h(kf, s) {
                return k as u64;
            }
        }
    }

    /// Support size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

/// `H(x) = ∫₁ˣ t^(−s) dt`, with the `s = 1` logarithmic special case.
fn h_integral(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        x.ln()
    } else {
        (x.powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        y.exp()
    } else {
        let t = y * (1.0 - s) + 1.0;
        // Guard against slight negative under-/overshoot from rounding.
        t.max(f64::MIN_POSITIVE).powf(1.0 / (1.0 - s))
    }
}

/// The hat density `h(x) = x^(−s)`.
fn h(x: f64, s: f64) -> f64 {
    x.powf(-s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = Rng64::seed_from_u64(42);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(10_000, 1.1);
        let mut rng = Rng64::seed_from_u64(7);
        let mut head = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut rng) <= 100 {
                head += 1;
            }
        }
        // With s=1.1 over 10k items the top 1% of ranks carries >35% of mass.
        assert!(
            head as f64 / total as f64 > 0.35,
            "head mass too small: {head}/{total}"
        );
    }

    #[test]
    fn rank_one_frequency_matches_theory() {
        // For s=1, P(1) = 1/H_n. With n=100, H_100 ≈ 5.187 → P(1) ≈ 0.1928.
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng64::seed_from_u64(11);
        let total = 200_000;
        let ones = (0..total).filter(|_| z.sample(&mut rng) == 1).count();
        let p = ones as f64 / total as f64;
        assert!((p - 0.1928).abs() < 0.01, "P(1) = {p}, expected ≈ 0.1928");
    }

    #[test]
    fn exponent_one_is_supported() {
        let z = Zipf::new(64, 1.0);
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=64).contains(&k));
        }
    }

    #[test]
    fn singleton_support_always_returns_one() {
        let z = Zipf::new(1, 0.8);
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn accessors_report_parameters() {
        let z = Zipf::new(5, 1.25);
        assert_eq!(z.n(), 5);
        assert!((z.exponent() - 1.25).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn non_positive_exponent_panics() {
        let _ = Zipf::new(10, 0.0);
    }
}
