//! Deterministic trace sharding: one large trace driving many consumers.
//!
//! Two schemes, both pure functions of `(total_records, shards, index)`
//! so every cursor agrees on the partition without coordination:
//!
//! * **Interleave by index** — shard `k` of `n` takes global records
//!   `k, k+n, k+2n, …`. Re-merging the shards round-robin reproduces the
//!   original record order exactly, which is how one interleaved-recorded
//!   file drives `n` simulated cores with byte-identical results to the
//!   original per-core streams.
//! * **Split by range** — shard `k` of `n` takes the contiguous slice
//!   `[k·total/n, (k+1)·total/n)`. Each consumer seeks straight to its
//!   first chunk via the v2 index, so `n` parallel sweep cells touch
//!   disjoint file regions.
//!
//! [`crate::StreamTrace::shard`] applies a spec to an open trace; the
//! generic [`interleave`] adapter shards any in-memory [`TraceSource`].

use crate::record::TraceRecord;
use crate::TraceSource;

/// Which slice of a trace one consumer replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardSpec {
    /// The whole trace.
    All,
    /// Records whose global index ≡ `index` (mod `shards`).
    Interleave {
        /// Total number of shards.
        shards: u32,
        /// This shard's residue class, `< shards`.
        index: u32,
    },
    /// The `index`-th of `shards` equal contiguous record ranges.
    Range {
        /// Total number of shards.
        shards: u32,
        /// This shard's slot, `< shards`.
        index: u32,
    },
}

impl ShardSpec {
    /// The iteration window over global record indices:
    /// `(first, one-past-last, stride)`.
    ///
    /// # Panics
    /// Panics when `shards == 0` or `index >= shards`.
    pub fn window(self, total_records: u64) -> (u64, u64, u64) {
        match self {
            ShardSpec::All => (0, total_records, 1),
            ShardSpec::Interleave { shards, index } => {
                assert!(shards > 0 && index < shards, "bad interleave shard");
                (
                    u64::from(index).min(total_records),
                    total_records,
                    u64::from(shards),
                )
            }
            ShardSpec::Range { shards, index } => {
                assert!(shards > 0 && index < shards, "bad range shard");
                // u128 keeps total × index exact for paper-scale counts.
                let lo = (total_records as u128 * index as u128 / shards as u128) as u64;
                let hi = (total_records as u128 * (index + 1) as u128 / shards as u128) as u64;
                (lo, hi, 1)
            }
        }
    }

    /// Records this shard will emit.
    pub fn len(self, total_records: u64) -> u64 {
        let (lo, hi, stride) = self.window(total_records);
        if hi > lo {
            (hi - lo).div_ceil(stride)
        } else {
            0
        }
    }

    /// True when the shard selects nothing.
    pub fn is_empty(self, total_records: u64) -> bool {
        self.len(total_records) == 0
    }

    /// Stable tag for canonical keys and CLI display, e.g. `interleave2/8`.
    pub fn tag(self) -> String {
        match self {
            ShardSpec::All => "all".to_string(),
            ShardSpec::Interleave { shards, index } => format!("interleave{index}/{shards}"),
            ShardSpec::Range { shards, index } => format!("range{index}/{shards}"),
        }
    }
}

/// Interleave-shards any in-memory source: yields the records whose
/// index ≡ `index` (mod `shards`). Each shard must own (or clone) its
/// source; for on-disk traces prefer [`crate::StreamTrace::shard`], which
/// shares one mapping across all cursors.
pub fn interleave<S: TraceSource>(
    source: S,
    shards: u32,
    index: u32,
) -> impl Iterator<Item = TraceRecord> {
    assert!(shards > 0 && index < shards, "bad interleave shard");
    source
        .enumerate()
        .filter(move |(i, _)| (*i as u64) % u64::from(shards) == u64::from(index))
        .map(|(_, r)| r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_windows_partition_every_index() {
        for total in [0u64, 1, 7, 100] {
            for shards in [1u32, 2, 3, 8] {
                let mut seen = vec![false; total as usize];
                for index in 0..shards {
                    let (lo, hi, stride) = ShardSpec::Interleave { shards, index }.window(total);
                    let mut g = lo;
                    while g < hi {
                        assert!(!seen[g as usize]);
                        seen[g as usize] = true;
                        g += stride;
                    }
                }
                assert!(seen.iter().all(|&s| s), "total {total} shards {shards}");
            }
        }
    }

    #[test]
    fn range_windows_partition_contiguously() {
        for total in [0u64, 1, 7, 100, 101] {
            for shards in [1u32, 2, 3, 8] {
                let mut expect_lo = 0;
                let mut sum = 0;
                for index in 0..shards {
                    let (lo, hi, stride) = ShardSpec::Range { shards, index }.window(total);
                    assert_eq!(stride, 1);
                    assert_eq!(lo, expect_lo);
                    assert!(hi >= lo);
                    expect_lo = hi;
                    sum += hi - lo;
                }
                assert_eq!(expect_lo, total);
                assert_eq!(sum, total);
            }
        }
    }

    #[test]
    fn shard_len_matches_window() {
        assert_eq!(ShardSpec::All.len(10), 10);
        assert_eq!(
            ShardSpec::Interleave {
                shards: 3,
                index: 0
            }
            .len(10),
            4
        );
        assert_eq!(
            ShardSpec::Interleave {
                shards: 3,
                index: 2
            }
            .len(10),
            3
        );
        assert_eq!(
            ShardSpec::Range {
                shards: 3,
                index: 1
            }
            .len(10),
            3
        );
        assert!(ShardSpec::Interleave {
            shards: 4,
            index: 3
        }
        .is_empty(2));
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(ShardSpec::All.tag(), "all");
        assert_eq!(
            ShardSpec::Interleave {
                shards: 8,
                index: 2
            }
            .tag(),
            "interleave2/8"
        );
        assert_eq!(
            ShardSpec::Range {
                shards: 4,
                index: 0
            }
            .tag(),
            "range0/4"
        );
    }

    #[test]
    fn generic_interleave_matches_modulo_filter() {
        let records: Vec<TraceRecord> = (0..50u64)
            .map(|i| TraceRecord::load(0x400, i * 64))
            .collect();
        let mut merged: Vec<Vec<TraceRecord>> = Vec::new();
        for k in 0..4u32 {
            merged.push(interleave(records.iter().copied(), 4, k).collect());
        }
        // Round-robin re-merge reproduces the original exactly.
        let mut rebuilt = Vec::new();
        for i in 0..records.len() {
            rebuilt.push(merged[i % 4][i / 4]);
        }
        assert_eq!(rebuilt, records);
    }

    #[test]
    #[should_panic]
    fn out_of_range_shard_panics() {
        let _ = ShardSpec::Interleave {
            shards: 2,
            index: 2,
        }
        .window(10);
    }
}
