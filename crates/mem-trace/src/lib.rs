//! Memory-reference trace substrate for the ReDHiP reproduction.
//!
//! The paper drives its cache/energy simulator from Pin-collected traces of
//! memory references. This crate provides the equivalent substrate:
//!
//! * [`TraceRecord`] — one memory reference (program counter, data address,
//!   load/store, and the number of non-memory instructions since the previous
//!   reference, which the simulator charges at the workload's average CPI).
//! * [`TraceSource`] — a stream of records (any `Iterator<Item = TraceRecord>`),
//!   plus adapters such as `TraceSourceExt::offset_address_space` used
//!   to give each simulated core a private physical address range.
//! * [`synth`] — composable synthetic access-pattern building blocks
//!   (sequential, strided, random-in-region, pointer chase, Zipf) from which
//!   `workloads` assembles benchmark-like streams.
//! * [`codec`] — a compact binary on-disk format for recorded traces.
//! * [`stats`] — streaming trace characterization (footprint, stride
//!   predictability, operation mix, short-reuse proxy).
//! * [`reuse`] — exact LRU reuse-distance analysis (Fenwick-tree
//!   algorithm), the ground truth for locality validation.

pub mod codec;
pub mod ext;
pub mod record;
pub mod reuse;
pub mod rng;
pub mod stats;
pub mod synth;
pub mod zipf;

pub use ext::TraceSourceExt;
pub use record::{MemOp, TraceRecord};
pub use reuse::ReuseHistogram;
pub use rng::Rng64;
pub use stats::TraceStats;

/// A stream of memory-reference records.
///
/// Implemented for every `Iterator<Item = TraceRecord>`, so all standard
/// iterator adapters apply. The simulator pulls records lazily; generators in
/// the `workloads` crate typically run their kernel incrementally.
pub trait TraceSource: Iterator<Item = TraceRecord> {}

impl<T: Iterator<Item = TraceRecord>> TraceSource for T {}

/// An owned, in-memory trace. Useful for tests, for replaying a decoded trace
/// file, and for duplicating one trace across several cores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecTrace {
    records: Vec<TraceRecord>,
}

impl VecTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing record vector.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Self { records }
    }

    /// Collects (up to `limit`) records from any source.
    pub fn collect_from(source: impl TraceSource, limit: usize) -> Self {
        Self {
            records: source.take(limit).collect(),
        }
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Borrowed view of the records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates the records by value (cloning the backing storage lazily).
    pub fn iter(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.records.iter().copied()
    }

    /// Consumes the trace and returns an owning iterator.
    pub fn into_iter_records(self) -> std::vec::IntoIter<TraceRecord> {
        self.records.into_iter()
    }
}

impl IntoIterator for VecTrace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl FromIterator<TraceRecord> for VecTrace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Self {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64) -> TraceRecord {
        TraceRecord::load(0x400000, addr)
    }

    #[test]
    fn vec_trace_roundtrip() {
        let mut t = VecTrace::new();
        assert!(t.is_empty());
        t.push(rec(0x1000));
        t.push(rec(0x2000));
        assert_eq!(t.len(), 2);
        let collected: Vec<_> = t.clone().into_iter().collect();
        assert_eq!(collected, t.records());
    }

    #[test]
    fn collect_from_respects_limit() {
        let src = (0..100u64).map(|i| rec(i * 64));
        let t = VecTrace::collect_from(src, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.records()[9].addr, 9 * 64);
    }

    #[test]
    fn from_iterator_builds_trace() {
        let t: VecTrace = (0..4u64).map(rec).collect();
        assert_eq!(t.len(), 4);
    }
}
