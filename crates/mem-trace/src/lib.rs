//! Memory-reference trace substrate for the ReDHiP reproduction.
//!
//! The paper drives its cache/energy simulator from Pin-collected traces of
//! memory references. This crate provides the equivalent substrate:
//!
//! * [`TraceRecord`] — one memory reference (program counter, data address,
//!   load/store, and the number of non-memory instructions since the previous
//!   reference, which the simulator charges at the workload's average CPI).
//! * [`TraceSource`] — a stream of records (any `Iterator<Item = TraceRecord>`),
//!   plus adapters such as `TraceSourceExt::offset_address_space` used
//!   to give each simulated core a private physical address range.
//! * [`synth`] — composable synthetic access-pattern building blocks
//!   (sequential, strided, random-in-region, pointer chase, Zipf) from which
//!   `workloads` assembles benchmark-like streams.
//! * [`codec`] — the binary on-disk formats: monolithic fixed-width v1 and
//!   chunked, delta-compressed, seekable v2 ([`codec::ChunkWriter`]).
//! * [`stream`] — [`StreamTrace`]: replays a v2 file chunk-at-a-time from a
//!   memory mapping or positioned reads, with bounded resident memory and
//!   zero per-record allocation; [`shard`] splits one trace across cores.
//! * [`import`] — converts externally captured Valgrind/lackey-style text
//!   traces into the binary formats.
//! * [`stats`] — streaming trace characterization (footprint, stride
//!   predictability, operation mix, short-reuse proxy).
//! * [`reuse`] — exact LRU reuse-distance analysis (Fenwick-tree
//!   algorithm), the ground truth for locality validation.

pub mod chunk;
pub mod codec;
pub mod ext;
pub mod import;
pub mod record;
pub mod reuse;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod stream;
pub mod synth;
pub mod varint;
pub mod zipf;

pub use codec::TraceIoError;
pub use ext::TraceSourceExt;
pub use record::{MemOp, TraceRecord};
pub use reuse::ReuseHistogram;
pub use rng::Rng64;
pub use shard::ShardSpec;
pub use stats::TraceStats;
pub use stream::StreamTrace;

/// A stream of memory-reference records.
///
/// Implemented for every `Iterator<Item = TraceRecord>`, so all standard
/// iterator adapters apply. The simulator pulls records lazily; generators in
/// the `workloads` crate typically run their kernel incrementally.
pub trait TraceSource: Iterator<Item = TraceRecord> {}

impl<T: Iterator<Item = TraceRecord>> TraceSource for T {}

/// Bulk record delivery: the refill side of the simulator's chunked
/// pull-ahead buffer.
///
/// `Iterator` hands over one record per (usually virtual) call;
/// `TraceFeed` appends up to `max` records per call, which lets block
/// producers — above all [`StreamTrace`], whose records already sit
/// decoded in a scratch buffer — service a refill with one bounds check
/// and a `memcpy` instead of `max` dynamic dispatches. Any iterator
/// becomes a feed via [`IterFeed`].
pub trait TraceFeed {
    /// Appends up to `max` records to `out`, returning how many were
    /// appended. Fewer than `max` (including 0) means the stream ended.
    fn refill(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize;
}

impl<T: TraceFeed + ?Sized> TraceFeed for Box<T> {
    #[inline]
    fn refill(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        (**self).refill(out, max)
    }
}

/// Adapts any [`TraceSource`] iterator into a [`TraceFeed`] by pulling
/// records one at a time — the compatibility path for the synthetic
/// generators.
#[derive(Debug, Clone)]
pub struct IterFeed<I>(pub I);

impl<I: Iterator<Item = TraceRecord>> IterFeed<I> {
    /// Wraps `source`.
    pub fn new(source: I) -> Self {
        Self(source)
    }
}

impl<I: Iterator<Item = TraceRecord>> TraceFeed for IterFeed<I> {
    #[inline]
    fn refill(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        let before = out.len();
        out.extend(self.0.by_ref().take(max));
        out.len() - before
    }
}

/// An owned, in-memory trace. Useful for tests, for replaying a decoded trace
/// file, and for duplicating one trace across several cores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecTrace {
    records: Vec<TraceRecord>,
}

impl VecTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing record vector.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Self { records }
    }

    /// Collects (up to `limit`) records from any source.
    pub fn collect_from(source: impl TraceSource, limit: usize) -> Self {
        // Most callers pass a bounded limit over an endless generator,
        // whose size hint is (0, None) — collect() would then grow the
        // vector through every doubling. Pre-reserve from the best
        // available hint instead: the source's upper bound when it has
        // one, else the limit itself (capped so an "everything" limit
        // over an unknown-length source cannot demand an absurd upfront
        // allocation).
        let (lo, hi) = source.size_hint();
        let cap = hi.unwrap_or(usize::MAX).min(limit).min((1 << 24).max(lo));
        let mut records = Vec::with_capacity(cap);
        records.extend(source.take(limit));
        Self { records }
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Borrowed view of the records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates the records by value (cloning the backing storage lazily).
    pub fn iter(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.records.iter().copied()
    }

    /// Consumes the trace and returns an owning iterator.
    pub fn into_iter_records(self) -> std::vec::IntoIter<TraceRecord> {
        self.records.into_iter()
    }
}

impl IntoIterator for VecTrace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl FromIterator<TraceRecord> for VecTrace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Self {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64) -> TraceRecord {
        TraceRecord::load(0x400000, addr)
    }

    #[test]
    fn vec_trace_roundtrip() {
        let mut t = VecTrace::new();
        assert!(t.is_empty());
        t.push(rec(0x1000));
        t.push(rec(0x2000));
        assert_eq!(t.len(), 2);
        let collected: Vec<_> = t.clone().into_iter().collect();
        assert_eq!(collected, t.records());
    }

    #[test]
    fn collect_from_respects_limit() {
        let src = (0..100u64).map(|i| rec(i * 64));
        let t = VecTrace::collect_from(src, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.records()[9].addr, 9 * 64);
    }

    #[test]
    fn from_iterator_builds_trace() {
        let t: VecTrace = (0..4u64).map(rec).collect();
        assert_eq!(t.len(), 4);
    }
}
