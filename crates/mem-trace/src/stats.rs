//! Trace characterization.
//!
//! Used by tests and by `workloads` to validate that a synthetic generator
//! has the memory behaviour it claims (footprint bigger than the LLC,
//! stride-predictability, store fraction, skew). Not on the simulator's hot
//! path.

use crate::record::TraceRecord;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Aggregate statistics over a stream of records.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Total records observed.
    pub records: u64,
    /// Store records observed.
    pub stores: u64,
    /// Distinct 64-byte blocks touched.
    pub footprint_blocks: u64,
    /// Sum of compute gaps (non-memory instructions).
    pub total_gap: u64,
    /// Fraction of references whose address equals the previous reference
    /// from the same PC plus a repeated constant stride (two occurrences in a
    /// row) — a proxy for stride-prefetchability.
    pub stride_predictable: u64,
    /// Fraction of references to a block touched within the last
    /// `REUSE_WINDOW` distinct blocks — a proxy for short-range temporal
    /// locality (and so for L1/L2 hit rate).
    pub short_reuse: u64,
    /// Distinct PCs observed.
    pub distinct_pcs: u64,
}

/// Window (in distinct blocks) used for the short-reuse proxy. 512 blocks =
/// 32 KB, i.e. the paper's L1 size.
pub const REUSE_WINDOW: usize = 512;

const BLOCK_BITS: u32 = 6;

/// Streaming collector for [`TraceStats`].
#[derive(Debug)]
pub struct StatsCollector {
    records: u64,
    stores: u64,
    total_gap: u64,
    blocks: HashMap<u64, ()>,
    pcs: HashMap<u64, PcState>,
    stride_predictable: u64,
    short_reuse: u64,
    // Ring buffer of recently-touched distinct blocks plus membership map
    // storing each block's slot for O(1) update.
    window_ring: Vec<u64>,
    window_pos: usize,
    window_members: HashMap<u64, usize>,
}

#[derive(Debug, Clone, Copy)]
struct PcState {
    last_addr: u64,
    last_stride: i64,
    seen: u32,
}

impl Default for StatsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self {
            records: 0,
            stores: 0,
            total_gap: 0,
            blocks: HashMap::new(),
            pcs: HashMap::new(),
            stride_predictable: 0,
            short_reuse: 0,
            window_ring: vec![u64::MAX; REUSE_WINDOW],
            window_pos: 0,
            window_members: HashMap::new(),
        }
    }

    /// Feeds one record.
    pub fn observe(&mut self, r: &TraceRecord) {
        self.records += 1;
        if r.op.is_store() {
            self.stores += 1;
        }
        self.total_gap += u64::from(r.gap);
        let block = r.block(BLOCK_BITS);
        self.blocks.insert(block, ());

        // Stride predictability per PC.
        match self.pcs.entry(r.pc) {
            Entry::Occupied(mut e) => {
                let st = e.get_mut();
                let stride = r.addr.wrapping_sub(st.last_addr) as i64;
                if st.seen >= 2 && stride == st.last_stride {
                    self.stride_predictable += 1;
                }
                st.last_stride = stride;
                st.last_addr = r.addr;
                st.seen = st.seen.saturating_add(1);
            }
            Entry::Vacant(e) => {
                e.insert(PcState {
                    last_addr: r.addr,
                    last_stride: 0,
                    seen: 1,
                });
            }
        }

        // Short-range reuse window (FIFO over the last REUSE_WINDOW distinct
        // blocks; a hit counts as reuse and does not reorder the window).
        if self.window_members.contains_key(&block) {
            self.short_reuse += 1;
        } else {
            let evict = self.window_ring[self.window_pos];
            if evict != u64::MAX {
                self.window_members.remove(&evict);
            }
            self.window_ring[self.window_pos] = block;
            self.window_members.insert(block, self.window_pos);
            self.window_pos = (self.window_pos + 1) % REUSE_WINDOW;
        }
    }

    /// Finishes collection.
    pub fn finish(self) -> TraceStats {
        TraceStats {
            records: self.records,
            stores: self.stores,
            footprint_blocks: self.blocks.len() as u64,
            total_gap: self.total_gap,
            stride_predictable: self.stride_predictable,
            short_reuse: self.short_reuse,
            distinct_pcs: self.pcs.len() as u64,
        }
    }
}

impl TraceStats {
    /// Computes stats over an entire source (consumes up to `limit` records).
    pub fn measure(source: impl Iterator<Item = TraceRecord>, limit: usize) -> Self {
        let mut c = StatsCollector::new();
        for r in source.take(limit) {
            c.observe(&r);
        }
        c.finish()
    }

    /// Footprint in bytes (64-byte blocks).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_blocks << BLOCK_BITS
    }

    /// Store fraction in `[0, 1]`.
    pub fn store_fraction(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.stores as f64 / self.records as f64
        }
    }

    /// Fraction of references that repeated their PC's previous stride.
    pub fn stride_predictability(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.stride_predictable as f64 / self.records as f64
        }
    }

    /// Fraction of references hitting the short-reuse window.
    pub fn short_reuse_fraction(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.short_reuse as f64 / self.records as f64
        }
    }

    /// Mean compute gap between successive references.
    pub fn mean_gap(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.total_gap as f64 / self.records as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{PointerChase, Region, SequentialStream};

    #[test]
    fn sequential_stream_is_stride_predictable() {
        let s = SequentialStream::new(Region::new(0, 1 << 24), 64, 0x400, 0, 2);
        let stats = TraceStats::measure(s, 10_000);
        assert_eq!(stats.records, 10_000);
        assert!(stats.stride_predictability() > 0.99);
        assert!((stats.mean_gap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pointer_chase_is_not_stride_predictable() {
        let g = PointerChase::new(0, 1 << 14, 64, 1, 0x400, 0);
        let stats = TraceStats::measure(g, 10_000);
        assert!(
            stats.stride_predictability() < 0.05,
            "chase predictability {}",
            stats.stride_predictability()
        );
    }

    #[test]
    fn footprint_counts_distinct_blocks() {
        let s = SequentialStream::new(Region::new(0, 128 * 64), 64, 0, 0, 0);
        let stats = TraceStats::measure(s, 1000);
        assert_eq!(stats.footprint_blocks, 128);
        assert_eq!(stats.footprint_bytes(), 128 * 64);
    }

    #[test]
    fn short_reuse_detects_small_working_sets() {
        // 64 blocks looped forever: after the first lap everything is reuse.
        let s = SequentialStream::new(Region::new(0, 64 * 64), 64, 0, 0, 0);
        let stats = TraceStats::measure(s, 10_000);
        assert!(stats.short_reuse_fraction() > 0.95);

        // A stream over 1M blocks never revisits within the window.
        let big = SequentialStream::new(Region::new(0, (1 << 20) * 64), 64, 0, 0, 0);
        let stats = TraceStats::measure(big, 10_000);
        assert!(stats.short_reuse_fraction() < 0.01);
    }

    #[test]
    fn empty_source_yields_zeroes() {
        let stats = TraceStats::measure(std::iter::empty(), 100);
        assert_eq!(stats.records, 0);
        assert_eq!(stats.store_fraction(), 0.0);
        assert_eq!(stats.mean_gap(), 0.0);
    }

    #[test]
    fn store_fraction_counts_stores() {
        let s = SequentialStream::new(Region::new(0, 1 << 20), 64, 0, 2, 0);
        let stats = TraceStats::measure(s, 1000);
        assert!((stats.store_fraction() - 0.5).abs() < 1e-9);
    }
}
