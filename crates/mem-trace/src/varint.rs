//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! The v2 trace codec stores per-record fields as unsigned LEB128 varints
//! over *deltas* (see [`crate::chunk`]): consecutive references usually
//! touch nearby program counters and addresses, so the common case is one
//! or two bytes instead of the fixed eight. Deltas are signed; zigzag
//! folds them into small unsigned values (0, -1, 1, -2 → 0, 1, 2, 3) so
//! LEB128 stays short for negative strides too.

/// Maximum encoded size of one `u64` varint (⌈64/7⌉ bytes).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends `v` to `out` as unsigned LEB128.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one unsigned LEB128 value starting at `buf[*pos]`, advancing
/// `*pos` past it. Returns `None` when the buffer ends mid-varint or the
/// encoding overflows 64 bits.
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow the 64th bit
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Maps a signed delta to an unsigned value with small magnitude:
/// 0, -1, 1, -2, 2 → 0, 1, 2, 3, 4.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        assert!(buf.len() <= MAX_VARINT_BYTES);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Some(v), "value {v:#x}");
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [
            0,
            1,
            127,
            128,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn varint_roundtrips_randomized() {
        let mut rng = crate::rng::Rng64::seed_from_u64(0x7A71);
        for _ in 0..10_000 {
            // Skew toward small values (the hot case) but cover the range.
            let shift = rng.gen_index(64) as u32;
            roundtrip(rng.next_u64() >> shift);
        }
    }

    #[test]
    fn read_rejects_truncation() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_u64(&buf[..cut], &mut pos), None);
        }
    }

    #[test]
    fn read_rejects_overflow() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
        // Ten bytes whose last asks for more than the top bit.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_maps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [0i64, 1, -1, 64, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
