//! Chunk payload encoding for the v2 trace format.
//!
//! A chunk is an independently decodable run of records. Within a chunk,
//! `pc` and `addr` are stored as zigzag-varint *deltas* from the previous
//! record (the first record's delta is taken from zero, so no state leaks
//! across chunk boundaries and any chunk can be decoded after a seek).
//! The compute gap and the load/store bit share one varint:
//! `meta = gap << 1 | is_store`.
//!
//! Layout of one encoded chunk (see [`crate::codec`] for the file frame):
//!
//! ```text
//! record_count: u32 LE | raw_bytes: u32 LE | payload...
//! ```
//!
//! `raw_bytes` is the fixed-width (v1) size of the same records —
//! `record_count × 21` — stored so readers can size scratch buffers and
//! report compression ratios without decoding.

use crate::record::{MemOp, TraceRecord};
use crate::varint;

/// Bytes of the per-chunk header (`record_count`, `raw_bytes`).
pub const CHUNK_HEADER_BYTES: usize = 4 + 4;

/// Worst-case payload bytes for one record (three maximal varints).
pub const MAX_RECORD_PAYLOAD_BYTES: usize = 3 * varint::MAX_VARINT_BYTES;

/// Why a chunk payload failed to decode. The codec layer wraps this with
/// the chunk's index in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkDecodeError {
    /// Payload ended mid-record (or mid-varint).
    Truncated,
    /// A record's gap field exceeds `u32::MAX`.
    GapOverflow,
    /// Bytes left over after the promised record count.
    TrailingBytes,
}

impl std::fmt::Display for ChunkDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkDecodeError::Truncated => write!(f, "chunk payload truncated mid-record"),
            ChunkDecodeError::GapOverflow => write!(f, "record gap exceeds u32::MAX"),
            ChunkDecodeError::TrailingBytes => write!(f, "chunk payload has trailing bytes"),
        }
    }
}

impl std::error::Error for ChunkDecodeError {}

/// Appends the encoded chunk (header + payload) for `records` to `out`.
///
/// Pre-reserves the worst case for the payload up front so the hot loop
/// never reallocates mid-chunk.
pub fn encode_chunk(records: &[TraceRecord], out: &mut Vec<u8>) {
    out.reserve(CHUNK_HEADER_BYTES + records.len() * MAX_RECORD_PAYLOAD_BYTES);
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    out.extend_from_slice(&((records.len() * crate::codec::RECORD_BYTES) as u32).to_le_bytes());
    let mut prev_pc = 0u64;
    let mut prev_addr = 0u64;
    for r in records {
        varint::write_u64(out, varint::zigzag(r.pc.wrapping_sub(prev_pc) as i64));
        varint::write_u64(out, varint::zigzag(r.addr.wrapping_sub(prev_addr) as i64));
        varint::write_u64(out, (u64::from(r.gap) << 1) | u64::from(r.op.is_store()));
        prev_pc = r.pc;
        prev_addr = r.addr;
    }
}

/// Splits an encoded chunk into `(record_count, raw_bytes, payload)`.
#[inline]
pub fn split_chunk(bytes: &[u8]) -> Result<(u32, u32, &[u8]), ChunkDecodeError> {
    if bytes.len() < CHUNK_HEADER_BYTES {
        return Err(ChunkDecodeError::Truncated);
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    let raw = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    Ok((count, raw, &bytes[CHUNK_HEADER_BYTES..]))
}

/// Decodes `count` records from a chunk `payload` into `out`.
///
/// `out` is *appended to*, not cleared — the caller owns the scratch
/// buffer and reuses it across chunk refills (clear + decode), so the
/// steady-state replay path performs zero per-record heap allocation.
pub fn decode_payload(
    payload: &[u8],
    count: u32,
    out: &mut Vec<TraceRecord>,
) -> Result<(), ChunkDecodeError> {
    out.reserve(count as usize);
    let mut pos = 0usize;
    let mut prev_pc = 0u64;
    let mut prev_addr = 0u64;
    for _ in 0..count {
        let dpc = varint::read_u64(payload, &mut pos).ok_or(ChunkDecodeError::Truncated)?;
        let daddr = varint::read_u64(payload, &mut pos).ok_or(ChunkDecodeError::Truncated)?;
        let meta = varint::read_u64(payload, &mut pos).ok_or(ChunkDecodeError::Truncated)?;
        let gap = meta >> 1;
        if gap > u64::from(u32::MAX) {
            return Err(ChunkDecodeError::GapOverflow);
        }
        let pc = prev_pc.wrapping_add(varint::unzigzag(dpc) as u64);
        let addr = prev_addr.wrapping_add(varint::unzigzag(daddr) as u64);
        out.push(TraceRecord {
            pc,
            addr,
            gap: gap as u32,
            op: if meta & 1 == 1 {
                MemOp::Store
            } else {
                MemOp::Load
            },
        });
        prev_pc = pc;
        prev_addr = addr;
    }
    if pos != payload.len() {
        return Err(ChunkDecodeError::TrailingBytes);
    }
    Ok(())
}

/// Decodes a whole encoded chunk (header + payload) into `out`, returning
/// the record count. Convenience for tests and the whole-buffer decoder;
/// the streaming reader uses [`split_chunk`] + [`decode_payload`] so it
/// can cross-check the chunk header against the file's index first.
pub fn decode_chunk(bytes: &[u8], out: &mut Vec<TraceRecord>) -> Result<u32, ChunkDecodeError> {
    let (count, _raw, payload) = split_chunk(bytes)?;
    decode_payload(payload, count, out)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random_records(rng: &mut Rng64, n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|_| TraceRecord {
                pc: rng.next_u64() >> rng.gen_index(64) as u32,
                addr: rng.next_u64() >> rng.gen_index(64) as u32,
                gap: (rng.next_u64() >> rng.gen_index(32) as u32) as u32,
                op: if rng.gen_bool(0.3) {
                    MemOp::Store
                } else {
                    MemOp::Load
                },
            })
            .collect()
    }

    #[test]
    fn chunk_roundtrips_randomized() {
        let mut rng = Rng64::seed_from_u64(0xC407);
        for _ in 0..64 {
            let n = rng.gen_index(300);
            let records = random_records(&mut rng, n);
            let mut buf = Vec::new();
            encode_chunk(&records, &mut buf);
            let mut back = Vec::new();
            assert_eq!(decode_chunk(&buf, &mut back), Ok(records.len() as u32));
            assert_eq!(back, records);
        }
    }

    #[test]
    fn max_delta_addresses_roundtrip() {
        // Worst-case deltas: u64 extremes back to back in both orders.
        let records: Vec<TraceRecord> = [0u64, u64::MAX, 0, 1, u64::MAX - 1, u64::MAX]
            .iter()
            .map(|&a| TraceRecord::new(a, a, MemOp::Load, u32::MAX))
            .collect();
        let mut buf = Vec::new();
        encode_chunk(&records, &mut buf);
        let mut back = Vec::new();
        decode_chunk(&buf, &mut back).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_chunk_roundtrips() {
        let mut buf = Vec::new();
        encode_chunk(&[], &mut buf);
        assert_eq!(buf.len(), CHUNK_HEADER_BYTES);
        let mut back = Vec::new();
        assert_eq!(decode_chunk(&buf, &mut back), Ok(0));
        assert!(back.is_empty());
    }

    #[test]
    fn truncated_payload_is_rejected_at_every_cut() {
        let records = random_records(&mut Rng64::seed_from_u64(7), 20);
        let mut buf = Vec::new();
        encode_chunk(&records, &mut buf);
        for cut in CHUNK_HEADER_BYTES..buf.len() {
            let mut out = Vec::new();
            assert_eq!(
                decode_chunk(&buf[..cut], &mut out),
                Err(ChunkDecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_chunk(&random_records(&mut Rng64::seed_from_u64(8), 5), &mut buf);
        buf.push(0);
        let mut out = Vec::new();
        assert_eq!(
            decode_chunk(&buf, &mut out),
            Err(ChunkDecodeError::TrailingBytes)
        );
    }

    #[test]
    fn gap_overflow_is_rejected() {
        // Hand-craft a record whose meta varint decodes to gap > u32::MAX.
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(crate::codec::RECORD_BYTES as u32).to_le_bytes());
        crate::varint::write_u64(&mut buf, 0); // pc delta
        crate::varint::write_u64(&mut buf, 0); // addr delta
        crate::varint::write_u64(&mut buf, (u64::from(u32::MAX) + 1) << 1);
        let mut out = Vec::new();
        assert_eq!(
            decode_chunk(&buf, &mut out),
            Err(ChunkDecodeError::GapOverflow)
        );
    }

    #[test]
    fn compresses_local_streams() {
        // A strided stream with small pc loops must beat fixed-width v1
        // by a wide margin: ~3 bytes/record vs 21.
        let records: Vec<TraceRecord> = (0..10_000)
            .map(|i| TraceRecord::new(0x400 + (i % 8) * 4, 0x1000_0000 + i * 64, MemOp::Load, 3))
            .collect();
        let mut buf = Vec::new();
        encode_chunk(&records, &mut buf);
        let per_record = buf.len() as f64 / records.len() as f64;
        assert!(per_record < 6.0, "{per_record} bytes/record");
    }
}
