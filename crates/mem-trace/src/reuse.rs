//! Exact LRU reuse-distance analysis.
//!
//! The reuse distance of an access is the number of *distinct* blocks
//! touched since the previous access to the same block (∞ for first
//! touches). Its distribution fully determines the hit rate of a
//! fully-associative LRU cache of any size — the standard tool for
//! checking that a synthetic workload has the locality profile it claims
//! (and for picking the demo-scale cache sizes in this reproduction).
//!
//! Implementation: the classic O(n log n) algorithm — a Fenwick tree over
//! access timestamps counts the distinct blocks between two accesses; a
//! hash map remembers each block's previous timestamp.

use crate::record::TraceRecord;
use std::collections::HashMap;

/// Binary indexed tree over access positions.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Histogram of reuse distances in power-of-two buckets.
#[derive(Debug, Clone)]
pub struct ReuseHistogram {
    /// `buckets[i]` counts accesses with distance in `[2^(i-1), 2^i)`
    /// (`buckets[0]` counts distance 0).
    pub buckets: Vec<u64>,
    /// First touches (infinite distance).
    pub cold: u64,
    /// Total accesses analysed.
    pub total: u64,
    /// Exact distances ≤ `EXACT_MAX` (for precise small-cache queries).
    exact: Vec<u64>,
}

/// Exact per-distance resolution kept below this bound.
pub const EXACT_MAX: usize = 8192;

impl ReuseHistogram {
    /// Analyses up to `limit` records of `source` at 64-byte block
    /// granularity.
    pub fn measure(source: impl Iterator<Item = TraceRecord>, limit: usize) -> Self {
        let records: Vec<u64> = source.take(limit).map(|r| r.block(6)).collect();
        let n = records.len();
        let mut fen = Fenwick::new(n);
        let mut last: HashMap<u64, usize> = HashMap::new();
        let mut buckets = vec![0u64; 40];
        let mut exact = vec![0u64; EXACT_MAX + 1];
        let mut cold = 0u64;
        for (t, &block) in records.iter().enumerate() {
            match last.insert(block, t) {
                None => cold += 1,
                Some(t0) => {
                    // Distinct blocks touched strictly between t0 and t:
                    // every block in that window has its *latest* marker
                    // inside it.
                    let d = if t == 0 { 0 } else { fen.prefix(t - 1) } - fen.prefix(t0);
                    let bucket = if d == 0 {
                        0
                    } else {
                        (64 - d.leading_zeros()) as usize
                    };
                    buckets[bucket.min(39)] += 1;
                    if (d as usize) <= EXACT_MAX {
                        exact[d as usize] += 1;
                    }
                    fen.add(t0, -1);
                }
            }
            fen.add(t, 1);
        }
        Self {
            buckets,
            cold,
            total: n as u64,
            exact,
        }
    }

    /// Predicted hit rate of a fully-associative LRU cache with `lines`
    /// lines: the fraction of accesses whose reuse distance is `< lines`.
    /// Exact for `lines ≤ EXACT_MAX`, bucket-resolution above.
    pub fn lru_hit_rate(&self, lines: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = if lines <= EXACT_MAX {
            self.exact[..lines].iter().sum()
        } else {
            // Sum whole buckets below the bound (conservative).
            let mut s = 0u64;
            for (i, &c) in self.buckets.iter().enumerate() {
                let hi = if i == 0 { 0u64 } else { 1u64 << i };
                if hi < lines as u64 {
                    s += c;
                }
            }
            s
        };
        hits as f64 / self.total as f64
    }

    /// Fraction of first-touch (compulsory-miss) accesses.
    pub fn cold_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cold as f64 / self.total as f64
        }
    }

    /// Median reuse distance of re-accesses (bucket upper bound), or None
    /// when nothing is re-accessed.
    pub fn median_distance_bound(&self) -> Option<u64> {
        let reuses: u64 = self.buckets.iter().sum();
        if reuses == 0 {
            return None;
        }
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc * 2 >= reuses {
                return Some(if i == 0 { 0 } else { 1 << i });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use std::collections::VecDeque;

    fn blocks(seq: &[u64]) -> impl Iterator<Item = TraceRecord> + '_ {
        seq.iter().map(|&b| TraceRecord::load(0, b * 64))
    }

    #[test]
    fn same_block_has_distance_zero() {
        let h = ReuseHistogram::measure(blocks(&[5, 5, 5, 5]), 100);
        assert_eq!(h.cold, 1);
        assert_eq!(h.buckets[0], 3);
        assert!((h.lru_hit_rate(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cyclic_stream_distance_equals_working_set() {
        // 0,1,2,3,0,1,2,3: each reuse skips 3 distinct blocks.
        let h = ReuseHistogram::measure(blocks(&[0, 1, 2, 3, 0, 1, 2, 3]), 100);
        assert_eq!(h.cold, 4);
        assert_eq!(h.exact[3], 4);
        assert_eq!(h.lru_hit_rate(3), 0.0);
        assert!((h.lru_hit_rate(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cold_fraction_of_pure_stream_is_one() {
        let h = ReuseHistogram::measure(blocks(&[1, 2, 3, 4, 5, 6]), 100);
        assert!((h.cold_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(h.median_distance_bound(), None);
    }

    #[test]
    fn median_bound_reports_bucket_ceiling() {
        let h = ReuseHistogram::measure(blocks(&[0, 1, 2, 0, 1, 2]), 100);
        // All reuses at distance 2 → bucket [2,4) → bound 4.
        assert_eq!(h.median_distance_bound(), Some(4));
    }

    /// Reference model: fully-associative LRU of `lines` lines.
    fn lru_sim(seq: &[u64], lines: usize) -> f64 {
        let mut stack: VecDeque<u64> = VecDeque::new();
        let mut hits = 0usize;
        for &b in seq {
            if let Some(pos) = stack.iter().position(|&x| x == b) {
                hits += 1;
                stack.remove(pos);
            } else if stack.len() == lines {
                stack.pop_back();
            }
            stack.push_front(b);
        }
        hits as f64 / seq.len() as f64
    }

    /// The histogram's predicted LRU hit rate matches an actual
    /// fully-associative LRU simulation for every cache size.
    /// Deterministic replacement for the old property test.
    #[test]
    fn matches_lru_simulation_randomized() {
        let mut rng = crate::rng::Rng64::seed_from_u64(0x5EED_0123u64);
        for _case in 0..256 {
            let len = 1 + rng.gen_index(299);
            let seq: Vec<u64> = (0..len).map(|_| rng.gen_below(24)).collect();
            let lines = 1 + rng.gen_index(31);
            let recs: Vec<TraceRecord> =
                seq.iter().map(|&b| TraceRecord::load(0, b * 64)).collect();
            let h = ReuseHistogram::measure(recs.into_iter(), usize::MAX);
            let predicted = h.lru_hit_rate(lines);
            let simulated = lru_sim(&seq, lines);
            assert!(
                (predicted - simulated).abs() < 1e-9,
                "lines={lines}: predicted {predicted} vs simulated {simulated}"
            );
        }
    }
}
