//! Adapters over [`TraceSource`] streams.

use crate::record::TraceRecord;
use crate::TraceSource;

/// Extension adapters available on every trace source.
pub trait TraceSourceExt: TraceSource + Sized {
    /// Shifts every data address by `offset`.
    ///
    /// The simulator gives each core a disjoint physical address range
    /// (offset at a high bit) so that duplicating one benchmark trace onto
    /// all 8 cores produces *contention* in the shared LLC rather than
    /// *sharing*, as in a multi-programmed run. High-bit offsets leave the
    /// low index bits — and therefore the prediction-table hash — untouched.
    fn offset_address_space(self, offset: u64) -> OffsetAddr<Self> {
        OffsetAddr {
            inner: self,
            offset,
        }
    }

    /// Rewrites every program counter by `offset` (keeps per-core stride
    /// prefetcher tables from aliasing across duplicated traces).
    fn offset_pcs(self, offset: u64) -> OffsetPc<Self> {
        OffsetPc {
            inner: self,
            offset,
        }
    }

    /// Forces a fixed compute gap on every record, overriding whatever the
    /// generator produced. Used by microbenchmarks to isolate memory time.
    fn with_uniform_gap(self, gap: u32) -> UniformGap<Self> {
        UniformGap { inner: self, gap }
    }

    /// Repeats the underlying (cloneable) source forever. Used to stretch a
    /// short recorded trace to a target reference count.
    fn cycle_records(self) -> CycleRecords<Self>
    where
        Self: Clone,
    {
        CycleRecords {
            original: self.clone(),
            current: self,
        }
    }
}

impl<T: TraceSource> TraceSourceExt for T {}

/// See [`TraceSourceExt::offset_address_space`].
#[derive(Debug, Clone)]
pub struct OffsetAddr<T> {
    inner: T,
    offset: u64,
}

impl<T: TraceSource> Iterator for OffsetAddr<T> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.inner.next().map(|r| r.with_addr_offset(self.offset))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// See [`TraceSourceExt::offset_pcs`].
#[derive(Debug, Clone)]
pub struct OffsetPc<T> {
    inner: T,
    offset: u64,
}

impl<T: TraceSource> Iterator for OffsetPc<T> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.inner.next().map(|mut r| {
            r.pc = r.pc.wrapping_add(self.offset);
            r
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// See [`TraceSourceExt::with_uniform_gap`].
#[derive(Debug, Clone)]
pub struct UniformGap<T> {
    inner: T,
    gap: u32,
}

impl<T: TraceSource> Iterator for UniformGap<T> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.inner.next().map(|r| r.with_gap(self.gap))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// See [`TraceSourceExt::cycle_records`].
#[derive(Debug, Clone)]
pub struct CycleRecords<T> {
    original: T,
    current: T,
}

impl<T: TraceSource + Clone> Iterator for CycleRecords<T> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        match self.current.next() {
            Some(r) => Some(r),
            None => {
                self.current = self.original.clone();
                self.current.next()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MemOp;

    fn base() -> impl TraceSource + Clone {
        (0..3u64).map(|i| TraceRecord::new(100 + i, i * 64, MemOp::Load, 5))
    }

    #[test]
    fn offset_addr_shifts_only_addresses() {
        let v: Vec<_> = base().offset_address_space(1 << 44).collect();
        assert_eq!(v[1].addr, (1 << 44) + 64);
        assert_eq!(v[1].pc, 101);
    }

    #[test]
    fn offset_pc_shifts_only_pcs() {
        let v: Vec<_> = base().offset_pcs(1 << 32).collect();
        assert_eq!(v[0].pc, 100 + (1u64 << 32));
        assert_eq!(v[0].addr, 0);
    }

    #[test]
    fn uniform_gap_overrides() {
        let v: Vec<_> = base().with_uniform_gap(0).collect();
        assert!(v.iter().all(|r| r.gap == 0));
    }

    #[test]
    fn cycle_repeats_source() {
        let v: Vec<_> = base().cycle_records().take(7).collect();
        assert_eq!(v.len(), 7);
        assert_eq!(v[3].addr, v[0].addr);
        assert_eq!(v[6].addr, v[0].addr);
    }

    #[test]
    fn cycle_of_empty_source_terminates() {
        let empty = std::iter::empty::<TraceRecord>();
        let v: Vec<_> = empty.cycle_records().take(5).collect();
        assert!(v.is_empty());
    }
}
