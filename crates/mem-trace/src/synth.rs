//! Composable synthetic access-pattern building blocks.
//!
//! The `workloads` crate builds benchmark-like traces either by running real
//! kernels (BFS, SGD, stencils) or by composing the primitives here. Each
//! primitive is an infinite [`TraceSource`](crate::TraceSource); callers
//! bound them with `take(n)`.

use crate::record::{MemOp, TraceRecord};
use crate::rng::Rng64;
use crate::zipf::Zipf;

/// A memory region expressed in bytes, `[base, base + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub base: u64,
    /// Region length in bytes.
    pub len: u64,
}

impl Region {
    /// Creates a region. `len` must be non-zero.
    pub fn new(base: u64, len: u64) -> Self {
        assert!(len > 0, "region must be non-empty");
        Self { base, len }
    }

    /// Byte address at `offset % len` within the region.
    pub fn at(&self, offset: u64) -> u64 {
        self.base + (offset % self.len)
    }

    /// True when `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len
    }
}

/// Sequential streaming access over a region (the `bwaves`/`lbm` backbone):
/// walks the region byte-stride `stride`, wrapping at the end.
#[derive(Debug, Clone)]
pub struct SequentialStream {
    region: Region,
    stride: u64,
    cursor: u64,
    pc: u64,
    store_every: u32,
    count: u32,
    gap: u32,
    repeats: u32,
    rep: u32,
}

impl SequentialStream {
    /// Streams over `region` with the given byte `stride`. Every
    /// `store_every`-th access is a store (0 = never); `gap` compute
    /// instructions separate successive references.
    pub fn new(region: Region, stride: u64, pc: u64, store_every: u32, gap: u32) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self {
            region,
            stride,
            cursor: 0,
            pc,
            store_every,
            count: 0,
            gap,
            repeats: 1,
            rep: 0,
        }
    }

    /// Emits each element `repeats` times before advancing — modelling a
    /// loop body that reads the same operand several times (register
    /// blocking / neighbour reuse). Raises the stream's in-L1 hit rate the
    /// way real FP kernels do.
    pub fn with_repeats(mut self, repeats: u32) -> Self {
        assert!(repeats >= 1);
        self.repeats = repeats;
        self
    }
}

impl Iterator for SequentialStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let addr = self.region.at(self.cursor);
        // Each repeat is a distinct instruction of the loop body: give it
        // its own PC so per-PC stride patterns (and the stride prefetcher's
        // RPT) see a clean stride per iteration.
        let pc = self.pc + u64::from(self.rep) * 4;
        self.rep += 1;
        if self.rep >= self.repeats {
            self.rep = 0;
            self.cursor = self.cursor.wrapping_add(self.stride);
        }
        self.count = self.count.wrapping_add(1);
        let op = if self.store_every != 0 && self.count.is_multiple_of(self.store_every) {
            MemOp::Store
        } else {
            MemOp::Load
        };
        Some(TraceRecord::new(pc, addr, op, self.gap))
    }
}

/// Uniform-random accesses within a region (models hash-table / irregular
/// traffic with footprint = region size).
#[derive(Debug, Clone)]
pub struct RandomInRegion {
    region: Region,
    rng: Rng64,
    pc: u64,
    store_prob: f64,
    gap: u32,
    align: u64,
}

impl RandomInRegion {
    /// Uniform random accesses over `region`, aligned to `align` bytes,
    /// each one a store with probability `store_prob`.
    pub fn new(region: Region, seed: u64, pc: u64, store_prob: f64, gap: u32, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Self {
            region,
            rng: Rng64::seed_from_u64(seed),
            pc,
            store_prob,
            gap,
            align,
        }
    }
}

impl Iterator for RandomInRegion {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let off = self.rng.gen_below(self.region.len) & !(self.align - 1);
        let op = if self.rng.gen_bool(self.store_prob) {
            MemOp::Store
        } else {
            MemOp::Load
        };
        Some(TraceRecord::new(
            self.pc,
            self.region.base + off,
            op,
            self.gap,
        ))
    }
}

/// Zipf-skewed accesses over fixed-size records in a region (models PMF
/// factor-row popularity and graph-degree skew).
#[derive(Debug, Clone)]
pub struct ZipfOverRecords {
    region: Region,
    record_bytes: u64,
    zipf: Zipf,
    rng: Rng64,
    pc: u64,
    store_prob: f64,
    gap: u32,
}

impl ZipfOverRecords {
    /// Accesses record `k` (Zipf-distributed over `region.len / record_bytes`
    /// records, exponent `s`) at its first byte.
    pub fn new(
        region: Region,
        record_bytes: u64,
        s: f64,
        seed: u64,
        pc: u64,
        store_prob: f64,
        gap: u32,
    ) -> Self {
        assert!(record_bytes > 0);
        let n = (region.len / record_bytes).max(1);
        Self {
            region,
            record_bytes,
            zipf: Zipf::new(n, s),
            rng: Rng64::seed_from_u64(seed),
            pc,
            store_prob,
            gap,
        }
    }
}

impl Iterator for ZipfOverRecords {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let k = self.zipf.sample(&mut self.rng) - 1;
        let addr = self.region.base + k * self.record_bytes;
        let op = if self.rng.gen_bool(self.store_prob) {
            MemOp::Store
        } else {
            MemOp::Load
        };
        Some(TraceRecord::new(self.pc, addr, op, self.gap))
    }
}

/// Pointer-chase over a pre-shuffled permutation cycle (the `mcf` backbone):
/// each access reads the "next" pointer stored at the current node, so the
/// address stream is serially dependent and stride-unpredictable.
#[derive(Debug, Clone)]
pub struct PointerChase {
    next: Vec<u32>,
    node_bytes: u64,
    base: u64,
    current: u32,
    pc: u64,
    gap: u32,
}

impl PointerChase {
    /// Builds a single random cycle over `nodes` nodes of `node_bytes` each
    /// starting at `base`. The cycle is a uniform random permutation (Sattolo's
    /// algorithm), so consecutive addresses are effectively random.
    pub fn new(base: u64, nodes: u32, node_bytes: u64, seed: u64, pc: u64, gap: u32) -> Self {
        assert!(nodes >= 2, "pointer chase needs at least two nodes");
        let mut next: Vec<u32> = (0..nodes).collect();
        let mut rng = Rng64::seed_from_u64(seed);
        // Sattolo's algorithm: produces a single cycle covering all nodes.
        for i in (1..nodes as usize).rev() {
            let j = rng.gen_index(i);
            next.swap(i, j);
        }
        Self {
            next,
            node_bytes,
            base,
            current: 0,
            pc,
            gap,
        }
    }

    /// Number of nodes in the chain.
    pub fn nodes(&self) -> usize {
        self.next.len()
    }
}

impl Iterator for PointerChase {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let addr = self.base + self.current as u64 * self.node_bytes;
        self.current = self.next[self.current as usize];
        Some(TraceRecord::new(self.pc, addr, MemOp::Load, self.gap))
    }
}

/// 3-D stencil sweep (the `GemsFDTD`/`cactusADM` backbone): iterates a
/// `nx × ny × nz` grid of `elem_bytes` elements in z-major order, touching
/// the 7-point neighbourhood (center ± 1 in each dimension) per cell and
/// writing the center of a second (output) grid.
#[derive(Debug, Clone)]
pub struct Stencil3D {
    nx: u64,
    ny: u64,
    nz: u64,
    elem_bytes: u64,
    in_base: u64,
    out_base: u64,
    pc: u64,
    gap: u32,
    // Iteration state: current cell and which of the 8 accesses of the cell
    // we are about to emit (6 neighbours + center load + center store).
    x: u64,
    y: u64,
    z: u64,
    phase: u8,
}

impl Stencil3D {
    /// Creates a sweep over a grid with separate input/output arrays.
    pub fn new(
        in_base: u64,
        out_base: u64,
        (nx, ny, nz): (u64, u64, u64),
        elem_bytes: u64,
        pc: u64,
        gap: u32,
    ) -> Self {
        assert!(nx >= 3 && ny >= 3 && nz >= 3, "grid too small for stencil");
        Self {
            nx,
            ny,
            nz,
            elem_bytes,
            in_base,
            out_base,
            pc,
            gap,
            x: 1,
            y: 1,
            z: 1,
            phase: 0,
        }
    }

    fn idx(&self, x: u64, y: u64, z: u64) -> u64 {
        ((x * self.ny + y) * self.nz + z) * self.elem_bytes
    }

    fn advance_cell(&mut self) {
        self.z += 1;
        if self.z == self.nz - 1 {
            self.z = 1;
            self.y += 1;
            if self.y == self.ny - 1 {
                self.y = 1;
                self.x += 1;
                if self.x == self.nx - 1 {
                    self.x = 1; // wrap: next sweep iteration
                }
            }
        }
    }
}

impl Iterator for Stencil3D {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let (x, y, z) = (self.x, self.y, self.z);
        let rec = match self.phase {
            0 => TraceRecord::new(
                self.pc,
                self.in_base + self.idx(x, y, z),
                MemOp::Load,
                self.gap,
            ),
            1 => TraceRecord::new(
                self.pc + 4,
                self.in_base + self.idx(x - 1, y, z),
                MemOp::Load,
                self.gap,
            ),
            2 => TraceRecord::new(
                self.pc + 8,
                self.in_base + self.idx(x + 1, y, z),
                MemOp::Load,
                self.gap,
            ),
            3 => TraceRecord::new(
                self.pc + 12,
                self.in_base + self.idx(x, y - 1, z),
                MemOp::Load,
                self.gap,
            ),
            4 => TraceRecord::new(
                self.pc + 16,
                self.in_base + self.idx(x, y + 1, z),
                MemOp::Load,
                self.gap,
            ),
            5 => TraceRecord::new(
                self.pc + 20,
                self.in_base + self.idx(x, y, z - 1),
                MemOp::Load,
                self.gap,
            ),
            6 => TraceRecord::new(
                self.pc + 24,
                self.in_base + self.idx(x, y, z + 1),
                MemOp::Load,
                self.gap,
            ),
            _ => TraceRecord::new(
                self.pc + 28,
                self.out_base + self.idx(x, y, z),
                MemOp::Store,
                self.gap,
            ),
        };
        if self.phase == 7 {
            self.phase = 0;
            self.advance_cell();
        } else {
            self.phase += 1;
        }
        Some(rec)
    }
}

/// Expands each record of an inner stream into `touches` accesses within
/// the record's cache line (offsets 0, +16, +32, +48 cyclically), each from
/// its own PC — a loop body touching several fields of the selected
/// element. Raises in-line locality without changing which lines are
/// touched.
#[derive(Debug, Clone)]
pub struct LineTouches<T> {
    inner: T,
    touches: u8,
    current: Option<TraceRecord>,
    phase: u8,
}

impl<T> LineTouches<T> {
    /// Wraps `inner`, emitting `touches` accesses per inner record (1–4).
    pub fn new(inner: T, touches: u8) -> Self {
        assert!((1..=4).contains(&touches));
        Self {
            inner,
            touches,
            current: None,
            phase: 0,
        }
    }
}

impl<T: Iterator<Item = TraceRecord>> Iterator for LineTouches<T> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.phase == 0 || self.current.is_none() {
            self.current = Some(self.inner.next()?);
        }
        let base = self.current.expect("set above");
        let rec = TraceRecord::new(
            base.pc + u64::from(self.phase) * 4,
            base.addr + u64::from(self.phase) * 16,
            base.op,
            if self.phase == 0 { base.gap } else { 1 },
        );
        self.phase = (self.phase + 1) % self.touches;
        Some(rec)
    }
}

/// Probabilistically interleaves several sources with fixed weights
/// (models phase mixing inside one benchmark, e.g. `soplex` switching
/// between row streaming and column scatter).
pub struct WeightedMix {
    sources: Vec<Box<dyn Iterator<Item = TraceRecord> + Send>>,
    cumulative: Vec<f64>,
    rng: Rng64,
}

impl WeightedMix {
    /// Mixes `sources` with the paired positive `weights` (need not sum to 1).
    pub fn new(
        sources: Vec<Box<dyn Iterator<Item = TraceRecord> + Send>>,
        weights: &[f64],
        seed: u64,
    ) -> Self {
        assert_eq!(sources.len(), weights.len());
        assert!(!sources.is_empty(), "mixer needs at least one source");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self {
            sources,
            cumulative,
            rng: Rng64::seed_from_u64(seed),
        }
    }
}

impl Iterator for WeightedMix {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let u: f64 = self.rng.gen_f64();
        let i = self
            .cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.sources.len() - 1);
        self.sources[i].next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_wraps_and_contains() {
        let r = Region::new(0x1000, 0x100);
        assert_eq!(r.at(0), 0x1000);
        assert_eq!(r.at(0x100), 0x1000);
        assert_eq!(r.at(0x101), 0x1001);
        assert!(r.contains(0x10ff));
        assert!(!r.contains(0x1100));
    }

    #[test]
    fn sequential_stream_strides_and_wraps() {
        let r = Region::new(0, 256);
        let s = SequentialStream::new(r, 64, 0x400, 0, 1);
        let addrs: Vec<u64> = s.take(6).map(|r| r.addr).collect();
        assert_eq!(addrs, vec![0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn sequential_stream_emits_stores_periodically() {
        let r = Region::new(0, 1 << 20);
        let s = SequentialStream::new(r, 8, 0x400, 4, 0);
        let ops: Vec<MemOp> = s.take(8).map(|r| r.op).collect();
        assert_eq!(ops.iter().filter(|o| o.is_store()).count(), 2);
        assert_eq!(ops[3], MemOp::Store);
        assert_eq!(ops[7], MemOp::Store);
    }

    #[test]
    fn random_in_region_stays_inside_and_aligns() {
        let r = Region::new(0x10_0000, 0x4_0000);
        let g = RandomInRegion::new(r, 9, 0x400, 0.3, 0, 64);
        for rec in g.take(5000) {
            assert!(r.contains(rec.addr));
            assert_eq!(rec.addr % 64, 0);
        }
    }

    #[test]
    fn random_store_fraction_tracks_probability() {
        let r = Region::new(0, 1 << 20);
        let g = RandomInRegion::new(r, 11, 0, 0.25, 0, 8);
        let stores = g.take(20_000).filter(|r| r.op.is_store()).count();
        let frac = stores as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "store fraction {frac}");
    }

    #[test]
    fn pointer_chase_visits_every_node_once_per_cycle() {
        let nodes = 128;
        let g = PointerChase::new(0, nodes, 64, 5, 0x400, 2);
        let visited: std::collections::HashSet<u64> =
            g.take(nodes as usize).map(|r| r.addr).collect();
        assert_eq!(
            visited.len(),
            nodes as usize,
            "Sattolo cycle covers all nodes"
        );
    }

    #[test]
    fn pointer_chase_is_periodic_with_full_cycle() {
        let nodes = 64;
        let g = PointerChase::new(0, nodes, 64, 5, 0, 0);
        let seq: Vec<u64> = g.take(2 * nodes as usize).map(|r| r.addr).collect();
        assert_eq!(&seq[..nodes as usize], &seq[nodes as usize..]);
    }

    #[test]
    fn zipf_records_are_record_aligned() {
        let r = Region::new(0x8000, 1 << 16);
        let g = ZipfOverRecords::new(r, 256, 1.0, 3, 0, 0.0, 0);
        for rec in g.take(2000) {
            assert!(r.contains(rec.addr));
            assert_eq!((rec.addr - 0x8000) % 256, 0);
        }
    }

    #[test]
    fn stencil_touches_neighbours_and_writes_output() {
        let g = Stencil3D::new(0, 1 << 30, (4, 4, 4), 8, 0x400, 1);
        let recs: Vec<TraceRecord> = g.take(8).collect();
        assert_eq!(recs.iter().filter(|r| r.op.is_store()).count(), 1);
        assert!(recs[7].addr >= 1 << 30, "store goes to output grid");
        // Center and z±1 are adjacent elements in z-major order.
        assert_eq!(recs[6].addr - recs[5].addr, 16);
    }

    #[test]
    fn stencil_interior_sweep_wraps() {
        let g = Stencil3D::new(0, 1 << 30, (3, 3, 3), 8, 0, 0);
        // Only one interior cell; after 8 accesses it must wrap back to it.
        let recs: Vec<TraceRecord> = g.take(16).collect();
        assert_eq!(recs[0].addr, recs[8].addr);
    }

    #[test]
    fn weighted_mix_draws_from_all_sources() {
        let a = SequentialStream::new(Region::new(0, 1 << 20), 64, 1, 0, 0);
        let b = SequentialStream::new(Region::new(1 << 40, 1 << 20), 64, 2, 0, 0);
        let mix = WeightedMix::new(vec![Box::new(a), Box::new(b)], &[0.5, 0.5], 1);
        let (mut low, mut high) = (0, 0);
        for r in mix.take(1000) {
            if r.addr < 1 << 40 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 300 && high > 300, "low={low} high={high}");
    }

    #[test]
    #[should_panic]
    fn weighted_mix_rejects_mismatched_weights() {
        let a = SequentialStream::new(Region::new(0, 64), 8, 0, 0, 0);
        let _ = WeightedMix::new(vec![Box::new(a)], &[0.5, 0.5], 0);
    }
}
