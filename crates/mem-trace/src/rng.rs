//! A small deterministic pseudo-random number generator.
//!
//! The offline build cannot pull the `rand` crate, and the workload
//! generators only need a fast, seedable, statistically-decent source —
//! not cryptographic strength. This is xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 exactly as the reference implementation
//! recommends, so a single `u64` seed fully determines every stream.
//!
//! Determinism is a feature: the same seed always produces the same trace,
//! on every platform, which is what makes golden-counter tests possible.

/// xoshiro256++ generator with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state; the
        // constants are from Vigna's reference implementation.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits, the standard mapping).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[0, n)` via Lemire's widening-multiply mapping.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform index in `[0, n)`.
    #[inline]
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_below(n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_fills_it() {
        let mut r = Rng64::seed_from_u64(7);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn bounded_draws_are_in_range_and_roughly_uniform() {
        let mut r = Rng64::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_index(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic]
    fn zero_bound_panics() {
        Rng64::seed_from_u64(0).gen_below(0);
    }
}
