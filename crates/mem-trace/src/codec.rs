//! Binary on-disk trace formats.
//!
//! **v1** is a monolithic fixed-width layout: a 16-byte header (`magic`,
//! `version`, record count) followed by 21-byte little-endian records
//! (`pc: u64`, `addr: u64`, `gap: u32`, `op: u8`). Fixed width keeps decode
//! branch-free, but a 500M-record paper-scale trace is ~10 GB and must be
//! decoded in full before the first reference can run.
//!
//! **v2** is the streaming format: fixed-target *chunks* of delta-encoded
//! LEB128 varint records (see [`crate::chunk`]) framed by a 16-byte header
//! and a seekable chunk-index footer, so a reader can decode one chunk at
//! a time into a reusable scratch buffer ([`crate::stream::StreamTrace`])
//! or seek straight to a record range ([`crate::shard`]). Writers stream:
//! [`ChunkWriter`] never buffers more than one chunk, and the index +
//! tail land at the *end* of the file, so no seek-back patching is needed
//! and the sink can be a pipe.
//!
//! ```text
//! v2 file := header | chunk* | index | tail
//! header  := magic: u32 | version: u32 = 2 | chunk_target: u32 | reserved: u32
//! chunk   := record_count: u32 | raw_bytes: u32 | delta-varint payload
//! index   := { offset: u64 | bytes: u32 | count: u32 }  × chunk_count
//! tail    := index_offset: u64 | chunk_count: u64 | total_records: u64
//!            | tail_magic: u32
//! ```
//!
//! [`decode`] reads both versions; v1 stays fully readable.

use crate::chunk::{self, ChunkDecodeError};
use crate::record::{MemOp, TraceRecord};
use crate::VecTrace;
use std::io::{self, Write};

/// File magic: "RDHP".
pub const MAGIC: u32 = 0x5244_4850;
/// The fixed-width monolithic format.
pub const VERSION_V1: u32 = 1;
/// The chunked, delta-compressed, seekable format.
pub const VERSION_V2: u32 = 2;
/// Encoded size of one fixed-width (v1) record in bytes; also the
/// "uncompressed size" unit v2 chunks report.
pub const RECORD_BYTES: usize = 8 + 8 + 4 + 1;
/// Encoded size of the header in bytes (identical framing in v1 and v2:
/// the version field lives at bytes 4..8 in both).
pub const HEADER_BYTES: usize = 4 + 4 + 8;
/// Bytes of one v2 chunk-index entry.
pub const INDEX_ENTRY_BYTES: usize = 8 + 4 + 4;
/// Bytes of the v2 tail (fixed size, read from the end of the file).
pub const TAIL_BYTES: usize = 8 + 8 + 8 + 4;
/// v2 tail magic: "RIDX".
pub const TAIL_MAGIC: u32 = 0x5249_4458;
/// Default records per chunk: ~64K records ≈ 1.3 MB of decoded scratch,
/// the bound on a streaming reader's resident memory per cursor.
pub const DEFAULT_CHUNK_TARGET: u32 = 1 << 16;

/// Errors produced while decoding a trace buffer (either version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than a full header.
    TruncatedHeader,
    /// Magic number mismatch.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// v1: buffer ended before the promised record count.
    TruncatedBody {
        /// Records promised by the header.
        expected: u64,
        /// Records actually decodable.
        available: u64,
    },
    /// v1: invalid operation byte at the given record index.
    BadOp {
        /// Index of the offending record.
        index: u64,
        /// The invalid byte.
        byte: u8,
    },
    /// v2: buffer ends before a full tail.
    TruncatedTail,
    /// v2: tail magic mismatch (file truncated or not a v2 trace).
    BadTailMagic(u32),
    /// v2: the chunk index is structurally inconsistent with the file.
    BadFooter {
        /// What was violated.
        reason: &'static str,
    },
    /// v2: a chunk's bytes failed to decode.
    BadChunk {
        /// Index of the chunk within the file.
        chunk: u64,
        /// The payload-level failure.
        kind: ChunkDecodeError,
    },
    /// v2: a chunk's own header disagrees with the index entry.
    ChunkCountMismatch {
        /// Index of the chunk within the file.
        chunk: u64,
        /// Count in the chunk header.
        header: u32,
        /// Count in the index entry.
        index: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TruncatedHeader => write!(f, "trace buffer shorter than header"),
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::TruncatedBody {
                expected,
                available,
            } => {
                write!(
                    f,
                    "trace truncated: header promises {expected} records, buffer holds {available}"
                )
            }
            DecodeError::BadOp { index, byte } => {
                write!(f, "invalid op byte 0x{byte:02x} in record {index}")
            }
            DecodeError::TruncatedTail => write!(f, "v2 trace shorter than its fixed tail"),
            DecodeError::BadTailMagic(m) => {
                write!(f, "bad v2 tail magic 0x{m:08x} (file truncated?)")
            }
            DecodeError::BadFooter { reason } => write!(f, "bad v2 chunk index: {reason}"),
            DecodeError::BadChunk { chunk, kind } => {
                write!(f, "chunk {chunk} failed to decode: {kind}")
            }
            DecodeError::ChunkCountMismatch {
                chunk,
                header,
                index,
            } => {
                write!(
                    f,
                    "chunk {chunk}: header says {header} records, index says {index}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            // The payload-level cause is preserved so callers can walk the
            // chain (`anyhow`-style reporting) instead of string-matching.
            DecodeError::BadChunk { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

/// An I/O or decode failure while reading a trace file. Unlike
/// [`DecodeError`] (pure, comparable) this wraps `std::io::Error`, so it
/// is neither `Clone` nor `PartialEq`; both variants chain their cause
/// through [`std::error::Error::source`].
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The bytes were read but did not parse.
    Decode(DecodeError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file I/O failed: {e}"),
            TraceIoError::Decode(e) => write!(f, "trace file malformed: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Decode(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<DecodeError> for TraceIoError {
    fn from(e: DecodeError) -> Self {
        TraceIoError::Decode(e)
    }
}

/// Encodes a trace into a freshly allocated v1 (fixed-width) buffer.
pub fn encode(trace: &VecTrace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + trace.len() * RECORD_BYTES);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION_V1.to_le_bytes());
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for r in trace.records() {
        buf.extend_from_slice(&r.pc.to_le_bytes());
        buf.extend_from_slice(&r.addr.to_le_bytes());
        buf.extend_from_slice(&r.gap.to_le_bytes());
        buf.push(r.op.to_byte());
    }
    buf
}

/// Little-endian field reads over a cursor; bounds are pre-checked by the
/// header validation, so these only ever see complete records.
#[inline]
fn read_u32(buf: &[u8], pos: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes"));
    *pos += 4;
    v
}

#[inline]
fn read_u64(buf: &[u8], pos: &mut usize) -> u64 {
    let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
    *pos += 8;
    v
}

/// Decodes a buffer in either format (dispatches on the version field).
pub fn decode(buf: &[u8]) -> Result<VecTrace, DecodeError> {
    if buf.len() < HEADER_BYTES {
        return Err(DecodeError::TruncatedHeader);
    }
    let mut pos = 0;
    let magic = read_u32(buf, &mut pos);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = read_u32(buf, &mut pos);
    match version {
        VERSION_V1 => decode_v1_body(buf, pos),
        VERSION_V2 => decode_v2(buf),
        other => Err(DecodeError::BadVersion(other)),
    }
}

fn decode_v1_body(buf: &[u8], mut pos: usize) -> Result<VecTrace, DecodeError> {
    let count = read_u64(buf, &mut pos);
    let available = ((buf.len() - HEADER_BYTES) / RECORD_BYTES) as u64;
    if available < count {
        return Err(DecodeError::TruncatedBody {
            expected: count,
            available,
        });
    }
    let mut records = Vec::with_capacity(count as usize);
    for index in 0..count {
        let pc = read_u64(buf, &mut pos);
        let addr = read_u64(buf, &mut pos);
        let gap = read_u32(buf, &mut pos);
        let byte = buf[pos];
        pos += 1;
        let op = MemOp::from_byte(byte).ok_or(DecodeError::BadOp { index, byte })?;
        records.push(TraceRecord { pc, addr, gap, op });
    }
    Ok(VecTrace::from_records(records))
}

/// One v2 chunk as described by the index footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Byte offset of the chunk (header included) from the file start.
    pub offset: u64,
    /// Encoded bytes of the chunk (header included).
    pub bytes: u32,
    /// Records in the chunk.
    pub count: u32,
}

/// The parsed v2 tail plus chunk index: everything a seekable reader
/// needs to locate and bound every chunk without touching the payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V2Layout {
    /// Writer's records-per-chunk target (scratch sizing hint).
    pub chunk_target: u32,
    /// Total records across all chunks.
    pub total_records: u64,
    /// Byte offset of the index footer.
    pub index_offset: u64,
    /// Per-chunk metadata, in file order.
    pub chunks: Vec<ChunkMeta>,
}

impl V2Layout {
    /// Global record index at which each chunk starts; one extra entry at
    /// the end equal to `total_records`. This is what lets a range shard
    /// seek straight to its first chunk.
    pub fn cumulative_starts(&self) -> Vec<u64> {
        let mut cum = Vec::with_capacity(self.chunks.len() + 1);
        let mut total = 0u64;
        for c in &self.chunks {
            cum.push(total);
            total += u64::from(c.count);
        }
        cum.push(total);
        cum
    }
}

/// Validates a v2 header prefix (`buf` must hold at least the first 16
/// bytes of the file) and returns the writer's chunk target.
pub fn parse_v2_header(buf: &[u8]) -> Result<u32, DecodeError> {
    if buf.len() < HEADER_BYTES {
        return Err(DecodeError::TruncatedHeader);
    }
    let mut pos = 0;
    let magic = read_u32(buf, &mut pos);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = read_u32(buf, &mut pos);
    if version != VERSION_V2 {
        return Err(DecodeError::BadVersion(version));
    }
    Ok(read_u32(buf, &mut pos))
}

/// Parsed fixed-size tail, before the index itself is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Tail {
    /// Byte offset of the index footer.
    pub index_offset: u64,
    /// Number of chunks (and index entries).
    pub chunk_count: u64,
    /// Total records across all chunks.
    pub total_records: u64,
}

/// Validates the fixed-size tail (`tail` = the last [`TAIL_BYTES`] of the
/// file, `file_len` = total file size) and bounds-checks the index region.
pub fn parse_v2_tail(file_len: u64, tail: &[u8]) -> Result<V2Tail, DecodeError> {
    if tail.len() < TAIL_BYTES || file_len < (HEADER_BYTES + TAIL_BYTES) as u64 {
        return Err(DecodeError::TruncatedTail);
    }
    let tail = &tail[tail.len() - TAIL_BYTES..];
    let mut pos = 0;
    let index_offset = read_u64(tail, &mut pos);
    let chunk_count = read_u64(tail, &mut pos);
    let total_records = read_u64(tail, &mut pos);
    let magic = read_u32(tail, &mut pos);
    if magic != TAIL_MAGIC {
        return Err(DecodeError::BadTailMagic(magic));
    }
    let index_bytes =
        chunk_count
            .checked_mul(INDEX_ENTRY_BYTES as u64)
            .ok_or(DecodeError::BadFooter {
                reason: "chunk count overflows the index size",
            })?;
    if index_offset < HEADER_BYTES as u64
        || index_offset
            .checked_add(index_bytes)
            .and_then(|end| end.checked_add(TAIL_BYTES as u64))
            != Some(file_len)
    {
        return Err(DecodeError::BadFooter {
            reason: "index region does not fit between header and tail",
        });
    }
    Ok(V2Tail {
        index_offset,
        chunk_count,
        total_records,
    })
}

/// Parses and validates the index region (`index` = the bytes between
/// `tail.index_offset` and the tail): chunks must tile the byte range
/// `[HEADER_BYTES, index_offset)` exactly, in order, and their record
/// counts must sum to `total_records`.
pub fn parse_v2_index(tail: &V2Tail, index: &[u8]) -> Result<V2Layout, DecodeError> {
    if index.len() as u64 != tail.chunk_count * INDEX_ENTRY_BYTES as u64 {
        return Err(DecodeError::BadFooter {
            reason: "index region size mismatch",
        });
    }
    let mut chunks = Vec::with_capacity(tail.chunk_count as usize);
    let mut pos = 0usize;
    let mut expect_offset = HEADER_BYTES as u64;
    let mut total = 0u64;
    for _ in 0..tail.chunk_count {
        let offset = read_u64(index, &mut pos);
        let bytes = read_u32(index, &mut pos);
        let count = read_u32(index, &mut pos);
        if offset != expect_offset {
            return Err(DecodeError::BadFooter {
                reason: "chunks do not tile the payload region",
            });
        }
        if (bytes as usize) < chunk::CHUNK_HEADER_BYTES {
            return Err(DecodeError::BadFooter {
                reason: "chunk smaller than its header",
            });
        }
        expect_offset += u64::from(bytes);
        total += u64::from(count);
        chunks.push(ChunkMeta {
            offset,
            bytes,
            count,
        });
    }
    if expect_offset != tail.index_offset {
        return Err(DecodeError::BadFooter {
            reason: "chunks do not reach the index footer",
        });
    }
    if total != tail.total_records {
        return Err(DecodeError::BadFooter {
            reason: "chunk record counts do not sum to the total",
        });
    }
    Ok(V2Layout {
        chunk_target: 0, // caller fills from the header
        total_records: tail.total_records,
        index_offset: tail.index_offset,
        chunks,
    })
}

/// Parses a whole in-memory v2 file into its layout (header + tail +
/// index validated; chunk payloads untouched).
pub fn parse_v2_layout(buf: &[u8]) -> Result<V2Layout, DecodeError> {
    let chunk_target = parse_v2_header(buf)?;
    if buf.len() < HEADER_BYTES + TAIL_BYTES {
        return Err(DecodeError::TruncatedTail);
    }
    let tail = parse_v2_tail(buf.len() as u64, &buf[buf.len() - TAIL_BYTES..])?;
    let mut layout = parse_v2_index(
        &tail,
        &buf[tail.index_offset as usize..buf.len() - TAIL_BYTES],
    )?;
    layout.chunk_target = chunk_target;
    Ok(layout)
}

/// Decodes one chunk of an in-memory v2 file into `out` (appended),
/// cross-checking the chunk header against the index entry.
pub fn decode_v2_chunk(
    buf: &[u8],
    chunk_idx: u64,
    meta: &ChunkMeta,
    out: &mut Vec<TraceRecord>,
) -> Result<(), DecodeError> {
    let start = meta.offset as usize;
    let end = start + meta.bytes as usize;
    decode_chunk_bytes(&buf[start..end], chunk_idx, meta, out)
}

/// Decodes the bytes of one chunk (wherever they came from — a mapping, a
/// positioned read, or an in-memory buffer) into `out`, appended.
pub fn decode_chunk_bytes(
    bytes: &[u8],
    chunk_idx: u64,
    meta: &ChunkMeta,
    out: &mut Vec<TraceRecord>,
) -> Result<(), DecodeError> {
    let (count, _raw, payload) =
        chunk::split_chunk(bytes).map_err(|kind| DecodeError::BadChunk {
            chunk: chunk_idx,
            kind,
        })?;
    if count != meta.count {
        return Err(DecodeError::ChunkCountMismatch {
            chunk: chunk_idx,
            header: count,
            index: meta.count,
        });
    }
    chunk::decode_payload(payload, count, out).map_err(|kind| DecodeError::BadChunk {
        chunk: chunk_idx,
        kind,
    })
}

fn decode_v2(buf: &[u8]) -> Result<VecTrace, DecodeError> {
    let layout = parse_v2_layout(buf)?;
    // Pre-reserve the exact total instead of growing chunk by chunk.
    let mut records = Vec::with_capacity(layout.total_records as usize);
    for (i, meta) in layout.chunks.iter().enumerate() {
        decode_v2_chunk(buf, i as u64, meta, &mut records)?;
    }
    Ok(VecTrace::from_records(records))
}

/// Streaming v2 encoder: push records, get chunked output on any
/// [`Write`] sink. Buffers at most one chunk of records, so encoding a
/// paper-scale trace needs chunk-sized memory, not O(trace).
#[derive(Debug)]
pub struct ChunkWriter<W: Write> {
    sink: W,
    chunk_target: u32,
    pending: Vec<TraceRecord>,
    encode_buf: Vec<u8>,
    index: Vec<ChunkMeta>,
    offset: u64,
    total: u64,
}

/// What [`ChunkWriter::finish`] wrote, for logging and `trace info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Records written.
    pub records: u64,
    /// Chunks written.
    pub chunks: u64,
    /// Total file bytes, header/index/tail included.
    pub file_bytes: u64,
}

impl<W: Write> ChunkWriter<W> {
    /// Starts a v2 stream on `sink` with the default chunk target.
    pub fn new(sink: W) -> io::Result<Self> {
        Self::with_chunk_target(sink, DEFAULT_CHUNK_TARGET)
    }

    /// Starts a v2 stream with `chunk_target` records per chunk (clamped
    /// to at least 1). Smaller chunks seek finer and cap reader memory
    /// lower; larger chunks amortize framing better.
    pub fn with_chunk_target(mut sink: W, chunk_target: u32) -> io::Result<Self> {
        let chunk_target = chunk_target.max(1);
        let mut header = [0u8; HEADER_BYTES];
        header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&VERSION_V2.to_le_bytes());
        header[8..12].copy_from_slice(&chunk_target.to_le_bytes());
        sink.write_all(&header)?;
        Ok(Self {
            sink,
            chunk_target,
            pending: Vec::with_capacity(chunk_target as usize),
            encode_buf: Vec::new(),
            index: Vec::new(),
            offset: HEADER_BYTES as u64,
            total: 0,
        })
    }

    /// Appends one record, flushing a chunk when the target is reached.
    #[inline]
    pub fn push(&mut self, record: TraceRecord) -> io::Result<()> {
        self.pending.push(record);
        if self.pending.len() >= self.chunk_target as usize {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends every record of `source`.
    pub fn push_all(&mut self, source: impl Iterator<Item = TraceRecord>) -> io::Result<()> {
        for r in source {
            self.push(r)?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.encode_buf.clear();
        chunk::encode_chunk(&self.pending, &mut self.encode_buf);
        self.sink.write_all(&self.encode_buf)?;
        self.index.push(ChunkMeta {
            offset: self.offset,
            bytes: self.encode_buf.len() as u32,
            count: self.pending.len() as u32,
        });
        self.offset += self.encode_buf.len() as u64;
        self.total += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial chunk, writes the index and tail, and
    /// returns the sink and a summary.
    pub fn finish(mut self) -> io::Result<(W, WriteSummary)> {
        self.flush_chunk()?;
        let index_offset = self.offset;
        let mut footer = Vec::with_capacity(self.index.len() * INDEX_ENTRY_BYTES + TAIL_BYTES);
        for c in &self.index {
            footer.extend_from_slice(&c.offset.to_le_bytes());
            footer.extend_from_slice(&c.bytes.to_le_bytes());
            footer.extend_from_slice(&c.count.to_le_bytes());
        }
        footer.extend_from_slice(&index_offset.to_le_bytes());
        footer.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        footer.extend_from_slice(&self.total.to_le_bytes());
        footer.extend_from_slice(&TAIL_MAGIC.to_le_bytes());
        self.sink.write_all(&footer)?;
        self.sink.flush()?;
        let summary = WriteSummary {
            records: self.total,
            chunks: self.index.len() as u64,
            file_bytes: index_offset + footer.len() as u64,
        };
        Ok((self.sink, summary))
    }
}

/// Encodes a trace into a freshly allocated v2 buffer.
pub fn encode_v2(trace: &VecTrace) -> Vec<u8> {
    encode_v2_chunked(trace, DEFAULT_CHUNK_TARGET)
}

/// [`encode_v2`] with an explicit chunk target (tests use tiny chunks to
/// exercise many-chunk layouts cheaply).
pub fn encode_v2_chunked(trace: &VecTrace, chunk_target: u32) -> Vec<u8> {
    // Pre-reserve from the size hint: ~8 payload bytes/record in practice
    // plus framing; Vec growth from there is a single doubling at worst.
    let sink = Vec::with_capacity(HEADER_BYTES + TAIL_BYTES + trace.len() * 8);
    let mut w = ChunkWriter::with_chunk_target(sink, chunk_target).expect("Vec sink cannot fail");
    w.push_all(trace.iter()).expect("Vec sink cannot fail");
    let (buf, _) = w.finish().expect("Vec sink cannot fail");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> VecTrace {
        VecTrace::from_records(vec![
            TraceRecord::new(0x400123, 0x7fff_0000, MemOp::Load, 3),
            TraceRecord::new(0x400321, 0x7fff_0040, MemOp::Store, 0),
            TraceRecord::new(0x400999, u64::MAX, MemOp::Load, u32::MAX),
        ])
    }

    fn random_trace(rng: &mut crate::rng::Rng64, len: usize) -> VecTrace {
        VecTrace::from_records(
            (0..len)
                .map(|_| {
                    TraceRecord::new(
                        rng.next_u64() >> (rng.next_u64() % 64),
                        rng.next_u64() >> (rng.next_u64() % 64),
                        if rng.gen_bool(0.5) {
                            MemOp::Store
                        } else {
                            MemOp::Load
                        },
                        rng.next_u64() as u32,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn v1_roundtrip_preserves_records() {
        let t = sample_trace();
        let encoded = encode(&t);
        assert_eq!(encoded.len(), HEADER_BYTES + 3 * RECORD_BYTES);
        let back = decode(&encoded).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_roundtrips_in_both_versions() {
        let t = VecTrace::new();
        assert!(decode(&encode(&t)).unwrap().is_empty());
        let v2 = encode_v2(&t);
        assert_eq!(v2.len(), HEADER_BYTES + TAIL_BYTES);
        assert!(decode(&v2).unwrap().is_empty());
    }

    #[test]
    fn rejects_short_header() {
        assert_eq!(decode(&[0u8; 3]), Err(DecodeError::TruncatedHeader));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = encode(&sample_trace()).to_vec();
        b[0] ^= 0xff;
        assert!(matches!(decode(&b), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut b = encode(&sample_trace()).to_vec();
        b[4] = 0x7f;
        assert!(matches!(decode(&b), Err(DecodeError::BadVersion(0x7f))));
    }

    #[test]
    fn rejects_truncated_v1_body() {
        let b = encode(&sample_trace());
        let cut = &b[..b.len() - 1];
        assert!(matches!(
            decode(cut),
            Err(DecodeError::TruncatedBody {
                expected: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut b = encode(&sample_trace()).to_vec();
        let op_pos = HEADER_BYTES + RECORD_BYTES - 1;
        b[op_pos] = 9;
        assert_eq!(decode(&b), Err(DecodeError::BadOp { index: 0, byte: 9 }));
    }

    #[test]
    fn decode_error_display_is_informative() {
        let msg = DecodeError::TruncatedBody {
            expected: 5,
            available: 1,
        }
        .to_string();
        assert!(msg.contains('5') && msg.contains('1'));
    }

    #[test]
    fn v2_roundtrip_randomized_gaps_and_addresses() {
        // Property test over both versions: random gaps (full u32 range)
        // and addresses with max-delta jumps must survive encode → decode
        // bit-exactly, at several chunk sizes including mid-chunk ends.
        let mut rng = crate::rng::Rng64::seed_from_u64(0xC0DEC);
        for case in 0..128 {
            let len = rng.gen_index(500);
            let t = random_trace(&mut rng, len);
            let v1 = decode(&encode(&t)).unwrap();
            assert_eq!(v1, t, "v1 case {case}");
            for chunk_target in [1, 7, 64, DEFAULT_CHUNK_TARGET] {
                let back = decode(&encode_v2_chunked(&t, chunk_target)).unwrap();
                assert_eq!(back, t, "v2 case {case} chunk {chunk_target}");
            }
        }
    }

    #[test]
    fn v2_is_denser_than_v1_on_local_streams() {
        let t = VecTrace::from_records(
            (0..50_000u64)
                .map(|i| TraceRecord::new(0x400 + (i % 16) * 4, i * 64, MemOp::Load, 2))
                .collect(),
        );
        let v1 = encode(&t).len();
        let v2 = encode_v2(&t).len();
        assert!(
            (v2 as f64) < v1 as f64 * 0.35,
            "v2 {v2} bytes vs v1 {v1} bytes"
        );
    }

    #[test]
    fn v2_layout_reports_chunks() {
        let mut rng = crate::rng::Rng64::seed_from_u64(3);
        let t = random_trace(&mut rng, 1000);
        let buf = encode_v2_chunked(&t, 256);
        let layout = parse_v2_layout(&buf).unwrap();
        assert_eq!(layout.chunks.len(), 4);
        assert_eq!(layout.total_records, 1000);
        assert_eq!(layout.chunk_target, 256);
        assert_eq!(layout.cumulative_starts(), vec![0, 256, 512, 768, 1000]);
    }

    #[test]
    fn v2_rejects_truncated_tail() {
        let buf = encode_v2(&sample_trace());
        for cut in [buf.len() - 1, buf.len() - TAIL_BYTES, HEADER_BYTES + 1] {
            let r = decode(&buf[..cut]);
            assert!(r.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn v2_rejects_bad_tail_magic() {
        let mut buf = encode_v2(&sample_trace());
        let n = buf.len();
        buf[n - 1] ^= 0xff;
        assert!(matches!(decode(&buf), Err(DecodeError::BadTailMagic(_))));
    }

    #[test]
    fn v2_rejects_corrupt_index() {
        let t = sample_trace();
        let mut buf = encode_v2_chunked(&t, 2);
        // Flip a byte of the first index entry's offset field.
        let layout = parse_v2_layout(&buf).unwrap();
        buf[layout.index_offset as usize] ^= 0xff;
        assert!(matches!(decode(&buf), Err(DecodeError::BadFooter { .. })));
    }

    #[test]
    fn v2_rejects_corrupt_chunk_payload() {
        let t = VecTrace::from_records(
            (0..100u64)
                .map(|i| TraceRecord::new(i, u64::MAX - i * (1 << 40), MemOp::Load, 1))
                .collect(),
        );
        let mut buf = encode_v2_chunked(&t, 50);
        // Truncating inside the last chunk breaks the tile invariant, so
        // corrupt a count instead: chunk header count != index count.
        buf[HEADER_BYTES] ^= 0x01;
        let r = decode(&buf);
        assert!(
            matches!(
                r,
                Err(DecodeError::ChunkCountMismatch { .. }) | Err(DecodeError::BadChunk { .. })
            ),
            "{r:?}"
        );
    }

    #[test]
    fn error_source_chain_reaches_the_chunk_cause() {
        use std::error::Error;
        let e = DecodeError::BadChunk {
            chunk: 3,
            kind: ChunkDecodeError::Truncated,
        };
        let src = e.source().expect("chunk errors chain their cause");
        assert_eq!(src.to_string(), ChunkDecodeError::Truncated.to_string());
        let io_e = TraceIoError::from(e.clone());
        assert!(io_e.source().unwrap().source().is_some());
        let io2 = TraceIoError::from(io::Error::other("x"));
        assert!(io2.source().is_some());
    }

    #[test]
    fn chunk_writer_streams_without_buffering_the_trace() {
        let mut rng = crate::rng::Rng64::seed_from_u64(9);
        let t = random_trace(&mut rng, 10_000);
        let mut w = ChunkWriter::with_chunk_target(Vec::new(), 128).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
            // The writer never holds more than one chunk of records.
            assert!(w.pending.len() <= 128);
        }
        let (buf, summary) = w.finish().unwrap();
        assert_eq!(summary.records, 10_000);
        assert_eq!(summary.chunks, 10_000u64.div_ceil(128));
        assert_eq!(summary.file_bytes, buf.len() as u64);
        assert_eq!(decode(&buf).unwrap(), t);
    }
}
