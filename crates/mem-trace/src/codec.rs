//! Compact binary trace format.
//!
//! Layout: an 16-byte header (`magic`, `version`, record count) followed by
//! fixed-width 21-byte little-endian records (`pc: u64`, `addr: u64`,
//! `gap: u32`, `op: u8`). Fixed width keeps decode branch-free; a 500M-record
//! paper-scale trace is ~10 GB, matching the scale Pin traces have in
//! practice. The demo-scale traces used by the figure harness are generated
//! on the fly instead, so the codec mainly serves trace capture/replay.

use crate::record::{MemOp, TraceRecord};
use crate::VecTrace;

/// File magic: "RDHP".
pub const MAGIC: u32 = 0x5244_4850;
/// Current format version.
pub const VERSION: u32 = 1;
/// Encoded size of one record in bytes.
pub const RECORD_BYTES: usize = 8 + 8 + 4 + 1;
/// Encoded size of the header in bytes.
pub const HEADER_BYTES: usize = 4 + 4 + 8;

/// Errors produced while decoding a trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than a full header.
    TruncatedHeader,
    /// Magic number mismatch.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended before the promised record count.
    TruncatedBody {
        /// Records promised by the header.
        expected: u64,
        /// Records actually decodable.
        available: u64,
    },
    /// Invalid operation byte at the given record index.
    BadOp {
        /// Index of the offending record.
        index: u64,
        /// The invalid byte.
        byte: u8,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TruncatedHeader => write!(f, "trace buffer shorter than header"),
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::TruncatedBody {
                expected,
                available,
            } => {
                write!(
                    f,
                    "trace truncated: header promises {expected} records, buffer holds {available}"
                )
            }
            DecodeError::BadOp { index, byte } => {
                write!(f, "invalid op byte 0x{byte:02x} in record {index}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a trace into a freshly allocated buffer.
pub fn encode(trace: &VecTrace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + trace.len() * RECORD_BYTES);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for r in trace.records() {
        buf.extend_from_slice(&r.pc.to_le_bytes());
        buf.extend_from_slice(&r.addr.to_le_bytes());
        buf.extend_from_slice(&r.gap.to_le_bytes());
        buf.push(r.op.to_byte());
    }
    buf
}

/// Little-endian field reads over a cursor; bounds are pre-checked by the
/// header validation, so these only ever see complete records.
#[inline]
fn read_u32(buf: &[u8], pos: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes"));
    *pos += 4;
    v
}

#[inline]
fn read_u64(buf: &[u8], pos: &mut usize) -> u64 {
    let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
    *pos += 8;
    v
}

/// Decodes a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<VecTrace, DecodeError> {
    if buf.len() < HEADER_BYTES {
        return Err(DecodeError::TruncatedHeader);
    }
    let mut pos = 0;
    let magic = read_u32(buf, &mut pos);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = read_u32(buf, &mut pos);
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = read_u64(buf, &mut pos);
    let available = ((buf.len() - HEADER_BYTES) / RECORD_BYTES) as u64;
    if available < count {
        return Err(DecodeError::TruncatedBody {
            expected: count,
            available,
        });
    }
    let mut records = Vec::with_capacity(count as usize);
    for index in 0..count {
        let pc = read_u64(buf, &mut pos);
        let addr = read_u64(buf, &mut pos);
        let gap = read_u32(buf, &mut pos);
        let byte = buf[pos];
        pos += 1;
        let op = MemOp::from_byte(byte).ok_or(DecodeError::BadOp { index, byte })?;
        records.push(TraceRecord { pc, addr, gap, op });
    }
    Ok(VecTrace::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> VecTrace {
        VecTrace::from_records(vec![
            TraceRecord::new(0x400123, 0x7fff_0000, MemOp::Load, 3),
            TraceRecord::new(0x400321, 0x7fff_0040, MemOp::Store, 0),
            TraceRecord::new(0x400999, u64::MAX, MemOp::Load, u32::MAX),
        ])
    }

    #[test]
    fn roundtrip_preserves_records() {
        let t = sample_trace();
        let encoded = encode(&t);
        assert_eq!(encoded.len(), HEADER_BYTES + 3 * RECORD_BYTES);
        let back = decode(&encoded).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = VecTrace::new();
        let back = decode(&encode(&t)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_short_header() {
        assert_eq!(decode(&[0u8; 3]), Err(DecodeError::TruncatedHeader));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = encode(&sample_trace()).to_vec();
        b[0] ^= 0xff;
        assert!(matches!(decode(&b), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut b = encode(&sample_trace()).to_vec();
        b[4] = 0x7f;
        assert!(matches!(decode(&b), Err(DecodeError::BadVersion(0x7f))));
    }

    #[test]
    fn rejects_truncated_body() {
        let b = encode(&sample_trace());
        let cut = &b[..b.len() - 1];
        assert!(matches!(
            decode(cut),
            Err(DecodeError::TruncatedBody {
                expected: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut b = encode(&sample_trace()).to_vec();
        let op_pos = HEADER_BYTES + RECORD_BYTES - 1;
        b[op_pos] = 9;
        assert_eq!(decode(&b), Err(DecodeError::BadOp { index: 0, byte: 9 }));
    }

    #[test]
    fn decode_error_display_is_informative() {
        let msg = DecodeError::TruncatedBody {
            expected: 5,
            available: 1,
        }
        .to_string();
        assert!(msg.contains('5') && msg.contains('1'));
    }

    #[test]
    fn randomized_roundtrip() {
        // Deterministic replacement for the old property test: 256 traces
        // of random length/content must all survive encode → decode.
        let mut rng = crate::rng::Rng64::seed_from_u64(0xC0DEC);
        for _case in 0..256 {
            let len = rng.gen_index(200);
            let t = VecTrace::from_records(
                (0..len)
                    .map(|_| {
                        TraceRecord::new(
                            rng.next_u64(),
                            rng.next_u64(),
                            if rng.gen_bool(0.5) {
                                MemOp::Store
                            } else {
                                MemOp::Load
                            },
                            rng.next_u64() as u32,
                        )
                    })
                    .collect(),
            );
            let back = decode(&encode(&t)).unwrap();
            assert_eq!(back, t);
        }
    }
}
