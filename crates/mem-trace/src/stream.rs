//! Chunk-at-a-time replay of v2 trace files with bounded memory.
//!
//! [`StreamTrace`] opens a v2 file, validates its header/index/tail once,
//! and then serves records by decoding one chunk at a time into a
//! reusable scratch buffer. Steady-state replay therefore performs **zero
//! per-record heap allocation** and keeps at most one decoded chunk
//! (`chunk_target` records, ~1.3 MB at the default target) resident per
//! cursor, regardless of trace size.
//!
//! The bytes come from one of three backends behind the same abstraction:
//!
//! * **mmap** (default on Unix) — the kernel pages chunk bytes in on
//!   demand; decode reads straight out of the mapping, no copies.
//! * **positioned reads** — `pread`-style `read_exact_at` into a reusable
//!   raw buffer; no shared file cursor, so clones stay independent.
//! * **in-memory** — an owned buffer, used by [`StreamTrace::from_bytes`]
//!   and as the non-Unix fallback.
//!
//! Cloning a `StreamTrace` (or calling [`StreamTrace::shard`]) creates an
//! independent cursor over the *same* backend — one mapping shared by
//! every simulated core.
//!
//! Mid-stream corruption or I/O failure panics with context: the layout
//! is fully validated at open, so a payload that fails to decode later
//! means the file changed underneath us or the medium failed — neither is
//! recoverable mid-simulation. Use [`crate::codec::decode`] on the raw
//! bytes for fallible whole-file reading.

use crate::codec::{
    self, ChunkMeta, TraceIoError, V2Layout, WriteSummary, HEADER_BYTES, TAIL_BYTES,
};
use crate::record::TraceRecord;
use crate::shard::ShardSpec;
use crate::{TraceFeed, VecTrace};
use std::fs::File;
use std::io::{self, BufWriter, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Minimal raw mmap bindings. glibc is already linked through `std`, so
/// declaring the two symbols we need avoids a dependency on the `libc`
/// crate (this workspace is fully offline).
#[cfg(unix)]
mod mapping {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of a whole file.
    pub struct Mmap {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is PROT_READ and never mutated through this handle, so
    // sharing references across threads is sound.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only.
        pub fn map(file: &File, len: usize) -> io::Result<Self> {
            if len == 0 {
                // mmap rejects zero-length mappings; an empty file has no
                // bytes to serve anyway.
                return Ok(Self {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void*)-1.
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            if self.len == 0 {
                &[]
            } else {
                unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
            }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len != 0 {
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }

    impl std::fmt::Debug for Mmap {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mmap").field("len", &self.len).finish()
        }
    }
}

/// Where the file bytes come from. One abstraction so the decode path is
/// identical for mapped, positioned-read, and in-memory backends.
#[derive(Debug)]
enum Store {
    #[cfg(unix)]
    Mapped(mapping::Mmap),
    #[cfg(unix)]
    File {
        file: File,
        len: u64,
    },
    Mem(Vec<u8>),
}

impl Store {
    fn len(&self) -> u64 {
        match self {
            #[cfg(unix)]
            Store::Mapped(m) => m.bytes().len() as u64,
            #[cfg(unix)]
            Store::File { len, .. } => *len,
            Store::Mem(b) => b.len() as u64,
        }
    }

    /// Returns `len` bytes starting at `offset` — borrowed straight from
    /// the backing buffer when one exists, read into `scratch` otherwise.
    /// Callers guarantee the range lies within the file (the validated
    /// layout bounds every chunk).
    fn read<'a>(
        &'a self,
        offset: u64,
        len: usize,
        scratch: &'a mut Vec<u8>,
    ) -> io::Result<&'a [u8]> {
        match self {
            #[cfg(unix)]
            Store::Mapped(m) => Ok(&m.bytes()[offset as usize..offset as usize + len]),
            #[cfg(unix)]
            Store::File { file, .. } => {
                use std::os::unix::fs::FileExt;
                scratch.clear();
                scratch.resize(len, 0);
                file.read_exact_at(scratch, offset)?;
                Ok(&scratch[..])
            }
            Store::Mem(b) => Ok(&b[offset as usize..offset as usize + len]),
        }
    }

    fn backend(&self) -> &'static str {
        match self {
            #[cfg(unix)]
            Store::Mapped(_) => "mmap",
            #[cfg(unix)]
            Store::File { .. } => "pread",
            Store::Mem(_) => "mem",
        }
    }
}

/// The shared, immutable side of an open trace: backend + validated
/// layout. Every cursor ([`StreamTrace`]) holds an `Arc` to one of these.
#[derive(Debug)]
struct TraceInner {
    store: Store,
    layout: V2Layout,
    /// Global record index at which each chunk starts, plus a final entry
    /// equal to `total_records`; binary-searched to seek.
    cum: Vec<u64>,
    path: Option<PathBuf>,
}

/// Summary of an open trace file, for `trace info` and logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInfo {
    /// Total records in the file.
    pub total_records: u64,
    /// Number of chunks.
    pub chunks: u64,
    /// The writer's records-per-chunk target.
    pub chunk_target: u32,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Bytes of compressed chunk payloads (header/index/tail excluded).
    pub payload_bytes: u64,
}

impl TraceInfo {
    /// Fixed-width (v1) bytes the same records would occupy.
    pub fn raw_bytes(&self) -> u64 {
        self.total_records * codec::RECORD_BYTES as u64
    }

    /// Compressed payload bytes per record.
    pub fn bytes_per_record(&self) -> f64 {
        if self.total_records == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.total_records as f64
        }
    }
}

/// A cursor over an open v2 trace file: implements [`Iterator`] (one
/// record at a time) and [`TraceFeed`] (bulk refills that `memcpy` out of
/// the decoded chunk). See the module docs for the memory model.
#[derive(Debug)]
pub struct StreamTrace {
    inner: Arc<TraceInner>,
    /// Index of the currently decoded chunk; `usize::MAX` = none yet.
    chunk: usize,
    /// Decoded records of `chunk`, reused across refills.
    decoded: Vec<TraceRecord>,
    /// Raw-byte scratch for the positioned-read backend, reused likewise.
    raw: Vec<u8>,
    /// Global index of `decoded[0]`.
    base: u64,
    /// Shard window end (`next_global` walks `start, start+stride, … < end`).
    end: u64,
    stride: u64,
    /// Next global index to emit.
    next_global: u64,
    spec: ShardSpec,
}

impl StreamTrace {
    /// Opens `path`, preferring a memory mapping and falling back to
    /// positioned reads (e.g. when the file lives on a filesystem that
    /// refuses mmap).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(unix)]
        {
            let store = match mapping::Mmap::map(&file, len as usize) {
                Ok(m) => Store::Mapped(m),
                Err(_) => Store::File { file, len },
            };
            Self::from_store(store, Some(path.to_path_buf()))
        }
        #[cfg(not(unix))]
        {
            drop(len);
            let mut buf = Vec::new();
            (&file).read_to_end(&mut buf)?;
            Self::from_store(Store::Mem(buf), Some(path.to_path_buf()))
        }
    }

    /// Opens `path` with the positioned-read backend (no mapping), the
    /// bounded-memory path for files larger than address space comfort or
    /// for explicitly avoiding page-cache mappings. On non-Unix targets
    /// this loads the file into memory.
    pub fn open_buffered(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let path = path.as_ref();
        let file = File::open(path)?;
        #[cfg(unix)]
        {
            let len = file.metadata()?.len();
            Self::from_store(Store::File { file, len }, Some(path.to_path_buf()))
        }
        #[cfg(not(unix))]
        {
            let mut buf = Vec::new();
            (&file).read_to_end(&mut buf)?;
            Self::from_store(Store::Mem(buf), Some(path.to_path_buf()))
        }
    }

    /// Wraps an in-memory v2 buffer (tests, benches, pipes).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, TraceIoError> {
        Self::from_store(Store::Mem(bytes), None)
    }

    fn from_store(store: Store, path: Option<PathBuf>) -> Result<Self, TraceIoError> {
        let layout = load_layout(&store)?;
        let cum = layout.cumulative_starts();
        let inner = Arc::new(TraceInner {
            store,
            layout,
            cum,
            path,
        });
        Ok(Self::cursor(inner, ShardSpec::All))
    }

    fn cursor(inner: Arc<TraceInner>, spec: ShardSpec) -> Self {
        let total = inner.layout.total_records;
        let (start, end, stride) = spec.window(total);
        Self {
            inner,
            chunk: usize::MAX,
            decoded: Vec::new(),
            raw: Vec::new(),
            base: 0,
            end,
            stride,
            next_global: start,
            spec,
        }
    }

    /// A fresh cursor over the same open file restricted to `spec`'s
    /// window. The backend (mapping or file handle) is shared; scratch
    /// buffers are per-cursor.
    pub fn shard(&self, spec: ShardSpec) -> StreamTrace {
        Self::cursor(Arc::clone(&self.inner), spec)
    }

    /// This cursor's shard spec.
    pub fn shard_spec(&self) -> ShardSpec {
        self.spec
    }

    /// Total records in the file (not the shard window).
    pub fn total_records(&self) -> u64 {
        self.inner.layout.total_records
    }

    /// Records this cursor has yet to emit.
    pub fn remaining(&self) -> u64 {
        if self.end > self.next_global {
            (self.end - self.next_global).div_ceil(self.stride)
        } else {
            0
        }
    }

    /// File-level summary for display.
    pub fn info(&self) -> TraceInfo {
        let l = &self.inner.layout;
        TraceInfo {
            total_records: l.total_records,
            chunks: l.chunks.len() as u64,
            chunk_target: l.chunk_target,
            file_bytes: self.inner.store.len(),
            payload_bytes: l.index_offset - HEADER_BYTES as u64,
        }
    }

    /// Which backend serves the bytes: `"mmap"`, `"pread"`, or `"mem"`.
    pub fn backend(&self) -> &'static str {
        self.inner.store.backend()
    }

    /// The file path, when opened from one.
    pub fn path(&self) -> Option<&Path> {
        self.inner.path.as_deref()
    }

    /// Records currently resident in this cursor's decoded scratch — the
    /// quantity the bounded-memory guarantee is about: it never exceeds
    /// the largest chunk in the file.
    pub fn resident_records(&self) -> usize {
        self.decoded.capacity()
    }

    /// Decodes the chunk containing global record `g` into the scratch
    /// buffer. `g` must be `< total_records`.
    #[cold]
    fn load_chunk_containing(&mut self, g: u64) {
        let inner = &*self.inner;
        // Last chunk whose start is <= g; duplicate starts (empty chunks)
        // resolve to the last, i.e. the one actually containing g.
        let n = inner.layout.chunks.len();
        let idx = inner.cum[..n].partition_point(|&s| s <= g) - 1;
        let meta: &ChunkMeta = &inner.layout.chunks[idx];
        let bytes = inner
            .store
            .read(meta.offset, meta.bytes as usize, &mut self.raw)
            .unwrap_or_else(|e| panic!("trace chunk {idx} read failed: {e}"));
        self.decoded.clear();
        codec::decode_chunk_bytes(bytes, idx as u64, meta, &mut self.decoded)
            .unwrap_or_else(|e| panic!("trace chunk {idx} corrupt after validation: {e}"));
        metrics::TRACE_CHUNKS_DECODED.incr();
        self.chunk = idx;
        self.base = inner.cum[idx];
        debug_assert!(g >= self.base && g < self.base + self.decoded.len() as u64);
    }

    /// True when the chunk holding `g` is already decoded.
    #[inline]
    fn resident(&self, g: u64) -> bool {
        self.chunk != usize::MAX && g >= self.base && g < self.base + self.decoded.len() as u64
    }
}

impl Clone for StreamTrace {
    /// A rewound cursor over the same file and shard window (scratch is
    /// not cloned; it refills on first use).
    fn clone(&self) -> Self {
        Self::cursor(Arc::clone(&self.inner), self.spec)
    }
}

impl Iterator for StreamTrace {
    type Item = TraceRecord;

    #[inline]
    fn next(&mut self) -> Option<TraceRecord> {
        let g = self.next_global;
        if g >= self.end {
            return None;
        }
        if !self.resident(g) {
            self.load_chunk_containing(g);
        }
        let r = self.decoded[(g - self.base) as usize];
        self.next_global = g + self.stride;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for StreamTrace {}

impl TraceFeed for StreamTrace {
    /// Bulk refill: for stride-1 windows this is an `extend_from_slice`
    /// straight out of the decoded chunk — one bounds check and a
    /// `memcpy` per chunk crossing instead of a virtual call per record.
    fn refill(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        let mut pushed = 0usize;
        while pushed < max {
            let g = self.next_global;
            if g >= self.end {
                break;
            }
            if !self.resident(g) {
                // The consumer outran the decoded window: this refill
                // stalls on a chunk read + decode.
                metrics::TRACE_REFILL_STALLS.incr();
                self.load_chunk_containing(g);
            }
            let lo = (g - self.base) as usize;
            if self.stride == 1 {
                let in_chunk = self.decoded.len() - lo;
                let want = (max - pushed).min((self.end - g) as usize);
                let take = in_chunk.min(want);
                out.extend_from_slice(&self.decoded[lo..lo + take]);
                pushed += take;
                self.next_global += take as u64;
            } else {
                out.push(self.decoded[lo]);
                pushed += 1;
                self.next_global += self.stride;
            }
        }
        pushed
    }
}

/// Reads the layout (header + tail + index) through the store — three
/// bounded reads, so opening a 10 GB trace touches only its edges.
fn load_layout(store: &Store) -> Result<V2Layout, TraceIoError> {
    let file_len = store.len();
    let mut scratch = Vec::new();
    if file_len < HEADER_BYTES as u64 {
        return Err(codec::DecodeError::TruncatedHeader.into());
    }
    let chunk_target = codec::parse_v2_header(store.read(0, HEADER_BYTES, &mut scratch)?)?;
    if file_len < (HEADER_BYTES + TAIL_BYTES) as u64 {
        return Err(codec::DecodeError::TruncatedTail.into());
    }
    let tail = codec::parse_v2_tail(
        file_len,
        store.read(file_len - TAIL_BYTES as u64, TAIL_BYTES, &mut scratch)?,
    )?;
    let index_bytes = (file_len - TAIL_BYTES as u64 - tail.index_offset) as usize;
    let mut layout = codec::parse_v2_index(
        &tail,
        store.read(tail.index_offset, index_bytes, &mut scratch)?,
    )?;
    layout.chunk_target = chunk_target;
    Ok(layout)
}

/// Decodes a whole trace file (either version) into memory.
pub fn read_any(path: impl AsRef<Path>) -> Result<VecTrace, TraceIoError> {
    let mut buf = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut buf)?;
    Ok(codec::decode(&buf)?)
}

/// Streams `source` into a v2 file at `path` through a buffered
/// [`codec::ChunkWriter`]; memory use is one chunk, not the trace.
pub fn write_v2_file(
    path: impl AsRef<Path>,
    source: impl Iterator<Item = TraceRecord>,
    chunk_target: u32,
) -> Result<WriteSummary, TraceIoError> {
    let file = File::create(path.as_ref())?;
    let mut w = codec::ChunkWriter::with_chunk_target(BufWriter::new(file), chunk_target)?;
    w.push_all(source)?;
    let (sink, summary) = w.finish()?;
    sink.into_inner().map_err(io::IntoInnerError::into_error)?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode, encode_v2_chunked, DEFAULT_CHUNK_TARGET};
    use crate::record::MemOp;
    use crate::rng::Rng64;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Unique temp path; removed by `TempPath::drop`.
    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            TempPath(std::env::temp_dir().join(format!(
                "redhip-stream-{}-{n}-{tag}.trace",
                std::process::id()
            )))
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn random_trace(seed: u64, len: usize) -> VecTrace {
        let mut rng = Rng64::seed_from_u64(seed);
        VecTrace::from_records(
            (0..len)
                .map(|_| {
                    TraceRecord::new(
                        rng.next_u64() >> rng.gen_index(64) as u32,
                        rng.next_u64() >> rng.gen_index(64) as u32,
                        if rng.gen_bool(0.4) {
                            MemOp::Store
                        } else {
                            MemOp::Load
                        },
                        (rng.next_u64() >> 40) as u32,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn streams_from_memory_buffer() {
        let t = random_trace(1, 3000);
        let s = StreamTrace::from_bytes(encode_v2_chunked(&t, 128)).unwrap();
        assert_eq!(s.total_records(), 3000);
        assert_eq!(s.len(), 3000);
        let back: Vec<_> = s.collect();
        assert_eq!(back, t.records());
    }

    #[test]
    fn streams_from_file_with_both_backends() {
        let t = random_trace(2, 5000);
        let tmp = TempPath::new("backends");
        write_v2_file(&tmp.0, t.iter(), 512).unwrap();
        for s in [
            StreamTrace::open(&tmp.0).unwrap(),
            StreamTrace::open_buffered(&tmp.0).unwrap(),
        ] {
            assert_eq!(s.total_records(), 5000);
            let backend = s.backend();
            let back: Vec<_> = s.collect();
            assert_eq!(back, t.records(), "backend {backend}");
        }
    }

    #[test]
    fn write_summary_matches_file() {
        let t = random_trace(3, 1000);
        let tmp = TempPath::new("summary");
        let summary = write_v2_file(&tmp.0, t.iter(), 300).unwrap();
        assert_eq!(summary.records, 1000);
        assert_eq!(summary.chunks, 4);
        assert_eq!(summary.file_bytes, std::fs::metadata(&tmp.0).unwrap().len());
        let s = StreamTrace::open(&tmp.0).unwrap();
        let info = s.info();
        assert_eq!(info.total_records, 1000);
        assert_eq!(info.chunks, 4);
        assert_eq!(info.chunk_target, 300);
        assert_eq!(info.file_bytes, summary.file_bytes);
        assert!(info.bytes_per_record() > 0.0);
        assert!(info.raw_bytes() > info.payload_bytes);
    }

    #[test]
    fn resident_memory_is_bounded_by_chunk_size() {
        let t = random_trace(4, 10_000);
        let mut s = StreamTrace::from_bytes(encode_v2_chunked(&t, 64)).unwrap();
        assert_eq!(s.resident_records(), 0);
        let mut n = 0usize;
        for _ in s.by_ref() {
            n += 1;
        }
        assert_eq!(n, 10_000);
        // Scratch capacity never grew beyond one chunk.
        assert!(
            s.resident_records() <= 64,
            "resident {} records",
            s.resident_records()
        );
    }

    #[test]
    fn interleave_shards_remerge_to_original() {
        let t = random_trace(5, 4097);
        let s = StreamTrace::from_bytes(encode_v2_chunked(&t, 100)).unwrap();
        let shards = 4u32;
        let parts: Vec<Vec<TraceRecord>> = (0..shards)
            .map(|k| {
                s.shard(ShardSpec::Interleave { shards, index: k })
                    .collect()
            })
            .collect();
        let mut rebuilt = Vec::new();
        for i in 0..t.len() {
            rebuilt.push(parts[i % shards as usize][i / shards as usize]);
        }
        assert_eq!(rebuilt, t.records());
    }

    #[test]
    fn range_shards_concatenate_to_original() {
        let t = random_trace(6, 1009);
        let s = StreamTrace::from_bytes(encode_v2_chunked(&t, 64)).unwrap();
        let mut rebuilt = Vec::new();
        for k in 0..3u32 {
            let part = s.shard(ShardSpec::Range {
                shards: 3,
                index: k,
            });
            assert_eq!(part.len() as u64, part.remaining());
            rebuilt.extend(part);
        }
        assert_eq!(rebuilt, t.records());
    }

    #[test]
    fn refill_matches_iteration() {
        let t = random_trace(7, 2500);
        let buf = encode_v2_chunked(&t, 97);
        for spec in [
            ShardSpec::All,
            ShardSpec::Interleave {
                shards: 3,
                index: 1,
            },
            ShardSpec::Range {
                shards: 4,
                index: 2,
            },
        ] {
            let base = StreamTrace::from_bytes(buf.clone()).unwrap();
            let by_iter: Vec<_> = base.shard(spec).collect();
            let mut feed = base.shard(spec);
            let mut by_feed = Vec::new();
            loop {
                let got = feed.refill(&mut by_feed, 128);
                assert!(got <= 128);
                if got == 0 {
                    break;
                }
            }
            assert_eq!(by_feed, by_iter, "{spec:?}");
        }
    }

    #[test]
    fn clone_rewinds_to_window_start() {
        let t = random_trace(8, 600);
        let mut s = StreamTrace::from_bytes(encode_v2_chunked(&t, 50)).unwrap();
        for _ in 0..100 {
            s.next();
        }
        let fresh: Vec<_> = s.clone().collect();
        assert_eq!(fresh, t.records());
        assert_eq!(s.remaining(), 500);
    }

    #[test]
    fn empty_trace_streams_empty() {
        let s = StreamTrace::from_bytes(encode_v2_chunked(&VecTrace::new(), 8)).unwrap();
        assert_eq!(s.total_records(), 0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn open_rejects_v1_and_garbage() {
        let tmp = TempPath::new("v1");
        std::fs::write(&tmp.0, encode(&random_trace(9, 10))).unwrap();
        assert!(matches!(
            StreamTrace::open(&tmp.0),
            Err(TraceIoError::Decode(codec::DecodeError::BadVersion(1)))
        ));
        // read_any still handles v1.
        assert_eq!(read_any(&tmp.0).unwrap(), random_trace(9, 10));
        assert!(StreamTrace::open("/nonexistent/redhip.trace").is_err());
    }

    #[test]
    fn default_chunk_target_single_chunk_roundtrip() {
        let t = random_trace(10, 1000);
        let s = StreamTrace::from_bytes(encode_v2_chunked(&t, DEFAULT_CHUNK_TARGET)).unwrap();
        assert_eq!(s.info().chunks, 1);
        assert_eq!(s.collect::<Vec<_>>(), t.records());
    }
}
