//! A small, dependency-free JSON library.
//!
//! The build environment has no access to a crates registry, so the
//! workspace cannot depend on `serde`/`serde_json`. This crate provides the
//! subset the harness actually needs: a [`Json`] value type preserving
//! object-key order, a compact and a pretty writer, a strict parser, a
//! [`json!`] construction macro, and [`ToJson`]/[`FromJson`] traits that
//! member crates implement by hand for their result/config types.

/// A JSON value.
///
/// Numbers are split into `Int` and `Float` so counters serialize without a
/// fractional part; object members keep insertion order (like
/// `serde_json`'s `preserve_order`), which keeps written files diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (anything written without `.` or exponent).
    Int(i64),
    /// A floating-point number. Non-finite values write as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// True for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// True for `Json::Obj`.
    pub fn is_object(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `i64` (floats only when integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object members.
    pub fn as_object(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up an object member.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that errors with the missing key's name — the
    /// workhorse of hand-written [`FromJson`] impls.
    pub fn member(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing member `{key}`"))
    }

    /// `member(key)` then `as_u64`.
    pub fn u64_of(&self, key: &str) -> Result<u64, String> {
        self.member(key)?
            .as_u64()
            .ok_or_else(|| format!("member `{key}` is not a u64"))
    }

    /// `member(key)` then `as_f64`.
    pub fn f64_of(&self, key: &str) -> Result<f64, String> {
        self.member(key)?
            .as_f64()
            .ok_or_else(|| format!("member `{key}` is not a number"))
    }

    /// `member(key)` then `as_str`.
    pub fn str_of(&self, key: &str) -> Result<&str, String> {
        self.member(key)?
            .as_str()
            .ok_or_else(|| format!("member `{key}` is not a string"))
    }

    /// `member(key)` then `as_bool`.
    pub fn bool_of(&self, key: &str) -> Result<bool, String> {
        self.member(key)?
            .as_bool()
            .ok_or_else(|| format!("member `{key}` is not a bool"))
    }

    /// `member(key)` then `as_array`.
    pub fn arr_of(&self, key: &str) -> Result<&Vec<Json>, String> {
        self.member(key)?
            .as_array()
            .ok_or_else(|| format!("member `{key}` is not an array"))
    }

    /// Inserts or replaces an object member. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(m) => {
                if let Some(slot) = m.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    m.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Shared constant for [`std::ops::Index`] on missing members.
    const NULL: Json = Json::Null;

    /// Compact serialization.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest-roundtrip Display is valid JSON, but
                    // force a fractional part so floats re-parse as floats.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- From impls

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// Member access; yields `Json::Null` for missing keys or non-objects
    /// (the `serde_json` convention, convenient in tests).
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&Json::NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// Element access; yields `Json::Null` out of bounds or on non-arrays.
    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(i).unwrap_or(&Json::NULL),
            _ => &Json::NULL,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Self {
        Json::Float(v as f64)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Self {
                Json::Int(i64::try_from(v).expect("integer out of i64 range"))
            }
        }
    )*};
}
from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl From<&String> for Json {
    fn from(v: &String) -> Self {
        Json::Str(v.clone())
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Json>> From<&[T]> for Json {
    fn from(v: &[T]) -> Self {
        Json::Arr(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Json>> From<&Vec<T>> for Json {
    fn from(v: &Vec<T>) -> Self {
        Json::Arr(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>, const N: usize> From<[T; N]> for Json {
    fn from(v: [T; N]) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Json::Null,
        }
    }
}

// -------------------------------------------------------------------- macro

/// Builds a [`Json`] value.
///
/// Supports the three shapes the harness uses: `json!({ "key": expr, ... })`
/// (keys must be string literals), `json!([expr, ...])`, and `json!(expr)`
/// for any `Into<Json>` expression. Unlike `serde_json::json!`, object and
/// array literals do not nest inside one another directly — wrap inner
/// literals in their own `json!` call.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Json::Obj(vec![ $( (($k).to_string(), $crate::Json::from($v)) ),* ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Json::Arr(vec![ $( $crate::Json::from($v) ),* ])
    };
    ($v:expr) => { $crate::Json::from($v) };
}

// ------------------------------------------------------------------- traits

/// Hand-written serialization to a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Hand-written deserialization from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, or explains what was malformed.
    fn from_json(v: &Json) -> Result<Self, String>;
}

// ------------------------------------------------------------------- parser

/// Parses a JSON document (strict: one value, optionally surrounded by
/// whitespace).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine surrogate pairs; lone surrogates error.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            s.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number `{s}`"))
        } else {
            // Integers beyond i64 fall back to f64 like serde_json does.
            s.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| s.parse::<f64>().map(Json::Float))
                .map_err(|_| format!("bad number `{s}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound_value() {
        let v = json!({
            "name": "probe",
            "count": 42u64,
            "ratio": 0.5f64,
            "flags": vec![true, false],
            "nested": json!({"inner": 1i64}),
            "nothing": json!(null),
        });
        let text = v.pretty();
        let back = parse(&text).expect("parse");
        assert_eq!(v, back);
        let compact = v.dump();
        assert_eq!(parse(&compact).expect("parse compact"), v);
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        let v = parse("[1, 1.0, -3, 2.5e3]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0], Json::Int(1));
        assert_eq!(a[1], Json::Float(1.0));
        assert_eq!(a[2], Json::Int(-3));
        assert_eq!(a[3], Json::Float(2500.0));
        // Floats always re-serialize with a fractional marker.
        assert_eq!(Json::Float(1.0).dump(), "1.0");
        assert_eq!(Json::Int(1).dump(), "1");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}ε";
        let v = Json::Str(s.to_string());
        assert_eq!(parse(&v.dump()).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn object_access_helpers() {
        let v = json!({"a": 7u64, "b": "x", "c": vec![1i64, 2]});
        assert_eq!(v.u64_of("a").unwrap(), 7);
        assert_eq!(v.str_of("b").unwrap(), "x");
        assert_eq!(v.arr_of("c").unwrap().len(), 2);
        assert!(v.u64_of("missing").is_err());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut v = json!({"a": 1i64});
        v.set("a", Json::Int(2));
        v.set("b", Json::Str("new".into()));
        assert_eq!(v.u64_of("a").unwrap(), 2);
        assert_eq!(v.str_of("b").unwrap(), "new");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_write_as_null() {
        assert_eq!(Json::Float(f64::NAN).dump(), "null");
        assert_eq!(Json::Float(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"k": vec![1i64]});
        assert_eq!(v.pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
