//! Process-wide metrics registry: atomic counters, gauges, log2-bucket
//! histograms, and span timers, plus the `redhip-metrics/v1` snapshot and
//! the [`RunManifest`] run-identity record.
//!
//! Everything is `std`-only and allocation-free on the record path. All
//! metrics are defined *centrally* in this crate as `static` items (see
//! the "registry" section below), so instrumented crates — the worker
//! pool, the sweep engine, trace ingestion, the parallel simulation
//! engine — just call e.g. `metrics::POOL_STEALS.incr()` without any
//! registration protocol, and the snapshot writer can enumerate every
//! metric from one table.
//!
//! The registry is **disabled by default**: every record operation first
//! loads one relaxed [`AtomicBool`] and returns, so uninstrumented runs
//! pay a single predictable branch per site (the observer-overhead bench
//! pins this within noise). Enable it with [`enable`] — the CLIs do so
//! when `--metrics` is passed.
//!
//! Values accumulate monotonically for the lifetime of the process; there
//! is deliberately no reset (tests assert before/after deltas instead, so
//! parallel test threads never stomp each other).

use minijson::{json, Json, ToJson};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Schema tag on the first line of every metrics snapshot.
pub const METRICS_SCHEMA: &str = "redhip-metrics/v1";

/// Schema tag inside every run manifest.
pub const MANIFEST_SCHEMA: &str = "redhip-manifest/v1";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on for the whole process.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns metric recording off (records become no-ops again).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the registry is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ------------------------------------------------------------ metric types

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter named `name` (`const`: counters are `static` items).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n`. No-op while the registry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge that also tracks its high-water mark.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// A new gauge named `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            high: AtomicU64::new(0),
        }
    }

    /// Records the current value (and bumps the high-water mark).
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
            self.high.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Last recorded value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever recorded.
    pub fn high(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` counts values whose bit length
/// is `i` (so `[2^(i-1), 2^i)`), with everything `>= 2^62` folded into the
/// last bucket and zero in bucket 0.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed log2-bucket histogram.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// A new histogram named `name`.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            let b = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
            self.buckets[b].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (mean = sum / count).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }
}

/// A span timer: accumulated wall nanoseconds plus a span count.
///
/// [`Timer::start`] returns a guard that records on drop; when the
/// registry is disabled the guard holds no [`Instant`] and drop is free.
#[derive(Debug)]
pub struct Timer {
    name: &'static str,
    nanos: AtomicU64,
    count: AtomicU64,
}

impl Timer {
    /// A new timer named `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Starts a span; the returned guard records the elapsed wall time
    /// when dropped.
    #[inline]
    pub fn start(&self) -> Span<'_> {
        Span {
            timer: self,
            started: if enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Records `ns` nanoseconds directly (one span).
    #[inline]
    pub fn add_ns(&self, ns: u64) {
        if enabled() {
            self.nanos.fetch_add(ns, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accumulated nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Accumulated seconds.
    pub fn secs(&self) -> f64 {
        self.nanos() as f64 / 1e9
    }

    /// Number of spans recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Drop guard returned by [`Timer::start`].
#[derive(Debug)]
pub struct Span<'a> {
    timer: &'a Timer,
    started: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.started.take() {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            // Record even if the registry was disabled mid-span: the span
            // was started under an enabled registry, so its time counts.
            self.timer.nanos.fetch_add(ns, Ordering::Relaxed);
            self.timer.count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------- registry
//
// Every metric in the process, defined here so snapshots can enumerate
// them from one table. Naming: `<subsystem>.<what>`, with phase timers
// under `phase.*` (those become the manifest's phase-timing breakdown).

/// Worker-thread count of the most recent pool run (high = max ever).
pub static POOL_WORKERS: Gauge = Gauge::new("pool.workers");
/// Jobs executed by pool workers (local pops + injector + steals).
pub static POOL_JOBS: Counter = Counter::new("pool.jobs");
/// Jobs obtained by stealing from another worker's deque.
pub static POOL_STEALS: Counter = Counter::new("pool.steals");
/// Wall nanoseconds workers spent running jobs.
pub static POOL_BUSY_NS: Counter = Counter::new("pool.busy_ns");
/// Wall nanoseconds workers spent spinning/sleeping for work.
pub static POOL_IDLE_NS: Counter = Counter::new("pool.idle_ns");
/// Pending-job count sampled each time a worker looks for work.
pub static POOL_QUEUE_DEPTH: Histogram = Histogram::new("pool.queue_depth");

/// Sweep cells served from the result cache (memory or disk).
pub static SWEEP_CACHE_HITS: Counter = Counter::new("sweep.cache_hits");
/// Sweep cells that had to be simulated.
pub static SWEEP_CACHE_MISSES: Counter = Counter::new("sweep.cache_misses");
/// Cells actually simulated (after dedup and cache).
pub static SWEEP_CELLS_SIMULATED: Counter = Counter::new("sweep.cells_simulated");
/// References simulated across all cells of a sweep.
pub static SWEEP_REFS_SIMULATED: Counter = Counter::new("sweep.refs_simulated");

/// v2 trace chunks decoded from disk.
pub static TRACE_CHUNKS_DECODED: Counter = Counter::new("trace.chunks_decoded");
/// Feed refills that stalled on decoding at least one new chunk.
pub static TRACE_REFILL_STALLS: Counter = Counter::new("trace.refill_stalls");

/// Registry-predictor probes (one per L1 miss of a custom mechanism).
pub static PRED_PROBES: Counter = Counter::new("pred.probes");
/// Probes that produced a confident steer (level or off-chip).
pub static PRED_STEERED: Counter = Counter::new("pred.steered");
/// Confident steers that turned out wrong (penalty charged).
pub static PRED_MISPREDICTS: Counter = Counter::new("pred.mispredicts");
/// L1 hits whose tag-way reads were skipped by a memo (WayMemo).
pub static PRED_MEMO_SKIPS: Counter = Counter::new("pred.memo_skips");

/// Bound–weave quanta (scheduler rounds) executed.
pub static PAR_QUANTA: Counter = Counter::new("par.quanta");
/// Epoch rollbacks triggered by cross-core LLC-victim conflicts.
pub static PAR_ROLLBACKS: Counter = Counter::new("par.rollbacks");
/// References replayed sequentially inside rollback redo passes.
pub static PAR_REDO_REFS: Counter = Counter::new("par.redo_refs");

/// Sweep planning (building the deduped job graph).
pub static PHASE_PLAN: Timer = Timer::new("phase.plan");
/// Simulation proper (the pool running cells, or a single run).
pub static PHASE_SIMULATE: Timer = Timer::new("phase.simulate");
/// Main-thread weave: committing shared-level events in global order.
pub static PHASE_WEAVE: Timer = Timer::new("phase.weave");
/// Rollback redo: exact sequential replay after a conflict.
pub static PHASE_REDO: Timer = Timer::new("phase.redo");
/// Merging per-core results into the final aggregate.
pub static PHASE_MERGE: Timer = Timer::new("phase.merge");
/// Rendering figures/tables from simulated results.
pub static PHASE_RENDER: Timer = Timer::new("phase.render");

enum Metric {
    C(&'static Counter),
    G(&'static Gauge),
    H(&'static Histogram),
    T(&'static Timer),
}

fn registry() -> Vec<Metric> {
    use Metric::*;
    vec![
        G(&POOL_WORKERS),
        C(&POOL_JOBS),
        C(&POOL_STEALS),
        C(&POOL_BUSY_NS),
        C(&POOL_IDLE_NS),
        H(&POOL_QUEUE_DEPTH),
        C(&SWEEP_CACHE_HITS),
        C(&SWEEP_CACHE_MISSES),
        C(&SWEEP_CELLS_SIMULATED),
        C(&SWEEP_REFS_SIMULATED),
        C(&TRACE_CHUNKS_DECODED),
        C(&TRACE_REFILL_STALLS),
        C(&PRED_PROBES),
        C(&PRED_STEERED),
        C(&PRED_MISPREDICTS),
        C(&PRED_MEMO_SKIPS),
        C(&PAR_QUANTA),
        C(&PAR_ROLLBACKS),
        C(&PAR_REDO_REFS),
        T(&PHASE_PLAN),
        T(&PHASE_SIMULATE),
        T(&PHASE_WEAVE),
        T(&PHASE_REDO),
        T(&PHASE_MERGE),
        T(&PHASE_RENDER),
    ]
}

// ---------------------------------------------------------------- snapshot

fn metric_json(m: &Metric) -> Json {
    match m {
        Metric::C(c) => json!({
            "kind": "counter",
            "name": c.name,
            "value": c.get(),
        }),
        Metric::G(g) => json!({
            "kind": "gauge",
            "name": g.name,
            "value": g.get(),
            "high": g.high(),
        }),
        Metric::H(h) => {
            let buckets: Vec<Json> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(i, n)| json!([i as u64, n]))
                .collect();
            json!({
                "kind": "histogram",
                "name": h.name,
                "count": h.count(),
                "sum": h.sum(),
                "buckets": Json::Arr(buckets),
            })
        }
        Metric::T(t) => json!({
            "kind": "timer",
            "name": t.name,
            "count": t.count(),
            "total_ns": t.nanos(),
        }),
    }
}

/// The whole registry as `redhip-metrics/v1` JSONL: a schema header line
/// followed by one compact JSON object per metric.
pub fn snapshot_jsonl() -> String {
    let metrics = registry();
    let mut out = String::new();
    out.push_str(
        &json!({
            "schema": METRICS_SCHEMA,
            "metrics": metrics.len() as u64,
        })
        .dump(),
    );
    out.push('\n');
    for m in &metrics {
        out.push_str(&metric_json(m).dump());
        out.push('\n');
    }
    out
}

/// The whole registry as an aligned human-readable table.
pub fn snapshot_text() -> String {
    let mut out = String::from("=== metrics (redhip-metrics/v1) ===\n");
    for m in registry() {
        match m {
            Metric::C(c) => out.push_str(&format!("{:<24} {}\n", c.name, c.get())),
            Metric::G(g) => {
                out.push_str(&format!("{:<24} {} (high {})\n", g.name, g.get(), g.high()))
            }
            Metric::H(h) => {
                let mean = if h.count() > 0 {
                    h.sum() as f64 / h.count() as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "{:<24} n={} mean={:.1}\n",
                    h.name,
                    h.count(),
                    mean
                ));
            }
            Metric::T(t) => out.push_str(&format!(
                "{:<24} {:.3}s over {} span(s)\n",
                t.name,
                t.secs(),
                t.count()
            )),
        }
    }
    out
}

/// The `phase.*` timers as one JSON object (`{"plan_s": .., ...}`),
/// the manifest's phase-timing breakdown.
pub fn phase_timings_json() -> Json {
    json!({
        "plan_s": PHASE_PLAN.secs(),
        "simulate_s": PHASE_SIMULATE.secs(),
        "weave_s": PHASE_WEAVE.secs(),
        "redo_s": PHASE_REDO.secs(),
        "merge_s": PHASE_MERGE.secs(),
        "render_s": PHASE_RENDER.secs(),
    })
}

// ---------------------------------------------------------------- manifest

/// Deterministic identity of one simulation run.
///
/// Two kinds of consumer read a manifest, with different rules:
///
/// * **Diffed artifacts** (result-cache entries, figure outputs) embed
///   [`RunManifest::to_json`], which carries *only* fields that are
///   byte-identical across `--jobs`/`--intra-jobs` settings and across
///   machines — the repo's determinism guarantees extend to them.
/// * **`--metrics` output** uses [`RunManifest::to_json_with_phases`],
///   which additionally carries the wall-clock phase-timing breakdown
///   (never written into diffed artifacts).
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Mechanism name (`base`/`redhip`/...).
    pub mechanism: String,
    /// Full canonical predictor spec (`level-pred:conf=2,max=3,penalty=8`):
    /// unlike `mechanism`, it distinguishes two parameterizations of the
    /// same mechanism.
    pub predictor_spec: String,
    /// Workload identity (benchmark name or trace-file identity tag).
    pub workload: String,
    /// Deterministic seed tag: how the workload's streams were seeded
    /// (synthetic generators seed from `(core, scale)`; trace files replay
    /// fixed bytes).
    pub seed: String,
    /// FNV-1a hash of the canonical configuration key.
    pub config_hash: u64,
    /// True when `--intra-jobs > 1` was requested but the configuration
    /// fell outside the parallel envelope and ran sequentially.
    pub sequential_fallback: bool,
}

impl RunManifest {
    /// Deterministic identity fields only — safe to embed in artifacts
    /// that are byte-compared across job counts.
    pub fn to_json(&self) -> Json {
        json!({
            "schema": MANIFEST_SCHEMA,
            "mechanism": &self.mechanism,
            "predictor_spec": &self.predictor_spec,
            "workload": &self.workload,
            "seed": &self.seed,
            "config_hash": format!("{:016x}", self.config_hash),
            "sequential_fallback": self.sequential_fallback,
        })
    }

    /// Identity fields plus the registry's phase-timing breakdown.
    pub fn to_json_with_phases(&self) -> Json {
        let mut v = self.to_json();
        v.set("phases", phase_timings_json());
        v
    }
}

impl ToJson for RunManifest {
    fn to_json(&self) -> Json {
        RunManifest::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run on parallel threads,
    // so every assertion is a before/after delta and nothing resets it.

    #[test]
    fn counters_are_inert_until_enabled() {
        static C: Counter = Counter::new("test.inert");
        disable();
        C.add(5);
        assert_eq!(C.get(), 0);
        enable();
        C.add(5);
        C.incr();
        assert_eq!(C.get(), 6);
    }

    #[test]
    fn gauge_tracks_high_water() {
        static G: Gauge = Gauge::new("test.gauge");
        enable();
        G.set(7);
        G.set(3);
        assert_eq!(G.get(), 3);
        assert_eq!(G.high(), 7);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        static H: Histogram = Histogram::new("test.hist");
        enable();
        let before = H.count();
        H.record(0); // bucket 0
        H.record(1); // bucket 1
        H.record(9); // bucket 4
        assert_eq!(H.count() - before, 3);
        let buckets = H.nonzero_buckets();
        assert!(buckets.iter().any(|&(i, _)| i == 0));
        assert!(buckets.iter().any(|&(i, _)| i == 1));
        assert!(buckets.iter().any(|&(i, _)| i == 4));
    }

    #[test]
    fn timer_spans_accumulate() {
        static T: Timer = Timer::new("test.timer");
        enable();
        let (n0, c0) = (T.nanos(), T.count());
        {
            let _span = T.start();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        T.add_ns(1_000);
        assert!(T.nanos() - n0 >= 2_000_000 + 1_000);
        assert_eq!(T.count() - c0, 2);
    }

    #[test]
    fn snapshot_first_line_carries_schema() {
        enable();
        POOL_STEALS.incr();
        let snap = snapshot_jsonl();
        let first = snap.lines().next().expect("header");
        let doc = minijson::parse(first).expect("header parses");
        assert_eq!(doc.str_of("schema").unwrap(), METRICS_SCHEMA);
        let n = doc.u64_of("metrics").unwrap() as usize;
        assert_eq!(snap.lines().count(), n + 1);
        // Every metric line parses and is one of the known kinds.
        for line in snap.lines().skip(1) {
            let m = minijson::parse(line).expect("metric line parses");
            assert!(matches!(
                m.str_of("kind").unwrap(),
                "counter" | "gauge" | "histogram" | "timer"
            ));
            assert!(!m.str_of("name").unwrap().is_empty());
        }
        assert!(snapshot_text().contains("pool.steals"));
    }

    #[test]
    fn manifest_json_is_deterministic_and_phased_variant_adds_timings() {
        let m = RunManifest {
            mechanism: "redhip".into(),
            predictor_spec: "redhip".into(),
            workload: "mcf".into(),
            seed: "synth:mcf/demo".into(),
            config_hash: 0xdead_beef,
            sequential_fallback: true,
        };
        let v = m.to_json();
        assert_eq!(v.str_of("schema").unwrap(), MANIFEST_SCHEMA);
        assert_eq!(v.str_of("config_hash").unwrap(), "00000000deadbeef");
        assert!(v.bool_of("sequential_fallback").unwrap());
        assert!(
            v.get("phases").is_none(),
            "identity form carries no timings"
        );
        let p = m.to_json_with_phases();
        assert!(p.get("phases").is_some());
        assert!(p["phases"].f64_of("weave_s").is_ok());
    }
}
