//! Registry-level property tests: spec-string round-trips over random
//! parameters, parser error quality, and a [`PredictorImpl`] conformance
//! suite (probe purity, recalibration idempotence and order-independence
//! — mirroring `crates/redhip/tests/properties.rs`) run on every
//! registered predictor through `build_impl`.

use energy_model::presets::demo_scale;
use sim::{
    build_impl, parse_spec, spec_string, Mechanism, PredictorImpl, SimConfig, Steer, WalkOutcome,
    REGISTRY,
};

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random parameterized spec string for `mechanism` (`None` when the
/// mechanism takes no parameters).
fn random_spec(mechanism: Mechanism, st: &mut u64) -> Option<String> {
    Some(match mechanism {
        Mechanism::Cbf => format!(
            "cbf:bits={},hashes={}",
            1 + splitmix(st) % 7,
            1 + splitmix(st) % 4
        ),
        Mechanism::LevelPred => format!(
            "level-pred:conf={},max={},penalty={}",
            splitmix(st) % 9,
            1 + splitmix(st) % 8,
            splitmix(st) % 33
        ),
        Mechanism::Perceptron => format!(
            "perceptron:theta={},history={}",
            splitmix(st) % 101,
            splitmix(st) % 17
        ),
        Mechanism::WayMemo => format!(
            "way-memo:entries={},penalty={}",
            1 + splitmix(st) % 4096,
            splitmix(st) % 9
        ),
        _ => return None,
    })
}

/// Property: printing a parsed spec re-parses to the same spec, and the
/// canonical print is a fixed point (`print(parse(print(x))) == print(x)`).
#[test]
fn spec_string_round_trips_over_random_parameters() {
    let mut st = 0x5EC5_7A1Eu64;
    for info in &REGISTRY {
        for _case in 0..32 {
            let spec = match random_spec(info.mechanism, &mut st) {
                Some(s) => s,
                None => info.spec_name.to_string(),
            };
            let parsed = parse_spec(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(parsed.mechanism, info.mechanism, "{spec}");
            let mut cfg = SimConfig::new(demo_scale(), Mechanism::Base);
            parsed.apply(&mut cfg);
            let printed = spec_string(&cfg);
            let reparsed = parse_spec(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
            assert_eq!(
                parsed, reparsed,
                "round-trip changed `{spec}` → `{printed}`"
            );
            let mut cfg2 = SimConfig::new(demo_scale(), Mechanism::Base);
            reparsed.apply(&mut cfg2);
            assert_eq!(printed, spec_string(&cfg2), "print is not a fixed point");
        }
    }
}

#[test]
fn parser_errors_name_the_alternatives() {
    let err = parse_spec("markov").unwrap_err();
    assert!(err.contains("unknown mechanism `markov`"), "{err}");
    for info in &REGISTRY {
        assert!(
            err.contains(info.spec_name),
            "{err}: missing {}",
            info.spec_name
        );
    }
    let err = parse_spec("perceptron:weights=4").unwrap_err();
    assert!(err.contains("unknown key `weights`"), "{err}");
    assert!(err.contains("theta, history"), "{err}");
    let err = parse_spec("oracle:x=1").unwrap_err();
    assert!(err.contains("takes no parameters"), "{err}");
}

/// Distinct parameterizations of the same mechanism must print distinct
/// canonical specs (the aliasing bug the run manifests guard against).
#[test]
fn distinct_parameterizations_print_distinct_specs() {
    let mut a = SimConfig::new(demo_scale(), Mechanism::LevelPred);
    let mut b = a.clone();
    a.level_pred.conf_threshold = 2;
    b.level_pred.conf_threshold = 3;
    assert_ne!(spec_string(&a), spec_string(&b));
    let a = SimConfig::new(demo_scale(), Mechanism::Perceptron);
    let mut b = a.clone();
    b.perceptron.theta += 1;
    assert_ne!(spec_string(&a), spec_string(&b));
}

// ---- PredictorImpl conformance -------------------------------------------

/// Replays a deterministic access history into `p`: probes, training
/// outcomes, LLC fill/evict events, and (for L1-observing predictors)
/// L1-hit memo traffic. Two predictors fed the same seed see the exact
/// same history.
fn replay(p: &mut dyn PredictorImpl, seed: u64, n: usize) {
    let mut st = seed;
    for _ in 0..n {
        let block = splitmix(&mut st) % (1 << 18);
        let core = (splitmix(&mut st) % 2) as usize;
        if p.observes_l1_hits() && splitmix(&mut st).is_multiple_of(4) {
            let _ = p.l1_hit_memoized(core, block);
            continue;
        }
        let _ = p.probe(core, block);
        let hit_level = match splitmix(&mut st) % 5 {
            0 => None,
            k => Some((k - 1) as u8),
        };
        p.train(core, block, WalkOutcome { hit_level });
        if splitmix(&mut st).is_multiple_of(3) {
            p.on_llc_fill(block);
        }
        if splitmix(&mut st).is_multiple_of(7) {
            p.on_llc_evict(block);
        }
    }
}

/// Observable fingerprint of a predictor's state: steers (and memo
/// verdicts) over a fixed probe set. The fingerprint itself may touch
/// memo state, so it is only meaningful when the compared predictors run
/// it over the same sequence — which is exactly how it is used.
fn fingerprint(p: &mut dyn PredictorImpl, seed: u64) -> Vec<(u8, bool)> {
    let mut st = seed;
    (0..512)
        .map(|_| {
            let block = splitmix(&mut st) % (1 << 18);
            let steer = match p.probe(0, block) {
                Steer::Walk => 0u8,
                Steer::OffChip => 1,
                Steer::Level(l) => 2 + l,
            };
            let memo = p.observes_l1_hits() && p.l1_hit_memoized(0, block);
            (steer, memo)
        })
        .collect()
}

fn predictor_mechanisms() -> Vec<Mechanism> {
    REGISTRY
        .iter()
        .map(|i| i.mechanism)
        .filter(|m| m.has_predictor())
        .collect()
}

fn build(mechanism: Mechanism) -> Box<dyn PredictorImpl> {
    let cfg = SimConfig::new(demo_scale(), mechanism);
    build_impl(&cfg).expect("predictor mechanism has an impl")
}

/// Construction is deterministic and training is a pure function of the
/// history: two instances fed the same history fingerprint identically.
#[test]
fn identical_histories_produce_identical_state() {
    for mechanism in predictor_mechanisms() {
        let (mut a, mut b) = (build(mechanism), build(mechanism));
        replay(a.as_mut(), 0xF00D, 4_000);
        replay(b.as_mut(), 0xF00D, 4_000);
        assert_eq!(
            fingerprint(a.as_mut(), 0x5A17),
            fingerprint(b.as_mut(), 0x5A17),
            "{mechanism:?}: same history, different state"
        );
    }
}

/// `probe` is state-pure: repeated probes of the same block return the
/// same steer, and a burst of probes does not change any later steer.
#[test]
fn probe_is_state_pure() {
    for mechanism in predictor_mechanisms() {
        let (mut a, mut b) = (build(mechanism), build(mechanism));
        replay(a.as_mut(), 0xCAFE, 4_000);
        replay(b.as_mut(), 0xCAFE, 4_000);
        let mut st = 0x9090u64;
        for _ in 0..256 {
            let block = splitmix(&mut st) % (1 << 18);
            let first = a.probe(0, block);
            for _ in 0..8 {
                assert_eq!(
                    a.probe(0, block),
                    first,
                    "{mechanism:?}: probe flip-flopped"
                );
            }
        }
        // `a` absorbed 2304 extra probes; `b` none. States must agree.
        assert_eq!(
            fingerprint(a.as_mut(), 0x7E57),
            fingerprint(b.as_mut(), 0x7E57),
            "{mechanism:?}: probing perturbed state"
        );
    }
}

/// Recalibration idempotence, phrased as an equality between copies (the
/// fingerprint itself may touch memo state, so the second recalibration
/// happens before any sampling): recalibrating twice from the same
/// resident set leaves the same state as recalibrating once.
#[test]
fn recalibration_is_idempotent_for_every_predictor() {
    let mut st = 0x1D34u64;
    for mechanism in predictor_mechanisms() {
        let resident: Vec<u64> = (0..600).map(|_| splitmix(&mut st) % (1 << 18)).collect();
        let (mut once, mut twice) = (build(mechanism), build(mechanism));
        replay(once.as_mut(), 0xBEEF, 4_000);
        replay(twice.as_mut(), 0xBEEF, 4_000);
        if !once.supports_recalibration() {
            continue;
        }
        once.recalibrate(&mut resident.iter().copied());
        twice.recalibrate(&mut resident.iter().copied());
        twice.recalibrate(&mut resident.iter().copied());
        assert_eq!(
            fingerprint(once.as_mut(), 0x1111),
            fingerprint(twice.as_mut(), 0x1111),
            "{mechanism:?}: recalibration is not idempotent"
        );
    }
}

/// Recalibration order-independence: the rebuilt state depends on the
/// resident *set*, not the sweep order the hardware happens to use.
#[test]
fn recalibration_is_order_independent_for_every_predictor() {
    let mut st = 0x0DD5u64;
    for mechanism in predictor_mechanisms() {
        let forward: Vec<u64> = (0..600).map(|_| splitmix(&mut st) % (1 << 18)).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let (mut a, mut b) = (build(mechanism), build(mechanism));
        replay(a.as_mut(), 0xABBA, 4_000);
        replay(b.as_mut(), 0xABBA, 4_000);
        if !a.supports_recalibration() {
            continue;
        }
        a.recalibrate(&mut forward.iter().copied());
        b.recalibrate(&mut reversed.iter().copied());
        assert_eq!(
            fingerprint(a.as_mut(), 0x2222),
            fingerprint(b.as_mut(), 0x2222),
            "{mechanism:?}: recalibration depends on sweep order"
        );
    }
}
