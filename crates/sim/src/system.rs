//! The system model: cores, hierarchy, predictor, prefetcher, accounting.

use crate::config::{Mechanism, SimConfig};
use crate::predictor::{build_state, PredictorState, Steer, WalkOutcome};
use crate::stats::{PredictionStats, PrefetchSummary};
use cache_sim::hierarchy::{DeepHierarchy, HierarchyConfig};
use cache_sim::traversal::{LevelId, Traversal, MEMORY};
use cache_sim::CacheConfig;
use energy_model::{EnergyAccount, PredictorSpec};
use mem_trace::record::TraceRecord;
use prefetch::StridePrefetcher;
use redhip::{Prediction, RecalibrationEngine};
use std::collections::HashSet;
use telemetry::{NullObserver, SimObserver};

/// Energy of one reference-prediction-table (prefetcher) access, nJ. Not in
/// Table I; estimated as half the prediction table's access energy (the RPT
/// is a comparably small SRAM structure). Affects only the prefetch studies
/// and is identical across mechanisms.
const RPT_ACCESS_NJ: f64 = 0.01;

/// A complete simulated machine processing one record at a time.
///
/// Generic over a [`SimObserver`] for telemetry; the default
/// [`NullObserver`] keeps the uninstrumented hot path (hook calls inline
/// to nothing and, where hook arguments cost anything to compute —
/// per-reference energy deltas — `O::ENABLED` skips the computation).
pub struct System<O: SimObserver = NullObserver> {
    cfg: SimConfig,
    obs: O,
    hierarchy: DeepHierarchy,
    predictor: PredictorState,
    prefetchers: Vec<StridePrefetcher>,
    energy: EnergyAccount,
    clocks: Vec<f64>,
    block_bits: u32,
    l1_misses_since_recalib: u64,
    pred_stats: PredictionStats,
    pf_summary: PrefetchSummary,
    pt_spec: PredictorSpec,
    recalib_engine: Option<RecalibrationEngine>,
    /// Precomputed L1-hit pricing (the mechanism's lookup flavour applied
    /// to level 0), so the dominant fast path skips `absorb_and_price`.
    l1_hit_nj: f64,
    l1_hit_cycles: u64,
    /// Miss count at which recalibration fires; `u64::MAX` when the
    /// mechanism never recalibrates. Folding the predictor-kind match into
    /// one constant makes the per-reference due-check a single compare.
    recalib_threshold: u64,
    /// Whether the L1-hit fast path consults the custom predictor
    /// (WayMemo observes every L1 access to skip tag-way reads).
    custom_l1: bool,
    /// Precomputed single-way L1 read energy (a memoized hit's price).
    way_hit_nj: f64,
    /// Blocks brought in by prefetch and not yet demanded (usefulness).
    prefetched: HashSet<u64>,
    // Reusable scratch.
    t: Traversal,
    pf_t: Traversal,
    pf_buf: Vec<u64>,
    steer_buf: Vec<(LevelId, bool)>,
}

impl System {
    /// Builds a system for `cfg` with the no-op [`NullObserver`].
    ///
    /// # Panics
    /// Panics when `cfg.validate()` fails.
    pub fn new(cfg: SimConfig) -> Self {
        Self::with_observer(cfg, NullObserver)
    }
}

impl<O: SimObserver> System<O> {
    /// Builds a system for `cfg` that reports telemetry to `obs`.
    ///
    /// # Panics
    /// Panics when `cfg.validate()` fails.
    pub fn with_observer(cfg: SimConfig, obs: O) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SimConfig: {e}");
        }
        let p = &cfg.platform;
        let block = 64u64;
        let hier_cfg = HierarchyConfig {
            cores: p.cores,
            private_levels: p.levels[..p.levels.len() - 1]
                .iter()
                .map(|l| CacheConfig {
                    capacity_bytes: l.capacity_bytes,
                    assoc: l.assoc,
                    block_bytes: block,
                    policy: cfg.replacement,
                })
                .collect(),
            shared_llc: {
                let l = p.llc();
                CacheConfig {
                    capacity_bytes: l.capacity_bytes,
                    assoc: l.assoc,
                    block_bytes: block,
                    policy: cfg.replacement,
                }
            },
            policy: cfg.policy,
        };
        let hierarchy = DeepHierarchy::new(&hier_cfg);

        let pt_bytes = cfg.effective_pt_bytes();
        let pt_spec = p.predictor.scaled_to(pt_bytes);
        let llc_geom = hier_cfg.shared_llc.geometry();
        let llc_sets = llc_geom.sets();
        let llc_assoc = hier_cfg.shared_llc.assoc;

        let (predictor, recalib_engine) = build_state(&cfg, &pt_spec, llc_sets, llc_assoc);

        let prefetchers = match cfg.prefetch {
            Some(sc) => (0..p.cores).map(|_| StridePrefetcher::new(sc)).collect(),
            None => Vec::new(),
        };

        let recalib_threshold = match (&predictor, cfg.recalib_period) {
            (PredictorState::Table(_), Some(period)) => period,
            (PredictorState::Single(p), Some(period)) if p.supports_recalibration() => period,
            (PredictorState::Multi { .. }, Some(period)) => period,
            (PredictorState::Custom(p), Some(period)) if p.supports_recalibration() => period,
            _ => u64::MAX,
        };

        let custom_l1 = matches!(&predictor, PredictorState::Custom(p) if p.observes_l1_hits());

        // Price the L1 hit once, mirroring `absorb_and_price` exactly for a
        // `(0, true)` lookup under this mechanism.
        let l0 = &p.levels[0];
        let (l1_hit_nj, l1_hit_cycles) =
            if cfg.mechanism == Mechanism::Phased && l0.tag_energy_nj > 0.0 {
                (l0.phased_lookup_nj(true), l0.phased_latency(true))
            } else {
                (l0.parallel_lookup_nj(), l0.parallel_latency(true))
            };

        let levels = p.levels.len();
        let way_hit_nj = p.levels[0].way_lookup_nj();
        Self {
            obs,
            hierarchy,
            predictor,
            prefetchers,
            energy: EnergyAccount::new(levels),
            clocks: vec![0.0; p.cores],
            block_bits: 6,
            l1_misses_since_recalib: 0,
            pred_stats: PredictionStats::default(),
            pf_summary: PrefetchSummary::default(),
            pt_spec,
            recalib_engine,
            l1_hit_nj,
            l1_hit_cycles,
            recalib_threshold,
            custom_l1,
            way_hit_nj,
            prefetched: HashSet::new(),
            t: Traversal::new(),
            pf_t: Traversal::new(),
            pf_buf: Vec::new(),
            steer_buf: Vec::new(),
            cfg,
        }
    }

    /// Processes one trace record on `core`.
    pub fn step(&mut self, core: usize, rec: &TraceRecord) {
        let mut t = std::mem::take(&mut self.t);
        self.step_with(core, rec, &mut t);
        self.t = t;
    }

    /// Like [`System::step`], but uses caller-provided traversal scratch:
    /// the run harness owns one and skips the per-reference swap. Returns
    /// the stepping core's updated clock so the scheduler's inner loop can
    /// compare against its batch bound without re-reading the clock array.
    pub fn step_with(&mut self, core: usize, rec: &TraceRecord, t: &mut Traversal) -> f64 {
        // Energy delta for telemetry: snapshot before any charging. Gated
        // on `O::ENABLED` so the default path never sums the accumulators.
        let energy_before = if O::ENABLED {
            self.energy.total_dynamic_nj()
        } else {
            0.0
        };
        let block = rec.addr >> self.block_bits;
        let store = rec.op.is_store();
        self.clocks[core] += f64::from(rec.gap) * self.cfg.avg_cpi;

        // Fast path: an L1 hit is exactly one lookup event — count, price,
        // and report it directly, with no traversal bookkeeping. (On a hit
        // there are no fills, writebacks, probes, or predictor events.)
        if self.hierarchy.try_first_hit(core, block, store) {
            if self.custom_l1 {
                // WayMemo consults the memo on every L1 access: a memoized
                // hit reads a single way (cheaper); a miss reads all ways
                // at the standard price and records the block. Latency is
                // unchanged either way — the optimization is energy-only.
                let PredictorState::Custom(p) = &mut self.predictor else {
                    unreachable!("custom_l1 implies a custom predictor")
                };
                self.pred_stats.lookups += 1;
                if p.l1_hit_memoized(core, block) {
                    self.pred_stats.bypasses += 1;
                    self.energy.add_level(0, self.way_hit_nj);
                    metrics::PRED_MEMO_SKIPS.incr();
                } else {
                    self.energy.add_level(0, self.l1_hit_nj);
                }
            } else {
                self.energy.add_level(0, self.l1_hit_nj);
            }
            let latency = self.l1_hit_cycles;
            self.clocks[core] += latency as f64;
            if O::ENABLED {
                self.obs.on_level_access(core, 0, true);
            }
            if !self.prefetched.is_empty() && self.prefetched.remove(&block) {
                self.pf_summary.useful += 1;
            }
            if !self.prefetchers.is_empty() {
                self.do_prefetch(core, rec);
            }
            if O::ENABLED {
                let delta = self.energy.total_dynamic_nj() - energy_before;
                self.obs.on_ref(core, latency, delta);
            }
            if self.recalibration_due() {
                self.recalibrate();
            }
            return self.clocks[core];
        }

        // Overlap the host-memory reads of the deeper levels' arrays with
        // the bookkeeping between here and the walk.
        self.hierarchy.prefetch_walk_sets(core, block);
        t.clear();
        // The miss the fast path just observed; a missed L1 probe has no
        // side effects, so it is logged rather than repeated.
        t.lookups.push((0, false));
        self.l1_misses_since_recalib += 1;
        self.dispatch_l1_miss(core, block, store, t);
        self.apply_predictor_updates(core, t);
        let latency = self.absorb_and_price(t);
        self.clocks[core] += latency as f64;
        if O::ENABLED {
            // Mirror exactly what `absorb_stats` aggregates (demand
            // traversal only), so summed window counters reproduce
            // `HierarchyStats` without drift.
            for &(lvl, hit) in &t.lookups {
                self.obs.on_level_access(core, lvl, hit);
            }
            for &lvl in &t.fills {
                self.obs.on_fill(core, lvl);
            }
        }

        // Usefulness: a demand touch consumes the prefetched marker.
        if !self.prefetched.is_empty() && self.prefetched.remove(&block) {
            self.pf_summary.useful += 1;
        }

        if !self.prefetchers.is_empty() {
            self.do_prefetch(core, rec);
        }

        // The reference is complete here; recalibration (below) happens
        // *between* references, so its energy rides on the recalibration
        // marker rather than this reference's delta.
        if O::ENABLED {
            let delta = self.energy.total_dynamic_nj() - energy_before;
            self.obs.on_ref(core, latency, delta);
        }

        if self.recalibration_due() {
            self.recalibrate();
        }
        self.clocks[core]
    }

    fn dispatch_l1_miss(&mut self, core: usize, block: u64, store: bool, t: &mut Traversal) {
        match self.cfg.mechanism {
            Mechanism::Base | Mechanism::Phased => {
                self.walk(core, block, store, t);
            }
            Mechanism::Oracle => {
                self.pred_stats.lookups += 1;
                if self.hierarchy.llc().probe(block) {
                    let hit = self.walk(core, block, store, t);
                    debug_assert!(hit, "oracle: inclusive LLC residency implies on-chip hit");
                    self.pred_stats.walk_hits += 1;
                    self.obs.on_walk_hit(core);
                } else {
                    self.pred_stats.bypasses += 1;
                    self.obs.on_bypass(core);
                    self.hierarchy.fill_from_memory(core, block, store, t);
                }
            }
            Mechanism::Redhip | Mechanism::Cbf => match &self.predictor {
                PredictorState::Table(table) => {
                    self.pred_stats.lookups += 1;
                    if self.cfg.count_prediction_overhead {
                        self.energy.add_predictor(self.pt_spec.access_energy_nj);
                        self.clocks[core] += self.pt_spec.lookup_latency() as f64;
                    }
                    // The branchless probe: one load + mask. A zero bit
                    // proves absence (no false negatives, ever).
                    if table.test(block) {
                        if self.walk(core, block, store, t) {
                            self.pred_stats.walk_hits += 1;
                            self.obs.on_walk_hit(core);
                        } else {
                            self.pred_stats.false_positives += 1;
                            self.obs.on_false_positive(core);
                        }
                    } else {
                        debug_assert!(
                            !self.hierarchy.llc().probe(block),
                            "false negative: bypassed a resident block"
                        );
                        self.pred_stats.bypasses += 1;
                        self.obs.on_bypass(core);
                        self.hierarchy.fill_from_memory(core, block, store, t);
                    }
                }
                PredictorState::Single(p) => {
                    self.pred_stats.lookups += 1;
                    if self.cfg.count_prediction_overhead {
                        self.energy.add_predictor(self.pt_spec.access_energy_nj);
                        self.clocks[core] += self.pt_spec.lookup_latency() as f64;
                    }
                    let prediction = p.predict(block);
                    match prediction {
                        Prediction::Absent => {
                            debug_assert!(
                                !self.hierarchy.llc().probe(block),
                                "false negative: bypassed a resident block"
                            );
                            self.pred_stats.bypasses += 1;
                            self.obs.on_bypass(core);
                            self.hierarchy.fill_from_memory(core, block, store, t);
                        }
                        Prediction::MaybePresent => {
                            if self.walk(core, block, store, t) {
                                self.pred_stats.walk_hits += 1;
                                self.obs.on_walk_hit(core);
                            } else {
                                self.pred_stats.false_positives += 1;
                                self.obs.on_false_positive(core);
                            }
                        }
                    }
                }
                PredictorState::Multi { bank, specs, .. } => {
                    self.pred_stats.lookups += 1;
                    if self.cfg.count_prediction_overhead {
                        // All tables consulted simultaneously: energy for
                        // each, latency of one round trip.
                        let nj: f64 = specs.iter().map(|s| s.access_energy_nj).sum();
                        self.energy.add_predictor(nj);
                        self.clocks[core] += self.pt_spec.lookup_latency() as f64;
                    }
                    let levels = self.hierarchy.levels();
                    let mut plan = [false; 8];
                    for lvl in 1..levels {
                        let idx = self.multi_index(lvl, core);
                        plan[lvl as usize] = bank.predict(idx, block) == Prediction::MaybePresent;
                    }
                    let mut hit = false;
                    for lvl in 1..levels {
                        if !plan[lvl as usize] {
                            continue;
                        }
                        if self.hierarchy.lookup(core, lvl, block, t) {
                            self.hierarchy.promote(core, lvl, block, store, t);
                            hit = true;
                            break;
                        }
                    }
                    if hit {
                        self.pred_stats.walk_hits += 1;
                        self.obs.on_walk_hit(core);
                    } else {
                        if t.lookups.len() == 1 {
                            self.pred_stats.bypasses += 1;
                            self.obs.on_bypass(core);
                        } else {
                            self.pred_stats.false_positives += 1;
                            self.obs.on_false_positive(core);
                        }
                        self.hierarchy.fill_from_memory(core, block, store, t);
                    }
                }
                _ => unreachable!("Redhip/Cbf always instantiate a predictor"),
            },
            Mechanism::LevelPred | Mechanism::Perceptron | Mechanism::WayMemo => {
                self.dispatch_custom(core, block, store, t);
            }
        }
    }

    /// Registry-mechanism dispatch. The walk below always runs in exact
    /// Base order, so hierarchy *state* (fills, promotions, evictions,
    /// LRU) is identical to Base; the steer only rewrites which array
    /// lookups get *charged*. The charged list keeps exactly one
    /// `(level, hit=true)` entry — at the actual service level — iff the
    /// request hit on chip, so per-level hit totals are conserved against
    /// Base; steering probes that did not serve the data are charged as
    /// tag-resolving `(level, false)` accesses.
    fn dispatch_custom(&mut self, core: usize, block: u64, store: bool, t: &mut Traversal) {
        // Swap the predictor out so `self.walk` can borrow the rest of
        // the machine; restored below.
        let mut state = std::mem::replace(&mut self.predictor, PredictorState::None);
        let PredictorState::Custom(p) = &mut state else {
            unreachable!("registry mechanisms always instantiate a custom predictor")
        };
        self.pred_stats.lookups += 1;
        metrics::PRED_PROBES.incr();
        if self.cfg.count_prediction_overhead {
            // Equal-area comparison: the contender's probe is charged at
            // the prediction table's access energy and latency.
            self.energy.add_predictor(self.pt_spec.access_energy_nj);
            self.clocks[core] += self.pt_spec.lookup_latency() as f64;
        }
        if p.observes_l1_hits() && p.l1_stale_memo(core, block) {
            // A stale memo entry read a single way before discovering the
            // miss: charge the wasted way read plus the stale penalty.
            self.energy.add_level(0, self.way_hit_nj);
            self.clocks[core] += p.mispredict_penalty_cycles() as f64;
            self.pred_stats.false_positives += 1;
            self.obs.on_false_positive(core);
            metrics::PRED_MISPREDICTS.incr();
        }
        let steer = p.probe(core, block);
        let hit = self.walk(core, block, store, t);
        p.train(
            core,
            block,
            WalkOutcome {
                hit_level: t.hit_level,
            },
        );
        match steer {
            Steer::Walk => {
                // Charged exactly as walked — the Base lookup list.
                if hit {
                    self.pred_stats.walk_hits += 1;
                    self.obs.on_walk_hit(core);
                } else {
                    self.pred_stats.false_positives += 1;
                    self.obs.on_false_positive(core);
                }
            }
            Steer::Level(lvl) if t.hit_level == Some(lvl) => {
                // Correct steer: the only charged lookups are the L1 miss
                // and the direct access to the predicted level.
                metrics::PRED_STEERED.incr();
                self.steer_buf.clear();
                self.steer_buf.push((lvl, true));
                self.rewrite_lookups(t);
                self.pred_stats.walk_hits += 1;
                self.obs.on_walk_hit(core);
            }
            Steer::Level(lvl) => {
                // Wrong steer: the direct access tag-misses, then the
                // machine falls back to the full walk and pays a penalty.
                metrics::PRED_STEERED.incr();
                metrics::PRED_MISPREDICTS.incr();
                self.steer_buf.clear();
                self.steer_buf.push((lvl, false));
                self.steer_buf.extend(t.lookups.iter().skip(1).copied());
                self.rewrite_lookups(t);
                self.clocks[core] += p.mispredict_penalty_cycles() as f64;
                self.pred_stats.false_positives += 1;
                self.obs.on_false_positive(core);
            }
            Steer::OffChip if !hit => {
                // Correct off-chip steer: one LLC tag probe validates the
                // bypass (no no-false-negative guarantee to lean on), then
                // memory serves the request.
                metrics::PRED_STEERED.incr();
                self.steer_buf.clear();
                self.steer_buf.push((self.hierarchy.llc_level(), false));
                self.rewrite_lookups(t);
                self.pred_stats.bypasses += 1;
                self.obs.on_bypass(core);
            }
            Steer::OffChip => {
                // The LLC validation probe tag-resolves the block on chip:
                // the bypass is cancelled, the full walk is paid, plus the
                // penalty.
                metrics::PRED_STEERED.incr();
                metrics::PRED_MISPREDICTS.incr();
                self.steer_buf.clear();
                self.steer_buf.push((self.hierarchy.llc_level(), false));
                self.steer_buf.extend(t.lookups.iter().skip(1).copied());
                self.rewrite_lookups(t);
                self.clocks[core] += p.mispredict_penalty_cycles() as f64;
                self.pred_stats.false_positives += 1;
                self.obs.on_false_positive(core);
            }
        }
        self.predictor = state;
    }

    /// Replaces `t.lookups` with the L1 miss followed by `steer_buf` (the
    /// charged list `dispatch_custom` assembled).
    fn rewrite_lookups(&mut self, t: &mut Traversal) {
        t.lookups.clear();
        t.lookups.push((0, false));
        t.lookups.extend(self.steer_buf.iter().copied());
    }

    /// Walks every level below L1 in order; promotes on hit. Returns
    /// whether the request hit on chip (and fills from memory otherwise).
    fn walk(&mut self, core: usize, block: u64, store: bool, t: &mut Traversal) -> bool {
        let levels = self.hierarchy.levels();
        for lvl in 1..levels {
            if self.hierarchy.lookup(core, lvl, block, t) {
                self.hierarchy.promote(core, lvl, block, store, t);
                return true;
            }
        }
        self.hierarchy.fill_from_memory(core, block, store, t);
        false
    }

    /// Table index in the exclusive bank for `(level, core)`. Layout
    /// follows `build_multi`: private level `l` occupies indices
    /// `(l-1)·cores ..`, the shared LLC takes the final slot.
    fn multi_index(&self, level: LevelId, core: usize) -> usize {
        let cores = self.cfg.platform.cores;
        let levels = self.cfg.platform.levels.len();
        if level as usize == levels - 1 {
            (levels - 2) * cores
        } else {
            (level as usize - 1) * cores + core
        }
    }

    /// Feeds insert/remove events to the predictor. `core` is the issuing
    /// core: in the exclusive configuration (the only one with per-core
    /// tables) every private-level event of a traversal belongs to it.
    fn apply_predictor_updates(&mut self, core: usize, t: &Traversal) {
        let overhead = self.cfg.count_prediction_overhead;
        match &mut self.predictor {
            PredictorState::Table(table) => {
                // 1-bit entries: only LLC fills matter; evictions are
                // intentionally ignored (§III-A).
                let llc = self.hierarchy.llc_level();
                for &(lvl, block) in t.inserted.iter() {
                    if lvl == llc {
                        table.set(block);
                        self.pred_stats.updates += 1;
                        if overhead {
                            self.energy.add_predictor(self.pt_spec.access_energy_nj);
                        }
                    }
                }
            }
            PredictorState::Single(p) => {
                let llc = self.hierarchy.llc_level();
                for (lvl, block) in t.inserted.iter().copied() {
                    if lvl == llc {
                        p.on_fill(block);
                        self.pred_stats.updates += 1;
                        if overhead {
                            self.energy.add_predictor(self.pt_spec.access_energy_nj);
                        }
                    }
                }
                if p.wants_eviction_events() {
                    for (lvl, block) in t.removed.iter().copied() {
                        if lvl == llc {
                            p.on_evict(block);
                            self.pred_stats.updates += 1;
                            if overhead {
                                self.energy.add_predictor(self.pt_spec.access_energy_nj);
                            }
                        }
                    }
                }
            }
            PredictorState::Multi { .. } => {
                // 1-bit tables: only fills matter (recalibration clears
                // staleness); L1 has no table.
                for i in 0..t.inserted.len() {
                    let (lvl, block) = t.inserted[i];
                    if lvl == 0 {
                        continue;
                    }
                    let idx = self.multi_index(lvl, core);
                    let PredictorState::Multi { bank, specs, .. } = &mut self.predictor else {
                        unreachable!()
                    };
                    bank.on_fill(idx, block);
                    self.pred_stats.updates += 1;
                    if overhead {
                        self.energy.add_predictor(specs[idx].access_energy_nj);
                    }
                }
            }
            _ => {}
        }
    }

    #[inline]
    fn recalibration_due(&self) -> bool {
        self.l1_misses_since_recalib >= self.recalib_threshold
    }

    /// Rebuilds the table(s) from the cache contents, charging the modelled
    /// stall and energy.
    fn recalibrate(&mut self) {
        self.l1_misses_since_recalib = 0;
        self.pred_stats.recalibrations += 1;
        let overhead = self.cfg.count_prediction_overhead;
        // Overheads actually charged, reported on the telemetry marker
        // (they stay zero when overhead accounting is off).
        let mut charged_nj = 0.0;
        let mut charged_cycles = 0u64;
        match &mut self.predictor {
            PredictorState::Table(table) => {
                table.recalibrate_from(self.hierarchy.llc().resident_blocks());
                if overhead {
                    if let Some(engine) = &self.recalib_engine {
                        let cost = engine.cost();
                        self.energy.add_recalibration(cost.energy_nj);
                        for c in self.clocks.iter_mut() {
                            *c += cost.cycles as f64;
                        }
                        charged_nj = cost.energy_nj;
                        charged_cycles = cost.cycles;
                    }
                }
            }
            PredictorState::Single(p) => {
                p.recalibrate(&mut self.hierarchy.llc().resident_blocks());
                if overhead {
                    if let Some(engine) = &self.recalib_engine {
                        let cost = engine.cost();
                        self.energy.add_recalibration(cost.energy_nj);
                        for c in self.clocks.iter_mut() {
                            *c += cost.cycles as f64;
                        }
                        charged_nj = cost.energy_nj;
                        charged_cycles = cost.cycles;
                    }
                }
            }
            PredictorState::Multi { bank, engines, .. } => {
                let cores = self.cfg.platform.cores;
                let levels = self.cfg.platform.levels.len();
                let mut max_cycles = 0u64;
                let mut total_nj = 0.0;
                for lvl in 1..levels - 1 {
                    for core in 0..cores {
                        let idx = (lvl - 1) * cores + core;
                        bank.recalibrate(
                            idx,
                            self.hierarchy
                                .private_cache(core, lvl as u8)
                                .resident_blocks(),
                        );
                        let cost = engines[idx].cost();
                        max_cycles = max_cycles.max(cost.cycles);
                        total_nj += cost.energy_nj;
                    }
                }
                let llc_idx = (levels - 2) * cores;
                bank.recalibrate(llc_idx, self.hierarchy.llc().resident_blocks());
                let cost = engines[llc_idx].cost();
                max_cycles = max_cycles.max(cost.cycles);
                total_nj += cost.energy_nj;
                if overhead {
                    self.energy.add_recalibration(total_nj);
                    for c in self.clocks.iter_mut() {
                        *c += max_cycles as f64;
                    }
                    charged_nj = total_nj;
                    charged_cycles = max_cycles;
                }
            }
            PredictorState::Custom(p) => {
                // Registry predictors scrub against LLC residency like the
                // table does; their scrub is a metadata sweep with no
                // dedicated engine model yet, so no energy/stall is
                // charged (mirrors Oracle's free knowledge refresh).
                p.recalibrate(&mut self.hierarchy.llc().resident_blocks());
            }
            _ => {}
        }
        self.obs.on_recalibration(charged_nj, charged_cycles);
    }

    /// Folds a traversal into the hierarchy statistics and prices its
    /// events, one pass per event list instead of a statistics pass
    /// (`absorb_stats`) followed by a pricing pass over the same short
    /// vectors. The energy accumulators are charged in exactly the order
    /// the separate pricing pass used — the f64 sums are order-sensitive
    /// and pinned by the golden tests — while the integer statistics
    /// commute and ride along. Returns the serialized lookup latency.
    fn absorb_and_price(&mut self, t: &Traversal) -> u64 {
        let stats = self.hierarchy.stats_mut();
        let mut latency = 0u64;
        let phased_mech = self.cfg.mechanism == Mechanism::Phased;
        for &(lvl, hit) in &t.lookups {
            let s = &mut stats.levels[lvl as usize];
            s.lookups += 1;
            if hit {
                s.hits += 1;
            }
            let spec = &self.cfg.platform.levels[lvl as usize];
            let phased = phased_mech && spec.tag_energy_nj > 0.0;
            let (nj, cyc) = if phased {
                (spec.phased_lookup_nj(hit), spec.phased_latency(hit))
            } else {
                (spec.parallel_lookup_nj(), spec.parallel_latency(hit))
            };
            self.energy.add_level(lvl as usize, nj);
            latency += cyc;
        }
        let acc = self.cfg.accounting;
        for &lvl in &t.fills {
            stats.levels[lvl as usize].fills += 1;
            if acc.charge_fills {
                let spec = &self.cfg.platform.levels[lvl as usize];
                self.energy.add_level(lvl as usize, spec.data_energy_nj);
            }
        }
        for &lvl in &t.writebacks {
            if lvl == MEMORY {
                stats.memory_writebacks += 1;
            } else {
                stats.levels[lvl as usize].writebacks_in += 1;
                if acc.charge_writebacks {
                    let spec = &self.cfg.platform.levels[lvl as usize];
                    self.energy.add_level(lvl as usize, spec.data_energy_nj);
                }
            }
        }
        if acc.charge_invalidation_probes {
            for &lvl in &t.probes {
                let spec = &self.cfg.platform.levels[lvl as usize];
                // Tag-only probe; L1/L2 fold tag energy into data, so use
                // the explicit tag component (0 for them, per the model).
                self.energy.add_level(lvl as usize, spec.tag_energy_nj);
            }
        }
        if t.hit_level.is_none() && !t.fills.is_empty() {
            stats.memory_fetches += 1;
        }
        latency
    }

    /// Trains the prefetcher on a demand reference and services candidates.
    fn do_prefetch(&mut self, core: usize, rec: &TraceRecord) {
        self.pf_buf.clear();
        self.prefetchers[core].train(rec.pc, rec.addr, &mut self.pf_buf);
        self.energy.add_prefetcher(RPT_ACCESS_NJ);
        if self.pf_buf.is_empty() {
            return;
        }
        let candidates = std::mem::take(&mut self.pf_buf);
        let mut pf_t = std::mem::take(&mut self.pf_t);
        for &addr in &candidates {
            let block = addr >> self.block_bits;
            self.pf_summary.issued += 1;
            pf_t.clear();

            // ReDHiP/CBF filter the prefetch exactly like a demand miss.
            let mut filtered = false;
            match &self.predictor {
                PredictorState::Table(table) => {
                    if self.cfg.count_prediction_overhead {
                        self.energy.add_predictor(self.pt_spec.access_energy_nj);
                    }
                    filtered = !table.test(block);
                }
                PredictorState::Single(p) => {
                    if self.cfg.count_prediction_overhead {
                        self.energy.add_predictor(self.pt_spec.access_energy_nj);
                    }
                    if p.predict(block) == Prediction::Absent {
                        filtered = true;
                    }
                }
                _ => {}
            }

            let mut resident = false;
            if filtered {
                self.pf_summary.predictor_filtered += 1;
            } else {
                let levels = self.hierarchy.levels();
                for lvl in 1..levels {
                    if self.hierarchy.prefetch_probe(core, lvl, block, &mut pf_t) {
                        resident = true;
                        break;
                    }
                }
            }
            if resident {
                self.pf_summary.already_resident += 1;
            } else {
                // Fill through L1: prefetched data "appears earlier" at the top
                // of the hierarchy (the paper's model of prefetch benefit),
                // so later demand hits need no PT consultation.
                self.hierarchy.prefetch_fill(core, 0, block, &mut pf_t);
                self.pf_summary.fills += 1;
                self.prefetched.insert(block);
            }
            // Price: probe lookups at demand cost; prefetch fills are
            // *additional* data-array writes and always charged (they are
            // traffic the base machine never performs).
            for &(lvl, hit) in &pf_t.lookups {
                let spec = &self.cfg.platform.levels[lvl as usize];
                self.energy
                    .add_level(lvl as usize, spec.parallel_lookup_nj());
                let _ = hit;
            }
            for &lvl in &pf_t.fills {
                let spec = &self.cfg.platform.levels[lvl as usize];
                self.energy.add_level(lvl as usize, spec.data_energy_nj);
            }
            self.apply_predictor_updates(core, &pf_t);
        }
        self.pf_t = pf_t;
        self.pf_buf = candidates;
    }

    // ----- Accessors for the runner / tests ------------------------------

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Per-core cycle counts.
    pub fn clocks(&self) -> &[f64] {
        &self.clocks
    }

    /// Execution time: the slowest core's clock.
    pub fn cycles(&self) -> u64 {
        self.clocks.iter().fold(0.0f64, |a, &b| a.max(b)).ceil() as u64
    }

    /// The hierarchy (stats, invariant checks).
    pub fn hierarchy(&self) -> &DeepHierarchy {
        &self.hierarchy
    }

    /// Predictor outcome counters.
    pub fn prediction_stats(&self) -> PredictionStats {
        self.pred_stats
    }

    /// Recalibrations performed so far. The run loop polls this once per
    /// reference (a recalibration shifts every core's clock), so it is a
    /// dedicated accessor rather than a [`PredictionStats`] copy.
    #[inline]
    pub fn recalibration_count(&self) -> u64 {
        self.pred_stats.recalibrations
    }

    /// Prefetch outcome counters.
    pub fn prefetch_summary(&self) -> PrefetchSummary {
        self.pf_summary
    }

    /// Finishes the run: total energy over `self.cycles()`.
    pub fn finalize_energy(&self) -> energy_model::EnergyReport {
        self.energy.finalize(
            &self.cfg.platform,
            self.cycles(),
            self.cfg.mechanism.has_predictor(),
        )
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// The attached observer, mutably (e.g. to flush a heartbeat).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Ends observation: delivers the final
    /// [`on_window_close`](SimObserver::on_window_close) (flushing partial
    /// windows) and returns the observer.
    pub fn into_observer(mut self) -> O {
        self.obs.on_window_close();
        self.obs
    }
}
