//! Human-readable rendering of a [`RunResult`].

use crate::run::RunResult;
use std::fmt::Write;

/// Renders a full single-run report (used by the `redhip-sim` CLI and
/// handy in tests/examples).
pub fn render(result: &RunResult) -> String {
    let mut out = String::new();
    let refs = result.total_refs();
    let _ = writeln!(out, "references simulated : {refs}");
    let _ = writeln!(out, "execution cycles     : {}", result.cycles);
    let _ = writeln!(out, "cycles / reference   : {:.3}", result.cycles_per_ref());
    let _ = writeln!(out, "\nper-level cache behaviour:");
    let _ = writeln!(
        out,
        "  {:<6}{:>12}{:>10}{:>12}{:>12}{:>12}",
        "level", "lookups", "hit rate", "fills", "evictions", "wb in"
    );
    for (i, l) in result.hierarchy.levels.iter().enumerate() {
        let _ = writeln!(
            out,
            "  L{:<5}{:>12}{:>9.1}%{:>12}{:>12}{:>12}",
            i + 1,
            l.lookups,
            l.hit_rate() * 100.0,
            l.fills,
            l.evictions,
            l.writebacks_in
        );
    }
    let _ = writeln!(
        out,
        "  memory fetches {} | memory writebacks {}",
        result.hierarchy.memory_fetches, result.hierarchy.memory_writebacks
    );

    if result.prediction.lookups > 0 {
        let p = &result.prediction;
        let _ = writeln!(out, "\npredictor:");
        let _ = writeln!(out, "  lookups          : {}", p.lookups);
        let _ = writeln!(
            out,
            "  bypasses         : {} ({:.1}% of true LLC misses)",
            p.bypasses,
            p.miss_coverage() * 100.0
        );
        let _ = writeln!(out, "  walk hits        : {}", p.walk_hits);
        let _ = writeln!(out, "  false positives  : {}", p.false_positives);
        let _ = writeln!(out, "  updates          : {}", p.updates);
        let _ = writeln!(out, "  recalibrations   : {}", p.recalibrations);
        let _ = writeln!(out, "  accuracy         : {:.1}%", p.accuracy() * 100.0);
    }

    if result.prefetch.issued > 0 {
        let pf = &result.prefetch;
        let _ = writeln!(out, "\nprefetcher:");
        let _ = writeln!(out, "  issued           : {}", pf.issued);
        let _ = writeln!(
            out,
            "  fills            : {} ({:.1}% useful)",
            pf.fills,
            pf.usefulness() * 100.0
        );
        let _ = writeln!(out, "  already resident : {}", pf.already_resident);
        let _ = writeln!(out, "  filtered by PT   : {}", pf.predictor_filtered);
    }

    let e = &result.energy;
    let _ = writeln!(out, "\nenergy (J):");
    for (i, d) in e.dynamic_by_level_j.iter().enumerate() {
        let _ = writeln!(out, "  L{} dynamic       : {:.6e}", i + 1, d);
    }
    let _ = writeln!(out, "  predictor        : {:.6e}", e.predictor_dynamic_j);
    let _ = writeln!(out, "  recalibration    : {:.6e}", e.recalibration_j);
    let _ = writeln!(out, "  prefetcher       : {:.6e}", e.prefetcher_j);
    let _ = writeln!(out, "  total dynamic    : {:.6e}", e.total_dynamic_j());
    let _ = writeln!(out, "  total leakage    : {:.6e}", e.total_leakage_j());
    let _ = writeln!(out, "  TOTAL            : {:.6e}", e.total_j());
    let _ = writeln!(
        out,
        "  lower-level share of dynamic: {:.1}%",
        e.lower_level_dynamic_share() * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Mechanism, SimConfig};
    use crate::run::{run_traces, CoreTrace};
    use energy_model::presets::demo_scale;
    use mem_trace::record::TraceRecord;

    #[test]
    fn report_contains_all_sections() {
        let mut platform = demo_scale();
        platform.cores = 1;
        let mut cfg = SimConfig::new(platform, Mechanism::Redhip);
        cfg.refs_per_core = 5_000;
        cfg.recalib_period = Some(512);
        let t: CoreTrace = Box::new((0..u64::MAX).map(|i| {
            let a = if i % 3 == 0 {
                (i * 97) % (1 << 30)
            } else {
                (i % 64) * 64
            };
            TraceRecord::load(0x400, a)
        }));
        let r = run_traces(&cfg, vec![t]);
        let s = render(&r);
        for needle in [
            "references simulated",
            "per-level cache behaviour",
            "predictor:",
            "bypasses",
            "total dynamic",
            "lower-level share",
        ] {
            assert!(s.contains(needle), "missing section {needle}:\n{s}");
        }
    }

    #[test]
    fn base_report_omits_predictor_section() {
        let mut platform = demo_scale();
        platform.cores = 1;
        let mut cfg = SimConfig::new(platform, Mechanism::Base);
        cfg.refs_per_core = 1_000;
        let t: CoreTrace = Box::new((0..u64::MAX).map(|i| TraceRecord::load(0, i * 64)));
        let r = run_traces(&cfg, vec![t]);
        let s = render(&r);
        assert!(!s.contains("predictor:"));
        assert!(!s.contains("prefetcher:"));
    }
}
