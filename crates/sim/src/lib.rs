//! Multi-core trace-driven system simulator.
//!
//! Wires the substrates together the way the paper's evaluation
//! infrastructure does: per-core trace streams (from `workloads`) drive an
//! 8-core deep hierarchy (`cache-sim`) under one of eight mechanisms —
//!
//! * **Base** — walk L1→L2→L3→L4→memory, parallel tag+data everywhere.
//! * **ReDHiP** — consult the prediction table after each L1 miss; bypass
//!   the whole lower hierarchy on a predicted miss; recalibrate
//!   periodically (`redhip`).
//! * **CBF** — same lookup point, counting-Bloom-filter predictor.
//! * **Phased** — no predictor; L3/L4 serialize tag → data.
//! * **Oracle** — perfect LLC-residency knowledge at zero cost.
//! * **LevelPred** — per-load predicted hit level steers the lookup order
//!   ([`predictor`] registry, arXiv:2103.14808).
//! * **Perceptron** — hashed perceptron gating the DRAM bypass behind a
//!   confidence threshold (arXiv:2403.15181).
//! * **WayMemo** — tag-way read skipping on memoized re-touched blocks
//!   (arXiv:0710.4703).
//!
//! Timing follows the paper's model: non-memory instructions cost
//! `gap × avg_cpi` cycles, memory time is the serialized lookup chain, the
//! prediction table adds its wire + access delay on every L1 miss, memory
//! itself is a 0-cycle perfect store, and recalibration stalls every core.
//! Energy events come from the per-access [`cache_sim::Traversal`] log and
//! are priced by `energy-model`.
//!
//! Entry points: [`config::SimConfig`] → [`run::run_traces`] →
//! [`run::RunResult`]; [`metrics`] computes the paper's derived quantities
//! (speedup, normalized dynamic energy, the performance-energy metric).

pub mod config;
pub mod metrics;
pub mod parallel;
pub mod predictor;
pub mod report;
pub mod run;
pub mod stats;
pub mod system;

pub use config::{
    AccountingOptions, CbfParams, LevelPredParams, Mechanism, PerceptronParams, SimConfig,
    WayMemoParams,
};
pub use predictor::{
    build_impl, parse_spec, registry_info, spec_string, MechanismInfo, ParsedSpec, PredictorImpl,
    Steer, WalkOutcome, REGISTRY,
};
// `crate::` disambiguates the local module from the `metrics` registry
// crate the runtime instrumentation lives in.
pub use crate::metrics::Comparison;
pub use parallel::{
    parallel_supported, run_feeds_par, run_feeds_par_with, run_traces_par, run_traces_par_with,
    IntraOptions,
};
pub use run::{
    run_duplicated, run_feeds, run_feeds_with, run_traces, run_traces_with, CoreFeed, CoreTrace,
    RunResult,
};
pub use stats::{PredictionStats, PrefetchSummary};
pub use system::System;
pub use telemetry::{
    Heartbeat, HeartbeatObserver, NullObserver, RecalibMarker, SimObserver, Tee, TelemetryRecord,
    WindowSample, WindowedCollector,
};
