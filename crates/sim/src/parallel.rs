//! Deterministic intra-run parallelism: bound–weave core phases.
//!
//! The sequential harness in [`crate::run`] interleaves per-core trace
//! streams by advancing whichever core has the smallest clock — a total
//! order on references given by `(clock, core)` (ties go to the lowest
//! core index). One simulation therefore uses one host core, no matter
//! how many cores it models. This module parallelizes a *single* run
//! without changing a bit of its output, exploiting the same structural
//! split the paper's 8-core machine has: private L1–L3 per core, one
//! shared L4 + prediction table.
//!
//! The scheduler alternates two phases over a bounded cycle quantum:
//!
//! * **bound** — every core advances independently on a worker thread
//!   (the Chase–Lev pool shared with the `sweep` crate) through its
//!   private levels until its clock reaches the quantum horizon. L1 hits
//!   — the overwhelming majority of references — complete entirely
//!   core-locally. Each L1 miss appends one event to the core's log:
//!   either a private-level walk hit (promotion applied locally) or a
//!   *deep* event whose shared-level outcome (L4 lookup, PT probe,
//!   bypass, fill, recalibration due-check) is deliberately left
//!   unresolved. Private fills for deep events are applied immediately —
//!   under the inclusive policy the private column evolves identically
//!   whether the shared level hits, misses, or is bypassed.
//! * **weave** — the main thread merges the event logs in exactly the
//!   `(clock, core)` order the sequential argmin scheduler would have
//!   produced and commits shared L4/PT/energy state event by event.
//!   Outcome-dependent statistics, latencies, and predictor updates are
//!   resolved here, against shared state that is — by induction — the
//!   sequential state at that reference.
//!
//! # Why the result is byte-identical
//!
//! *Order.* Clocks are kept in integer "grid" units of 1/256 cycle. The
//! envelope ([`parallel_supported`]) requires `avg_cpi` to be a multiple
//! of 1/256; every latency is a whole number of cycles, so all sequential
//! `f64` clock arithmetic is exact on that grid (sums stay far below
//! 2^45 cycles) and integer comparison reproduces the sequential float
//! comparison bit for bit. Weave-side latencies accumulate per core in
//! `off`; recalibration stalls shift *every* clock uniformly (`goff`) and
//! therefore never change the order, so bound-side keys can omit them.
//! An event commits only while `key + off < horizon`; every uncommitted
//! or future reference of any live core is provably at or beyond the
//! horizon, so the merge is the sequential total order restricted to the
//! committed window.
//!
//! *State.* Private-level effects of an L1 miss never depend on the
//! shared outcome, with two exceptions, both handled exactly: a dirty
//! victim of the last private level must mark its block dirty in the LLC
//! (the bound phase defers the mark into the event; the weave commits it
//! in order), and a shared-LLC eviction must back-invalidate private
//! copies of the victim. For the latter the weave proves the invalidation
//! is a no-op — the victim is in no core's column, checked against the
//! columns plus every block they touched or evicted since the epoch
//! snapshot — and on the rare conflict it rolls the whole epoch back and
//! replays it sequentially (same subroutines, real invalidations),
//! parking not-yet-replayed records for the next bound phase.
//!
//! *Energy.* Under the envelope (default accounting, no prefetcher, not
//! Phased) every dynamic-energy accumulator only ever receives one
//! constant: `parallel_lookup_nj` per level, the PT access energy, the
//! recalibration cost. Repeated addition of one constant into one
//! accumulator is order-independent, so the engine counts events and
//! replays the additions at the end, reproducing the sequential sums
//! exactly.
//!
//! Configurations outside the envelope (exclusive/hybrid policies,
//! Phased, prefetch, non-default accounting, fractional-grid CPI) fall
//! back to the sequential harness — [`run_feeds_par`] is then
//! [`crate::run::run_feeds`].
//!
//! # Deterministic observer replay
//!
//! [`run_feeds_par_with`] threads a [`SimObserver`] through the engine.
//! Observers are stateful and order-sensitive (the windowed collector
//! interleaves per-core window closes in global reference order), so the
//! engine replays the *entire* sequential hook stream on the main thread
//! during the weave: with an enabled observer the bound phase also logs
//! L1-hit events (normally core-local and logless), the weave commits
//! every reference in exact `(clock, core)` order, and a mirror
//! [`EnergyAccount`] fed the same constants in the same global order
//! reproduces each reference's `on_ref` energy delta bit for bit. Hook
//! events buffer in commit order and flush to the real observer only at
//! epoch snapshots — clean points a conflict rollback can never cross —
//! so a rolled-back epoch is re-observed exactly once, by its sequential
//! replay. The JSONL a [`telemetry::WindowedCollector`] writes is
//! byte-identical to the sequential scheduler's at every thread count;
//! with [`NullObserver`] all of this compiles away (`O::ENABLED` gates
//! the extra events at monomorphization time) and the engine is the
//! PR 5 engine unchanged.

use crate::config::{AccountingOptions, Mechanism, SimConfig};
use crate::run::{core_physical, CoreFeed, CoreTrace, RunResult};
use crate::stats::{PredictionStats, PrefetchSummary};
use cache_sim::split::{fill_private_column, fill_shared_commit, promote_column};
use cache_sim::{Cache, CacheConfig, HierarchyStats, InclusionPolicy, LevelId};
use energy_model::EnergyAccount;
use mem_trace::record::TraceRecord;
use mem_trace::IterFeed;
use redhip::{
    CbfConfig, CountingBloomFilter, ExactCountingTable, Prediction, PredictionTable,
    PresencePredictor, RecalibrationEngine,
};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use telemetry::{NullObserver, SimObserver};

/// Clock grid: 256 sub-cycle units per cycle (`avg_cpi` must be exact on
/// this grid for the integer clocks to mirror the sequential floats).
const GRID: u64 = 256;

/// Sentinel for [`Event::hit`]: the walk missed every private level.
const DEEP: u8 = u8::MAX;

/// Sentinel for [`Event::hit`]: an L1 hit, logged only when an enabled
/// observer needs the full sequential reference stream. Carries no shared
/// effect: the weave emits its hooks and commits nothing.
const L1HIT: u8 = u8::MAX - 1;

/// Records pulled per feed refill (same chunking as the sequential
/// harness; the consumed sequence is identical either way).
const TRACE_CHUNK: usize = 128;

/// Options for an intra-run parallel simulation.
pub struct IntraOptions<'a> {
    /// Worker threads for the bound phase. `<= 1` runs sequentially.
    pub jobs: usize,
    /// Quantum horizon advance per round, in cycles. Affects performance
    /// and memory only — results are identical for every value.
    pub quantum_cycles: u64,
    /// Called from the scheduling thread with the running count of
    /// references bound so far (monotone, at most the run's total) —
    /// during long bound phases as well as between rounds, so a stderr
    /// heartbeat stays smooth.
    pub progress: Option<&'a dyn Fn(u64)>,
}

impl Default for IntraOptions<'static> {
    fn default() -> Self {
        Self {
            jobs: 1,
            quantum_cycles: 32_768,
            progress: None,
        }
    }
}

impl IntraOptions<'static> {
    /// Options with `jobs` workers and default quantum.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs,
            ..Self::default()
        }
    }
}

/// Whether `cfg` falls inside the bound–weave engine's exactness
/// envelope. Outside it, [`run_feeds_par`] transparently runs the
/// sequential harness.
pub fn parallel_supported(cfg: &SimConfig) -> bool {
    let grid = cfg.avg_cpi * GRID as f64;
    matches!(cfg.policy, InclusionPolicy::Inclusive)
        && cfg.prefetch.is_none()
        && cfg.accounting == AccountingOptions::default()
        && cfg.mechanism != Mechanism::Phased
        // Registry mechanisms (LevelPred / Perceptron / WayMemo) run
        // sequentially: WayMemo splits the L1 charge between two energy
        // constants depending on memo state, which breaks the engine's
        // order-independent count-replay pricing, and the steering
        // mechanisms' mispredict penalties are not yet modelled on the
        // clock grid. The documented fallback keeps results byte-identical
        // at every `--intra-jobs` value.
        && !matches!(
            cfg.mechanism,
            Mechanism::LevelPred | Mechanism::Perceptron | Mechanism::WayMemo
        )
        && cfg.recalib_period != Some(0)
        && cfg.refs_per_core > 0
        && cfg.platform.levels.len() >= 2
        && grid.is_finite()
        && grid >= 0.0
        && grid <= (1u64 << 40) as f64
        && grid.fract() == 0.0
}

/// Runs `cfg` over one [`crate::run::CoreFeed`] per core with intra-run
/// parallelism. Byte-identical to [`crate::run::run_feeds`] at every
/// `opts.jobs` value; falls back to it when `opts.jobs <= 1` or the
/// configuration is outside the engine's envelope.
///
/// # Panics
/// Panics when the number of feeds differs from the platform's core
/// count, the configuration is invalid, or a worker thread panics.
pub fn run_feeds_par(cfg: &SimConfig, feeds: Vec<CoreFeed>, opts: &IntraOptions) -> RunResult {
    assert_eq!(
        feeds.len(),
        cfg.platform.cores,
        "need exactly one trace per core"
    );
    if opts.jobs <= 1 || !parallel_supported(cfg) {
        return crate::run::run_feeds(cfg, feeds);
    }
    Engine::new(cfg, feeds, NullObserver).run(opts, None).0
}

/// Iterator-stream variant of [`run_feeds_par`].
///
/// # Panics
/// Same conditions as [`run_feeds_par`].
pub fn run_traces_par(cfg: &SimConfig, traces: Vec<CoreTrace>, opts: &IntraOptions) -> RunResult {
    let feeds = traces
        .into_iter()
        .map(|t| Box::new(IterFeed::new(t)) as CoreFeed)
        .collect();
    run_feeds_par(cfg, feeds, opts)
}

/// Like [`run_feeds_par`], but threads a [`SimObserver`] through the run.
/// The observer sees the exact sequential hook stream — same hooks, same
/// order, same energy deltas — at every `opts.jobs` value (see the module
/// docs on deterministic observer replay), so e.g. a windowed collector's
/// JSONL is byte-identical to [`crate::run::run_feeds_with`]'s. Falls
/// back to the sequential harness when `opts.jobs <= 1` or the
/// configuration is outside the engine's envelope.
///
/// # Panics
/// Same conditions as [`run_feeds_par`].
pub fn run_feeds_par_with<O: SimObserver>(
    cfg: &SimConfig,
    feeds: Vec<CoreFeed>,
    opts: &IntraOptions,
    obs: O,
) -> (RunResult, O) {
    assert_eq!(
        feeds.len(),
        cfg.platform.cores,
        "need exactly one trace per core"
    );
    if opts.jobs <= 1 || !parallel_supported(cfg) {
        return crate::run::run_feeds_with(cfg, feeds, obs);
    }
    Engine::new(cfg, feeds, obs).run(opts, None)
}

/// Iterator-stream variant of [`run_feeds_par_with`].
///
/// # Panics
/// Same conditions as [`run_feeds_par`].
pub fn run_traces_par_with<O: SimObserver>(
    cfg: &SimConfig,
    traces: Vec<CoreTrace>,
    opts: &IntraOptions,
    obs: O,
) -> (RunResult, O) {
    let feeds = traces
        .into_iter()
        .map(|t| Box::new(IterFeed::new(t)) as CoreFeed)
        .collect();
    run_feeds_par_with(cfg, feeds, opts, obs)
}

/// Like [`run_feeds_par`], but forces the bound–weave engine (even for
/// `jobs <= 1`) and returns the shared-commit log alongside the result:
/// one `(clock_grid, core)` entry per L1 miss, in commit order, where
/// `clock_grid` is the issuing reference's clock in 1/256-cycle units
/// (recalibration stalls excluded — they shift every core equally).
/// Diagnostic/test support for the determinism property: the log is the
/// exact `(clock, core)` order the sequential scheduler processes L1
/// misses in.
///
/// # Panics
/// Panics when `cfg` is outside [`parallel_supported`]'s envelope, plus
/// the [`run_feeds_par`] conditions.
pub fn run_feeds_par_commitlog(
    cfg: &SimConfig,
    feeds: Vec<CoreFeed>,
    opts: &IntraOptions,
) -> (RunResult, Vec<(u64, usize)>) {
    assert_eq!(
        feeds.len(),
        cfg.platform.cores,
        "need exactly one trace per core"
    );
    assert!(
        parallel_supported(cfg),
        "commit-log runs require the parallel envelope"
    );
    let mut log = Vec::new();
    let (result, _) = Engine::new(cfg, feeds, NullObserver).run(opts, Some(&mut log));
    (result, log)
}

/// Immutable per-run constants: pricing on the clock grid, recalibration
/// policy, level geometry.
struct Consts {
    levels: usize,
    priv_levels: usize,
    llc: LevelId,
    /// `avg_cpi` in grid units per gap unit.
    k_grid: u64,
    /// L1-hit latency, grid units.
    l1_hit_grid: u64,
    /// Per-level parallel lookup latency on a hit / miss, grid units.
    lat_hit: Vec<u64>,
    lat_miss: Vec<u64>,
    /// PT probe latency charged per L1 miss (0 when not charged).
    pt_grid: u64,
    /// Count predictor energy events (ReDHiP/CBF with overhead on).
    pred_overhead: bool,
    pt_access_nj: f64,
    recalib_threshold: u64,
    recalib_cycles_grid: u64,
    recalib_cost_nj: f64,
    /// Recalibration charges energy + stall (overhead on, table arm).
    recalib_charge: bool,
    target: u64,
    /// A predictor exists (everything but Base): outcome hooks fire.
    has_pred: bool,
    /// The predictor consumes LLC eviction events (exact table / CBF), so
    /// an evicting fill charges two update energies, not one.
    pred_evict_updates: bool,
    /// Per-level parallel lookup energy — the one constant each level
    /// accumulator receives under the envelope (observer replay only).
    lookup_nj: Vec<f64>,
    /// `lat_hit` / `lat_miss` in whole cycles (`on_ref` units).
    cyc_hit: Vec<u64>,
    cyc_miss: Vec<u64>,
}

/// Order-independent dynamic-energy event counts; the final account
/// replays them as repeated constant additions (see module docs).
#[derive(Clone, Default)]
struct EnergyCounts {
    levels: Vec<u64>,
    predictor: u64,
    recalib: u64,
}

impl EnergyCounts {
    fn new(levels: usize) -> Self {
        Self {
            levels: vec![0; levels],
            ..Self::default()
        }
    }

    fn merge(&mut self, other: &Self) {
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            *a += b;
        }
        self.predictor += other.predictor;
        self.recalib += other.recalib;
    }
}

/// One shared-level event logged by the bound phase.
#[derive(Clone, Copy)]
struct Event {
    /// The reference's clock in grid units, *excluding* weave latencies
    /// (`off`) and recalibration stalls (`goff`) — the bound-known part.
    key: u64,
    block: u64,
    /// Private hit level, or [`DEEP`].
    hit: u8,
    /// Dirty victim of the last private level, to be marked in the LLC
    /// at commit (at most one per event — a deep event fills the last
    /// private level exactly once).
    mark: Option<u64>,
}

/// Clonable per-core simulation state (everything an epoch rollback must
/// restore; the feed itself never rolls back — consumed records live in
/// the epoch log).
#[derive(Clone)]
struct CoreSim {
    column: Vec<Cache>,
    stats: HierarchyStats,
    counts: EnergyCounts,
    /// Bound-side clock, grid units (excludes `off` + `goff`).
    clk: u64,
    refs: u64,
    done: bool,
    /// Pending shared events; `head` is the next uncommitted index.
    events: Vec<Event>,
    head: usize,
    /// Blocks filled into this column since the epoch snapshot.
    touched: HashSet<u64>,
    /// Replacement victims evicted from this column since the snapshot.
    evicted: HashSet<u64>,
}

/// Chunked pull-ahead over a feed, with a pushback queue for records a
/// rolled-back epoch bound but did not replay.
struct Feeder {
    src: CoreFeed,
    buf: Vec<TraceRecord>,
    pos: usize,
    pushback: VecDeque<TraceRecord>,
}

impl Feeder {
    fn new(src: CoreFeed) -> Self {
        Self {
            src,
            buf: Vec::with_capacity(TRACE_CHUNK),
            pos: 0,
            pushback: VecDeque::new(),
        }
    }

    /// Next record and whether it is fresh from the feed (pushed-back
    /// records were already counted for progress and already carry the
    /// per-core physical address mapping).
    fn next(&mut self) -> Option<(TraceRecord, bool)> {
        if let Some(r) = self.pushback.pop_front() {
            return Some((r, false));
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.src.refill(&mut self.buf, TRACE_CHUNK) == 0 {
                return None;
            }
        }
        let r = self.buf[self.pos];
        self.pos += 1;
        Some((r, true))
    }

    fn push_front(&mut self, recs: &[TraceRecord]) {
        for &r in recs.iter().rev() {
            self.pushback.push_front(r);
        }
    }
}

struct PerCore {
    sim: CoreSim,
    feed: Feeder,
    /// Every record bound since the epoch snapshot (physical addresses
    /// applied), in bind order — the sequential replay input on rollback.
    log: Vec<TraceRecord>,
}

/// Predictor beside the shared LLC, devirtualized so the whole shared
/// half clones cheaply for epoch snapshots.
#[derive(Clone)]
enum Pred {
    None,
    Oracle,
    Table(PredictionTable),
    Exact(ExactCountingTable),
    Cbf(CountingBloomFilter),
}

/// Clonable shared-side state: the LLC bank, the predictor, all counters
/// the weave owns, and the two latency offsets.
#[derive(Clone)]
struct SharedSim {
    llc: Cache,
    pred: Pred,
    stats: HierarchyStats,
    pred_stats: PredictionStats,
    counts: EnergyCounts,
    /// L1 misses since the last recalibration (commit order).
    misses: u64,
    /// Per-core weave-side latency, grid units.
    off: Vec<u64>,
    /// Uniform recalibration stall applied to every core, grid units.
    goff: u64,
    /// Mirror of the sequential [`EnergyAccount`], fed the same constant
    /// additions in the same global commit order so observer energy
    /// deltas reproduce bit for bit. Touched only when the observer is
    /// enabled; rolls back with the rest of the shared state.
    acc: EnergyAccount,
}

/// The reference shape the weave reconstructs hooks from: which levels
/// were looked up, what the predictor outcome was, what was filled.
#[derive(Clone, Copy)]
enum RefKind {
    /// L1 hit (fast path).
    L1Hit,
    /// Private walk hit at this level.
    PrivHit(usize),
    /// Walked, hit in the shared LLC.
    LlcHit,
    /// Walked, missed everywhere, filled from memory.
    MemWalk,
    /// Predictor said absent; filled from memory without walking.
    Bypass,
}

/// One buffered observer hook, replayed to the real observer at epoch
/// snapshots (commit order is the sequential hook order; a rollback
/// discards the epoch's buffer and its sequential replay re-emits it).
enum ObsEvent {
    WalkHit(usize),
    FalsePositive(usize),
    Bypass(usize),
    Level(usize, u8, bool),
    Fill(usize, u8),
    Ref(usize, u64, f64),
    Recalib(f64, u64),
}

struct Engine<'a, O: SimObserver> {
    cfg: &'a SimConfig,
    consts: Consts,
    cores: Vec<PerCore>,
    shared: SharedSim,
    snap_cores: Vec<CoreSim>,
    snap_shared: SharedSim,
    snap_log_len: usize,
    obs: O,
    /// Hooks buffered since the last epoch snapshot (observer runs only).
    obs_buf: Vec<ObsEvent>,
}

/// True when `block` may be resident anywhere in a private column — the
/// weave's proof obligation before skipping a back-invalidation.
fn conflicts(cores: &[PerCore], block: u64) -> bool {
    cores.iter().any(|pc| {
        pc.sim.touched.contains(&block)
            || pc.sim.evicted.contains(&block)
            || pc.sim.column.iter().any(|c| c.probe(block))
    })
}

/// Buffers the full sequential hook sequence of one committed reference
/// and mirrors its energy charges into `acc`: predictor outcome first,
/// then one `Level` per demand lookup (L1 first), one `Fill` per demand
/// fill, then the closing `Ref` whose energy delta is computed exactly
/// the way the sequential `step_with` computes it — as a difference of
/// `total_dynamic_nj` across the reference. `evicted` reports whether a
/// memory fill displaced an LLC victim (a second predictor update under
/// the exact table / CBF). Must be called in global `(clock, core)`
/// commit order, which is what keeps every `f64` boundary identical.
fn emit_ref(
    cn: &Consts,
    acc: &mut EnergyAccount,
    buf: &mut Vec<ObsEvent>,
    core: usize,
    kind: RefKind,
    evicted: bool,
) {
    let before = acc.total_dynamic_nj();
    let llc = cn.llc as usize;
    let mut latency = 0u64;
    match kind {
        RefKind::L1Hit => {
            acc.add_level(0, cn.lookup_nj[0]);
            buf.push(ObsEvent::Level(core, 0, true));
            latency = cn.cyc_hit[0];
        }
        RefKind::PrivHit(h) => {
            if cn.has_pred {
                buf.push(ObsEvent::WalkHit(core));
            }
            if cn.pred_overhead {
                acc.add_predictor(cn.pt_access_nj);
            }
            for lvl in 0..h {
                buf.push(ObsEvent::Level(core, lvl as u8, false));
                acc.add_level(lvl, cn.lookup_nj[lvl]);
                latency += cn.cyc_miss[lvl];
            }
            buf.push(ObsEvent::Level(core, h as u8, true));
            acc.add_level(h, cn.lookup_nj[h]);
            latency += cn.cyc_hit[h];
            for lvl in (0..h).rev() {
                buf.push(ObsEvent::Fill(core, lvl as u8));
            }
        }
        RefKind::LlcHit => {
            if cn.has_pred {
                buf.push(ObsEvent::WalkHit(core));
            }
            if cn.pred_overhead {
                acc.add_predictor(cn.pt_access_nj);
            }
            for lvl in 0..cn.priv_levels {
                buf.push(ObsEvent::Level(core, lvl as u8, false));
                acc.add_level(lvl, cn.lookup_nj[lvl]);
                latency += cn.cyc_miss[lvl];
            }
            buf.push(ObsEvent::Level(core, cn.llc, true));
            acc.add_level(llc, cn.lookup_nj[llc]);
            latency += cn.cyc_hit[llc];
            for lvl in (0..cn.priv_levels).rev() {
                buf.push(ObsEvent::Fill(core, lvl as u8));
            }
        }
        RefKind::MemWalk => {
            if cn.has_pred {
                buf.push(ObsEvent::FalsePositive(core));
            }
            if cn.pred_overhead {
                // Probe, then the LLC-insert update(s).
                acc.add_predictor(cn.pt_access_nj);
                acc.add_predictor(cn.pt_access_nj);
                if cn.pred_evict_updates && evicted {
                    acc.add_predictor(cn.pt_access_nj);
                }
            }
            for lvl in 0..cn.priv_levels {
                buf.push(ObsEvent::Level(core, lvl as u8, false));
                acc.add_level(lvl, cn.lookup_nj[lvl]);
                latency += cn.cyc_miss[lvl];
            }
            buf.push(ObsEvent::Level(core, cn.llc, false));
            acc.add_level(llc, cn.lookup_nj[llc]);
            latency += cn.cyc_miss[llc];
            buf.push(ObsEvent::Fill(core, cn.llc));
            for lvl in (0..cn.priv_levels).rev() {
                buf.push(ObsEvent::Fill(core, lvl as u8));
            }
        }
        RefKind::Bypass => {
            buf.push(ObsEvent::Bypass(core));
            if cn.pred_overhead {
                acc.add_predictor(cn.pt_access_nj);
                acc.add_predictor(cn.pt_access_nj);
                if cn.pred_evict_updates && evicted {
                    acc.add_predictor(cn.pt_access_nj);
                }
            }
            buf.push(ObsEvent::Level(core, 0, false));
            acc.add_level(0, cn.lookup_nj[0]);
            latency += cn.cyc_miss[0];
            buf.push(ObsEvent::Fill(core, cn.llc));
            for lvl in (0..cn.priv_levels).rev() {
                buf.push(ObsEvent::Fill(core, lvl as u8));
            }
        }
    }
    let delta = acc.total_dynamic_nj() - before;
    buf.push(ObsEvent::Ref(core, latency, delta));
}

/// Advances one core through its private levels until its bound-side
/// clock reaches `limit` (grid units), its target, or its feed's end.
/// `OBS` additionally logs L1 hits as [`L1HIT`] events for the weave's
/// observer replay (monomorphized out on unobserved runs).
fn bind_core<const OBS: bool>(
    cfg: &SimConfig,
    cn: &Consts,
    pc: &mut PerCore,
    core: usize,
    limit: u64,
    refs_ctr: &AtomicU64,
) {
    let mut victims: Vec<u64> = Vec::new();
    let mut fresh = 0u64;
    while pc.sim.clk < limit && pc.sim.refs < cn.target {
        let Some((mut rec, from_feed)) = pc.feed.next() else {
            pc.sim.done = true;
            break;
        };
        if from_feed {
            rec.addr = core_physical(cfg, core, rec.addr);
            fresh += 1;
            if fresh == 8192 {
                refs_ctr.fetch_add(fresh, Ordering::Relaxed);
                fresh = 0;
            }
        }
        pc.log.push(rec);
        bound_step::<OBS>(&mut pc.sim, cn, &rec, &mut victims);
    }
    if pc.sim.refs >= cn.target {
        pc.sim.done = true;
    }
    if fresh > 0 {
        refs_ctr.fetch_add(fresh, Ordering::Relaxed);
    }
}

/// One reference of the bound phase: private levels only, one event per
/// L1 miss, outcome-dependent charges deferred to the weave. `OBS` logs
/// L1 hits too, so the weave can replay the full reference stream.
fn bound_step<const OBS: bool>(
    sim: &mut CoreSim,
    cn: &Consts,
    rec: &TraceRecord,
    victims: &mut Vec<u64>,
) {
    let block = rec.addr >> 6;
    let store = rec.op.is_store();
    let key = sim.clk;
    sim.clk += u64::from(rec.gap) * cn.k_grid;
    sim.refs += 1;
    if sim.column[0].access(block, store) {
        sim.stats.levels[0].lookups += 1;
        sim.stats.levels[0].hits += 1;
        sim.counts.levels[0] += 1;
        sim.clk += cn.l1_hit_grid;
        if OBS {
            sim.events.push(Event {
                key,
                block,
                hit: L1HIT,
                mark: None,
            });
        }
        return;
    }
    // L1 miss: the missed probe is logged (no second access), the PT
    // probe's wire+array latency is mechanism-constant, and the walk
    // outcome decides everything else.
    sim.stats.levels[0].lookups += 1;
    sim.counts.levels[0] += 1;
    sim.clk += cn.lat_miss[0] + cn.pt_grid;
    if cn.pred_overhead {
        // The PT probe itself (one array access per L1 miss) is
        // mechanism-constant; only the outcome is weave-side.
        sim.counts.predictor += 1;
    }
    sim.touched.insert(block);
    let mut hit_at = None;
    for lvl in 1..cn.priv_levels {
        if sim.column[lvl].access(block, false) {
            hit_at = Some(lvl);
            break;
        }
    }
    match hit_at {
        Some(h) => {
            // A private walk hit happens under *every* mechanism: the
            // block is on chip, so (inclusion + no-false-negatives) no
            // predictor ever bypasses it. Lookup counts and latencies up
            // to the hit are therefore bound-known.
            for lvl in 1..h {
                sim.stats.levels[lvl].lookups += 1;
                sim.counts.levels[lvl] += 1;
                sim.clk += cn.lat_miss[lvl];
            }
            sim.stats.levels[h].lookups += 1;
            sim.stats.levels[h].hits += 1;
            sim.counts.levels[h] += 1;
            sim.clk += cn.lat_hit[h];
            promote_column(
                &mut sim.column,
                h as u8,
                block,
                store,
                &mut sim.stats,
                victims,
            );
            sim.events.push(Event {
                key,
                block,
                hit: h as u8,
                mark: None,
            });
        }
        None => {
            // Deep event. The probes above were state-neutral misses;
            // whether the weave walks (and charges) them depends on the
            // prediction, so nothing is counted here. The private fills
            // are outcome-independent: LLC hit (promote) and memory fill
            // produce the same top-down column fills.
            let mut mark = None;
            for lvl in (0..cn.priv_levels).rev() {
                let dirty = lvl == 0 && store;
                if let Some(wb) = fill_private_column(
                    &mut sim.column,
                    lvl as u8,
                    block,
                    dirty,
                    &mut sim.stats,
                    victims,
                ) {
                    debug_assert!(mark.is_none(), "one last-private fill per reference");
                    mark = Some(wb);
                }
            }
            sim.events.push(Event {
                key,
                block,
                hit: DEEP,
                mark,
            });
        }
    }
    for v in victims.drain(..) {
        sim.evicted.insert(v);
    }
}

impl<'a, O: SimObserver> Engine<'a, O> {
    fn new(cfg: &'a SimConfig, feeds: Vec<CoreFeed>, obs: O) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SimConfig: {e}");
        }
        debug_assert!(parallel_supported(cfg));
        let p = &cfg.platform;
        let block = 64u64;
        let levels = p.levels.len();
        let priv_levels = levels - 1;
        let llc = priv_levels as LevelId;

        let column_cfgs: Vec<CacheConfig> = p.levels[..priv_levels]
            .iter()
            .map(|l| CacheConfig {
                capacity_bytes: l.capacity_bytes,
                assoc: l.assoc,
                block_bytes: block,
                policy: cfg.replacement,
            })
            .collect();
        let llc_cfg = {
            let l = p.llc();
            CacheConfig {
                capacity_bytes: l.capacity_bytes,
                assoc: l.assoc,
                block_bytes: block,
                policy: cfg.replacement,
            }
        };

        let pt_bytes = cfg.effective_pt_bytes();
        let pt_spec = p.predictor.scaled_to(pt_bytes);
        let mut recalib_engine = None;
        let pred = match cfg.mechanism {
            Mechanism::Base | Mechanism::Phased => Pred::None,
            Mechanism::Oracle => Pred::Oracle,
            Mechanism::Cbf => {
                let c = CbfConfig::from_budget(pt_bytes, cfg.cbf.counter_bits, cfg.cbf.num_hashes);
                Pred::Cbf(CountingBloomFilter::new(c))
            }
            Mechanism::Redhip if cfg.recalib_period == Some(1) => {
                Pred::Exact(ExactCountingTable::from_capacity_bytes(pt_bytes))
            }
            Mechanism::Redhip => {
                let table = PredictionTable::from_capacity_bytes(pt_bytes);
                recalib_engine = Some(RecalibrationEngine::new(
                    llc_cfg.geometry().sets(),
                    llc_cfg.assoc,
                    table.lines(),
                    cfg.recalib_banks,
                    p.llc().tag_energy_nj,
                    pt_spec.access_energy_nj,
                ));
                Pred::Table(table)
            }
            Mechanism::LevelPred | Mechanism::Perceptron | Mechanism::WayMemo => {
                unreachable!("registry mechanisms are outside the parallel envelope")
            }
        };
        let recalib_threshold = match (&pred, cfg.recalib_period) {
            (Pred::Table(_), Some(period)) => period,
            _ => u64::MAX,
        };
        let recalib_cost = recalib_engine.map(|e| e.cost());
        let pred_overhead = cfg.count_prediction_overhead
            && matches!(cfg.mechanism, Mechanism::Redhip | Mechanism::Cbf);

        let consts = Consts {
            levels,
            priv_levels,
            llc,
            k_grid: (cfg.avg_cpi * GRID as f64) as u64,
            l1_hit_grid: p.levels[0].parallel_latency(true) * GRID,
            lat_hit: p
                .levels
                .iter()
                .map(|l| l.parallel_latency(true) * GRID)
                .collect(),
            lat_miss: p
                .levels
                .iter()
                .map(|l| l.parallel_latency(false) * GRID)
                .collect(),
            pt_grid: if pred_overhead {
                pt_spec.lookup_latency() * GRID
            } else {
                0
            },
            pred_overhead,
            pt_access_nj: pt_spec.access_energy_nj,
            recalib_threshold,
            recalib_cycles_grid: recalib_cost.map_or(0, |c| c.cycles * GRID),
            recalib_cost_nj: recalib_cost.map_or(0.0, |c| c.energy_nj),
            recalib_charge: cfg.count_prediction_overhead && recalib_cost.is_some(),
            target: cfg.refs_per_core as u64,
            has_pred: !matches!(pred, Pred::None),
            pred_evict_updates: matches!(pred, Pred::Exact(_) | Pred::Cbf(_)),
            lookup_nj: p.levels.iter().map(|l| l.parallel_lookup_nj()).collect(),
            cyc_hit: p.levels.iter().map(|l| l.parallel_latency(true)).collect(),
            cyc_miss: p.levels.iter().map(|l| l.parallel_latency(false)).collect(),
        };

        let cores: Vec<PerCore> = feeds
            .into_iter()
            .map(|f| PerCore {
                sim: CoreSim {
                    column: column_cfgs.iter().map(|c| Cache::new(*c)).collect(),
                    stats: HierarchyStats::new(levels),
                    counts: EnergyCounts::new(levels),
                    clk: 0,
                    refs: 0,
                    done: false,
                    events: Vec::new(),
                    head: 0,
                    touched: HashSet::new(),
                    evicted: HashSet::new(),
                },
                feed: Feeder::new(f),
                log: Vec::new(),
            })
            .collect();
        let shared = SharedSim {
            llc: Cache::new(llc_cfg),
            pred,
            stats: HierarchyStats::new(levels),
            pred_stats: PredictionStats::default(),
            counts: EnergyCounts::new(levels),
            misses: 0,
            off: vec![0; cores.len()],
            goff: 0,
            acc: EnergyAccount::new(levels),
        };
        let snap_cores = cores.iter().map(|p| p.sim.clone()).collect();
        let snap_shared = shared.clone();
        Self {
            cfg,
            consts,
            cores,
            shared,
            snap_cores,
            snap_shared,
            snap_log_len: 0,
            obs,
            obs_buf: Vec::new(),
        }
    }

    fn run(
        mut self,
        opts: &IntraOptions,
        mut log: Option<&mut Vec<(u64, usize)>>,
    ) -> (RunResult, O) {
        let quantum = opts.quantum_cycles.max(64) * GRID;
        let refs_ctr = AtomicU64::new(0);
        loop {
            if self
                .cores
                .iter()
                .all(|p| p.sim.done && p.sim.head == p.sim.events.len())
            {
                break;
            }
            metrics::PAR_QUANTA.incr();
            let h_next = self.next_horizon(quantum);
            self.bind(h_next, opts, &refs_ctr);
            let aborted = {
                let _span = metrics::PHASE_WEAVE.start();
                self.weave(h_next, &mut log)
            };
            if aborted {
                let _span = metrics::PHASE_REDO.start();
                metrics::PAR_ROLLBACKS.incr();
                self.redo(&mut log);
            } else if self.cores.iter().all(|p| p.sim.head == p.sim.events.len()) {
                // Clean point: every bound reference is committed, so the
                // epoch snapshot moves here and the conflict sets reset.
                for p in &mut self.cores {
                    p.sim.events.clear();
                    p.sim.head = 0;
                    p.log.clear();
                    p.sim.touched.clear();
                    p.sim.evicted.clear();
                }
                self.take_snapshot(&log);
            } else {
                // Deferred events stay queued; drop the committed prefix.
                for p in &mut self.cores {
                    let h = p.sim.head;
                    p.sim.events.drain(..h);
                    p.sim.head = 0;
                }
            }
            if let Some(f) = opts.progress {
                f(refs_ctr.load(Ordering::Relaxed));
            }
        }
        self.finish()
    }

    /// Next commit horizon: one quantum past the earliest pending event
    /// or unfinished core (true time, `goff` excluded throughout).
    fn next_horizon(&self, quantum: u64) -> u64 {
        let mut m = u64::MAX;
        for (c, pc) in self.cores.iter().enumerate() {
            let s = &pc.sim;
            if s.head < s.events.len() {
                m = m.min(s.events[s.head].key + self.shared.off[c]);
            }
            if !s.done {
                m = m.min(s.clk + self.shared.off[c]);
            }
        }
        debug_assert!(m < u64::MAX, "horizon requested with no work left");
        m.saturating_add(quantum)
    }

    /// Bound phase: advance every unfinished core to the horizon, on the
    /// worker pool when more than one core has work.
    fn bind(&mut self, h_next: u64, opts: &IntraOptions, refs_ctr: &AtomicU64) {
        let n = self.cores.len();
        let limits: Vec<u64> = (0..n)
            .map(|c| h_next.saturating_sub(self.shared.off[c]))
            .collect();
        let active: Vec<usize> = (0..n)
            .filter(|&c| !self.cores[c].sim.done && self.cores[c].sim.clk < limits[c])
            .collect();
        if active.is_empty() {
            return;
        }
        let cfg = self.cfg;
        let cn = &self.consts;
        if opts.jobs <= 1 || active.len() == 1 {
            for &c in &active {
                if O::ENABLED {
                    bind_core::<true>(cfg, cn, &mut self.cores[c], c, limits[c], refs_ctr);
                } else {
                    bind_core::<false>(cfg, cn, &mut self.cores[c], c, limits[c], refs_ctr);
                }
            }
            return;
        }
        let slots: Vec<Mutex<&mut PerCore>> = self.cores.iter_mut().map(Mutex::new).collect();
        let ticks = AtomicU64::new(0);
        let workers = opts.jobs.min(active.len());
        let result = pool::run_ordered(
            workers,
            &active,
            &ticks,
            |_| {
                if let Some(f) = opts.progress {
                    f(refs_ctr.load(Ordering::Relaxed));
                }
            },
            |c| {
                let mut pc = slots[c].lock().expect("bind slot poisoned");
                if O::ENABLED {
                    bind_core::<true>(cfg, cn, &mut pc, c, limits[c], refs_ctr);
                } else {
                    bind_core::<false>(cfg, cn, &mut pc, c, limits[c], refs_ctr);
                }
            },
        );
        if let Err(e) = result {
            panic!("intra-run worker panicked: {e}");
        }
    }

    /// Weave phase: commit pending events in `(clock, core)` order up to
    /// the horizon. Returns true when a shared-LLC eviction conflicted
    /// with a private column (the epoch must be replayed sequentially).
    fn weave(&mut self, h_next: u64, log: &mut Option<&mut Vec<(u64, usize)>>) -> bool {
        let n = self.cores.len();
        loop {
            let mut best: Option<(u64, usize)> = None;
            for c in 0..n {
                let s = &self.cores[c].sim;
                if s.head < s.events.len() {
                    let eff = s.events[s.head].key + self.shared.off[c];
                    if eff < h_next && best.is_none_or(|b| (eff, c) < b) {
                        best = Some((eff, c));
                    }
                }
            }
            let Some((eff, c)) = best else {
                return false;
            };
            let ev = self.cores[c].sim.events[self.cores[c].sim.head];
            if self.commit_event(c, eff, &ev, log) {
                return true;
            }
            self.cores[c].sim.head += 1;
        }
    }

    /// Commits one event against the shared state. Returns true on a
    /// back-invalidation conflict (nothing further is committed).
    fn commit_event(
        &mut self,
        c: usize,
        eff: u64,
        ev: &Event,
        log: &mut Option<&mut Vec<(u64, usize)>>,
    ) -> bool {
        let cn = &self.consts;
        let llc_idx = cn.llc as usize;
        if ev.hit == L1HIT {
            // Observer-only event: the reference completed core-locally;
            // replaying its hooks in global order is its entire commit.
            debug_assert!(O::ENABLED, "L1-hit events logged without an observer");
            emit_ref(
                cn,
                &mut self.shared.acc,
                &mut self.obs_buf,
                c,
                RefKind::L1Hit,
                false,
            );
            return false;
        }
        self.shared.misses += 1;
        let mut lat = 0u64;
        let kind;
        let mut evicted = false;
        if ev.hit != DEEP {
            // Private walk hit: every predictor walks (see bound_step);
            // only the outcome counters are shared-side.
            let sh = &mut self.shared;
            match &sh.pred {
                Pred::None => {}
                Pred::Oracle => {
                    sh.pred_stats.lookups += 1;
                    debug_assert!(
                        sh.llc.probe(ev.block),
                        "inclusion: private hit implies LLC residency"
                    );
                    sh.pred_stats.walk_hits += 1;
                }
                Pred::Table(t) => {
                    sh.pred_stats.lookups += 1;
                    debug_assert!(t.test(ev.block), "false negative on a resident block");
                    sh.pred_stats.walk_hits += 1;
                }
                Pred::Exact(p) => {
                    sh.pred_stats.lookups += 1;
                    debug_assert!(p.predict(ev.block) == Prediction::MaybePresent);
                    sh.pred_stats.walk_hits += 1;
                }
                Pred::Cbf(p) => {
                    sh.pred_stats.lookups += 1;
                    debug_assert!(p.predict(ev.block) == Prediction::MaybePresent);
                    sh.pred_stats.walk_hits += 1;
                }
            }
            kind = RefKind::PrivHit(ev.hit as usize);
        } else {
            let sh = &mut self.shared;
            let walk = match &sh.pred {
                Pred::None => true,
                Pred::Oracle => {
                    sh.pred_stats.lookups += 1;
                    sh.llc.probe(ev.block)
                }
                Pred::Table(t) => {
                    sh.pred_stats.lookups += 1;
                    t.test(ev.block)
                }
                Pred::Exact(p) => {
                    sh.pred_stats.lookups += 1;
                    p.predict(ev.block) == Prediction::MaybePresent
                }
                Pred::Cbf(p) => {
                    sh.pred_stats.lookups += 1;
                    p.predict(ev.block) == Prediction::MaybePresent
                }
            };
            let mut llc_hit = false;
            if walk {
                // The private levels all missed (that is what DEEP
                // means); the walk's probes of them are charged here.
                for lvl in 1..cn.priv_levels {
                    sh.stats.levels[lvl].lookups += 1;
                    sh.counts.levels[lvl] += 1;
                    lat += cn.lat_miss[lvl];
                }
                let li = cn.llc as usize;
                llc_hit = sh.llc.access(ev.block, false);
                sh.stats.levels[li].lookups += 1;
                sh.counts.levels[li] += 1;
                if llc_hit {
                    sh.stats.levels[li].hits += 1;
                    lat += cn.lat_hit[li];
                } else {
                    lat += cn.lat_miss[li];
                }
                match &sh.pred {
                    Pred::None => {}
                    Pred::Oracle => {
                        debug_assert!(llc_hit, "oracle only walks resident blocks");
                        sh.pred_stats.walk_hits += 1;
                    }
                    _ => {
                        if llc_hit {
                            sh.pred_stats.walk_hits += 1;
                        } else {
                            sh.pred_stats.false_positives += 1;
                        }
                    }
                }
            } else {
                debug_assert!(
                    !sh.llc.probe(ev.block),
                    "false negative: bypassed a resident block"
                );
                sh.pred_stats.bypasses += 1;
            }
            kind = if !walk {
                RefKind::Bypass
            } else if llc_hit {
                RefKind::LlcHit
            } else {
                RefKind::MemWalk
            };
            if !llc_hit {
                let victim = fill_shared_commit(
                    &mut self.shared.llc,
                    cn.llc,
                    ev.block,
                    &mut self.shared.stats,
                );
                if let Some(v) = victim {
                    if conflicts(&self.cores, v.block) {
                        return true;
                    }
                    // The victim is in no private column, so the
                    // sequential back-invalidation is a no-op; only its
                    // own dirty bit can force a memory writeback.
                    if v.dirty {
                        self.shared.stats.memory_writebacks += 1;
                    }
                }
                evicted = victim.is_some();
                self.shared.stats.memory_fetches += 1;
                self.predictor_fill(ev.block, victim.map(|v| v.block));
            }
        }
        if let Some(mb) = ev.mark {
            self.shared.stats.levels[llc_idx].writebacks_in += 1;
            let ok = self.shared.llc.mark_dirty(mb);
            assert!(ok, "weave: dirty-mark target not LLC-resident");
        }
        self.shared.off[c] += lat;
        if let Some(l) = log.as_deref_mut() {
            l.push((eff, c));
        }
        if O::ENABLED {
            emit_ref(
                &self.consts,
                &mut self.shared.acc,
                &mut self.obs_buf,
                c,
                kind,
                evicted,
            );
        }
        if self.shared.misses >= self.consts.recalib_threshold {
            self.recalibrate();
        }
        false
    }

    /// Predictor updates for one committed LLC fill (+ optional
    /// eviction), in the sequential order: inserts, then removals.
    fn predictor_fill(&mut self, block: u64, evicted: Option<u64>) {
        let sh = &mut self.shared;
        let overhead = self.consts.pred_overhead;
        match &mut sh.pred {
            Pred::Table(t) => {
                t.set(block);
                sh.pred_stats.updates += 1;
                if overhead {
                    sh.counts.predictor += 1;
                }
            }
            Pred::Exact(p) => {
                p.on_fill(block);
                sh.pred_stats.updates += 1;
                if overhead {
                    sh.counts.predictor += 1;
                }
                if let Some(v) = evicted {
                    p.on_evict(v);
                    sh.pred_stats.updates += 1;
                    if overhead {
                        sh.counts.predictor += 1;
                    }
                }
            }
            Pred::Cbf(p) => {
                p.on_fill(block);
                sh.pred_stats.updates += 1;
                if overhead {
                    sh.counts.predictor += 1;
                }
                if let Some(v) = evicted {
                    p.on_evict(v);
                    sh.pred_stats.updates += 1;
                    if overhead {
                        sh.counts.predictor += 1;
                    }
                }
            }
            _ => {}
        }
    }

    /// Recalibration in commit order: rebuild the table from the LLC,
    /// charge the modelled stall uniformly (it never reorders commits).
    /// The sequential engine fires `on_recalibration` after the
    /// triggering reference's `on_ref` — with zero charges when overhead
    /// accounting is off — so the observer replay does the same.
    fn recalibrate(&mut self) {
        let sh = &mut self.shared;
        sh.misses = 0;
        sh.pred_stats.recalibrations += 1;
        if let Pred::Table(t) = &mut sh.pred {
            t.recalibrate_from(sh.llc.resident_blocks());
            if self.consts.recalib_charge {
                sh.counts.recalib += 1;
                sh.goff += self.consts.recalib_cycles_grid;
                if O::ENABLED {
                    sh.acc.add_recalibration(self.consts.recalib_cost_nj);
                    self.obs_buf.push(ObsEvent::Recalib(
                        self.consts.recalib_cost_nj,
                        self.consts.recalib_cycles_grid / GRID,
                    ));
                }
            } else if O::ENABLED {
                self.obs_buf.push(ObsEvent::Recalib(0.0, 0));
            }
        }
    }

    /// Epoch rollback: restore the snapshot and replay every record the
    /// epoch bound with full sequential semantics (fused private+shared
    /// stepping, real back-invalidations), stopping at the first point
    /// where an unfinished core's next record is still in its feed.
    /// Unreplayed records park in the feeds' pushback queues.
    fn redo(&mut self, log: &mut Option<&mut Vec<(u64, usize)>>) {
        for (pc, snap) in self.cores.iter_mut().zip(&self.snap_cores) {
            pc.sim = snap.clone();
        }
        self.shared = self.snap_shared.clone();
        // The aborted epoch's buffered hooks never reached the observer;
        // the sequential replay below re-emits the epoch exactly once.
        self.obs_buf.clear();
        if let Some(l) = log.as_deref_mut() {
            l.truncate(self.snap_log_len);
        }
        let n = self.cores.len();
        let mut idx = vec![0usize; n];
        let mut victims: Vec<u64> = Vec::new();
        let mut replayed = 0u64;
        loop {
            let mut best: Option<(u64, usize, bool)> = None;
            for (c, (pc, i)) in self.cores.iter().zip(&idx).enumerate() {
                let s = &pc.sim;
                let has = *i < pc.log.len();
                if !has && s.done {
                    continue;
                }
                let key = s.clk + self.shared.off[c];
                if best.is_none_or(|(bk, bc, _)| (key, c) < (bk, bc)) {
                    best = Some((key, c, has));
                }
            }
            let Some((key, c, has)) = best else { break };
            if !has {
                break;
            }
            let rec = self.cores[c].log[idx[c]];
            idx[c] += 1;
            self.seq_step(c, key, &rec, &mut victims, log);
            replayed += 1;
            if self.cores[c].sim.refs >= self.consts.target {
                self.cores[c].sim.done = true;
            }
        }
        metrics::PAR_REDO_REFS.add(replayed);
        for (c, pc) in self.cores.iter_mut().enumerate() {
            let rest: Vec<TraceRecord> = pc.log[idx[c]..].to_vec();
            pc.feed.push_front(&rest);
            pc.log.clear();
            pc.sim.events.clear();
            pc.sim.head = 0;
            pc.sim.touched.clear();
            pc.sim.evicted.clear();
        }
        self.take_snapshot(log);
    }

    /// One fully sequential reference during an epoch replay. Mirrors
    /// `System::step_with` under the envelope, over the split state.
    fn seq_step(
        &mut self,
        c: usize,
        key: u64,
        rec: &TraceRecord,
        victims: &mut Vec<u64>,
        log: &mut Option<&mut Vec<(u64, usize)>>,
    ) {
        let block = rec.addr >> 6;
        let store = rec.op.is_store();
        {
            let s = &mut self.cores[c].sim;
            s.clk += u64::from(rec.gap) * self.consts.k_grid;
            s.refs += 1;
            if s.column[0].access(block, store) {
                s.stats.levels[0].lookups += 1;
                s.stats.levels[0].hits += 1;
                s.counts.levels[0] += 1;
                s.clk += self.consts.l1_hit_grid;
                if O::ENABLED {
                    emit_ref(
                        &self.consts,
                        &mut self.shared.acc,
                        &mut self.obs_buf,
                        c,
                        RefKind::L1Hit,
                        false,
                    );
                }
                return;
            }
            s.stats.levels[0].lookups += 1;
            s.counts.levels[0] += 1;
        }
        self.shared.misses += 1;
        let mut lat = self.consts.lat_miss[0] + self.consts.pt_grid;
        if self.consts.pred_overhead {
            self.cores[c].sim.counts.predictor += 1;
        }
        let walk = {
            let sh = &mut self.shared;
            match &sh.pred {
                Pred::None => true,
                Pred::Oracle => {
                    sh.pred_stats.lookups += 1;
                    sh.llc.probe(block)
                }
                Pred::Table(t) => {
                    sh.pred_stats.lookups += 1;
                    t.test(block)
                }
                Pred::Exact(p) => {
                    sh.pred_stats.lookups += 1;
                    p.predict(block) == Prediction::MaybePresent
                }
                Pred::Cbf(p) => {
                    sh.pred_stats.lookups += 1;
                    p.predict(block) == Prediction::MaybePresent
                }
            }
        };
        let mut onchip = false;
        let mut priv_hit: Option<usize> = None;
        let mut evicted = false;
        if walk {
            {
                let s = &mut self.cores[c].sim;
                for lvl in 1..self.consts.priv_levels {
                    s.stats.levels[lvl].lookups += 1;
                    s.counts.levels[lvl] += 1;
                    if s.column[lvl].access(block, false) {
                        s.stats.levels[lvl].hits += 1;
                        lat += self.consts.lat_hit[lvl];
                        promote_column(
                            &mut s.column,
                            lvl as u8,
                            block,
                            store,
                            &mut s.stats,
                            victims,
                        );
                        victims.clear();
                        onchip = true;
                        priv_hit = Some(lvl);
                        break;
                    }
                    lat += self.consts.lat_miss[lvl];
                }
            }
            if !onchip {
                let li = self.consts.llc as usize;
                let hit = self.shared.llc.access(block, false);
                self.shared.stats.levels[li].lookups += 1;
                self.shared.counts.levels[li] += 1;
                if hit {
                    self.shared.stats.levels[li].hits += 1;
                    lat += self.consts.lat_hit[li];
                    onchip = true;
                    self.fill_column_top(c, block, store, victims);
                } else {
                    lat += self.consts.lat_miss[li];
                }
            }
            match &self.shared.pred {
                Pred::None => {}
                Pred::Oracle => {
                    debug_assert!(onchip, "oracle only walks resident blocks");
                    self.shared.pred_stats.walk_hits += 1;
                }
                _ => {
                    if onchip {
                        self.shared.pred_stats.walk_hits += 1;
                    } else {
                        self.shared.pred_stats.false_positives += 1;
                    }
                }
            }
        } else {
            debug_assert!(!self.shared.llc.probe(block), "false negative");
            self.shared.pred_stats.bypasses += 1;
        }
        if !onchip {
            let victim = fill_shared_commit(
                &mut self.shared.llc,
                self.consts.llc,
                block,
                &mut self.shared.stats,
            );
            if let Some(v) = victim {
                let mut dirty = v.dirty;
                for k in 0..self.cores.len() {
                    for lvl in 0..self.consts.priv_levels {
                        if let Some(e) = self.cores[k].sim.column[lvl].invalidate(v.block) {
                            self.shared.stats.count_invalidation(lvl as u8);
                            dirty |= e.dirty;
                        }
                    }
                }
                if dirty {
                    self.shared.stats.memory_writebacks += 1;
                }
            }
            evicted = victim.is_some();
            self.shared.stats.memory_fetches += 1;
            self.predictor_fill(block, victim.map(|v| v.block));
            self.fill_column_top(c, block, store, victims);
        }
        self.cores[c].sim.clk += lat;
        if let Some(l) = log.as_deref_mut() {
            l.push((key, c));
        }
        if O::ENABLED {
            let kind = if !walk {
                RefKind::Bypass
            } else if let Some(h) = priv_hit {
                RefKind::PrivHit(h)
            } else if onchip {
                RefKind::LlcHit
            } else {
                RefKind::MemWalk
            };
            emit_ref(
                &self.consts,
                &mut self.shared.acc,
                &mut self.obs_buf,
                c,
                kind,
                evicted,
            );
        }
        if self.shared.misses >= self.consts.recalib_threshold {
            self.recalibrate();
        }
    }

    /// Fills `block` into every private level of core `c` top-down (the
    /// shared half of a promote-from-LLC or a memory fill), applying any
    /// last-private-level dirty mark to the LLC immediately — sequential
    /// semantics, used only by the replay path.
    fn fill_column_top(&mut self, c: usize, block: u64, store: bool, victims: &mut Vec<u64>) {
        for lvl in (0..self.consts.priv_levels).rev() {
            let dirty = lvl == 0 && store;
            let s = &mut self.cores[c].sim;
            if let Some(wb) = fill_private_column(
                &mut s.column,
                lvl as u8,
                block,
                dirty,
                &mut s.stats,
                victims,
            ) {
                self.shared.stats.levels[self.consts.llc as usize].writebacks_in += 1;
                let ok = self.shared.llc.mark_dirty(wb);
                debug_assert!(ok, "inclusion violated: writeback target absent in LLC");
            }
        }
        victims.clear();
    }

    /// Drains the buffered hook stream into the real observer. Called
    /// only at epoch-snapshot points, which a rollback can never cross —
    /// so every reference is observed exactly once, in global order.
    fn flush_obs(&mut self) {
        let mut buf = std::mem::take(&mut self.obs_buf);
        for ev in buf.drain(..) {
            match ev {
                ObsEvent::WalkHit(c) => self.obs.on_walk_hit(c),
                ObsEvent::FalsePositive(c) => self.obs.on_false_positive(c),
                ObsEvent::Bypass(c) => self.obs.on_bypass(c),
                ObsEvent::Level(c, lvl, hit) => self.obs.on_level_access(c, lvl, hit),
                ObsEvent::Fill(c, lvl) => self.obs.on_fill(c, lvl),
                ObsEvent::Ref(c, cycles, nj) => self.obs.on_ref(c, cycles, nj),
                ObsEvent::Recalib(nj, cycles) => self.obs.on_recalibration(nj, cycles),
            }
        }
        self.obs_buf = buf;
    }

    fn take_snapshot(&mut self, log: &Option<&mut Vec<(u64, usize)>>) {
        if O::ENABLED {
            self.flush_obs();
        }
        self.snap_cores.clear();
        self.snap_cores
            .extend(self.cores.iter().map(|p| p.sim.clone()));
        self.snap_shared = self.shared.clone();
        self.snap_log_len = log.as_ref().map_or(0, |l| l.len());
    }

    fn finish(mut self) -> (RunResult, O) {
        let _span = metrics::PHASE_MERGE.start();
        if O::ENABLED {
            self.flush_obs();
            self.obs.on_window_close();
        }
        let cn = &self.consts;
        let mut stats = self.shared.stats.clone();
        let mut counts = self.shared.counts.clone();
        let mut refs = Vec::with_capacity(self.cores.len());
        let mut max_grid = 0u64;
        for (c, pc) in self.cores.iter().enumerate() {
            stats.merge(&pc.sim.stats);
            counts.merge(&pc.sim.counts);
            refs.push(pc.sim.refs);
            max_grid = max_grid.max(pc.sim.clk + self.shared.off[c] + self.shared.goff);
        }
        let cycles = max_grid.div_ceil(GRID);
        // Replay the dynamic-energy additions: each accumulator receives
        // one constant, so repetition count determines the exact f64 sum.
        let mut acc = EnergyAccount::new(cn.levels);
        for (lvl, &n) in counts.levels.iter().enumerate() {
            let nj = self.cfg.platform.levels[lvl].parallel_lookup_nj();
            for _ in 0..n {
                acc.add_level(lvl, nj);
            }
        }
        for _ in 0..counts.predictor {
            acc.add_predictor(cn.pt_access_nj);
        }
        for _ in 0..counts.recalib {
            acc.add_recalibration(cn.recalib_cost_nj);
        }
        let result = RunResult {
            cycles,
            refs_per_core: refs,
            energy: acc.finalize(
                &self.cfg.platform,
                cycles,
                self.cfg.mechanism.has_predictor(),
            ),
            hierarchy: stats,
            prediction: self.shared.pred_stats,
            prefetch: PrefetchSummary::default(),
        };
        (result, self.obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_feeds_with, run_traces, CoreTrace};
    use energy_model::presets::demo_scale;
    use mem_trace::record::MemOp;
    use minijson::ToJson;

    fn tiny_cfg(mechanism: Mechanism) -> SimConfig {
        let mut platform = demo_scale();
        platform.cores = 2;
        let mut c = SimConfig::new(platform, mechanism);
        c.refs_per_core = 40_000;
        c.recalib_period = Some(2_000);
        c
    }

    fn stream(seed: u64) -> CoreTrace {
        Box::new((0..u64::MAX).map(move |i| {
            let x = (i.wrapping_mul(6364136223846793005).wrapping_add(seed)) >> 33;
            let addr = if i % 8 != 0 {
                (x % 128) * 64
            } else {
                0x1000_0000 + (x % (1 << 22)) * 64
            };
            TraceRecord::new(
                0x400 + (i % 7) * 4,
                addr,
                if i % 5 == 0 {
                    MemOp::Store
                } else {
                    MemOp::Load
                },
                2,
            )
        }))
    }

    fn run_par(cfg: &SimConfig, seeds: &[u64], jobs: usize) -> RunResult {
        let traces = seeds.iter().map(|&s| stream(s)).collect();
        run_traces_par(cfg, traces, &IntraOptions::with_jobs(jobs))
    }

    #[test]
    fn envelope_accepts_defaults_and_rejects_out_of_scope() {
        let cfg = tiny_cfg(Mechanism::Redhip);
        assert!(parallel_supported(&cfg));
        let mut phased = tiny_cfg(Mechanism::Phased);
        assert!(!parallel_supported(&phased));
        phased.mechanism = Mechanism::Base;
        phased.avg_cpi = 1.0 / 3.0; // not on the 1/256 grid
        assert!(!parallel_supported(&phased));
        let mut pf = tiny_cfg(Mechanism::Base);
        pf.prefetch = Some(prefetch::StrideConfig::default());
        assert!(!parallel_supported(&pf));
    }

    #[test]
    fn parallel_matches_sequential_for_every_mechanism() {
        for mech in [
            Mechanism::Base,
            Mechanism::Oracle,
            Mechanism::Redhip,
            Mechanism::Cbf,
        ] {
            let cfg = tiny_cfg(mech);
            let seq = run_traces(&cfg, vec![stream(1), stream(2)]);
            for jobs in [2, 3] {
                let par = run_par(&cfg, &[1, 2], jobs);
                assert_eq!(
                    seq.to_json().pretty(),
                    par.to_json().pretty(),
                    "{mech:?} diverged at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn perfect_recalibration_variant_matches() {
        // recalib_period == 1 instantiates the exact-counting table,
        // which consumes LLC eviction events — the weave must feed them.
        let mut cfg = tiny_cfg(Mechanism::Redhip);
        cfg.recalib_period = Some(1);
        let seq = run_traces(&cfg, vec![stream(3), stream(4)]);
        let par = run_par(&cfg, &[3, 4], 2);
        assert_eq!(seq.to_json().pretty(), par.to_json().pretty());
    }

    #[test]
    fn unequal_drain_traces_match_and_count_correctly() {
        let cfg = tiny_cfg(Mechanism::Redhip);
        let short = || -> CoreTrace {
            Box::new((0..7_321u64).map(|i| TraceRecord::load(0x400, (i * 2897 % 9000) * 64)))
        };
        let seq = run_traces(&cfg, vec![short(), stream(2)]);
        let par = run_traces_par(&cfg, vec![short(), stream(2)], &IntraOptions::with_jobs(2));
        assert_eq!(par.refs_per_core, vec![7_321, 40_000]);
        assert_eq!(seq.to_json().pretty(), par.to_json().pretty());
    }

    #[test]
    fn engine_at_one_job_is_identical_too() {
        // The commit-log entry point forces the engine even at one job;
        // this isolates engine semantics from pool scheduling.
        let cfg = tiny_cfg(Mechanism::Redhip);
        let seq = run_traces(&cfg, vec![stream(5), stream(6)]);
        let feeds: Vec<CoreFeed> = vec![
            Box::new(IterFeed::new(stream(5))),
            Box::new(IterFeed::new(stream(6))),
        ];
        let (par, log) = run_feeds_par_commitlog(&cfg, feeds, &IntraOptions::with_jobs(1));
        assert_eq!(seq.to_json().pretty(), par.to_json().pretty());
        assert!(!log.is_empty());
    }

    #[test]
    fn conflict_rollback_replays_exactly() {
        // Shrink the shared LLC far below the private columns: almost
        // every LLC eviction victimizes a block still resident in some
        // column, so the weave's conflict test trips and whole epochs
        // replay through the sequential fallback path constantly.
        for mech in [Mechanism::Base, Mechanism::Redhip] {
            let mut cfg = tiny_cfg(mech);
            cfg.platform.levels[3].capacity_bytes = 8 << 10;
            cfg.refs_per_core = 20_000;
            assert!(parallel_supported(&cfg));
            let seq = run_traces(&cfg, vec![stream(9), stream(10)]);
            let par = run_par(&cfg, &[9, 10], 2);
            assert_eq!(
                seq.to_json().pretty(),
                par.to_json().pretty(),
                "{mech:?} diverged under conflict-heavy LLC"
            );
        }
    }

    /// Observer capturing the core order of sequential L1 misses — the
    /// reference order for the commit log.
    #[derive(Default)]
    struct MissOrder(Vec<usize>);
    impl telemetry::SimObserver for MissOrder {
        fn on_level_access(&mut self, core: usize, level: u8, hit: bool) {
            if level == 0 && !hit {
                self.0.push(core);
            }
        }
    }

    #[test]
    fn commit_log_is_the_sequential_miss_order() {
        let cfg = tiny_cfg(Mechanism::Redhip);
        let feeds = |a: u64, b: u64| -> Vec<CoreFeed> {
            vec![
                Box::new(IterFeed::new(stream(a))),
                Box::new(IterFeed::new(stream(b))),
            ]
        };
        let (_, obs) = run_feeds_with(&cfg, feeds(7, 8), MissOrder::default());
        let (_, log) = run_feeds_par_commitlog(&cfg, feeds(7, 8), &IntraOptions::with_jobs(2));
        let par_order: Vec<usize> = log.iter().map(|&(_, c)| c).collect();
        assert_eq!(obs.0, par_order, "weave commit order diverged");
        // And the log is lexicographically sorted by (clock, core).
        assert!(log.windows(2).all(|w| w[0] <= w[1]), "commit log unsorted");
    }
}
