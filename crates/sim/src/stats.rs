//! Prediction and prefetch statistics.

use minijson::{json, FromJson, Json, ToJson};

/// Outcome counters for the presence predictor.
#[derive(Debug, Clone, Copy, Default)]
pub struct PredictionStats {
    /// Predictor consultations (one per L1 miss).
    pub lookups: u64,
    /// Predicted-absent results → lower hierarchy bypassed. By the
    /// no-false-negative invariant, all of these are correct.
    pub bypasses: u64,
    /// Predicted-maybe-present where the walk hit on chip (useful
    /// conservatism — a correct "present").
    pub walk_hits: u64,
    /// Predicted-maybe-present where the walk missed everywhere — the
    /// false positives that waste lookup energy.
    pub false_positives: u64,
    /// Predictor update events (fills and, for CBF, evictions).
    pub updates: u64,
    /// Completed recalibrations.
    pub recalibrations: u64,
}

impl PredictionStats {
    /// Fraction of true LLC misses the predictor caught (its "coverage").
    /// True misses = bypasses + false positives.
    pub fn miss_coverage(&self) -> f64 {
        let misses = self.bypasses + self.false_positives;
        if misses == 0 {
            0.0
        } else {
            self.bypasses as f64 / misses as f64
        }
    }

    /// Fraction of predictions that were exactly right.
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        (self.bypasses + self.walk_hits) as f64 / self.lookups as f64
    }
}

/// Outcome counters for the stride prefetcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchSummary {
    /// Candidate addresses produced by the RPT.
    pub issued: u64,
    /// Prefetches that actually brought a new block on chip.
    pub fills: u64,
    /// Candidates already resident somewhere (wasted probe energy only).
    pub already_resident: u64,
    /// Prefetch candidates the predictor filtered to a direct memory fetch
    /// (the ReDHiP+SP synergy of §V-C).
    pub predictor_filtered: u64,
    /// Demand accesses that hit a prefetched block before its eviction.
    pub useful: u64,
}

impl PrefetchSummary {
    /// Useful-prefetch fraction (of blocks actually filled).
    pub fn usefulness(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.useful as f64 / self.fills as f64
        }
    }
}

impl ToJson for PredictionStats {
    fn to_json(&self) -> Json {
        json!({
            "lookups": self.lookups,
            "bypasses": self.bypasses,
            "walk_hits": self.walk_hits,
            "false_positives": self.false_positives,
            "updates": self.updates,
            "recalibrations": self.recalibrations,
        })
    }
}

impl ToJson for PrefetchSummary {
    fn to_json(&self) -> Json {
        json!({
            "issued": self.issued,
            "fills": self.fills,
            "already_resident": self.already_resident,
            "predictor_filtered": self.predictor_filtered,
            "useful": self.useful,
        })
    }
}

impl FromJson for PredictionStats {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            lookups: v.u64_of("lookups")?,
            bypasses: v.u64_of("bypasses")?,
            walk_hits: v.u64_of("walk_hits")?,
            false_positives: v.u64_of("false_positives")?,
            updates: v.u64_of("updates")?,
            recalibrations: v.u64_of("recalibrations")?,
        })
    }
}

impl FromJson for PrefetchSummary {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            issued: v.u64_of("issued")?,
            fills: v.u64_of("fills")?,
            already_resident: v.u64_of("already_resident")?,
            predictor_filtered: v.u64_of("predictor_filtered")?,
            useful: v.u64_of("useful")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_roundtrip_through_json() {
        let s = PredictionStats {
            lookups: 7,
            bypasses: 3,
            walk_hits: 2,
            false_positives: 1,
            updates: 11,
            recalibrations: 4,
        };
        let back = PredictionStats::from_json(&s.to_json()).unwrap();
        assert_eq!(back.lookups, 7);
        assert_eq!(back.recalibrations, 4);
        let p = PrefetchSummary {
            issued: 9,
            fills: 5,
            already_resident: 4,
            predictor_filtered: 2,
            useful: 3,
        };
        let back = PrefetchSummary::from_json(&p.to_json()).unwrap();
        assert_eq!(back.issued, 9);
        assert_eq!(back.useful, 3);
    }

    #[test]
    fn coverage_and_accuracy() {
        let s = PredictionStats {
            lookups: 100,
            bypasses: 40,
            walk_hits: 50,
            false_positives: 10,
            updates: 0,
            recalibrations: 2,
        };
        assert!((s.miss_coverage() - 0.8).abs() < 1e-12);
        assert!((s.accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PredictionStats::default();
        assert_eq!(s.miss_coverage(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
        let p = PrefetchSummary::default();
        assert_eq!(p.usefulness(), 0.0);
    }

    #[test]
    fn prefetch_usefulness() {
        let p = PrefetchSummary {
            issued: 100,
            fills: 50,
            already_resident: 50,
            predictor_filtered: 10,
            useful: 40,
        };
        assert!((p.usefulness() - 0.8).abs() < 1e-12);
    }
}
