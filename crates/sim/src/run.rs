//! The run harness: drives per-core trace streams through a [`System`].

use crate::config::SimConfig;
use crate::stats::{PredictionStats, PrefetchSummary};
use crate::system::System;
use cache_sim::{HierarchyStats, Traversal};
use energy_model::EnergyReport;
use mem_trace::record::TraceRecord;
use mem_trace::{IterFeed, TraceFeed};
use minijson::{json, FromJson, Json, ToJson};
use telemetry::{NullObserver, SimObserver};

/// A per-core stream of records.
pub type CoreTrace = Box<dyn Iterator<Item = TraceRecord> + Send>;

/// A per-core bulk record producer — the refill side of the harness.
///
/// Synthetic generators arrive here wrapped in [`IterFeed`]; file-backed
/// traces ([`mem_trace::StreamTrace`]) implement [`TraceFeed`] natively
/// and service a refill with a `memcpy` out of their decoded chunk.
pub type CoreFeed = Box<dyn TraceFeed + Send>;

/// Everything measured in one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Execution time in cycles (slowest core).
    pub cycles: u64,
    /// References actually simulated per core.
    pub refs_per_core: Vec<u64>,
    /// Energy breakdown.
    pub energy: EnergyReport,
    /// Per-level cache statistics.
    pub hierarchy: HierarchyStats,
    /// Predictor outcome counters.
    pub prediction: PredictionStats,
    /// Prefetcher outcome counters (zeroes when prefetch is off).
    pub prefetch: PrefetchSummary,
}

impl RunResult {
    /// Total references simulated.
    pub fn total_refs(&self) -> u64 {
        self.refs_per_core.iter().sum()
    }

    /// Hit rate of cache level `i` (0 = L1).
    pub fn hit_rate(&self, level: usize) -> f64 {
        self.hierarchy.levels[level].hit_rate()
    }

    /// Execution cycles per *per-core* reference (diagnostic).
    ///
    /// `cycles` is wall-clock execution time — the slowest core's clock —
    /// so dividing by `total_refs()` would shrink with core count even
    /// when every core runs at the same speed. This divides by the **mean
    /// references per core** instead, i.e. it equals
    /// `cycles * cores / total_refs`: for a symmetric workload it matches
    /// each core's own cycles-per-reference and stays comparable across
    /// core counts. Returns 0.0 for an empty run.
    pub fn cycles_per_ref(&self) -> f64 {
        let refs = self.total_refs();
        if refs == 0 || self.refs_per_core.is_empty() {
            return 0.0;
        }
        let mean_refs_per_core = refs as f64 / self.refs_per_core.len() as f64;
        self.cycles as f64 / mean_refs_per_core
    }
}

impl ToJson for RunResult {
    fn to_json(&self) -> Json {
        json!({
            "cycles": self.cycles,
            "refs_per_core": &self.refs_per_core,
            "cycles_per_ref": self.cycles_per_ref(),
            "energy": self.energy.to_json(),
            "hierarchy": self.hierarchy.to_json(),
            "prediction": self.prediction.to_json(),
            "prefetch": self.prefetch.to_json(),
        })
    }
}

impl FromJson for RunResult {
    /// Rehydrates a serialized result (the sweep crate's on-disk cache).
    /// `cycles_per_ref` is derived and therefore ignored on load; every
    /// stored field round-trips exactly (floats serialize via Rust's
    /// shortest-roundtrip formatting), so a rehydrated result
    /// re-serializes byte-identically.
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            cycles: v.u64_of("cycles")?,
            refs_per_core: v
                .arr_of("refs_per_core")?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| "refs_per_core: not a u64".to_string())
                })
                .collect::<Result<_, _>>()?,
            energy: EnergyReport::from_json(v.member("energy")?)?,
            hierarchy: HierarchyStats::from_json(v.member("hierarchy")?)?,
            prediction: PredictionStats::from_json(v.member("prediction")?)?,
            prefetch: PrefetchSummary::from_json(v.member("prefetch")?)?,
        })
    }
}

/// Per-core "physical" address mapping.
///
/// Two components model what distinct processes see on a real machine:
///
/// * a high-bit offset at `cfg.address_space_bit` makes the address spaces
///   disjoint, so duplicated traces *compete* for the shared LLC instead of
///   sharing data (the paper's multi-programmed setup);
/// * a page-granular scramble (XOR of the 4 KB page number with a per-core
///   constant; identity for core 0) stands in for the OS's physical page
///   allocation. Without it, identical virtual streams would carry
///   identical low address bits on every core and alias *systematically*
///   in the bits-hashed prediction table — something that cannot happen
///   with real per-process page tables. Page-internal locality (and the
///   L1 index bits) is preserved; streams crossing page boundaries lose
///   physical contiguity, exactly as on real hardware.
pub(crate) fn core_physical(cfg: &SimConfig, core: usize, addr: u64) -> u64 {
    let scramble = (core as u64).wrapping_mul(0x9e37_79b9) & 0x03ff_ffff; // bits 12..38
    let scrambled = addr ^ (scramble << 12);
    if cfg.address_space_bit == 0 {
        scrambled
    } else {
        scrambled | ((core as u64) << cfg.address_space_bit)
    }
}

/// Runs `cfg` over one trace generator per core.
///
/// Each core's addresses pass through the per-core physical mapping
/// (`core_physical` above). The interleaving
/// advances whichever core has the smallest local clock, so faster cores
/// issue more requests per unit time — the same approximation the paper's
/// trace-driven simulator makes.
///
/// # Panics
/// Panics when the number of traces differs from the platform's core count
/// or the configuration is invalid.
pub fn run_traces(cfg: &SimConfig, traces: Vec<CoreTrace>) -> RunResult {
    run_traces_with(cfg, traces, NullObserver).0
}

/// Runs `cfg` over one [`TraceFeed`] per core. Identical semantics to
/// [`run_traces`] — in fact `run_traces` is this function with every
/// iterator wrapped in [`IterFeed`] — but a feed that produces records in
/// bulk (a [`mem_trace::StreamTrace`] replaying a file) refills the
/// harness buffer without a per-record virtual call.
pub fn run_feeds(cfg: &SimConfig, feeds: Vec<CoreFeed>) -> RunResult {
    run_feeds_with(cfg, feeds, NullObserver).0
}

/// Records pulled ahead per refill of a [`BufferedTrace`].
const TRACE_CHUNK: usize = 128;

/// Chunked pull-ahead over a boxed trace feed. Refilling an array of
/// records at a time amortizes the dynamic dispatch of the feed across
/// [`TRACE_CHUNK`] references and lets the producer's state machine run
/// hot, instead of paying an indirect call on every iteration of the
/// scheduler's innermost loop. The record sequence is unchanged; records
/// a core produced but never consumed (target reached mid-chunk) are
/// simply dropped, as producers carry no cross-core state.
struct BufferedTrace {
    src: CoreFeed,
    buf: Vec<TraceRecord>,
    pos: usize,
}

impl BufferedTrace {
    fn new(src: CoreFeed) -> Self {
        Self {
            src,
            buf: Vec::with_capacity(TRACE_CHUNK),
            pos: 0,
        }
    }

    #[inline]
    fn next(&mut self) -> Option<TraceRecord> {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.src.refill(&mut self.buf, TRACE_CHUNK) == 0 {
                return None;
            }
        }
        let r = self.buf[self.pos];
        self.pos += 1;
        Some(r)
    }
}

/// Like [`run_traces`], but reports telemetry to `obs` while running and
/// returns it (after its final
/// [`on_window_close`](SimObserver::on_window_close)) alongside the
/// result.
///
/// # Panics
/// Panics when the number of traces differs from the platform's core count
/// or the configuration is invalid.
pub fn run_traces_with<O: SimObserver>(
    cfg: &SimConfig,
    traces: Vec<CoreTrace>,
    obs: O,
) -> (RunResult, O) {
    let feeds = traces
        .into_iter()
        .map(|t| Box::new(IterFeed::new(t)) as CoreFeed)
        .collect();
    run_feeds_with(cfg, feeds, obs)
}

/// Like [`run_feeds`], but reports telemetry to `obs` while running and
/// returns it alongside the result.
///
/// # Panics
/// Panics when the number of feeds differs from the platform's core count
/// or the configuration is invalid.
pub fn run_feeds_with<O: SimObserver>(
    cfg: &SimConfig,
    feeds: Vec<CoreFeed>,
    obs: O,
) -> (RunResult, O) {
    assert_eq!(
        feeds.len(),
        cfg.platform.cores,
        "need exactly one trace per core"
    );
    let mut system = System::with_observer(cfg.clone(), obs);
    let cores = feeds.len();

    let mut traces: Vec<BufferedTrace> = feeds.into_iter().map(BufferedTrace::new).collect();
    let mut counts = vec![0u64; cores];
    let target = cfg.refs_per_core as u64;
    let mut scratch = Traversal::new();

    // Local mirror of the per-core clocks, with finished cores pinned at
    // +inf so the argmin scan below is a branch-free sweep over one dense
    // array: +inf loses every `<` comparison, which excludes a finished
    // core from selection exactly as a skip would, and when everything is
    // +inf no core is picked and the loop ends.
    let mut clk: Vec<f64> = system.clocks().to_vec();

    loop {
        // Advance the core with the smallest clock among unfinished cores
        // (ties go to the lowest index). One scan also yields the second
        // smallest clock: while the chosen core stays *strictly* below it,
        // the scan would keep picking the same core, so it can be stepped
        // in a batch without re-deriving the argmin per reference.
        let mut core = usize::MAX;
        let mut best = f64::INFINITY;
        let mut next_best = f64::INFINITY;
        for (c, &v) in clk.iter().enumerate() {
            if v < best {
                next_best = best;
                best = v;
                core = c;
            } else if v < next_best {
                next_best = v;
            }
        }
        if core == usize::MAX {
            break;
        }
        loop {
            match traces[core].next() {
                Some(mut rec) => {
                    rec.addr = core_physical(cfg, core, rec.addr);
                    let recalibs = system.recalibration_count();
                    let now = system.step_with(core, &rec, &mut scratch);
                    clk[core] = now;
                    counts[core] += 1;
                    if counts[core] >= target {
                        clk[core] = f64::INFINITY;
                        break;
                    }
                    // Recalibration advances *every* clock; resync the
                    // mirror and recompute the schedule from scratch.
                    if system.recalibration_count() != recalibs {
                        for (c, v) in clk.iter_mut().enumerate() {
                            if v.is_finite() {
                                *v = system.clocks()[c];
                            }
                        }
                        break;
                    }
                    if now >= next_best {
                        break;
                    }
                }
                None => {
                    clk[core] = f64::INFINITY;
                    break;
                }
            }
        }
    }

    let result = RunResult {
        cycles: system.cycles(),
        refs_per_core: counts,
        energy: system.finalize_energy(),
        hierarchy: system.hierarchy().stats().clone(),
        prediction: system.prediction_stats(),
        prefetch: system.prefetch_summary(),
    };
    (result, system.into_observer())
}

/// Runs one trace duplicated onto every core (the paper's single-benchmark
/// methodology: "we multi-program them by duplicating the trace into 8
/// copies running on each core"). The generator factory is invoked once
/// per core so each copy owns independent state.
pub fn run_duplicated<F>(cfg: &SimConfig, mut make_trace: F) -> RunResult
where
    F: FnMut(usize) -> CoreTrace,
{
    let traces = (0..cfg.platform.cores).map(&mut make_trace).collect();
    run_traces(cfg, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use energy_model::presets::demo_scale;
    use mem_trace::record::MemOp;

    fn tiny_cfg(mechanism: Mechanism) -> SimConfig {
        let mut platform = demo_scale();
        platform.cores = 2;
        let mut c = SimConfig::new(platform, mechanism);
        c.refs_per_core = 40_000;
        c.recalib_period = Some(2_000);
        c
    }

    fn stream(seed: u64) -> CoreTrace {
        // Deterministic mixed stream: a hot 8 KB region comfortably inside
        // L1 (7 of 8 refs) plus cold, never-reused misses (1 of 8) that the
        // predictor should learn to bypass.
        Box::new((0..u64::MAX).map(move |i| {
            let x = (i.wrapping_mul(6364136223846793005).wrapping_add(seed)) >> 33;
            let addr = if i % 8 != 0 {
                (x % 128) * 64 // hot 8 KB region
            } else {
                0x1000_0000 + (x % (1 << 22)) * 64 // cold 256 MB region
            };
            TraceRecord::new(
                0x400 + (i % 7) * 4,
                addr,
                if i % 5 == 0 {
                    MemOp::Store
                } else {
                    MemOp::Load
                },
                2,
            )
        }))
    }

    #[test]
    fn base_run_produces_sane_counts() {
        let cfg = tiny_cfg(Mechanism::Base);
        let r = run_traces(&cfg, vec![stream(1), stream(2)]);
        assert_eq!(r.total_refs(), 80_000);
        assert!(r.cycles > 0);
        assert!(r.hit_rate(0) > 0.5, "L1 hit rate {}", r.hit_rate(0));
        assert!(r.energy.total_dynamic_j() > 0.0);
        assert_eq!(r.prediction.lookups, 0);
    }

    #[test]
    fn redhip_bypasses_and_saves_dynamic_energy() {
        let base = run_traces(&tiny_cfg(Mechanism::Base), vec![stream(1), stream(2)]);
        let red = run_traces(&tiny_cfg(Mechanism::Redhip), vec![stream(1), stream(2)]);
        assert!(red.prediction.bypasses > 0, "no bypasses happened");
        assert!(
            red.energy.total_dynamic_j() < base.energy.total_dynamic_j(),
            "ReDHiP {} !< Base {}",
            red.energy.total_dynamic_j(),
            base.energy.total_dynamic_j()
        );
        assert!(red.prediction.recalibrations > 0);
    }

    #[test]
    fn oracle_is_at_least_as_good_as_redhip_on_dynamic_energy() {
        let red = run_traces(&tiny_cfg(Mechanism::Redhip), vec![stream(1), stream(2)]);
        let ora = run_traces(&tiny_cfg(Mechanism::Oracle), vec![stream(1), stream(2)]);
        assert!(ora.energy.total_dynamic_j() <= red.energy.total_dynamic_j() * 1.001);
        assert!(ora.cycles <= red.cycles);
        assert_eq!(ora.prediction.false_positives, 0);
    }

    #[test]
    fn phased_saves_energy_but_costs_cycles() {
        let base = run_traces(&tiny_cfg(Mechanism::Base), vec![stream(1), stream(2)]);
        let ph = run_traces(&tiny_cfg(Mechanism::Phased), vec![stream(1), stream(2)]);
        assert!(ph.energy.total_dynamic_j() < base.energy.total_dynamic_j());
        assert!(ph.cycles >= base.cycles);
    }

    #[test]
    fn duplicated_runs_give_every_core_work() {
        let cfg = tiny_cfg(Mechanism::Base);
        let r = run_duplicated(&cfg, |c| stream(c as u64));
        assert_eq!(r.refs_per_core, vec![40_000, 40_000]);
    }

    #[test]
    fn early_ending_trace_is_tolerated() {
        let cfg = tiny_cfg(Mechanism::Base);
        let short: CoreTrace = Box::new((0..100u64).map(|i| TraceRecord::load(0x400, i * 64)));
        let r = run_traces(&cfg, vec![short, stream(2)]);
        assert_eq!(r.refs_per_core[0], 100);
        assert_eq!(r.refs_per_core[1], 40_000);
    }

    #[test]
    #[should_panic]
    fn wrong_trace_count_panics() {
        let cfg = tiny_cfg(Mechanism::Base);
        let _ = run_traces(&cfg, vec![stream(1)]);
    }

    fn synthetic_result(cycles: u64, refs_per_core: Vec<u64>) -> RunResult {
        RunResult {
            cycles,
            refs_per_core,
            energy: EnergyReport {
                dynamic_by_level_j: Vec::new(),
                predictor_dynamic_j: 0.0,
                recalibration_j: 0.0,
                prefetcher_j: 0.0,
                leakage_by_level_j: Vec::new(),
                predictor_leakage_j: 0.0,
                cycles,
                seconds: 0.0,
            },
            hierarchy: HierarchyStats::new(0),
            prediction: PredictionStats::default(),
            prefetch: PrefetchSummary::default(),
        }
    }

    #[test]
    fn cycles_per_ref_pins_per_core_average_formula() {
        // cycles * cores / total_refs: 1000 * 2 / 400 = 5.0, even with
        // asymmetric per-core reference counts.
        let r = synthetic_result(1000, vec![100, 300]);
        assert!((r.cycles_per_ref() - 5.0).abs() < 1e-12);
        // Single core degenerates to cycles / refs.
        let r1 = synthetic_result(1000, vec![400]);
        assert!((r1.cycles_per_ref() - 2.5).abs() < 1e-12);
        // Doubling the core count at the same wall clock and per-core
        // reference counts must not change the metric (total refs double,
        // but so does the core count).
        let r4 = synthetic_result(1000, vec![100, 300, 100, 300]);
        assert!((r4.cycles_per_ref() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_per_ref_guards_empty_runs() {
        assert_eq!(synthetic_result(1000, vec![]).cycles_per_ref(), 0.0);
        assert_eq!(synthetic_result(1000, vec![0, 0]).cycles_per_ref(), 0.0);
    }

    #[test]
    fn stream_feeds_replay_identically_to_generators() {
        // Record the two generator streams interleaved by index into one
        // v2 buffer, then replay each core from its interleave shard.
        // The scheduler, address mapping, and recalibration logic all see
        // the exact same per-core sequences, so every statistic — energy
        // floats included — must be byte-identical.
        use mem_trace::codec::encode_v2_chunked;
        use mem_trace::{ShardSpec, StreamTrace, VecTrace};
        let cfg = tiny_cfg(Mechanism::Redhip);
        let n = cfg.refs_per_core;
        let per_core: Vec<Vec<TraceRecord>> = [1u64, 2]
            .iter()
            .map(|&s| stream(s).take(n).collect())
            .collect();
        let mut merged = VecTrace::new();
        for i in 0..n {
            for core in &per_core {
                merged.push(core[i]);
            }
        }
        let base = StreamTrace::from_bytes(encode_v2_chunked(&merged, 1 << 10)).unwrap();
        let feeds: Vec<CoreFeed> = (0..2)
            .map(|c| {
                Box::new(base.shard(ShardSpec::Interleave {
                    shards: 2,
                    index: c,
                })) as CoreFeed
            })
            .collect();
        let from_file = run_feeds(&cfg, feeds);
        let from_gen = run_traces(&cfg, vec![stream(1), stream(2)]);
        assert_eq!(from_gen.to_json().pretty(), from_file.to_json().pretty());
    }

    #[test]
    fn run_result_roundtrips_byte_identically_through_json() {
        let cfg = tiny_cfg(Mechanism::Redhip);
        let r = run_traces(&cfg, vec![stream(1), stream(2)]);
        let text = r.to_json().pretty();
        let back = RunResult::from_json(&minijson::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().pretty(), text);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.total_refs(), r.total_refs());
    }

    #[test]
    fn run_traces_with_returns_flushed_observer() {
        use telemetry::WindowedCollector;
        let cfg = tiny_cfg(Mechanism::Redhip);
        let collector = WindowedCollector::new(10_000, cfg.platform.levels.len());
        let (r, obs) = run_traces_with(&cfg, vec![stream(1), stream(2)], collector);
        let window_refs: u64 = obs.windows().map(|w| w.refs).sum();
        assert_eq!(window_refs, r.total_refs());
        assert!(obs.recalibrations().count() > 0);
    }
}
