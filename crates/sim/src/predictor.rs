//! Pluggable predictor registry.
//!
//! The paper's five mechanisms keep their hand-devirtualized fast paths in
//! [`PredictorState`] (moved here from `system.rs` — the branchless
//! ReDHiP/CBF probes must stay byte-identical to the golden snapshots).
//! Everything else goes through the [`PredictorImpl`] trait: related-work
//! contenders plug in as `PredictorState::Custom` trait objects and the
//! `System` drives them through one generic dispatch path.
//!
//! The registry also owns the user-facing *spec strings*
//! (`level-pred:conf=2,max=3,penalty=8`): [`parse_spec`] turns one into a
//! mechanism plus parameter overrides, [`spec_string`] prints a config's
//! canonical spec. The canonical print is embedded in run manifests so two
//! configs of the same mechanism with different parameters never alias.

use crate::config::{
    CbfParams, LevelPredParams, Mechanism, PerceptronParams, SimConfig, WayMemoParams,
};
use cache_sim::hierarchy::InclusionPolicy;
use cache_sim::traversal::LevelId;
use energy_model::PredictorSpec;
use redhip::{
    CbfConfig, CountingBloomFilter, LevelPredictor, OffChipPerceptron, Prediction, PredictionTable,
    PredictorBank, PresencePredictor, RecalibrationEngine, WayMemo, LEVEL_MEMORY, LEVEL_UNTRAINED,
};

// ---------------------------------------------------------------- trait

/// Where a custom predictor steers an L1 miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steer {
    /// No confident prediction: walk every level in order (Base pricing).
    Walk,
    /// Go straight to this level's arrays (LevelPred).
    Level(LevelId),
    /// Predicted off chip: bypass the on-chip walk (Perceptron).
    OffChip,
}

/// What the hierarchy walk actually observed, fed back for training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Level that served the request; `None` = memory.
    pub hit_level: Option<LevelId>,
}

/// A predictor mechanism plugged into the registry's dispatch path.
///
/// The contract mirrors how `System` drives it on every L1 miss:
/// [`probe`](Self::probe) (which must be state-pure — calling it twice in
/// a row returns the same steer and perturbs nothing), then the Base-order
/// walk, then [`train`](Self::train) with the observed outcome. The steer
/// re-prices which array lookups are charged; it never changes hierarchy
/// *state*, so fills, promotions, and evictions stay identical to Base.
pub trait PredictorImpl: Send {
    /// Steering decision for an L1 miss. Must not mutate predictor state
    /// observably: training happens only in [`train`](Self::train).
    fn probe(&mut self, core: usize, block: u64) -> Steer;

    /// Learns from the walk that followed the probe.
    fn train(&mut self, core: usize, block: u64, outcome: WalkOutcome);

    /// L1-hit hook (WayMemo): whether this hit's tag-way reads can be
    /// skipped because the block was memoized. Implementations record the
    /// block on a memo miss — the L1 hit proves residency. Only called
    /// when [`observes_l1_hits`](Self::observes_l1_hits) is true.
    fn l1_hit_memoized(&mut self, core: usize, block: u64) -> bool {
        let _ = (core, block);
        false
    }

    /// L1-miss hook (WayMemo): whether a stale memo entry fired — the
    /// memo promised L1 residency but the access missed. Implementations
    /// clear the stale entry. Only called when
    /// [`observes_l1_hits`](Self::observes_l1_hits) is true.
    fn l1_stale_memo(&mut self, core: usize, block: u64) -> bool {
        let _ = (core, block);
        false
    }

    /// Whether the L1-hit fast path must consult this predictor.
    fn observes_l1_hits(&self) -> bool {
        false
    }

    /// Extra cycles charged when a confident steer (or a stale memo entry)
    /// turns out wrong.
    fn mispredict_penalty_cycles(&self) -> u64 {
        0
    }

    /// An LLC line was filled (adapters for the trait conformance suite).
    fn on_llc_fill(&mut self, block: u64) {
        let _ = block;
    }

    /// An LLC line was evicted.
    fn on_llc_evict(&mut self, block: u64) {
        let _ = block;
    }

    /// Whether periodic recalibration applies to this predictor.
    fn supports_recalibration(&self) -> bool {
        false
    }

    /// Rebuilds/scrubs predictor state from the LLC-resident block set.
    /// Must be idempotent and independent of the iterator's order.
    fn recalibrate(&mut self, resident: &mut dyn Iterator<Item = u64>) {
        let _ = resident;
    }
}

// ---------------------------------------------------------------- registry

/// One registered mechanism: its spec-string name and metadata.
#[derive(Debug, Clone, Copy)]
pub struct MechanismInfo {
    /// Spec-string name (`--mechanism <spec_name>[:k=v,...]`).
    pub spec_name: &'static str,
    /// The `Mechanism` it selects.
    pub mechanism: Mechanism,
    /// One-line semantics for `--help`/docs.
    pub summary: &'static str,
    /// Whether the parallel engine's commit-log envelope covers it
    /// (otherwise `--intra-jobs > 1` takes the documented sequential
    /// fallback).
    pub parallel_envelope: bool,
}

/// Every mechanism the spec parser knows, in presentation order.
pub const REGISTRY: [MechanismInfo; 8] = [
    MechanismInfo {
        spec_name: "base",
        mechanism: Mechanism::Base,
        summary: "no prediction; every level reads all tag+data ways in parallel",
        parallel_envelope: true,
    },
    MechanismInfo {
        spec_name: "redhip",
        mechanism: Mechanism::Redhip,
        summary: "recalibrated 1-bit LLC-residency table gating DRAM bypass",
        parallel_envelope: true,
    },
    MechanismInfo {
        spec_name: "cbf",
        mechanism: Mechanism::Cbf,
        summary: "counting Bloom filter tracking LLC residency at equal area",
        parallel_envelope: true,
    },
    MechanismInfo {
        spec_name: "phased",
        mechanism: Mechanism::Phased,
        summary: "L3/L4 serialize tag then data access; no predictor",
        parallel_envelope: false,
    },
    MechanismInfo {
        spec_name: "oracle",
        mechanism: Mechanism::Oracle,
        summary: "perfect zero-overhead LLC-residency prediction",
        parallel_envelope: true,
    },
    MechanismInfo {
        spec_name: "level-pred",
        mechanism: Mechanism::LevelPred,
        summary: "per-load predicted hit level steers the lookup order",
        parallel_envelope: false,
    },
    MechanismInfo {
        spec_name: "perceptron",
        mechanism: Mechanism::Perceptron,
        summary: "hashed perceptron with confidence threshold gating DRAM bypass",
        parallel_envelope: false,
    },
    MechanismInfo {
        spec_name: "way-memo",
        mechanism: Mechanism::WayMemo,
        summary: "tag-way read skipping on memoized re-touched blocks",
        parallel_envelope: false,
    },
];

/// Looks a mechanism's registry entry up.
pub fn registry_info(mechanism: Mechanism) -> &'static MechanismInfo {
    REGISTRY
        .iter()
        .find(|i| i.mechanism == mechanism)
        .expect("every Mechanism is registered")
}

/// A parsed `--mechanism` spec: the mechanism plus parameter overrides
/// (fields not named in the spec keep their defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpec {
    /// Selected mechanism.
    pub mechanism: Mechanism,
    /// CBF parameters (`cbf:bits=..,hashes=..`).
    pub cbf: CbfParams,
    /// LevelPred parameters (`level-pred:conf=..,max=..,penalty=..`).
    pub level_pred: LevelPredParams,
    /// Perceptron parameters (`perceptron:theta=..,history=..`).
    pub perceptron: PerceptronParams,
    /// WayMemo parameters (`way-memo:entries=..,penalty=..`).
    pub way_memo: WayMemoParams,
}

impl ParsedSpec {
    /// A spec selecting `mechanism` with all-default parameters.
    pub fn new(mechanism: Mechanism) -> Self {
        Self {
            mechanism,
            cbf: CbfParams::default(),
            level_pred: LevelPredParams::default(),
            perceptron: PerceptronParams::default(),
            way_memo: WayMemoParams::default(),
        }
    }

    /// Applies the spec to a configuration.
    pub fn apply(&self, cfg: &mut SimConfig) {
        cfg.mechanism = self.mechanism;
        cfg.cbf = self.cbf;
        cfg.level_pred = self.level_pred;
        cfg.perceptron = self.perceptron;
        cfg.way_memo = self.way_memo;
    }
}

fn known_keys(mechanism: Mechanism) -> &'static [&'static str] {
    match mechanism {
        Mechanism::Cbf => &["bits", "hashes"],
        Mechanism::LevelPred => &["conf", "max", "penalty"],
        Mechanism::Perceptron => &["theta", "history"],
        Mechanism::WayMemo => &["entries", "penalty"],
        _ => &[],
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("value `{value}` for key `{key}` is not a number"))
}

/// Parses a `--mechanism` spec string: a registry name, optionally
/// followed by `:key=value,...` parameters. Errors name every known
/// mechanism (for an unknown name) or every key the mechanism takes (for
/// an unknown key).
pub fn parse_spec(s: &str) -> Result<ParsedSpec, String> {
    let (name, params) = match s.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (s, None),
    };
    let info = REGISTRY
        .iter()
        .find(|i| i.spec_name == name)
        .ok_or_else(|| {
            let known: Vec<&str> = REGISTRY.iter().map(|i| i.spec_name).collect();
            format!(
                "unknown mechanism `{name}`; known mechanisms: {}",
                known.join(", ")
            )
        })?;
    let mut spec = ParsedSpec::new(info.mechanism);
    let Some(params) = params else {
        return Ok(spec);
    };
    for kv in params.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = kv
            .split_once('=')
            .ok_or_else(|| format!("malformed parameter `{kv}` (expected key=value)"))?;
        let keys = known_keys(info.mechanism);
        if !keys.contains(&key) {
            return Err(if keys.is_empty() {
                format!("mechanism `{name}` takes no parameters (got `{key}`)")
            } else {
                format!(
                    "unknown key `{key}` for `{name}`; known keys: {}",
                    keys.join(", ")
                )
            });
        }
        match (info.mechanism, key) {
            (Mechanism::Cbf, "bits") => spec.cbf.counter_bits = parse_num(key, value)?,
            (Mechanism::Cbf, "hashes") => spec.cbf.num_hashes = parse_num(key, value)?,
            (Mechanism::LevelPred, "conf") => {
                spec.level_pred.conf_threshold = parse_num(key, value)?
            }
            (Mechanism::LevelPred, "max") => spec.level_pred.conf_max = parse_num(key, value)?,
            (Mechanism::LevelPred, "penalty") => {
                spec.level_pred.mispredict_penalty = parse_num(key, value)?
            }
            (Mechanism::Perceptron, "theta") => spec.perceptron.theta = parse_num(key, value)?,
            (Mechanism::Perceptron, "history") => {
                spec.perceptron.history_bits = parse_num(key, value)?
            }
            (Mechanism::WayMemo, "entries") => spec.way_memo.entries = parse_num(key, value)?,
            (Mechanism::WayMemo, "penalty") => spec.way_memo.stale_penalty = parse_num(key, value)?,
            _ => unreachable!("key membership checked above"),
        }
    }
    Ok(spec)
}

/// The canonical spec string of a configuration: parameter-bearing
/// mechanisms print every parameter, so distinct parameterizations print
/// distinct specs. `parse_spec(spec_string(cfg))` round-trips.
pub fn spec_string(cfg: &SimConfig) -> String {
    match cfg.mechanism {
        Mechanism::Base => "base".into(),
        Mechanism::Redhip => "redhip".into(),
        Mechanism::Phased => "phased".into(),
        Mechanism::Oracle => "oracle".into(),
        Mechanism::Cbf => format!(
            "cbf:bits={},hashes={}",
            cfg.cbf.counter_bits, cfg.cbf.num_hashes
        ),
        Mechanism::LevelPred => format!(
            "level-pred:conf={},max={},penalty={}",
            cfg.level_pred.conf_threshold,
            cfg.level_pred.conf_max,
            cfg.level_pred.mispredict_penalty
        ),
        Mechanism::Perceptron => format!(
            "perceptron:theta={},history={}",
            cfg.perceptron.theta, cfg.perceptron.history_bits
        ),
        Mechanism::WayMemo => format!(
            "way-memo:entries={},penalty={}",
            cfg.way_memo.entries, cfg.way_memo.stale_penalty
        ),
    }
}

// ---------------------------------------------------------------- impls

/// LevelPred: steers to the predicted hit level above a confidence
/// threshold (arXiv:2103.14808).
struct LevelPredImpl {
    table: LevelPredictor,
    conf_threshold: u32,
    penalty: u64,
}

impl PredictorImpl for LevelPredImpl {
    fn probe(&mut self, _core: usize, block: u64) -> Steer {
        let (level, conf) = self.table.predict(block);
        if level != LEVEL_UNTRAINED && u32::from(conf) >= self.conf_threshold {
            if level == LEVEL_MEMORY {
                Steer::OffChip
            } else {
                Steer::Level(level)
            }
        } else {
            Steer::Walk
        }
    }

    fn train(&mut self, _core: usize, block: u64, outcome: WalkOutcome) {
        self.table
            .train(block, outcome.hit_level.unwrap_or(LEVEL_MEMORY));
    }

    fn mispredict_penalty_cycles(&self) -> u64 {
        self.penalty
    }
}

/// PerceptronOffChip: hashed perceptron gating the DRAM bypass
/// (arXiv:2403.15181).
struct PerceptronImpl {
    p: OffChipPerceptron,
}

impl PredictorImpl for PerceptronImpl {
    fn probe(&mut self, core: usize, block: u64) -> Steer {
        let sum = self.p.predict(core, block);
        if self.p.confident_off_chip(sum) {
            Steer::OffChip
        } else {
            Steer::Walk
        }
    }

    fn train(&mut self, core: usize, block: u64, outcome: WalkOutcome) {
        // `predict` is pure and nothing moved since the probe, so the sum
        // the decision was made with is recomputed rather than cached —
        // that keeps `probe` state-pure for the conformance suite.
        let sum = self.p.predict(core, block);
        self.p.train(core, block, sum, outcome.hit_level.is_none());
    }
}

/// WayMemo: skips L1 tag-way reads for memoized re-touched blocks
/// (arXiv:0710.4703). Never steers — the hierarchy walk is exactly Base;
/// only the L1 access energy changes.
struct WayMemoImpl {
    memos: Vec<WayMemo>,
    penalty: u64,
}

impl PredictorImpl for WayMemoImpl {
    fn probe(&mut self, _core: usize, _block: u64) -> Steer {
        Steer::Walk
    }

    fn train(&mut self, core: usize, block: u64, _outcome: WalkOutcome) {
        // Whether the walk hit on chip or filled from memory, the block is
        // now L1-resident.
        self.memos[core].record(block);
    }

    fn l1_hit_memoized(&mut self, core: usize, block: u64) -> bool {
        if self.memos[core].probe(block) {
            true
        } else {
            self.memos[core].record(block);
            false
        }
    }

    fn l1_stale_memo(&mut self, core: usize, block: u64) -> bool {
        if self.memos[core].probe(block) {
            self.memos[core].clear(block);
            true
        } else {
            false
        }
    }

    fn observes_l1_hits(&self) -> bool {
        true
    }

    fn mispredict_penalty_cycles(&self) -> u64 {
        self.penalty
    }

    fn supports_recalibration(&self) -> bool {
        true
    }

    fn recalibrate(&mut self, resident: &mut dyn Iterator<Item = u64>) {
        // Inclusive hierarchy: L1 ⊆ LLC, so scrubbing against the LLC
        // resident set removes every entry that could be stale.
        let resident: Vec<u64> = resident.collect();
        for m in &mut self.memos {
            m.retain(resident.iter().copied());
        }
    }
}

/// ReDHiP behind the trait, for the conformance suite only — `System`
/// keeps the devirtualized [`PredictorState::Table`] fast path.
struct RedhipAdapter {
    table: PredictionTable,
}

impl PredictorImpl for RedhipAdapter {
    fn probe(&mut self, _core: usize, block: u64) -> Steer {
        if self.table.test(block) {
            Steer::Walk
        } else {
            Steer::OffChip
        }
    }

    fn train(&mut self, _core: usize, _block: u64, _outcome: WalkOutcome) {}

    fn on_llc_fill(&mut self, block: u64) {
        self.table.set(block);
    }

    fn supports_recalibration(&self) -> bool {
        true
    }

    fn recalibrate(&mut self, resident: &mut dyn Iterator<Item = u64>) {
        self.table.recalibrate_from(resident);
    }
}

/// CBF behind the trait, for the conformance suite only.
struct CbfAdapter {
    cbf: CountingBloomFilter,
}

impl PredictorImpl for CbfAdapter {
    fn probe(&mut self, _core: usize, block: u64) -> Steer {
        match self.cbf.predict(block) {
            Prediction::Absent => Steer::OffChip,
            Prediction::MaybePresent => Steer::Walk,
        }
    }

    fn train(&mut self, _core: usize, _block: u64, _outcome: WalkOutcome) {}

    fn on_llc_fill(&mut self, block: u64) {
        self.cbf.on_fill(block);
    }

    fn on_llc_evict(&mut self, block: u64) {
        self.cbf.on_evict(block);
    }

    fn supports_recalibration(&self) -> bool {
        self.cbf.supports_recalibration()
    }

    fn recalibrate(&mut self, resident: &mut dyn Iterator<Item = u64>) {
        self.cbf.recalibrate(resident);
    }
}

/// Builds the trait-object implementation of a predictor mechanism, sized
/// to the config's area budget. `None` for the predictorless mechanisms
/// (Base/Phased/Oracle). ReDHiP and CBF build thin adapters — used by the
/// conformance suite; `System` dispatches them devirtualized.
pub fn build_impl(cfg: &SimConfig) -> Option<Box<dyn PredictorImpl>> {
    let pt_bytes = cfg.effective_pt_bytes();
    let cores = cfg.platform.cores;
    match cfg.mechanism {
        Mechanism::Base | Mechanism::Phased | Mechanism::Oracle => None,
        Mechanism::Redhip => Some(Box::new(RedhipAdapter {
            table: PredictionTable::from_capacity_bytes(pt_bytes),
        })),
        Mechanism::Cbf => {
            let c = CbfConfig::from_budget(pt_bytes, cfg.cbf.counter_bits, cfg.cbf.num_hashes);
            Some(Box::new(CbfAdapter {
                cbf: CountingBloomFilter::new(c),
            }))
        }
        Mechanism::LevelPred => Some(Box::new(LevelPredImpl {
            table: LevelPredictor::from_capacity_bytes(
                pt_bytes,
                cfg.level_pred.conf_max.min(u32::from(u8::MAX)) as u8,
            ),
            conf_threshold: cfg.level_pred.conf_threshold,
            penalty: cfg.level_pred.mispredict_penalty,
        })),
        Mechanism::Perceptron => Some(Box::new(PerceptronImpl {
            p: OffChipPerceptron::from_capacity_bytes(
                pt_bytes,
                cores,
                cfg.perceptron.history_bits,
                cfg.perceptron.theta,
            ),
        })),
        Mechanism::WayMemo => Some(Box::new(WayMemoImpl {
            memos: (0..cores)
                .map(|_| WayMemo::with_entries(u64::from(cfg.way_memo.entries)))
                .collect(),
            penalty: cfg.way_memo.stale_penalty,
        })),
    }
}

// ---------------------------------------------------------------- state

/// Predictor state per mechanism.
pub(crate) enum PredictorState {
    /// Base / Phased: no predictor.
    None,
    /// Oracle: consults the LLC directly at zero cost.
    Oracle,
    /// Single table beside the (inclusive) LLC behind the predictor trait:
    /// CBF, or ReDHiP's perfect-recalibration variant.
    Single(Box<dyn PresencePredictor + Send>),
    /// The common ReDHiP configuration, devirtualized: holding the
    /// [`PredictionTable`] directly lets the per-miss probe inline to a
    /// single load+mask instead of a virtual call.
    Table(PredictionTable),
    /// §III-C fully-exclusive configuration: one scaled table per cache.
    /// Index layout: `(level-1) * cores + core` for private levels,
    /// last index = shared LLC.
    Multi {
        bank: PredictorBank,
        /// Per-table scaled energy/latency spec (same order as the bank).
        specs: Vec<PredictorSpec>,
        /// Per-table recalibration engines (same order).
        engines: Vec<RecalibrationEngine>,
    },
    /// A registry mechanism behind the [`PredictorImpl`] trait.
    Custom(Box<dyn PredictorImpl>),
}

/// Builds the predictor state for `cfg` (plus the single-table
/// recalibration engine when the mechanism uses one). `llc_sets` /
/// `llc_assoc` describe the shared LLC the engine scans.
pub(crate) fn build_state(
    cfg: &SimConfig,
    pt_spec: &PredictorSpec,
    llc_sets: u64,
    llc_assoc: usize,
) -> (PredictorState, Option<RecalibrationEngine>) {
    let p = &cfg.platform;
    let pt_bytes = cfg.effective_pt_bytes();
    let mut recalib_engine = None;
    let state = match (cfg.mechanism, cfg.policy) {
        (Mechanism::Base | Mechanism::Phased, _) => PredictorState::None,
        (Mechanism::Oracle, _) => PredictorState::Oracle,
        (Mechanism::Cbf, _) => {
            let c = CbfConfig::from_budget(pt_bytes, cfg.cbf.counter_bits, cfg.cbf.num_hashes);
            PredictorState::Single(Box::new(CountingBloomFilter::new(c)))
        }
        (Mechanism::Redhip, InclusionPolicy::Inclusive | InclusionPolicy::Hybrid)
            if cfg.recalib_period == Some(1) =>
        {
            // "Perfect recalibration" (Fig. 12's leftmost point): a
            // table rebuilt after every L1 miss is semantically an
            // exactly-counted bits-hash table, maintained incrementally.
            PredictorState::Single(Box::new(redhip::ExactCountingTable::from_capacity_bytes(
                pt_bytes,
            )))
        }
        (Mechanism::Redhip, InclusionPolicy::Inclusive | InclusionPolicy::Hybrid) => {
            let table = PredictionTable::from_capacity_bytes(pt_bytes);
            recalib_engine = Some(RecalibrationEngine::new(
                llc_sets,
                llc_assoc,
                table.lines(),
                cfg.recalib_banks,
                p.llc().tag_energy_nj,
                pt_spec.access_energy_nj,
            ));
            PredictorState::Table(table)
        }
        (Mechanism::Redhip, InclusionPolicy::Exclusive) => build_multi(cfg, pt_spec),
        (Mechanism::LevelPred | Mechanism::Perceptron | Mechanism::WayMemo, _) => {
            PredictorState::Custom(build_impl(cfg).expect("registry mechanism has an impl"))
        }
    };
    (state, recalib_engine)
}

/// Builds the per-cache table bank for the exclusive configuration.
fn build_multi(cfg: &SimConfig, base_spec: &PredictorSpec) -> PredictorState {
    let p = &cfg.platform;
    let ratio = cfg.effective_pt_bytes() as f64 / p.llc().capacity_bytes as f64;
    let cores = p.cores;
    let levels = p.levels.len();
    let mut capacities = Vec::new();
    // Private levels L2..L(n-1), one table per core each.
    for lvl in 1..levels - 1 {
        for _ in 0..cores {
            capacities.push(p.levels[lvl].capacity_bytes);
        }
    }
    capacities.push(p.llc().capacity_bytes);
    let bank = PredictorBank::with_overhead_ratio(&capacities, ratio);
    let mut specs = Vec::with_capacity(bank.len());
    let mut engines = Vec::with_capacity(bank.len());
    for (i, &cap) in capacities.iter().enumerate() {
        let table = bank.table(i);
        specs.push(base_spec.scaled_to(table.capacity_bytes()));
        let lvl = if i + 1 == capacities.len() {
            levels - 1
        } else {
            1 + i / cores
        };
        let spec = &p.levels[lvl];
        let sets = cap / 64 / spec.assoc as u64;
        engines.push(RecalibrationEngine::new(
            sets,
            spec.assoc,
            table.lines(),
            cfg.recalib_banks,
            spec.tag_energy_nj.max(spec.data_energy_nj * 0.2),
            specs[i].access_energy_nj,
        ));
    }
    PredictorState::Multi {
        bank,
        specs,
        engines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energy_model::presets::demo_scale;

    #[test]
    fn registry_covers_every_mechanism_once() {
        for m in [
            Mechanism::Base,
            Mechanism::Redhip,
            Mechanism::Cbf,
            Mechanism::Phased,
            Mechanism::Oracle,
            Mechanism::LevelPred,
            Mechanism::Perceptron,
            Mechanism::WayMemo,
        ] {
            assert_eq!(
                REGISTRY.iter().filter(|i| i.mechanism == m).count(),
                1,
                "{m:?}"
            );
            assert_eq!(registry_info(m).mechanism, m);
        }
        let mut names: Vec<&str> = REGISTRY.iter().map(|i| i.spec_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len(), "spec names must be unique");
    }

    #[test]
    fn parse_bare_names() {
        for info in &REGISTRY {
            let spec = parse_spec(info.spec_name).expect("bare name parses");
            assert_eq!(spec.mechanism, info.mechanism);
            assert_eq!(spec, ParsedSpec::new(info.mechanism));
        }
    }

    #[test]
    fn parse_with_parameters() {
        let s = parse_spec("level-pred:conf=5,penalty=16").unwrap();
        assert_eq!(s.mechanism, Mechanism::LevelPred);
        assert_eq!(s.level_pred.conf_threshold, 5);
        assert_eq!(s.level_pred.mispredict_penalty, 16);
        assert_eq!(s.level_pred.conf_max, LevelPredParams::default().conf_max);
        let s = parse_spec("perceptron:theta=-3").unwrap();
        assert_eq!(s.perceptron.theta, -3);
    }

    #[test]
    fn unknown_mechanism_lists_known_names() {
        let err = parse_spec("ghost").unwrap_err();
        assert!(err.contains("unknown mechanism `ghost`"), "{err}");
        for info in &REGISTRY {
            assert!(err.contains(info.spec_name), "{err}");
        }
    }

    #[test]
    fn unknown_key_lists_known_keys() {
        let err = parse_spec("level-pred:confidence=2").unwrap_err();
        assert!(err.contains("unknown key `confidence`"), "{err}");
        assert!(err.contains("conf, max, penalty"), "{err}");
        let err = parse_spec("base:x=1").unwrap_err();
        assert!(err.contains("takes no parameters"), "{err}");
        let err = parse_spec("way-memo:entries").unwrap_err();
        assert!(err.contains("expected key=value"), "{err}");
        let err = parse_spec("cbf:bits=lots").unwrap_err();
        assert!(err.contains("not a number"), "{err}");
    }

    #[test]
    fn spec_string_round_trips() {
        let mut cfg = SimConfig::new(demo_scale(), Mechanism::LevelPred);
        cfg.level_pred.conf_threshold = 7;
        cfg.level_pred.mispredict_penalty = 3;
        let s = spec_string(&cfg);
        assert_eq!(s, "level-pred:conf=7,max=3,penalty=3");
        let parsed = parse_spec(&s).unwrap();
        let mut cfg2 = SimConfig::new(demo_scale(), Mechanism::Base);
        parsed.apply(&mut cfg2);
        assert_eq!(spec_string(&cfg2), s);
        assert_eq!(cfg2.level_pred, cfg.level_pred);
    }

    #[test]
    fn build_impl_exists_exactly_for_predictor_mechanisms() {
        for info in &REGISTRY {
            let cfg = SimConfig::new(demo_scale(), info.mechanism);
            assert_eq!(
                build_impl(&cfg).is_some(),
                info.mechanism.has_predictor(),
                "{:?}",
                info.mechanism
            );
        }
    }
}
