//! Derived metrics: the quantities the paper's figures plot.

use crate::run::RunResult;

/// Comparison of a mechanism run against the Base run of the same workload.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Base execution cycles.
    pub base_cycles: u64,
    /// Mechanism execution cycles.
    pub cycles: u64,
    /// Base total dynamic energy (J).
    pub base_dynamic_j: f64,
    /// Mechanism total dynamic energy (J).
    pub dynamic_j: f64,
    /// Base total (dynamic + leakage) energy (J).
    pub base_total_j: f64,
    /// Mechanism total energy (J).
    pub total_j: f64,
}

impl Comparison {
    /// Builds the comparison from two runs of the same workload.
    pub fn new(base: &RunResult, other: &RunResult) -> Self {
        Self {
            base_cycles: base.cycles,
            cycles: other.cycles,
            base_dynamic_j: base.energy.total_dynamic_j(),
            dynamic_j: other.energy.total_dynamic_j(),
            base_total_j: base.energy.total_j(),
            total_j: other.energy.total_j(),
        }
    }

    /// Speedup over base as a fraction (Fig. 6/14: positive = faster).
    pub fn speedup(&self) -> f64 {
        self.base_cycles as f64 / self.cycles as f64 - 1.0
    }

    /// Dynamic energy normalized to base (Fig. 7/11/12/15: lower = better).
    pub fn dynamic_ratio(&self) -> f64 {
        if self.base_dynamic_j == 0.0 {
            return 1.0;
        }
        self.dynamic_j / self.base_dynamic_j
    }

    /// Dynamic energy *saving* relative to base (Fig. 13).
    pub fn dynamic_saving(&self) -> f64 {
        1.0 - self.dynamic_ratio()
    }

    /// Total (dynamic + static) energy saving — the paper's "overall 22%".
    pub fn total_saving(&self) -> f64 {
        if self.base_total_j == 0.0 {
            return 0.0;
        }
        1.0 - self.total_j / self.base_total_j
    }

    /// The paper's performance-energy metric (Fig. 8): the product of the
    /// performance gain and total energy saving, expressed as
    /// `(1 + speedup) × (1 + total saving)` so that a scheme with no effect
    /// scores 1.0 (matching the figure's axis starting at 1).
    pub fn perf_energy_metric(&self) -> f64 {
        (1.0 + self.speedup()) * (1.0 + self.total_saving())
    }
}

/// Arithmetic mean helper for per-benchmark series ("average" bars).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp(bc: u64, c: u64, bd: f64, d: f64, bt: f64, t: f64) -> Comparison {
        Comparison {
            base_cycles: bc,
            cycles: c,
            base_dynamic_j: bd,
            dynamic_j: d,
            base_total_j: bt,
            total_j: t,
        }
    }

    #[test]
    fn speedup_sign_convention() {
        assert!((cmp(110, 100, 1.0, 1.0, 1.0, 1.0).speedup() - 0.1).abs() < 1e-12);
        assert!(cmp(100, 110, 1.0, 1.0, 1.0, 1.0).speedup() < 0.0);
    }

    #[test]
    fn energy_ratios() {
        let c = cmp(100, 100, 2.0, 0.8, 4.0, 3.0);
        assert!((c.dynamic_ratio() - 0.4).abs() < 1e-12);
        assert!((c.dynamic_saving() - 0.6).abs() < 1e-12);
        assert!((c.total_saving() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn metric_is_product_of_gains() {
        // 8% speedup, 22% total saving → 1.08 × 1.22 ≈ 1.318 (paper's
        // headline ReDHiP point lands around 1.3 in Fig. 8).
        let c = cmp(108, 100, 1.0, 0.39, 1.0, 0.78);
        assert!((c.perf_energy_metric() - 1.08 * 1.22).abs() < 1e-9);
    }

    #[test]
    fn neutral_scheme_scores_one() {
        let c = cmp(100, 100, 1.0, 1.0, 1.0, 1.0);
        assert!((c.perf_energy_metric() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_base_is_guarded() {
        let c = cmp(100, 100, 0.0, 1.0, 0.0, 1.0);
        assert_eq!(c.dynamic_ratio(), 1.0);
        assert_eq!(c.total_saving(), 0.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
