//! Simulation configuration.

use cache_sim::{InclusionPolicy, ReplacementPolicy};
use energy_model::PlatformSpec;
use minijson::{json, FromJson, Json, ToJson};
use prefetch::StrideConfig;

/// Which of the compared mechanisms to simulate: the paper's five plus the
/// three related-work contenders from the predictor registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// No prediction/optimization; all levels parallel tag+data.
    Base,
    /// The paper's contribution (single PT for inclusive/hybrid; one table
    /// per cache for the fully-exclusive configuration, §III-C).
    Redhip,
    /// Counting-Bloom-filter predictor at the same area budget.
    Cbf,
    /// Phased Cache: L3/L4 serialize tag→data; no predictor.
    Phased,
    /// Perfect LLC-residency predictor with zero overhead.
    Oracle,
    /// Per-load predicted hit level steering the lookup order, with a
    /// mispredict penalty (Jalili & Erez, arXiv:2103.14808).
    LevelPred,
    /// Hashed two-level perceptron with a confidence threshold gating the
    /// DRAM bypass (Jamet et al., arXiv:2403.15181).
    Perceptron,
    /// Way memoization: tag-way read skipping on re-touched blocks, charged
    /// in the energy model (arXiv:0710.4703).
    WayMemo,
}

impl Mechanism {
    /// Display name as in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Base => "Base",
            Mechanism::Redhip => "ReDHiP",
            Mechanism::Cbf => "CBF",
            Mechanism::Phased => "Phased",
            Mechanism::Oracle => "Oracle",
            Mechanism::LevelPred => "LevelPred",
            Mechanism::Perceptron => "Perceptron",
            Mechanism::WayMemo => "WayMemo",
        }
    }

    /// Whether this mechanism instantiates a predictor structure (and so
    /// pays its leakage). The registry contenders all do — they are sized
    /// to the same area budget as the PT for an equal-area comparison.
    pub fn has_predictor(self) -> bool {
        matches!(
            self,
            Mechanism::Redhip
                | Mechanism::Cbf
                | Mechanism::LevelPred
                | Mechanism::Perceptron
                | Mechanism::WayMemo
        )
    }
}

/// CBF design knobs (Table/§II parameters of the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbfParams {
    /// Bits per counter.
    pub counter_bits: u32,
    /// Number of hash functions (the referenced work: 1 suffices).
    pub num_hashes: u32,
}

impl Default for CbfParams {
    fn default() -> Self {
        Self {
            counter_bits: 4,
            num_hashes: 1,
        }
    }
}

/// LevelPred design knobs (used when `mechanism == LevelPred`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelPredParams {
    /// Minimum confidence for a prediction to steer the lookup; below it
    /// the access falls back to the full in-order walk. A threshold above
    /// `conf_max` makes LevelPred degenerate to Base pricing.
    pub conf_threshold: u32,
    /// Saturation point of the per-entry confidence counters.
    pub conf_max: u32,
    /// Extra cycles charged per steered lookup that missed its level.
    pub mispredict_penalty: u64,
}

impl Default for LevelPredParams {
    fn default() -> Self {
        Self {
            conf_threshold: 2,
            conf_max: 3,
            mispredict_penalty: 8,
        }
    }
}

/// PerceptronOffChip design knobs (used when `mechanism == Perceptron`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerceptronParams {
    /// Confidence threshold θ: a weight sum ≥ θ gates the DRAM bypass.
    pub theta: i32,
    /// Bits of per-core off-chip outcome history folded into the hashes.
    pub history_bits: u32,
}

impl Default for PerceptronParams {
    fn default() -> Self {
        Self {
            theta: 12,
            history_bits: 8,
        }
    }
}

/// WayMemo design knobs (used when `mechanism == WayMemo`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayMemoParams {
    /// Memo slots per core (rounded down to a power of two).
    pub entries: u32,
    /// Extra cycles charged when a stale memo entry fires.
    pub stale_penalty: u64,
}

impl Default for WayMemoParams {
    fn default() -> Self {
        Self {
            entries: 256,
            stale_penalty: 1,
        }
    }
}

/// Which event classes are charged dynamic energy.
///
/// The paper's model (like most tag/data lookup analyses) prices array
/// *lookups*; fill writes and writeback writes are identical across the
/// compared mechanisms and are excluded by default to match its
/// accounting. Every knob exists so the `accounting_ablation` bench can
/// quantify the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccountingOptions {
    /// Charge a data-array write for every line fill.
    pub charge_fills: bool,
    /// Charge a data-array write for every writeback received.
    pub charge_writebacks: bool,
    /// Charge a tag-array access for every back-invalidation probe.
    pub charge_invalidation_probes: bool,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Architecture parameters (sizes, delays, energies).
    pub platform: PlatformSpec,
    /// Compared mechanism.
    pub mechanism: Mechanism,
    /// Cache inclusion policy (§III-C / Fig. 13).
    pub policy: InclusionPolicy,
    /// Replacement policy for every level.
    pub replacement: ReplacementPolicy,
    /// Stride prefetcher, if enabled (§V-C / Figs. 14–15). Inclusive only.
    pub prefetch: Option<StrideConfig>,
    /// Prediction-table capacity override in bytes (Fig. 11 sweep);
    /// `None` uses the platform's predictor size.
    pub pt_bytes: Option<u64>,
    /// L1 misses between recalibrations (Fig. 12 sweep); `None` = never.
    pub recalib_period: Option<u64>,
    /// Parallel recalibration banks (the paper's medium effort: 4).
    pub recalib_banks: u64,
    /// CBF parameters (used when `mechanism == Cbf`).
    pub cbf: CbfParams,
    /// LevelPred parameters (used when `mechanism == LevelPred`).
    pub level_pred: LevelPredParams,
    /// Perceptron parameters (used when `mechanism == Perceptron`).
    pub perceptron: PerceptronParams,
    /// WayMemo parameters (used when `mechanism == WayMemo`).
    pub way_memo: WayMemoParams,
    /// Average CPI charged per non-memory instruction.
    pub avg_cpi: f64,
    /// Memory references simulated per core.
    pub refs_per_core: usize,
    /// Charge predictor lookup energy/latency and recalibration overhead.
    /// The paper disables this for the Fig. 11/12 accuracy studies.
    pub count_prediction_overhead: bool,
    /// Energy accounting details.
    pub accounting: AccountingOptions,
    /// Offset applied per core to separate address spaces (bit position).
    /// 0 disables separation (all cores share addresses).
    pub address_space_bit: u32,
}

impl SimConfig {
    /// A ready-to-run configuration for `mechanism` on `platform` with the
    /// paper's defaults for everything else.
    pub fn new(platform: PlatformSpec, mechanism: Mechanism) -> Self {
        Self {
            platform,
            mechanism,
            policy: InclusionPolicy::Inclusive,
            replacement: ReplacementPolicy::Lru,
            prefetch: None,
            pt_bytes: None,
            recalib_period: Some(65_536),
            recalib_banks: 4,
            cbf: CbfParams::default(),
            level_pred: LevelPredParams::default(),
            perceptron: PerceptronParams::default(),
            way_memo: WayMemoParams::default(),
            avg_cpi: 1.5,
            refs_per_core: 1_000_000,
            count_prediction_overhead: true,
            accounting: AccountingOptions::default(),
            address_space_bit: 44,
        }
    }

    /// Effective prediction-table capacity in bytes.
    pub fn effective_pt_bytes(&self) -> u64 {
        self.pt_bytes.unwrap_or(self.platform.predictor.size_bytes)
    }

    /// Validates cross-field constraints, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.policy == InclusionPolicy::Exclusive
            && !matches!(self.mechanism, Mechanism::Base | Mechanism::Redhip)
        {
            return Err(format!(
                "{} is undefined for a fully exclusive hierarchy: absence \
                 from the LLC does not imply absence on chip (§III-C gives \
                 ReDHiP per-level tables; Base needs no predictor)",
                self.mechanism.name()
            ));
        }
        if matches!(
            self.mechanism,
            Mechanism::LevelPred | Mechanism::Perceptron | Mechanism::WayMemo
        ) && self.policy != InclusionPolicy::Inclusive
        {
            return Err(format!(
                "{} is modelled for the inclusive hierarchy only (its \
                 recalibration scrub and steering penalties assume L1 ⊆ LLC)",
                self.mechanism.name()
            ));
        }
        if self.prefetch.is_some() && self.policy != InclusionPolicy::Inclusive {
            return Err("prefetching is modelled for the inclusive hierarchy only".into());
        }
        if self.avg_cpi <= 0.0 {
            return Err("avg_cpi must be positive".into());
        }
        if self.refs_per_core == 0 {
            return Err("refs_per_core must be positive".into());
        }
        Ok(())
    }
}

impl ToJson for Mechanism {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Mechanism::Base => "Base",
                Mechanism::Redhip => "Redhip",
                Mechanism::Cbf => "Cbf",
                Mechanism::Phased => "Phased",
                Mechanism::Oracle => "Oracle",
                Mechanism::LevelPred => "LevelPred",
                Mechanism::Perceptron => "Perceptron",
                Mechanism::WayMemo => "WayMemo",
            }
            .to_string(),
        )
    }
}

impl FromJson for Mechanism {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Base") => Ok(Mechanism::Base),
            Some("Redhip") => Ok(Mechanism::Redhip),
            Some("Cbf") => Ok(Mechanism::Cbf),
            Some("Phased") => Ok(Mechanism::Phased),
            Some("Oracle") => Ok(Mechanism::Oracle),
            Some("LevelPred") => Ok(Mechanism::LevelPred),
            Some("Perceptron") => Ok(Mechanism::Perceptron),
            Some("WayMemo") => Ok(Mechanism::WayMemo),
            _ => Err(format!("not a Mechanism: {v:?}")),
        }
    }
}

impl ToJson for CbfParams {
    fn to_json(&self) -> Json {
        json!({
            "counter_bits": self.counter_bits,
            "num_hashes": self.num_hashes,
        })
    }
}

impl FromJson for CbfParams {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            counter_bits: v.u64_of("counter_bits")? as u32,
            num_hashes: v.u64_of("num_hashes")? as u32,
        })
    }
}

impl ToJson for LevelPredParams {
    fn to_json(&self) -> Json {
        json!({
            "conf_threshold": self.conf_threshold,
            "conf_max": self.conf_max,
            "mispredict_penalty": self.mispredict_penalty,
        })
    }
}

impl FromJson for LevelPredParams {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            conf_threshold: v.u64_of("conf_threshold")? as u32,
            conf_max: v.u64_of("conf_max")? as u32,
            mispredict_penalty: v.u64_of("mispredict_penalty")?,
        })
    }
}

impl ToJson for PerceptronParams {
    fn to_json(&self) -> Json {
        json!({
            "theta": i64::from(self.theta),
            "history_bits": self.history_bits,
        })
    }
}

impl FromJson for PerceptronParams {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            theta: v
                .member("theta")?
                .as_i64()
                .ok_or_else(|| "member `theta` is not an i64".to_string())?
                as i32,
            history_bits: v.u64_of("history_bits")? as u32,
        })
    }
}

impl ToJson for WayMemoParams {
    fn to_json(&self) -> Json {
        json!({
            "entries": self.entries,
            "stale_penalty": self.stale_penalty,
        })
    }
}

impl FromJson for WayMemoParams {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            entries: v.u64_of("entries")? as u32,
            stale_penalty: v.u64_of("stale_penalty")?,
        })
    }
}

impl ToJson for AccountingOptions {
    fn to_json(&self) -> Json {
        json!({
            "charge_fills": self.charge_fills,
            "charge_writebacks": self.charge_writebacks,
            "charge_invalidation_probes": self.charge_invalidation_probes,
        })
    }
}

impl FromJson for AccountingOptions {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            charge_fills: v.bool_of("charge_fills")?,
            charge_writebacks: v.bool_of("charge_writebacks")?,
            charge_invalidation_probes: v.bool_of("charge_invalidation_probes")?,
        })
    }
}

impl ToJson for SimConfig {
    fn to_json(&self) -> Json {
        let mut doc = json!({
            "platform": self.platform.to_json(),
            "mechanism": self.mechanism.to_json(),
            "policy": self.policy.to_json(),
            "replacement": self.replacement.to_json(),
            "prefetch": self.prefetch.as_ref().map_or(Json::Null, |p| p.to_json()),
            "pt_bytes": Json::from(self.pt_bytes),
            "recalib_period": Json::from(self.recalib_period),
            "recalib_banks": self.recalib_banks,
            "cbf": self.cbf.to_json(),
            "avg_cpi": self.avg_cpi,
            "refs_per_core": self.refs_per_core,
            "count_prediction_overhead": self.count_prediction_overhead,
            "accounting": self.accounting.to_json(),
            "address_space_bit": self.address_space_bit,
        });
        // Mechanism-specific parameter blocks are emitted only for the
        // mechanism that owns them. That keeps every pre-registry
        // serialization (goldens, sweep canonical keys, disk caches)
        // byte-identical while still folding the full predictor spec into
        // the canonical key — two LevelPred configs that differ only in a
        // confidence threshold get different keys.
        match self.mechanism {
            Mechanism::LevelPred => doc.set("level_pred", self.level_pred.to_json()),
            Mechanism::Perceptron => doc.set("perceptron", self.perceptron.to_json()),
            Mechanism::WayMemo => doc.set("way_memo", self.way_memo.to_json()),
            _ => {}
        }
        doc
    }
}

impl FromJson for SimConfig {
    fn from_json(v: &Json) -> Result<Self, String> {
        let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            match v.member(key)? {
                Json::Null => Ok(None),
                other => other
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("{key}: not a u64")),
            }
        };
        Ok(Self {
            platform: energy_model::PlatformSpec::from_json(v.member("platform")?)?,
            mechanism: Mechanism::from_json(v.member("mechanism")?)?,
            policy: InclusionPolicy::from_json(v.member("policy")?)?,
            replacement: ReplacementPolicy::from_json(v.member("replacement")?)?,
            prefetch: match v.member("prefetch")? {
                Json::Null => None,
                other => Some(StrideConfig::from_json(other)?),
            },
            pt_bytes: opt_u64("pt_bytes")?,
            recalib_period: opt_u64("recalib_period")?,
            recalib_banks: v.u64_of("recalib_banks")?,
            cbf: CbfParams::from_json(v.member("cbf")?)?,
            level_pred: match v.get("level_pred") {
                Some(p) => LevelPredParams::from_json(p)?,
                None => LevelPredParams::default(),
            },
            perceptron: match v.get("perceptron") {
                Some(p) => PerceptronParams::from_json(p)?,
                None => PerceptronParams::default(),
            },
            way_memo: match v.get("way_memo") {
                Some(p) => WayMemoParams::from_json(p)?,
                None => WayMemoParams::default(),
            },
            avg_cpi: v.f64_of("avg_cpi")?,
            refs_per_core: v.u64_of("refs_per_core")? as usize,
            count_prediction_overhead: v.bool_of("count_prediction_overhead")?,
            accounting: AccountingOptions::from_json(v.member("accounting")?)?,
            address_space_bit: v.u64_of("address_space_bit")? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energy_model::presets::demo_scale;

    #[test]
    fn defaults_match_paper_choices() {
        let c = SimConfig::new(demo_scale(), Mechanism::Redhip);
        assert_eq!(c.recalib_banks, 4);
        assert_eq!(c.policy, InclusionPolicy::Inclusive);
        assert!(c.count_prediction_overhead);
        assert_eq!(c.effective_pt_bytes(), 64 << 10);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn pt_override_takes_effect() {
        let mut c = SimConfig::new(demo_scale(), Mechanism::Redhip);
        c.pt_bytes = Some(8 << 10);
        assert_eq!(c.effective_pt_bytes(), 8 << 10);
    }

    #[test]
    fn exclusive_rejects_predictorless_bypass_mechanisms() {
        for m in [
            Mechanism::Cbf,
            Mechanism::Oracle,
            Mechanism::Phased,
            Mechanism::LevelPred,
            Mechanism::Perceptron,
            Mechanism::WayMemo,
        ] {
            let mut c = SimConfig::new(demo_scale(), m);
            c.policy = InclusionPolicy::Exclusive;
            assert!(c.validate().is_err(), "{m:?} must be rejected");
        }
        for m in [Mechanism::Base, Mechanism::Redhip] {
            let mut c = SimConfig::new(demo_scale(), m);
            c.policy = InclusionPolicy::Exclusive;
            assert!(c.validate().is_ok(), "{m:?} must be accepted");
        }
    }

    #[test]
    fn prefetch_requires_inclusive() {
        let mut c = SimConfig::new(demo_scale(), Mechanism::Base);
        c.prefetch = Some(StrideConfig::default());
        c.policy = InclusionPolicy::Hybrid;
        assert!(c.validate().is_err());
        c.policy = InclusionPolicy::Inclusive;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn mechanism_metadata() {
        assert!(Mechanism::Redhip.has_predictor());
        assert!(Mechanism::Cbf.has_predictor());
        assert!(!Mechanism::Oracle.has_predictor());
        assert_eq!(Mechanism::Phased.name(), "Phased");
        assert!(Mechanism::LevelPred.has_predictor());
        assert!(Mechanism::Perceptron.has_predictor());
        assert!(Mechanism::WayMemo.has_predictor());
        assert_eq!(Mechanism::LevelPred.name(), "LevelPred");
    }

    #[test]
    fn registry_mechanisms_require_inclusive() {
        for m in [
            Mechanism::LevelPred,
            Mechanism::Perceptron,
            Mechanism::WayMemo,
        ] {
            let mut c = SimConfig::new(demo_scale(), m);
            assert!(c.validate().is_ok(), "{m:?} inclusive must pass");
            c.policy = InclusionPolicy::Hybrid;
            assert!(c.validate().is_err(), "{m:?} hybrid must be rejected");
        }
    }

    #[test]
    fn param_blocks_serialize_only_for_their_mechanism() {
        // The JSON of a pre-registry mechanism must not change — sweep
        // canonical keys and golden snapshots depend on it byte-for-byte.
        let base = SimConfig::new(demo_scale(), Mechanism::Base).to_json();
        assert!(base.get("level_pred").is_none());
        assert!(base.get("perceptron").is_none());
        assert!(base.get("way_memo").is_none());

        let mut c = SimConfig::new(demo_scale(), Mechanism::LevelPred);
        c.level_pred.conf_threshold = 5;
        let doc = c.to_json();
        assert_eq!(
            doc.get("level_pred").unwrap().u64_of("conf_threshold"),
            Ok(5)
        );
        assert!(doc.get("perceptron").is_none());
        let back = SimConfig::from_json(&doc).unwrap();
        assert_eq!(back.level_pred, c.level_pred);

        let p = SimConfig::new(demo_scale(), Mechanism::Perceptron);
        let back = SimConfig::from_json(&p.to_json()).unwrap();
        assert_eq!(back.perceptron, p.perceptron);
        let w = SimConfig::new(demo_scale(), Mechanism::WayMemo);
        let back = SimConfig::from_json(&w.to_json()).unwrap();
        assert_eq!(back.way_memo, w.way_memo);
    }

    #[test]
    fn config_serializes() {
        let c = SimConfig::new(demo_scale(), Mechanism::Base);
        let s = c.to_json().dump();
        let back = SimConfig::from_json(&minijson::parse(&s).unwrap()).unwrap();
        assert_eq!(back.mechanism, Mechanism::Base);
        assert_eq!(back.refs_per_core, c.refs_per_core);
    }
}
