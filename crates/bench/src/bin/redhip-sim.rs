//! `redhip-sim` — run one configuration on one workload and report.
//!
//! ```text
//! redhip-sim --benchmark mcf --mechanism redhip [options]
//!
//!   --benchmark NAME     bwaves|GemsFDTD|lbm|mcf|milc|soplex|astar|
//!                        cactusADM|mix|pmf|blas            (required)
//!   --mechanism M        registry spec string (default redhip):
//!                        base|redhip|phased|oracle|cbf[:bits=..,hashes=..]|
//!                        level-pred[:conf=..,max=..,penalty=..]|
//!                        perceptron[:theta=..,history=..]|
//!                        way-memo[:entries=..,penalty=..]
//!   --policy P           inclusive|exclusive|hybrid        (default inclusive)
//!   --scale S            smoke|demo|paper                  (default demo)
//!   --refs N             references per core               (default per scale)
//!   --pt-bytes N         prediction-table size override
//!   --recalib N          recalibration period in L1 misses (0 = never)
//!   --prefetch           enable the stride prefetcher
//!   --intra-jobs N       worker threads *inside* the run (deterministic
//!                        bound-weave engine; results are byte-identical
//!                        at every N; default 1 = sequential scheduler).
//!                        Configurations outside the engine's envelope
//!                        (non-grid CPIs, prefetch) run sequentially with
//!                        a stderr note, and the run manifest records
//!                        `sequential_fallback: true`.
//!   --compare            also run Base and print the comparison
//!   --json FILE          write the RunResult as JSON
//!   --telemetry FILE     write windowed time-series telemetry as JSONL
//!                        (window samples + recalibration markers); works
//!                        at any --intra-jobs — the parallel engine
//!                        replays observer events in exact sequential
//!                        order, so the JSONL is byte-identical at every N
//!   --window N           telemetry window width in refs per core
//!                        (default 100000)
//!   --metrics[=FILE]     enable the process metrics registry and write a
//!                        redhip-metrics/v1 snapshot plus the run manifest
//!                        (with phase timings) as JSONL (default
//!                        metrics.jsonl)
//!   --quiet              suppress the stderr heartbeat
//!
//! Bench-baseline mode (see EXPERIMENTS.md "Recording a bench baseline"):
//!
//!   --bench-json FILE    measure refs/s for every mechanism and write the
//!                        snapshot as JSON (no --benchmark required; uses
//!                        the sim_throughput configuration: mcf × 8 cores)
//!   --bench-refs N       references per core per timed run (default 5000)
//!   --bench-samples K    timed runs per mechanism, fastest wins (default
//!                        3; use 1 for a quick smoke run)
//!   --jobs N             worker threads for the sweep-level aggregate
//!                        measurement (default: REDHIP_JOBS, else all
//!                        host cores)
//!   --bench-compare A B  print the refs/s ratio table between two
//!                        previously written snapshots and exit
//!
//! Trace toolchain (see `bench::tracecli` for flags):
//!
//!   redhip-sim trace record   record a benchmark's streams to a v2 file
//!   redhip-sim trace convert  v1/v2/lackey-text -> chunked v2
//!   redhip-sim trace info     print a trace file's layout and stats
//!   redhip-sim trace replay   stream a trace file through the simulator
//! ```

use bench::harness::{
    mechanism_config, run_workload, run_workload_par, run_workload_par_with, run_workload_with,
    FigureScale,
};
use cache_sim::InclusionPolicy;
use minijson::ToJson;
use sim::{Comparison, Heartbeat, HeartbeatObserver, Mechanism, RunResult, Tee, WindowedCollector};
use workloads::Benchmark;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2);
}

fn main() {
    // `redhip-sim trace <record|convert|info|replay> ...` dispatches to the
    // trace toolchain before the flag parser sees anything.
    {
        let mut args = std::env::args().skip(1);
        if args.next().as_deref() == Some("trace") {
            bench::tracecli::main(args.collect());
            return;
        }
    }

    let mut benchmark = None;
    let mut mechanism = sim::ParsedSpec::new(Mechanism::Redhip);
    let mut policy = InclusionPolicy::Inclusive;
    let mut scale = FigureScale::Demo;
    let mut refs: Option<usize> = None;
    let mut pt_bytes = None;
    let mut recalib: Option<Option<u64>> = None;
    let mut prefetch = false;
    let mut intra_jobs = 1usize;
    let mut compare = false;
    let mut json_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut window: u64 = 100_000;
    let mut quiet = false;
    let mut bench_json: Option<String> = None;
    let mut bench_opts = bench::baseline::BenchOptions::default();
    let mut bench_compare: Option<(String, String)> = None;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--benchmark" | "-b" => {
                let v = next("--benchmark");
                benchmark = Some(
                    Benchmark::from_name(&v)
                        .unwrap_or_else(|| usage(&format!("unknown benchmark {v}"))),
                );
            }
            "--mechanism" | "-m" => {
                let spec = next("--mechanism").to_ascii_lowercase();
                mechanism = sim::parse_spec(&spec).unwrap_or_else(|e| usage(&e));
            }
            "--policy" | "-p" => {
                policy = match next("--policy").to_ascii_lowercase().as_str() {
                    "inclusive" => InclusionPolicy::Inclusive,
                    "exclusive" => InclusionPolicy::Exclusive,
                    "hybrid" => InclusionPolicy::Hybrid,
                    other => usage(&format!("unknown policy {other}")),
                };
            }
            "--scale" => {
                let v = next("--scale");
                scale =
                    FigureScale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale {v}")));
            }
            "--refs" => {
                refs = Some(
                    next("--refs")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --refs")),
                )
            }
            "--pt-bytes" => {
                pt_bytes = Some(
                    next("--pt-bytes")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --pt-bytes")),
                )
            }
            "--recalib" => {
                let v: u64 = next("--recalib")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --recalib"));
                recalib = Some(if v == 0 { None } else { Some(v) });
            }
            "--prefetch" => prefetch = true,
            "--intra-jobs" => {
                intra_jobs = next("--intra-jobs")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --intra-jobs"));
                if intra_jobs == 0 {
                    usage("--intra-jobs must be positive");
                }
            }
            "--compare" => compare = true,
            "--json" => json_path = Some(next("--json")),
            "--telemetry" => telemetry_path = Some(next("--telemetry")),
            "--metrics" => metrics_path = Some("metrics.jsonl".to_string()),
            other if other.starts_with("--metrics=") => {
                let p = &other["--metrics=".len()..];
                if p.is_empty() {
                    usage("--metrics= needs a path");
                }
                metrics_path = Some(p.to_string());
            }
            "--window" => {
                window = next("--window")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --window"));
                if window == 0 {
                    usage("--window must be positive");
                }
            }
            "--bench-json" => bench_json = Some(next("--bench-json")),
            "--bench-refs" => {
                bench_opts.refs_per_core = next("--bench-refs")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --bench-refs"));
                if bench_opts.refs_per_core == 0 {
                    usage("--bench-refs must be positive");
                }
            }
            "--bench-samples" => {
                bench_opts.samples = next("--bench-samples")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --bench-samples"));
                if bench_opts.samples == 0 {
                    usage("--bench-samples must be positive");
                }
            }
            "--jobs" => {
                bench_opts.jobs = next("--jobs")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --jobs"));
                if bench_opts.jobs == 0 {
                    usage("--jobs must be positive");
                }
            }
            "--bench-compare" => {
                bench_compare = Some((next("--bench-compare"), next("--bench-compare")));
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of redhip-sim.rs");
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    // Enable before any simulation so phase timers cover the whole run.
    if metrics_path.is_some() {
        metrics::enable();
    }

    if let Some((old_path, new_path)) = bench_compare {
        let load = |p: &str| {
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| usage(&format!("cannot read {p}: {e}")));
            minijson::parse(&text).unwrap_or_else(|e| usage(&format!("{p}: {e}")))
        };
        print!(
            "{}",
            bench::baseline::compare(&load(&old_path), &load(&new_path))
        );
        return;
    }

    if let Some(path) = bench_json {
        if let Some(b) = benchmark {
            bench_opts.benchmark = b;
        }
        eprintln!(
            "[redhip-sim] bench: {} x {} refs/core, {} sample(s) per mechanism ...",
            bench_opts.benchmark, bench_opts.refs_per_core, bench_opts.samples
        );
        let doc = bench::baseline::measure(&bench_opts);
        std::fs::write(&path, doc.pretty()).expect("write bench json");
        eprintln!("[redhip-sim] wrote {path}");
        print!("{}", bench::baseline::render(&doc));
        return;
    }

    let benchmark = benchmark.unwrap_or_else(|| usage("--benchmark is required"));

    let refs = refs.unwrap_or_else(|| scale.default_refs());
    let mut cfg = mechanism_config(scale, mechanism.mechanism, refs);
    mechanism.apply(&mut cfg);
    let mechanism = mechanism.mechanism;
    cfg.policy = policy;
    cfg.pt_bytes = pt_bytes;
    if let Some(r) = recalib {
        cfg.recalib_period = r;
    }
    if prefetch {
        cfg.prefetch = Some(prefetch::StrideConfig::default());
    }
    if let Err(e) = cfg.validate() {
        usage(&e);
    }

    eprintln!(
        "[redhip-sim] {} / {} / {:?} / {:?} scale, {} refs/core ...",
        benchmark,
        mechanism.name(),
        policy,
        scale,
        refs
    );

    let total_refs = (refs * cfg.platform.cores) as u64;
    let heartbeat = || {
        let h = Heartbeat::new("[redhip-sim]", "refs", total_refs);
        HeartbeatObserver::new(if quiet { h.silent() } else { h })
    };

    // True when --intra-jobs > 1 was requested but the configuration is
    // outside the parallel envelope; recorded in the run manifest.
    let mut sequential_fallback = false;

    // The whole run counts as the simulate phase (weave/redo/merge nest
    // inside it when the parallel engine runs).
    let sim_span = metrics::PHASE_SIMULATE.start();

    // Telemetry wants a collector; the heartbeat rides along either way.
    let result: RunResult = if intra_jobs > 1 {
        // The envelope must be judged on the config the run actually uses:
        // run_workload_par stamps the benchmark's CPI before simulating.
        let stamped = {
            let mut c = cfg.clone();
            c.avg_cpi = benchmark.avg_cpi();
            c
        };
        if !sim::parallel_supported(&stamped) {
            sequential_fallback = true;
            eprintln!(
                "[redhip-sim] note: configuration outside the parallel envelope; running sequentially"
            );
        }
        if let Some(path) = &telemetry_path {
            // The parallel engine replays observer events in exact
            // sequential weave order, so the collector (and heartbeat)
            // see the same stream as --intra-jobs 1.
            let opts = sim::IntraOptions {
                jobs: intra_jobs,
                ..Default::default()
            };
            let collector = WindowedCollector::new(window, cfg.platform.levels.len());
            let obs = Tee::new(collector, heartbeat());
            let (result, obs) = run_workload_par_with(&cfg, benchmark, scale, &opts, obs);
            std::fs::write(path, obs.a.to_jsonl()).expect("write telemetry");
            eprintln!(
                "[redhip-sim] wrote {path} ({} windows, {} recalibration markers)",
                obs.a.windows().count(),
                obs.a.recalibrations().count()
            );
            result
        } else {
            let hb = std::cell::RefCell::new({
                let h = Heartbeat::new("[redhip-sim]", "refs", total_refs);
                if quiet {
                    h.silent()
                } else {
                    h
                }
            });
            let progress = |done: u64| hb.borrow_mut().set_done(done);
            let opts = sim::IntraOptions {
                jobs: intra_jobs,
                progress: Some(&progress),
                ..Default::default()
            };
            let r = run_workload_par(&cfg, benchmark, scale, &opts);
            hb.borrow_mut().finish();
            r
        }
    } else if let Some(path) = &telemetry_path {
        let collector = WindowedCollector::new(window, cfg.platform.levels.len());
        let obs = Tee::new(collector, heartbeat());
        let (result, obs) = run_workload_with(&cfg, benchmark, scale, obs);
        std::fs::write(path, obs.a.to_jsonl()).expect("write telemetry");
        eprintln!(
            "[redhip-sim] wrote {path} ({} windows, {} recalibration markers)",
            obs.a.windows().count(),
            obs.a.recalibrations().count()
        );
        result
    } else if quiet {
        run_workload(&cfg, benchmark, scale)
    } else {
        run_workload_with(&cfg, benchmark, scale, heartbeat()).0
    };

    drop(sim_span);

    println!("=== {} under {} ===", benchmark, mechanism.name());
    print!("{}", sim::report::render(&result));

    if compare && mechanism != Mechanism::Base {
        let mut base_cfg = cfg.clone();
        base_cfg.mechanism = Mechanism::Base;
        base_cfg.prefetch = None;
        let base = run_workload(&base_cfg, benchmark, scale);
        let c = Comparison::new(&base, &result);
        println!("\n=== vs Base ===");
        println!("speedup              : {:+.2}%", c.speedup() * 100.0);
        println!("dynamic energy ratio : {:.3}", c.dynamic_ratio());
        println!("total energy saving  : {:+.2}%", c.total_saving() * 100.0);
        println!("perf-energy metric   : {:.3}", c.perf_energy_metric());
    }

    if let Some(path) = json_path {
        std::fs::write(&path, result.to_json().pretty()).expect("write json");
        eprintln!("[redhip-sim] wrote {path}");
    }

    if let Some(path) = metrics_path {
        // The run manifest reuses the sweep cell's canonical identity for
        // this (config x benchmark x scale), overriding the fallback flag
        // with what this invocation actually did (the cell derives it from
        // the envelope alone, not from whether parallelism was requested).
        let mut manifest = sweep::CellSpec::new(&cfg, benchmark, scale.workload_scale()).manifest();
        manifest.sequential_fallback = sequential_fallback;
        let mut out = metrics::snapshot_jsonl();
        out.push_str(&manifest.to_json_with_phases().dump());
        out.push('\n');
        std::fs::write(&path, out).expect("write metrics");
        eprintln!("[redhip-sim] wrote {path} (metrics snapshot + run manifest)");
    }
}
