//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures [TARGETS...] [--scale smoke|demo|paper] [--refs N] [--out DIR]
//!
//! TARGETS: all (default) | table1 | fig1 | fig6..fig15 | core (fig6-10)
//!          | sweeps (fig11-13) | prefetch (fig14-15) | ablations
//! ```
//!
//! Text renders to stdout; structured results land in `DIR/<name>.json`
//! (default `results/`).

use bench::figures::{self, FigureOutput, Settings};
use bench::harness::FigureScale;
use bench::{ablate, figdata};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: figures [all|core|sweeps|prefetch|ablations|table1|fig1|fig6..fig15]... \
         [--scale smoke|demo|paper] [--refs N] [--out DIR]"
    );
    std::process::exit(2);
}

struct Args {
    targets: BTreeSet<String>,
    scale: FigureScale,
    refs: Option<usize>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut targets = BTreeSet::new();
    let mut scale = FigureScale::Demo;
    let mut refs = None;
    let mut out = PathBuf::from("results");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = FigureScale::parse(&v).unwrap_or_else(|| usage());
            }
            "--refs" => {
                let v = it.next().unwrap_or_else(|| usage());
                refs = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            t if t.starts_with('-') => usage(),
            t => {
                targets.insert(t.to_string());
            }
        }
    }
    if targets.is_empty() {
        targets.insert("all".to_string());
    }
    Args {
        targets,
        scale,
        refs,
        out,
    }
}

fn wants(args: &Args, name: &str, group: &str) -> bool {
    args.targets.contains("all") || args.targets.contains(name) || args.targets.contains(group)
}

fn emit(args: &Args, f: &FigureOutput) {
    println!("{}", f.text);
    std::fs::create_dir_all(&args.out).expect("create results dir");
    let path = args.out.join(format!("{}.json", f.name));
    let mut file = std::fs::File::create(&path).expect("create json");
    file.write_all(f.json.pretty().as_bytes())
        .expect("write json");
    eprintln!("[figures] wrote {}", path.display());
}

fn main() {
    let args = parse_args();
    let settings = Settings::new(args.scale, args.refs);
    eprintln!(
        "[figures] scale={:?} refs/core={} workloads={} targets={:?}",
        args.scale,
        settings.refs,
        settings.workloads.len(),
        args.targets
    );
    let t0 = std::time::Instant::now();

    if wants(&args, "table1", "core") {
        emit(&args, &figures::table1(args.scale));
    }
    if wants(&args, "fig1", "core") {
        emit(
            &args,
            &FigureOutput {
                name: "fig1",
                title: "Cache sizes by year".into(),
                text: figdata::render_figure1(),
                json: minijson::Json::Arr(
                    figdata::FIGURE1
                        .iter()
                        .map(|p| minijson::json!({"year": p.year, "level": p.level, "kb": p.kb}))
                        .collect(),
                ),
            },
        );
    }

    let need_matrix = ["fig6", "fig7", "fig8", "fig9", "fig10"]
        .iter()
        .any(|n| wants(&args, n, "core"));
    if need_matrix {
        let m = figures::run_matrix(&settings);
        if wants(&args, "fig6", "core") {
            emit(&args, &figures::fig6(&m));
        }
        if wants(&args, "fig7", "core") {
            emit(&args, &figures::fig7(&m));
        }
        if wants(&args, "fig8", "core") {
            emit(&args, &figures::fig8(&m));
        }
        if wants(&args, "fig9", "core") {
            emit(&args, &figures::fig9(&m));
        }
        if wants(&args, "fig10", "core") {
            emit(&args, &figures::fig10(&m));
        }
    }

    if wants(&args, "fig11", "sweeps") {
        emit(&args, &figures::fig11(&settings));
    }
    if wants(&args, "fig12", "sweeps") {
        emit(&args, &figures::fig12(&settings));
    }
    if wants(&args, "fig13", "sweeps") {
        emit(&args, &figures::fig13(&settings));
    }
    if wants(&args, "fig14", "prefetch") || wants(&args, "fig15", "prefetch") {
        let (f14, f15) = figures::fig14_15(&settings);
        if wants(&args, "fig14", "prefetch") {
            emit(&args, &f14);
        }
        if wants(&args, "fig15", "prefetch") {
            emit(&args, &f15);
        }
    }
    if args.targets.contains("ablations") || args.targets.contains("all") {
        let mut s = settings.clone();
        s.workloads = ablate::ablation_workloads();
        for f in ablate::all(&s) {
            emit(&args, &f);
        }
    }
    eprintln!("[figures] done in {:?}", t0.elapsed());
}
