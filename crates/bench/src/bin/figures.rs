//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures [TARGETS...] [--scale smoke|demo|paper] [--refs N] [--out DIR]
//!         [--jobs N] [--intra-jobs N] [--cache] [--cache-dir DIR]
//!         [--metrics[=FILE]]
//!
//! TARGETS: all (default) | table1 | fig1 | fig6..fig15 | core (fig6-10)
//!          | sweeps (fig11-13) | prefetch (fig14-15) | ablations
//!          | shootout (every non-Base mechanism incl. the registry
//!            contenders: speedup + normalized dynamic energy)
//! ```
//!
//! Every requested figure's cells are enumerated into ONE deduplicated job
//! graph and run on the work-stealing sweep engine, so a cell shared by
//! several figures (e.g. the Base runs of Figures 6–12) is simulated
//! exactly once. `--jobs N` (or `REDHIP_JOBS`) sets the worker count;
//! output is byte-identical regardless. `--cache` memoizes results on disk
//! under `DIR/cache/` so re-runs skip finished cells.
//!
//! Text renders to stdout and is mirrored to `DIR/figures.log`;
//! structured results land in `DIR/<name>.json` (default `results/`) —
//! no shell redirection into the repo root needed. `--intra-jobs N`
//! additionally parallelizes *inside* each cell (the deterministic
//! bound–weave engine; output is byte-identical), trading sweep-level for
//! intra-run workers under one `jobs x intra_jobs <= cores` budget.

use bench::figures::{self, FigureOutput, Settings};
use bench::harness::FigureScale;
use bench::{ablate, figdata};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::PathBuf;
use sweep::{default_jobs, ResultCache, SweepEngine, SweepPlan};

fn usage() -> ! {
    eprintln!(
        "usage: figures [all|core|sweeps|prefetch|ablations|shootout|table1|fig1|fig6..fig15]... \
         [--scale smoke|demo|paper] [--refs N] [--out DIR] [--jobs N] [--intra-jobs N] \
         [--cache] [--cache-dir DIR] [--metrics[=FILE]]"
    );
    std::process::exit(2);
}

struct Args {
    targets: BTreeSet<String>,
    scale: FigureScale,
    refs: Option<usize>,
    out: PathBuf,
    jobs: Option<usize>,
    intra_jobs: usize,
    cache_dir: Option<PathBuf>,
    /// Where to write the `redhip-metrics/v1` snapshot; `None` leaves the
    /// registry disabled.
    metrics: Option<PathBuf>,
}

impl Args {
    /// The run's text log: every rendered table, mirrored under the
    /// results directory (not the repo root).
    fn log_path(&self) -> PathBuf {
        self.out.join("figures.log")
    }
}

fn parse_args() -> Args {
    let mut targets = BTreeSet::new();
    let mut scale = FigureScale::Demo;
    let mut refs = None;
    let mut out = PathBuf::from("results");
    let mut jobs = None;
    let mut intra_jobs = 1usize;
    let mut cache = false;
    let mut cache_dir = None;
    // None = disabled, Some(None) = default path (<out>/metrics.jsonl).
    let mut metrics: Option<Option<PathBuf>> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = FigureScale::parse(&v).unwrap_or_else(|| usage());
            }
            "--refs" => {
                let v = it.next().unwrap_or_else(|| usage());
                refs = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| usage()));
            }
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| usage());
                let n: usize = v.parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                jobs = Some(n);
            }
            "--intra-jobs" => {
                let v = it.next().unwrap_or_else(|| usage());
                intra_jobs = v.parse().unwrap_or_else(|_| usage());
                if intra_jobs == 0 {
                    usage();
                }
            }
            "--cache" => cache = true,
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--metrics" => metrics = Some(None),
            t if t.starts_with("--metrics=") => {
                let p = &t["--metrics=".len()..];
                if p.is_empty() {
                    usage();
                }
                metrics = Some(Some(PathBuf::from(p)));
            }
            "--help" | "-h" => usage(),
            t if t.starts_with('-') => usage(),
            t => {
                targets.insert(t.to_string());
            }
        }
    }
    if targets.is_empty() {
        targets.insert("all".to_string());
    }
    // `--cache` without a directory uses `<out>/cache`; the env var is the
    // no-flag way to point several runs at one shared cache.
    if cache_dir.is_none() {
        if let Ok(dir) = std::env::var("REDHIP_SWEEP_CACHE") {
            if !dir.trim().is_empty() {
                cache_dir = Some(PathBuf::from(dir));
            }
        }
    }
    if cache && cache_dir.is_none() {
        cache_dir = Some(out.join("cache"));
    }
    let metrics = metrics.map(|p| p.unwrap_or_else(|| out.join("metrics.jsonl")));
    Args {
        targets,
        scale,
        refs,
        out,
        jobs,
        intra_jobs,
        cache_dir,
        metrics,
    }
}

fn wants(args: &Args, name: &str, group: &str) -> bool {
    args.targets.contains("all") || args.targets.contains(name) || args.targets.contains(group)
}

fn emit(args: &Args, manifest: &metrics::RunManifest, f: &FigureOutput) {
    println!("{}", f.text);
    std::fs::create_dir_all(&args.out).expect("create results dir");
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(args.log_path())
        .expect("open figures.log");
    writeln!(log, "{}", f.text).expect("append figures.log");
    let path = args.out.join(format!("{}.json", f.name));
    // Object-shaped figures carry the run manifest (deterministic identity
    // fields only: results directories are byte-compared across --jobs);
    // array-shaped ones (fig1's static data) are written as-is.
    let doc = match &f.json {
        minijson::Json::Obj(_) => {
            let mut d = f.json.clone();
            d.set("manifest", manifest.to_json());
            d
        }
        other => other.clone(),
    };
    let mut file = std::fs::File::create(&path).expect("create json");
    file.write_all(doc.pretty().as_bytes()).expect("write json");
    eprintln!("[figures] wrote {}", path.display());
}

/// The figure-set run manifest: one deterministic identity record for the
/// whole invocation (per-cell manifests live in the result cache entries).
fn run_manifest(args: &Args, settings: &Settings, plan: &SweepPlan) -> metrics::RunManifest {
    let targets: Vec<&str> = args.targets.iter().map(String::as_str).collect();
    let workload = format!("figures:{}", targets.join("+"));
    // Fold the planned cells' content hashes in plan order, so the hash
    // pins exactly what this invocation simulates.
    let config_hash = plan
        .cells()
        .iter()
        .fold(sweep::cell::fnv1a64(workload.as_bytes()), |h, c| {
            h.rotate_left(7) ^ c.content_hash()
        });
    metrics::RunManifest {
        mechanism: "sweep".to_string(),
        predictor_spec: "sweep".to_string(),
        workload,
        seed: format!("synth(core,{:?}):refs={}", args.scale, settings.refs),
        config_hash,
        sequential_fallback: args.intra_jobs > 1
            && plan
                .cells()
                .iter()
                .any(|c| !sim::parallel_supported(&c.cfg)),
    }
}

fn main() {
    let args = parse_args();
    let settings = Settings::new(args.scale, args.refs);
    let jobs = args.jobs.unwrap_or_else(default_jobs);
    // Fresh log per run; `emit` appends each figure as it lands.
    std::fs::create_dir_all(&args.out).expect("create results dir");
    std::fs::write(args.log_path(), "").expect("truncate figures.log");
    eprintln!(
        "[figures] scale={:?} refs/core={} workloads={} jobs={} intra_jobs={} targets={:?}",
        args.scale,
        settings.refs,
        settings.workloads.len(),
        jobs,
        args.intra_jobs,
        args.targets
    );
    let t0 = std::time::Instant::now();
    if args.metrics.is_some() {
        metrics::enable();
    }

    // Phase 1: enumerate every requested figure's cells into one plan.
    // Cells shared across figures dedupe here and are simulated once.
    let plan_span = metrics::PHASE_PLAN.start();
    let mut plan = SweepPlan::new();
    let need_matrix = ["fig6", "fig7", "fig8", "fig9", "fig10"]
        .iter()
        .any(|n| wants(&args, n, "core"));
    let matrix_plan = need_matrix.then(|| figures::plan_matrix(&settings, &mut plan));
    let shootout_plan =
        wants(&args, "shootout", "shootout").then(|| figures::plan_shootout(&settings, &mut plan));
    let p11 = wants(&args, "fig11", "sweeps").then(|| figures::plan_fig11(&settings, &mut plan));
    let p12 = wants(&args, "fig12", "sweeps").then(|| figures::plan_fig12(&settings, &mut plan));
    let p13 = wants(&args, "fig13", "sweeps").then(|| figures::plan_fig13(&settings, &mut plan));
    let p1415 = (wants(&args, "fig14", "prefetch") || wants(&args, "fig15", "prefetch"))
        .then(|| figures::plan_fig14_15(&settings, &mut plan));
    let want_ablations = args.targets.contains("ablations") || args.targets.contains("all");
    let ablation_settings = {
        let mut s = settings.clone();
        s.workloads = ablate::ablation_workloads();
        s
    };
    let ablation_plan = want_ablations.then(|| ablate::plan_all(&ablation_settings, &mut plan));
    drop(plan_span);
    let manifest = run_manifest(&args, &settings, &plan);

    if wants(&args, "table1", "core") {
        emit(&args, &manifest, &figures::table1(args.scale));
    }
    if wants(&args, "fig1", "core") {
        emit(
            &args,
            &manifest,
            &FigureOutput {
                name: "fig1",
                title: "Cache sizes by year".into(),
                text: figdata::render_figure1(),
                json: minijson::Json::Arr(
                    figdata::FIGURE1
                        .iter()
                        .map(|p| minijson::json!({"year": p.year, "level": p.level, "kb": p.kb}))
                        .collect(),
                ),
            },
        );
    }

    // Phase 2: one engine, one run over the whole deduplicated job graph.
    let mut engine = SweepEngine::new(jobs).with_intra_jobs(args.intra_jobs);
    if let Some(dir) = &args.cache_dir {
        eprintln!("[figures] result cache: {}", dir.display());
        engine = engine.with_cache(ResultCache::with_disk(dir.clone()));
    }
    eprintln!(
        "[figures] planned {} unique cells ({} deduped away)",
        plan.len(),
        plan.dedup_hits()
    );
    let res = match engine.run(&plan, "[figures] sweep") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[figures] {e}");
            std::process::exit(1);
        }
    };

    // Phase 3: render and emit in report order.
    let render_span = metrics::PHASE_RENDER.start();
    if let Some(mp) = &matrix_plan {
        let m = figures::matrix_from(&settings, mp, &res);
        if wants(&args, "fig6", "core") {
            emit(&args, &manifest, &figures::fig6(&m));
        }
        if wants(&args, "fig7", "core") {
            emit(&args, &manifest, &figures::fig7(&m));
        }
        if wants(&args, "fig8", "core") {
            emit(&args, &manifest, &figures::fig8(&m));
        }
        if wants(&args, "fig9", "core") {
            emit(&args, &manifest, &figures::fig9(&m));
        }
        if wants(&args, "fig10", "core") {
            emit(&args, &manifest, &figures::fig10(&m));
        }
    }
    if let Some(sp) = &shootout_plan {
        let m = figures::matrix_from(&settings, sp, &res);
        emit(&args, &manifest, &figures::shootout(&m));
    }
    if let Some(p) = &p11 {
        emit(&args, &manifest, &figures::fig11_from(&settings, p, &res));
    }
    if let Some(p) = &p12 {
        emit(&args, &manifest, &figures::fig12_from(&settings, p, &res));
    }
    if let Some(p) = &p13 {
        emit(&args, &manifest, &figures::fig13_from(&settings, p, &res));
    }
    if let Some(p) = &p1415 {
        let (f14, f15) = figures::fig14_15_from(&settings, p, &res);
        if wants(&args, "fig14", "prefetch") {
            emit(&args, &manifest, &f14);
        }
        if wants(&args, "fig15", "prefetch") {
            emit(&args, &manifest, &f15);
        }
    }
    if let Some(p) = &ablation_plan {
        for f in ablate::all_from(&ablation_settings, p, &res) {
            emit(&args, &manifest, &f);
        }
    }
    drop(render_span);
    eprintln!("[figures] {}", res.stats.summary());
    eprintln!("[figures] done in {:?}", t0.elapsed());

    if let Some(path) = &args.metrics {
        let mut out = metrics::snapshot_jsonl();
        out.push_str(&manifest.to_json_with_phases().dump());
        out.push('\n');
        std::fs::write(path, out).expect("write metrics");
        eprintln!(
            "[figures] wrote {} (metrics snapshot + run manifest)",
            path.display()
        );
    }
}
