//! Ablation studies for the design decisions DESIGN.md calls out.
//!
//! These go beyond the paper's own sweeps: each isolates one design choice
//! of ReDHiP (or of our energy accounting) and quantifies it on a
//! representative workload subset.

use crate::figures::{FigureOutput, Settings};
use crate::harness::{mechanism_config, run_parallel_hb, run_workload};
use crate::table::TextTable;
use minijson::json;
use sim::metrics::mean;
use sim::{Comparison, Mechanism, SimConfig};
use workloads::Benchmark;

/// Representative subset: irregular (mcf), streaming (lbm), skewed
/// (astar), and graph (blas).
pub fn ablation_workloads() -> Vec<Benchmark> {
    vec![
        Benchmark::Mcf,
        Benchmark::Lbm,
        Benchmark::Astar,
        Benchmark::Blas,
    ]
}

fn cfg_for(s: &Settings, mechanism: Mechanism) -> SimConfig {
    mechanism_config(s.scale, mechanism, s.refs)
}

/// Runs base + N variants per workload and tabulates `metric` per variant.
fn variant_study(
    s: &Settings,
    workloads: &[Benchmark],
    variant_names: &[String],
    make_cfg: impl Fn(usize) -> SimConfig + Sync,
    metric: impl Fn(&Comparison) -> f64,
    fmt: impl Fn(f64) -> String,
) -> (TextTable, Vec<Vec<f64>>) {
    let mut jobs: Vec<(Option<usize>, Benchmark)> = Vec::new();
    for &w in workloads {
        jobs.push((None, w));
        for vi in 0..variant_names.len() {
            jobs.push((Some(vi), w));
        }
    }
    let outs = run_parallel_hb("[figures] ablation-energy", jobs, |&(variant, w)| {
        let cfg = match variant {
            None => cfg_for(s, Mechanism::Base),
            Some(vi) => make_cfg(vi),
        };
        run_workload(&cfg, w, s.scale)
    });
    let stride = variant_names.len() + 1;
    let mut header = vec!["workload".to_string()];
    header.extend(variant_names.iter().cloned());
    let hdr: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = TextTable::new(&hdr);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); variant_names.len()];
    for (wi, &w) in workloads.iter().enumerate() {
        let base = &outs[wi * stride];
        let mut row = vec![w.name().to_string()];
        for (vi, col) in series.iter_mut().enumerate() {
            let c = Comparison::new(base, &outs[wi * stride + 1 + vi]);
            let v = metric(&c);
            col.push(v);
            row.push(fmt(v));
        }
        t.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for col in &series {
        avg.push(fmt(mean(col)));
    }
    t.row(avg);
    (t, series)
}

/// A1 — CBF counter width under the fixed 512 KB-equivalent budget:
/// narrower counters buy more entries but overflow (disable) more often.
pub fn cbf_counter_width(s: &Settings) -> FigureOutput {
    let widths = [2u32, 3, 4, 6];
    let names: Vec<String> = widths.iter().map(|w| format!("{w}-bit")).collect();
    let (t, series) = variant_study(
        s,
        &ablation_workloads(),
        &names,
        |vi| {
            let mut cfg = cfg_for(s, Mechanism::Cbf);
            cfg.cbf.counter_bits = widths[vi];
            cfg
        },
        |c| c.dynamic_ratio(),
        TextTable::ratio,
    );
    FigureOutput {
        name: "ablate_cbf_width",
        title: "CBF counter width at fixed budget".into(),
        json: json!({
            "counter_bits": widths,
            "dynamic_ratio": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: CBF counter width under a fixed area budget (normalized dynamic energy)\n{}\nnarrow counters trade entry count against sticky overflow; the referenced prior work found 3 bits sufficient for a 256 KB cache\n",
            t.render()
        ),
    }
}

/// A2 — recalibration banking degree: banks only change the stall cycles
/// (energy is constant), so this measures the latency side of the paper's
/// "medium effort" choice.
pub fn recalib_banking(s: &Settings) -> FigureOutput {
    let banks = [1u64, 2, 4, 8];
    let names: Vec<String> = banks.iter().map(|b| format!("{b} bank")).collect();
    let (t, series) = variant_study(
        s,
        &ablation_workloads(),
        &names,
        |vi| {
            let mut cfg = cfg_for(s, Mechanism::Redhip);
            cfg.recalib_banks = banks[vi];
            cfg
        },
        |c| c.speedup(),
        TextTable::pct,
    );
    FigureOutput {
        name: "ablate_recalib_banking",
        title: "Recalibration banking degree".into(),
        json: json!({
            "banks": banks,
            "speedup": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: recalibration banking degree (speedup over Base; banking shortens the stall, energy is unchanged)\n{}\nthe paper's medium-effort design uses 4 banks\n",
            t.render()
        ),
    }
}

/// A3 — entry width: the shipped 1-bit table + periodic recalibration vs
/// the always-exact counting design (what "recalibrate every miss" would
/// deliver, at 32× the storage). The gap is the accuracy still lost to
/// staleness at the default period.
pub fn entry_width(s: &Settings) -> FigureOutput {
    let names = vec!["1-bit+recalib".to_string(), "exact counters".to_string()];
    let (t, series) = variant_study(
        s,
        &ablation_workloads(),
        &names,
        |vi| {
            let mut cfg = cfg_for(s, Mechanism::Redhip);
            cfg.count_prediction_overhead = false;
            if vi == 1 {
                cfg.recalib_period = Some(1); // exact-counting path
            }
            cfg
        },
        |c| c.dynamic_ratio(),
        TextTable::ratio,
    );
    FigureOutput {
        name: "ablate_entry_width",
        title: "1-bit entries vs exact counters".into(),
        json: json!({
            "variants": names,
            "dynamic_ratio": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: 1-bit recalibrated table vs continuously-exact counters (normalized dynamic energy, overhead ignored)\n{}\nthe residual gap is recalibration-period staleness — the price of 1-bit entries, which buy an 8x smaller table per entry than even 3-bit counters\n",
            t.render()
        ),
    }
}

/// A4 — energy-accounting sensitivity: does charging fills/writebacks/
/// back-invalidation probes change ReDHiP's *relative* savings?
pub fn accounting(s: &Settings) -> FigureOutput {
    let names = vec![
        "lookups only".to_string(),
        "+fills".to_string(),
        "+writebacks".to_string(),
        "+probes".to_string(),
    ];
    let make_acc = |vi: usize| sim::AccountingOptions {
        charge_fills: vi >= 1,
        charge_writebacks: vi >= 2,
        charge_invalidation_probes: vi >= 3,
    };
    // Variant study with a twist: the BASE must use the same accounting as
    // the variant, otherwise ratios mix accounting schemes.
    let workloads = ablation_workloads();
    let mut jobs: Vec<(usize, bool, Benchmark)> = Vec::new();
    for &w in &workloads {
        for vi in 0..names.len() {
            jobs.push((vi, false, w));
            jobs.push((vi, true, w));
        }
    }
    let outs = run_parallel_hb("[figures] ablation-accounting", jobs, |&(vi, redhip, w)| {
        let mut cfg = cfg_for(
            s,
            if redhip {
                Mechanism::Redhip
            } else {
                Mechanism::Base
            },
        );
        cfg.accounting = make_acc(vi);
        run_workload(&cfg, w, s.scale)
    });
    let stride = names.len() * 2;
    let mut header = vec!["workload".to_string()];
    header.extend(names.iter().cloned());
    let hdr: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = TextTable::new(&hdr);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for (wi, &w) in workloads.iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        for (vi, col) in series.iter_mut().enumerate() {
            let base = &outs[wi * stride + vi * 2];
            let red = &outs[wi * stride + vi * 2 + 1];
            let c = Comparison::new(base, red);
            col.push(c.dynamic_saving());
            row.push(TextTable::pct(c.dynamic_saving()));
        }
        t.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for col in &series {
        avg.push(TextTable::pct(mean(col)));
    }
    t.row(avg);
    FigureOutput {
        name: "ablate_accounting",
        title: "Energy-accounting sensitivity".into(),
        json: json!({
            "variants": names,
            "dynamic_saving": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: ReDHiP's dynamic-energy saving under progressively more inclusive accounting (each column compares against Base under the same accounting)\n{}\nfills/writebacks are identical across mechanisms, so charging them dilutes but never reverses the saving\n",
            t.render()
        ),
    }
}

/// A5 — replacement policy: is the benefit robust to the LLC replacement
/// policy (LRU vs tree-PLRU vs SRRIP vs random)?
pub fn replacement(s: &Settings) -> FigureOutput {
    use cache_sim::ReplacementPolicy;
    let policies = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Srrip,
        ReplacementPolicy::Random,
    ];
    let names: Vec<String> = ["LRU", "TreePLRU", "SRRIP", "Random"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let workloads = ablation_workloads();
    let mut jobs: Vec<(usize, bool, Benchmark)> = Vec::new();
    for &w in &workloads {
        for vi in 0..policies.len() {
            jobs.push((vi, false, w));
            jobs.push((vi, true, w));
        }
    }
    let outs = run_parallel_hb(
        "[figures] ablation-sensitivity",
        jobs,
        |&(vi, redhip, w)| {
            let mut cfg = cfg_for(
                s,
                if redhip {
                    Mechanism::Redhip
                } else {
                    Mechanism::Base
                },
            );
            cfg.replacement = policies[vi];
            run_workload(&cfg, w, s.scale)
        },
    );
    let stride = policies.len() * 2;
    let mut header = vec!["workload".to_string()];
    header.extend(names.iter().cloned());
    let hdr: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = TextTable::new(&hdr);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (wi, &w) in workloads.iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        for (vi, col) in series.iter_mut().enumerate() {
            let base = &outs[wi * stride + vi * 2];
            let red = &outs[wi * stride + vi * 2 + 1];
            let c = Comparison::new(base, red);
            col.push(c.dynamic_saving());
            row.push(TextTable::pct(c.dynamic_saving()));
        }
        t.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for col in &series {
        avg.push(TextTable::pct(mean(col)));
    }
    t.row(avg);
    FigureOutput {
        name: "ablate_replacement",
        title: "Replacement-policy robustness".into(),
        json: json!({
            "policies": names,
            "dynamic_saving": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: ReDHiP's dynamic-energy saving under different replacement policies (each vs Base with the same policy)\n{}\nthe mechanism predicts residency, not replacement, so the benefit should be policy-robust\n",
            t.render()
        ),
    }
}

/// Runs all ablations.
pub fn all(s: &Settings) -> Vec<FigureOutput> {
    vec![
        cbf_counter_width(s),
        recalib_banking(s),
        entry_width(s),
        accounting(s),
        replacement(s),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::FigureScale;

    fn smoke() -> Settings {
        let mut s = Settings::new(FigureScale::Smoke, Some(3_000));
        s.workloads = ablation_workloads();
        s
    }

    #[test]
    fn entry_width_runs() {
        let f = entry_width(&smoke());
        assert!(f.text.contains("exact counters"));
    }

    #[test]
    fn accounting_runs() {
        let f = accounting(&smoke());
        assert!(f.text.contains("+probes"));
    }
}
