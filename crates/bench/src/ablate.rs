//! Ablation studies for the design decisions DESIGN.md calls out.
//!
//! These go beyond the paper's own sweeps: each isolates one design choice
//! of ReDHiP (or of our energy accounting) and quantifies it on a
//! representative workload subset.
//!
//! Like `figures`, every study is split into a `plan_*` half that
//! enumerates cells into a shared [`SweepPlan`] and a `*_from` half that
//! renders from the sweep's results; the base cells dedupe against the
//! Figure 6–10 matrix when both are planned into one job graph.

use crate::figures::{FigureOutput, Settings};
use crate::harness::{mechanism_config, run_plan};
use crate::table::TextTable;
use minijson::json;
use sim::metrics::mean;
use sim::{Comparison, Mechanism, RunResult, SimConfig};
use sweep::{CellId, SweepPlan, SweepResults};
use workloads::Benchmark;

/// Representative subset: irregular (mcf), streaming (lbm), skewed
/// (astar), and graph (blas).
pub fn ablation_workloads() -> Vec<Benchmark> {
    vec![
        Benchmark::Mcf,
        Benchmark::Lbm,
        Benchmark::Astar,
        Benchmark::Blas,
    ]
}

fn cfg_for(s: &Settings, mechanism: Mechanism) -> SimConfig {
    mechanism_config(s.scale, mechanism, s.refs)
}

/// Plans base + `variants` configs per workload, stride-ordered
/// (base first, then each variant).
fn plan_variants(
    s: &Settings,
    workloads: &[Benchmark],
    variants: usize,
    make_cfg: impl Fn(usize) -> SimConfig,
    plan: &mut SweepPlan,
) -> Vec<CellId> {
    let scale = s.scale.workload_scale();
    let mut ids = Vec::new();
    for &w in workloads {
        ids.push(plan.cell(&cfg_for(s, Mechanism::Base), w, scale));
        for vi in 0..variants {
            ids.push(plan.cell(&make_cfg(vi), w, scale));
        }
    }
    ids
}

/// Tabulates `metric` per variant from the planned base + variant cells.
fn variants_from(
    workloads: &[Benchmark],
    variant_names: &[String],
    ids: &[CellId],
    res: &SweepResults,
    metric: impl Fn(&Comparison) -> f64,
    fmt: impl Fn(f64) -> String,
) -> (TextTable, Vec<Vec<f64>>) {
    let outs: Vec<RunResult> = ids.iter().map(|&id| res.get(id).clone()).collect();
    let stride = variant_names.len() + 1;
    let mut header = vec!["workload".to_string()];
    header.extend(variant_names.iter().cloned());
    let hdr: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = TextTable::new(&hdr);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); variant_names.len()];
    for (wi, &w) in workloads.iter().enumerate() {
        let base = &outs[wi * stride];
        let mut row = vec![w.name().to_string()];
        for (vi, col) in series.iter_mut().enumerate() {
            let c = Comparison::new(base, &outs[wi * stride + 1 + vi]);
            let v = metric(&c);
            col.push(v);
            row.push(fmt(v));
        }
        t.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for col in &series {
        avg.push(fmt(mean(col)));
    }
    t.row(avg);
    (t, series)
}

/// Plans paired (Base, ReDHiP) cells per variant per workload — for
/// studies where the base must share the variant's knob (accounting,
/// replacement) so the ratio never mixes schemes.
fn plan_paired(
    s: &Settings,
    workloads: &[Benchmark],
    variants: usize,
    make_cfg: impl Fn(usize, Mechanism) -> SimConfig,
    plan: &mut SweepPlan,
) -> Vec<CellId> {
    let scale = s.scale.workload_scale();
    let mut ids = Vec::new();
    for &w in workloads {
        for vi in 0..variants {
            for mech in [Mechanism::Base, Mechanism::Redhip] {
                ids.push(plan.cell(&make_cfg(vi, mech), w, scale));
            }
        }
    }
    ids
}

/// Tabulates ReDHiP's dynamic saving per variant from paired cells.
fn paired_from(
    workloads: &[Benchmark],
    variant_names: &[String],
    ids: &[CellId],
    res: &SweepResults,
) -> (TextTable, Vec<Vec<f64>>) {
    let outs: Vec<RunResult> = ids.iter().map(|&id| res.get(id).clone()).collect();
    let stride = variant_names.len() * 2;
    let mut header = vec!["workload".to_string()];
    header.extend(variant_names.iter().cloned());
    let hdr: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = TextTable::new(&hdr);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); variant_names.len()];
    for (wi, &w) in workloads.iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        for (vi, col) in series.iter_mut().enumerate() {
            let base = &outs[wi * stride + vi * 2];
            let red = &outs[wi * stride + vi * 2 + 1];
            let c = Comparison::new(base, red);
            col.push(c.dynamic_saving());
            row.push(TextTable::pct(c.dynamic_saving()));
        }
        t.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for col in &series {
        avg.push(TextTable::pct(mean(col)));
    }
    t.row(avg);
    (t, series)
}

/// A1 — CBF counter width under the fixed 512 KB-equivalent budget:
/// narrower counters buy more entries but overflow (disable) more often.
pub fn cbf_counter_width(s: &Settings) -> FigureOutput {
    let mut plan = SweepPlan::new();
    let ids = plan_cbf_counter_width(s, &mut plan);
    let res = run_plan(&plan, "[figures] ablation-cbf-width");
    cbf_counter_width_from(s, &ids, &res)
}

const CBF_WIDTHS: [u32; 4] = [2, 3, 4, 6];

/// Enumerates the CBF counter-width study into `plan`.
pub fn plan_cbf_counter_width(s: &Settings, plan: &mut SweepPlan) -> Vec<CellId> {
    plan_variants(
        s,
        &ablation_workloads(),
        CBF_WIDTHS.len(),
        |vi| {
            let mut cfg = cfg_for(s, Mechanism::Cbf);
            cfg.cbf.counter_bits = CBF_WIDTHS[vi];
            cfg
        },
        plan,
    )
}

/// Renders the CBF counter-width study from a finished sweep.
pub fn cbf_counter_width_from(s: &Settings, ids: &[CellId], res: &SweepResults) -> FigureOutput {
    let _ = s;
    let names: Vec<String> = CBF_WIDTHS.iter().map(|w| format!("{w}-bit")).collect();
    let (t, series) = variants_from(
        &ablation_workloads(),
        &names,
        ids,
        res,
        |c| c.dynamic_ratio(),
        TextTable::ratio,
    );
    FigureOutput {
        name: "ablate_cbf_width",
        title: "CBF counter width at fixed budget".into(),
        json: json!({
            "counter_bits": CBF_WIDTHS,
            "dynamic_ratio": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: CBF counter width under a fixed area budget (normalized dynamic energy)\n{}\nnarrow counters trade entry count against sticky overflow; the referenced prior work found 3 bits sufficient for a 256 KB cache\n",
            t.render()
        ),
    }
}

/// A2 — recalibration banking degree: banks only change the stall cycles
/// (energy is constant), so this measures the latency side of the paper's
/// "medium effort" choice.
pub fn recalib_banking(s: &Settings) -> FigureOutput {
    let mut plan = SweepPlan::new();
    let ids = plan_recalib_banking(s, &mut plan);
    let res = run_plan(&plan, "[figures] ablation-banking");
    recalib_banking_from(s, &ids, &res)
}

const RECALIB_BANKS: [u64; 4] = [1, 2, 4, 8];

/// Enumerates the recalibration-banking study into `plan`.
pub fn plan_recalib_banking(s: &Settings, plan: &mut SweepPlan) -> Vec<CellId> {
    plan_variants(
        s,
        &ablation_workloads(),
        RECALIB_BANKS.len(),
        |vi| {
            let mut cfg = cfg_for(s, Mechanism::Redhip);
            cfg.recalib_banks = RECALIB_BANKS[vi];
            cfg
        },
        plan,
    )
}

/// Renders the recalibration-banking study from a finished sweep.
pub fn recalib_banking_from(s: &Settings, ids: &[CellId], res: &SweepResults) -> FigureOutput {
    let _ = s;
    let names: Vec<String> = RECALIB_BANKS.iter().map(|b| format!("{b} bank")).collect();
    let (t, series) = variants_from(
        &ablation_workloads(),
        &names,
        ids,
        res,
        |c| c.speedup(),
        TextTable::pct,
    );
    FigureOutput {
        name: "ablate_recalib_banking",
        title: "Recalibration banking degree".into(),
        json: json!({
            "banks": RECALIB_BANKS,
            "speedup": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: recalibration banking degree (speedup over Base; banking shortens the stall, energy is unchanged)\n{}\nthe paper's medium-effort design uses 4 banks\n",
            t.render()
        ),
    }
}

/// A3 — entry width: the shipped 1-bit table + periodic recalibration vs
/// the always-exact counting design (what "recalibrate every miss" would
/// deliver, at 32× the storage). The gap is the accuracy still lost to
/// staleness at the default period.
pub fn entry_width(s: &Settings) -> FigureOutput {
    let mut plan = SweepPlan::new();
    let ids = plan_entry_width(s, &mut plan);
    let res = run_plan(&plan, "[figures] ablation-entry-width");
    entry_width_from(s, &ids, &res)
}

/// Enumerates the entry-width study into `plan`.
pub fn plan_entry_width(s: &Settings, plan: &mut SweepPlan) -> Vec<CellId> {
    plan_variants(
        s,
        &ablation_workloads(),
        2,
        |vi| {
            let mut cfg = cfg_for(s, Mechanism::Redhip);
            cfg.count_prediction_overhead = false;
            if vi == 1 {
                cfg.recalib_period = Some(1); // exact-counting path
            }
            cfg
        },
        plan,
    )
}

/// Renders the entry-width study from a finished sweep.
pub fn entry_width_from(s: &Settings, ids: &[CellId], res: &SweepResults) -> FigureOutput {
    let _ = s;
    let names = vec!["1-bit+recalib".to_string(), "exact counters".to_string()];
    let (t, series) = variants_from(
        &ablation_workloads(),
        &names,
        ids,
        res,
        |c| c.dynamic_ratio(),
        TextTable::ratio,
    );
    FigureOutput {
        name: "ablate_entry_width",
        title: "1-bit entries vs exact counters".into(),
        json: json!({
            "variants": names,
            "dynamic_ratio": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: 1-bit recalibrated table vs continuously-exact counters (normalized dynamic energy, overhead ignored)\n{}\nthe residual gap is recalibration-period staleness — the price of 1-bit entries, which buy an 8x smaller table per entry than even 3-bit counters\n",
            t.render()
        ),
    }
}

fn accounting_names() -> Vec<String> {
    vec![
        "lookups only".to_string(),
        "+fills".to_string(),
        "+writebacks".to_string(),
        "+probes".to_string(),
    ]
}

/// A4 — energy-accounting sensitivity: does charging fills/writebacks/
/// back-invalidation probes change ReDHiP's *relative* savings?
pub fn accounting(s: &Settings) -> FigureOutput {
    let mut plan = SweepPlan::new();
    let ids = plan_accounting(s, &mut plan);
    let res = run_plan(&plan, "[figures] ablation-accounting");
    accounting_from(s, &ids, &res)
}

/// Enumerates the accounting-sensitivity study into `plan`. The BASE uses
/// the same accounting as the variant, otherwise ratios mix schemes.
pub fn plan_accounting(s: &Settings, plan: &mut SweepPlan) -> Vec<CellId> {
    plan_paired(
        s,
        &ablation_workloads(),
        accounting_names().len(),
        |vi, mech| {
            let mut cfg = cfg_for(s, mech);
            cfg.accounting = sim::AccountingOptions {
                charge_fills: vi >= 1,
                charge_writebacks: vi >= 2,
                charge_invalidation_probes: vi >= 3,
            };
            cfg
        },
        plan,
    )
}

/// Renders the accounting-sensitivity study from a finished sweep.
pub fn accounting_from(s: &Settings, ids: &[CellId], res: &SweepResults) -> FigureOutput {
    let _ = s;
    let names = accounting_names();
    let (t, series) = paired_from(&ablation_workloads(), &names, ids, res);
    FigureOutput {
        name: "ablate_accounting",
        title: "Energy-accounting sensitivity".into(),
        json: json!({
            "variants": names,
            "dynamic_saving": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: ReDHiP's dynamic-energy saving under progressively more inclusive accounting (each column compares against Base under the same accounting)\n{}\nfills/writebacks are identical across mechanisms, so charging them dilutes but never reverses the saving\n",
            t.render()
        ),
    }
}

fn replacement_policies() -> [cache_sim::ReplacementPolicy; 4] {
    use cache_sim::ReplacementPolicy;
    [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Srrip,
        ReplacementPolicy::Random,
    ]
}

fn replacement_names() -> Vec<String> {
    ["LRU", "TreePLRU", "SRRIP", "Random"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// A5 — replacement policy: is the benefit robust to the LLC replacement
/// policy (LRU vs tree-PLRU vs SRRIP vs random)?
pub fn replacement(s: &Settings) -> FigureOutput {
    let mut plan = SweepPlan::new();
    let ids = plan_replacement(s, &mut plan);
    let res = run_plan(&plan, "[figures] ablation-replacement");
    replacement_from(s, &ids, &res)
}

/// Enumerates the replacement-policy study into `plan`.
pub fn plan_replacement(s: &Settings, plan: &mut SweepPlan) -> Vec<CellId> {
    let policies = replacement_policies();
    plan_paired(
        s,
        &ablation_workloads(),
        policies.len(),
        |vi, mech| {
            let mut cfg = cfg_for(s, mech);
            cfg.replacement = policies[vi];
            cfg
        },
        plan,
    )
}

/// Renders the replacement-policy study from a finished sweep.
pub fn replacement_from(s: &Settings, ids: &[CellId], res: &SweepResults) -> FigureOutput {
    let _ = s;
    let names = replacement_names();
    let (t, series) = paired_from(&ablation_workloads(), &names, ids, res);
    FigureOutput {
        name: "ablate_replacement",
        title: "Replacement-policy robustness".into(),
        json: json!({
            "policies": names,
            "dynamic_saving": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
        }),
        text: format!(
            "Ablation: ReDHiP's dynamic-energy saving under different replacement policies (each vs Base with the same policy)\n{}\nthe mechanism predicts residency, not replacement, so the benefit should be policy-robust\n",
            t.render()
        ),
    }
}

/// Planned cell ids for all five ablations.
pub struct AblationPlan {
    cbf: Vec<CellId>,
    banking: Vec<CellId>,
    entry: Vec<CellId>,
    accounting: Vec<CellId>,
    replacement: Vec<CellId>,
}

/// Enumerates every ablation into `plan`.
pub fn plan_all(s: &Settings, plan: &mut SweepPlan) -> AblationPlan {
    AblationPlan {
        cbf: plan_cbf_counter_width(s, plan),
        banking: plan_recalib_banking(s, plan),
        entry: plan_entry_width(s, plan),
        accounting: plan_accounting(s, plan),
        replacement: plan_replacement(s, plan),
    }
}

/// Renders every ablation from a finished sweep, in report order.
pub fn all_from(s: &Settings, p: &AblationPlan, res: &SweepResults) -> Vec<FigureOutput> {
    vec![
        cbf_counter_width_from(s, &p.cbf, res),
        recalib_banking_from(s, &p.banking, res),
        entry_width_from(s, &p.entry, res),
        accounting_from(s, &p.accounting, res),
        replacement_from(s, &p.replacement, res),
    ]
}

/// Runs all ablations.
pub fn all(s: &Settings) -> Vec<FigureOutput> {
    let mut plan = SweepPlan::new();
    let p = plan_all(s, &mut plan);
    let res = run_plan(&plan, "[figures] ablations");
    all_from(s, &p, &res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::FigureScale;

    fn smoke() -> Settings {
        let mut s = Settings::new(FigureScale::Smoke, Some(3_000));
        s.workloads = ablation_workloads();
        s
    }

    #[test]
    fn entry_width_runs() {
        let f = entry_width(&smoke());
        assert!(f.text.contains("exact counters"));
    }

    #[test]
    fn accounting_runs() {
        let f = accounting(&smoke());
        assert!(f.text.contains("+probes"));
    }

    #[test]
    fn planned_ablations_dedupe_their_base_cells() {
        let s = smoke();
        let mut plan = SweepPlan::new();
        let _ = plan_all(&s, &mut plan);
        // cbf and banking each request 4 base cells; they collide with
        // each other (and entry-width's overhead-free cells do not).
        assert!(plan.dedup_hits() >= 4, "dedup_hits={}", plan.dedup_hits());
    }
}
