//! One function per table/figure of the paper's evaluation section.
//!
//! Every function returns a [`FigureOutput`]: a rendered text table (what
//! the `figures` binary prints), a JSON value (what it writes to the
//! results directory), and the paper's reference numbers for the same
//! artifact so EXPERIMENTS.md can record paper-vs-measured side by side.
//!
//! Each figure is split into a `plan_*` half that enumerates its cells
//! into a shared [`SweepPlan`] (deduplicating against every other figure's
//! cells) and a `*_from` half that renders the figure from the sweep's
//! results. The plain figure functions (`fig11(&s)`, ...) wrap the two for
//! callers that want a single figure; the `figures` binary plans the whole
//! requested set into one job graph and runs it once.

use crate::harness::{mechanism_config, run_plan, FigureScale};
use crate::table::TextTable;
use cache_sim::InclusionPolicy;
use minijson::{json, Json, ToJson};
use prefetch::StrideConfig;
use sim::metrics::mean;
use sim::{Comparison, Mechanism, RunResult, SimConfig};
use sweep::{CellId, SweepPlan, SweepResults};
use workloads::Benchmark;

/// Mechanisms compared against Base, in the paper's legend order.
pub const COMPARED: [Mechanism; 4] = [
    Mechanism::Oracle,
    Mechanism::Cbf,
    Mechanism::Phased,
    Mechanism::Redhip,
];

/// Every non-Base mechanism, for the predictor shoot-out: the paper's
/// legend order followed by the registry contenders.
pub const SHOOTOUT: [Mechanism; 7] = [
    Mechanism::Oracle,
    Mechanism::Cbf,
    Mechanism::Phased,
    Mechanism::Redhip,
    Mechanism::LevelPred,
    Mechanism::Perceptron,
    Mechanism::WayMemo,
];

/// Common experiment settings.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Platform/workload scale.
    pub scale: FigureScale,
    /// References per core.
    pub refs: usize,
    /// Workload set (defaults to the paper's 11).
    pub workloads: Vec<Benchmark>,
}

impl Settings {
    /// Paper-default settings at `scale`.
    pub fn new(scale: FigureScale, refs: Option<usize>) -> Self {
        Self {
            scale,
            refs: refs.unwrap_or_else(|| scale.default_refs()),
            workloads: Benchmark::ALL.to_vec(),
        }
    }
}

/// A regenerated figure/table.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Short identifier (`fig6`, `table1`, ...).
    pub name: &'static str,
    /// Human title.
    pub title: String,
    /// Rendered text.
    pub text: String,
    /// Structured results.
    pub json: Json,
}

fn cfg_for(s: &Settings, mechanism: Mechanism) -> SimConfig {
    mechanism_config(s.scale, mechanism, s.refs)
}

fn ws(s: &Settings) -> workloads::Scale {
    s.scale.workload_scale()
}

/// A Base + N-mechanism result matrix (Figures 6–10 share the [`COMPARED`]
/// one; the predictor shoot-out runs a [`SHOOTOUT`] one).
pub struct Matrix {
    /// The settings it ran with.
    pub settings: Settings,
    /// Mechanisms compared against Base, in column order.
    pub mechanisms: Vec<Mechanism>,
    /// Base per workload.
    pub base: Vec<RunResult>,
    /// `results[mech][workload]`, mech order = [`Matrix::mechanisms`].
    pub results: Vec<Vec<RunResult>>,
}

/// Planned cell ids for a workload × mechanism matrix.
pub struct MatrixPlan {
    mechanisms: Vec<Mechanism>,
    base: Vec<CellId>,
    results: Vec<Vec<CellId>>,
}

/// Enumerates a workload × `mechanisms` matrix (plus Base) into `plan`.
pub fn plan_matrix_of(s: &Settings, plan: &mut SweepPlan, mechanisms: &[Mechanism]) -> MatrixPlan {
    let scale = ws(s);
    let base = s
        .workloads
        .iter()
        .map(|&w| plan.cell(&cfg_for(s, Mechanism::Base), w, scale))
        .collect();
    let results = mechanisms
        .iter()
        .map(|&m| {
            s.workloads
                .iter()
                .map(|&w| plan.cell(&cfg_for(s, m), w, scale))
                .collect()
        })
        .collect();
    MatrixPlan {
        mechanisms: mechanisms.to_vec(),
        base,
        results,
    }
}

/// Enumerates the Figure 6–10 matrix into `plan`.
pub fn plan_matrix(s: &Settings, plan: &mut SweepPlan) -> MatrixPlan {
    plan_matrix_of(s, plan, &COMPARED)
}

/// Enumerates the predictor shoot-out matrix (all 7 non-Base mechanisms)
/// into `plan`.
pub fn plan_shootout(s: &Settings, plan: &mut SweepPlan) -> MatrixPlan {
    plan_matrix_of(s, plan, &SHOOTOUT)
}

/// Assembles the [`Matrix`] from a finished sweep.
pub fn matrix_from(s: &Settings, p: &MatrixPlan, res: &SweepResults) -> Matrix {
    Matrix {
        settings: s.clone(),
        mechanisms: p.mechanisms.clone(),
        base: p.base.iter().map(|&id| res.get(id).clone()).collect(),
        results: p
            .results
            .iter()
            .map(|ids| ids.iter().map(|&id| res.get(id).clone()).collect())
            .collect(),
    }
}

/// Runs the full workload × mechanism matrix (Figures 6–10 share it).
pub fn run_matrix(s: &Settings) -> Matrix {
    let mut plan = SweepPlan::new();
    let p = plan_matrix(s, &mut plan);
    let res = run_plan(&plan, "[figures] matrix");
    matrix_from(s, &p, &res)
}

fn series_table(
    m: &Matrix,
    cell: impl Fn(&Comparison) -> f64,
    fmt: impl Fn(f64) -> String,
) -> (TextTable, Vec<Vec<f64>>) {
    let mut header = vec!["workload"];
    for mech in &m.mechanisms {
        header.push(mech.name());
    }
    let mut t = TextTable::new(&header);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); m.mechanisms.len()];
    for (wi, &w) in m.settings.workloads.iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        for (mi, _) in m.mechanisms.iter().enumerate() {
            let c = Comparison::new(&m.base[wi], &m.results[mi][wi]);
            let v = cell(&c);
            series[mi].push(v);
            row.push(fmt(v));
        }
        t.row(row);
    }
    let mut avg_row = vec!["average".to_string()];
    for s in &series {
        avg_row.push(fmt(mean(s)));
    }
    t.row(avg_row);
    (t, series)
}

fn matrix_json(m: &Matrix, series: &[Vec<f64>], metric: &str) -> Json {
    json!({
        "metric": metric,
        "workloads": m.settings.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
        "mechanisms": m.mechanisms.iter().map(|x| x.name()).collect::<Vec<_>>(),
        "values": series.to_vec(),
        "averages": series.iter().map(|s| mean(s)).collect::<Vec<_>>(),
    })
}

/// Table I: the architecture parameters in use.
pub fn table1(scale: FigureScale) -> FigureOutput {
    let p = scale.platform();
    let mut t = TextTable::new(&[
        "structure",
        "size",
        "assoc",
        "tag cyc",
        "data cyc",
        "tag nJ",
        "data nJ",
        "leak W",
    ]);
    for (i, l) in p.levels.iter().enumerate() {
        t.row(vec![
            format!(
                "L{}{}",
                i + 1,
                if i + 1 == p.levels.len() {
                    " (shared)"
                } else {
                    ""
                }
            ),
            format!("{}K", l.capacity_bytes >> 10),
            l.assoc.to_string(),
            l.tag_delay.to_string(),
            l.data_delay.to_string(),
            format!("{:.4}", l.tag_energy_nj),
            format!("{:.4}", l.data_energy_nj),
            format!("{:.4}", l.leakage_w),
        ]);
    }
    t.row(vec![
        "PT".into(),
        format!("{}K", p.predictor.size_bytes >> 10),
        "direct".into(),
        format!("{}+{}w", p.predictor.access_delay, p.predictor.wire_delay),
        "-".into(),
        format!("{:.4}", p.predictor.access_energy_nj),
        "-".into(),
        format!("{:.4}", p.predictor.leakage_w),
    ]);
    let text = format!(
        "Table I ({:?} scale): {} cores @ {} GHz; PT overhead = {:.2}% of LLC\n{}",
        scale,
        p.cores,
        p.freq_ghz,
        p.predictor_overhead_ratio() * 100.0,
        t.render()
    );
    FigureOutput {
        name: "table1",
        title: "Architecture parameters".into(),
        json: p.to_json(),
        text,
    }
}

/// Figure 6: performance speedup of Oracle/CBF/Phased/ReDHiP vs Base.
pub fn fig6(m: &Matrix) -> FigureOutput {
    let (t, series) = series_table(m, |c| c.speedup(), TextTable::pct);
    let text = format!(
        "Figure 6: speedup over Base (positive = faster)\n{}\npaper averages: Oracle +13%, CBF <+4%, Phased -3%, ReDHiP +8%\n",
        t.render()
    );
    FigureOutput {
        name: "fig6",
        title: "Speedup vs Base".into(),
        json: json!({
            "measured": matrix_json(m, &series, "speedup"),
            "paper_averages": json!({"Oracle": 0.13, "CBF": 0.04, "Phased": -0.03, "ReDHiP": 0.08}),
        }),
        text,
    }
}

/// Figure 7: dynamic energy normalized to Base.
pub fn fig7(m: &Matrix) -> FigureOutput {
    let (t, series) = series_table(m, |c| c.dynamic_ratio(), TextTable::ratio);
    let text = format!(
        "Figure 7: dynamic cache energy normalized to Base (lower = better)\n{}\npaper averages: Oracle 0.29, CBF 0.82, Phased 0.45, ReDHiP 0.39\n",
        t.render()
    );
    FigureOutput {
        name: "fig7",
        title: "Normalized dynamic energy".into(),
        json: json!({
            "measured": matrix_json(m, &series, "dynamic_ratio"),
            "paper_averages": json!({"Oracle": 0.29, "CBF": 0.82, "Phased": 0.45, "ReDHiP": 0.39}),
        }),
        text,
    }
}

/// Figure 8: the performance-energy metric (CBF/Phased/ReDHiP; Oracle is a
/// theoretical bound, shown too).
pub fn fig8(m: &Matrix) -> FigureOutput {
    let (t, series) = series_table(m, |c| c.perf_energy_metric(), TextTable::ratio);
    let text = format!(
        "Figure 8: performance-energy metric (1+speedup)x(1+total saving); higher = better\n{}\npaper: ReDHiP is by far the best (~1.3 avg); CBF and Phased cluster near 1.1\n",
        t.render()
    );
    FigureOutput {
        name: "fig8",
        title: "Performance-energy metric".into(),
        json: json!({
            "measured": matrix_json(m, &series, "perf_energy_metric"),
            "paper_note": "ReDHiP best ~1.3; CBF/Phased ~1.05-1.15",
        }),
        text,
    }
}

/// The predictor shoot-out: every non-Base mechanism's speedup and
/// normalized dynamic energy side by side (Figure 6/7-style rows over the
/// [`SHOOTOUT`] columns, including the registry contenders).
pub fn shootout(m: &Matrix) -> FigureOutput {
    let (t_speed, speedup) = series_table(m, |c| c.speedup(), TextTable::pct);
    let (t_energy, dynamic) = series_table(m, |c| c.dynamic_ratio(), TextTable::ratio);
    let envelope: Vec<bool> = m
        .mechanisms
        .iter()
        .map(|&x| sim::registry_info(x).parallel_envelope)
        .collect();
    let text = format!(
        "Predictor shoot-out: speedup over Base (positive = faster)\n{}\n\
         Predictor shoot-out: dynamic cache energy normalized to Base (lower = better)\n{}\n\
         registry contenders (LevelPred/Perceptron/WayMemo) run outside the\n\
         parallel envelope: --intra-jobs > 1 takes the sequential fallback\n",
        t_speed.render(),
        t_energy.render()
    );
    FigureOutput {
        name: "shootout",
        title: "Predictor shoot-out".into(),
        json: json!({
            "speedup": matrix_json(m, &speedup, "speedup"),
            "dynamic_ratio": matrix_json(m, &dynamic, "dynamic_ratio"),
            "parallel_envelope": envelope,
        }),
        text,
    }
}

/// Runs the shoot-out matrix and renders it (single-figure entry point).
pub fn run_shootout(s: &Settings) -> FigureOutput {
    let mut plan = SweepPlan::new();
    let p = plan_shootout(s, &mut plan);
    let res = run_plan(&plan, "[figures] shootout");
    shootout(&matrix_from(s, &p, &res))
}

fn hit_rate_figure(
    name: &'static str,
    title: &str,
    workloads: &[Benchmark],
    runs: &[RunResult],
    paper_note: &str,
) -> FigureOutput {
    let mut t = TextTable::new(&["workload", "L1", "L2", "L3", "L4"]);
    let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (wi, &w) in workloads.iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        for (lvl, col) in per_level.iter_mut().enumerate() {
            let hr = runs[wi].hit_rate(lvl);
            col.push(hr);
            row.push(format!("{:.1}%", hr * 100.0));
        }
        t.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for l in &per_level {
        avg.push(format!("{:.1}%", mean(l) * 100.0));
    }
    t.row(avg);
    FigureOutput {
        name,
        title: title.into(),
        json: json!({
            "workloads": workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            "hit_rates_per_level": &per_level,
            "averages": per_level.iter().map(|l| mean(l)).collect::<Vec<_>>(),
        }),
        text: format!("{title}\n{}\n{paper_note}\n", t.render()),
    }
}

/// Figure 9: per-level hit rates under Base.
pub fn fig9(m: &Matrix) -> FigureOutput {
    hit_rate_figure(
        "fig9",
        "Figure 9: per-level hit rate, Base (no prediction)",
        &m.settings.workloads,
        &m.base,
        "paper: wide variation per benchmark; lower levels see only the upper levels' misses",
    )
}

/// Figure 10: per-level hit rates under ReDHiP.
pub fn fig10(m: &Matrix) -> FigureOutput {
    let redhip_idx = m
        .mechanisms
        .iter()
        .position(|&x| x == Mechanism::Redhip)
        .expect("ReDHiP in the matrix");
    let mut out = hit_rate_figure(
        "fig10",
        "Figure 10: per-level hit rate, ReDHiP",
        &m.settings.workloads,
        &m.results[redhip_idx],
        "paper: L2/L3/L4 hit rates improve by +14/+12/+18 points on average \
         (bypassed lookups would all have missed)",
    );
    // Also report the deltas vs Figure 9 — the paper's quoted improvement.
    let mut deltas = Vec::new();
    for lvl in 1..4 {
        let base_avg = mean(&m.base.iter().map(|r| r.hit_rate(lvl)).collect::<Vec<_>>());
        let red_avg = mean(
            &m.results[redhip_idx]
                .iter()
                .map(|r| r.hit_rate(lvl))
                .collect::<Vec<_>>(),
        );
        deltas.push(red_avg - base_avg);
    }
    out.text.push_str(&format!(
        "measured avg improvement: L2 {:+.1}pp, L3 {:+.1}pp, L4 {:+.1}pp (paper: +14/+12/+18)\n",
        deltas[0] * 100.0,
        deltas[1] * 100.0,
        deltas[2] * 100.0
    ));
    out.json.set("improvement_vs_base_pp", json!(deltas));
    out.json
        .set("paper_improvement_pp", json!([0.14, 0.12, 0.18]));
    out
}

/// Figure 11: dynamic energy vs prediction-table size (overhead ignored,
/// as in the paper's accuracy study). Sizes are expressed relative to the
/// platform default (512 KB paper / 64 KB demo): 4×, 2×, 1×, 1/2, 1/4, 1/8.
pub fn fig11(s: &Settings) -> FigureOutput {
    let mut plan = SweepPlan::new();
    let p = plan_fig11(s, &mut plan);
    let res = run_plan(&plan, "[figures] fig11");
    fig11_from(s, &p, &res)
}

/// Planned cell ids for Figure 11, per workload: base then each PT size.
pub struct Fig11Plan {
    sizes: Vec<u64>,
    ids: Vec<CellId>,
}

/// Enumerates Figure 11's PT-size sweep into `plan`.
pub fn plan_fig11(s: &Settings, plan: &mut SweepPlan) -> Fig11Plan {
    let default_bytes = s.scale.platform().predictor.size_bytes;
    let factors: [(u64, u64); 6] = [(4, 1), (2, 1), (1, 1), (1, 2), (1, 4), (1, 8)];
    let sizes: Vec<u64> = factors
        .iter()
        .map(|&(n, d)| default_bytes * n / d)
        .collect();
    let scale = ws(s);
    let mut ids = Vec::new();
    for &w in &s.workloads {
        ids.push(plan.cell(&cfg_for(s, Mechanism::Base), w, scale));
        for &sz in &sizes {
            let mut cfg = cfg_for(s, Mechanism::Redhip);
            cfg.pt_bytes = Some(sz);
            cfg.count_prediction_overhead = false; // the paper's Fig 11 setup
            ids.push(plan.cell(&cfg, w, scale));
        }
    }
    Fig11Plan { sizes, ids }
}

/// Renders Figure 11 from a finished sweep.
pub fn fig11_from(s: &Settings, p: &Fig11Plan, res: &SweepResults) -> FigureOutput {
    let sizes = p.sizes.clone();
    let outs: Vec<RunResult> = p.ids.iter().map(|&id| res.get(id).clone()).collect();
    let stride = sizes.len() + 1;
    let mut header = vec!["workload".to_string()];
    for &sz in &sizes {
        header.push(format!("{}K", sz >> 10));
    }
    let hdr: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = TextTable::new(&hdr);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for (wi, &w) in s.workloads.iter().enumerate() {
        let base = &outs[wi * stride];
        let mut row = vec![w.name().to_string()];
        for (si, _) in sizes.iter().enumerate() {
            let c = Comparison::new(base, &outs[wi * stride + 1 + si]);
            series[si].push(c.dynamic_ratio());
            row.push(TextTable::ratio(c.dynamic_ratio()));
        }
        t.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for se in &series {
        avg.push(TextTable::ratio(mean(se)));
    }
    t.row(avg);
    FigureOutput {
        name: "fig11",
        title: "Dynamic energy vs PT size".into(),
        json: json!({
            "sizes_bytes": sizes,
            "workloads": s.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            "dynamic_ratio": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
            "paper_note": "gain marginal beyond the default size; the smallest table is nearly useless",
        }),
        text: format!(
            "Figure 11: normalized dynamic energy vs prediction-table size (prediction overhead ignored)\n{}\npaper: accuracy gain marginal beyond the default size; 1/8 of the default is nearly useless\n",
            t.render()
        ),
    }
}

/// Figure 12: dynamic energy vs recalibration period, from every L1 miss
/// (1) to never. Periods scale with the platform (paper: 1 … 100 M, ∞).
pub fn fig12(s: &Settings) -> FigureOutput {
    let mut plan = SweepPlan::new();
    let p = plan_fig12(s, &mut plan);
    let res = run_plan(&plan, "[figures] fig12");
    fig12_from(s, &p, &res)
}

/// Planned cell ids for Figure 12, per workload: base then each period.
pub struct Fig12Plan {
    periods: Vec<Option<u64>>,
    ids: Vec<CellId>,
}

/// Enumerates Figure 12's recalibration-period sweep into `plan`.
pub fn plan_fig12(s: &Settings, plan: &mut SweepPlan) -> Fig12Plan {
    let base_period = s.scale.workload_scale().recalib_period();
    let periods: Vec<Option<u64>> = vec![
        Some(1),
        Some((base_period / 64).max(2)),
        Some(base_period / 8),
        Some(base_period),
        Some(base_period * 8),
        Some(base_period * 64),
        None,
    ];
    let scale = ws(s);
    let mut ids = Vec::new();
    for &w in &s.workloads {
        ids.push(plan.cell(&cfg_for(s, Mechanism::Base), w, scale));
        for &period in &periods {
            let mut cfg = cfg_for(s, Mechanism::Redhip);
            cfg.recalib_period = period;
            cfg.count_prediction_overhead = false; // accuracy study
            ids.push(plan.cell(&cfg, w, scale));
        }
    }
    Fig12Plan { periods, ids }
}

/// Renders Figure 12 from a finished sweep.
pub fn fig12_from(s: &Settings, p: &Fig12Plan, res: &SweepResults) -> FigureOutput {
    let periods = p.periods.clone();
    let outs: Vec<RunResult> = p.ids.iter().map(|&id| res.get(id).clone()).collect();
    let stride = periods.len() + 1;
    let labels: Vec<String> = periods
        .iter()
        .map(|p| match p {
            Some(1) => "every".into(),
            Some(v) => format!("{v}"),
            None => "never".into(),
        })
        .collect();
    let mut header = vec!["workload".to_string()];
    header.extend(labels.iter().cloned());
    let hdr: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = TextTable::new(&hdr);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); periods.len()];
    for (wi, &w) in s.workloads.iter().enumerate() {
        let base = &outs[wi * stride];
        let mut row = vec![w.name().to_string()];
        for (pi, _) in periods.iter().enumerate() {
            let c = Comparison::new(base, &outs[wi * stride + 1 + pi]);
            series[pi].push(c.dynamic_ratio());
            row.push(TextTable::ratio(c.dynamic_ratio()));
        }
        t.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for se in &series {
        avg.push(TextTable::ratio(mean(se)));
    }
    t.row(avg);
    FigureOutput {
        name: "fig12",
        title: "Dynamic energy vs recalibration period".into(),
        json: json!({
            "periods_l1_misses": labels,
            "workloads": s.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            "dynamic_ratio": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
            "paper_note": "little gain from recalibrating more often than the default period; precipitous accuracy loss at ~100x the default and beyond",
        }),
        text: format!(
            "Figure 12: normalized dynamic energy vs recalibration period in L1 misses (overhead ignored; 'every' = per miss, the paper's perfect recalibration)\n{}\npaper: recalibrating at the default period captures nearly all benefit; much longer periods collapse toward never-recalibrate\n",
            t.render()
        ),
    }
}

/// Figure 13: ReDHiP's dynamic-energy savings under the three inclusion
/// policies (each normalized to Base under the *same* policy).
pub fn fig13(s: &Settings) -> FigureOutput {
    let mut plan = SweepPlan::new();
    let p = plan_fig13(s, &mut plan);
    let res = run_plan(&plan, "[figures] fig13");
    fig13_from(s, &p, &res)
}

/// Planned cell ids for Figure 13, per workload: (base, redhip) per policy.
pub struct Fig13Plan {
    ids: Vec<CellId>,
}

/// Enumerates Figure 13's inclusion-policy study into `plan`.
pub fn plan_fig13(s: &Settings, plan: &mut SweepPlan) -> Fig13Plan {
    let policies = [
        InclusionPolicy::Inclusive,
        InclusionPolicy::Hybrid,
        InclusionPolicy::Exclusive,
    ];
    let scale = ws(s);
    let mut ids = Vec::new();
    for &w in &s.workloads {
        for &policy in &policies {
            for mech in [Mechanism::Base, Mechanism::Redhip] {
                let mut cfg = cfg_for(s, mech);
                cfg.policy = policy;
                ids.push(plan.cell(&cfg, w, scale));
            }
        }
    }
    Fig13Plan { ids }
}

/// Renders Figure 13 from a finished sweep.
pub fn fig13_from(s: &Settings, p: &Fig13Plan, res: &SweepResults) -> FigureOutput {
    let policies = [
        InclusionPolicy::Inclusive,
        InclusionPolicy::Hybrid,
        InclusionPolicy::Exclusive,
    ];
    let outs: Vec<RunResult> = p.ids.iter().map(|&id| res.get(id).clone()).collect();
    let stride = policies.len() * 2;
    let mut t = TextTable::new(&["workload", "Inclusive", "Hybrid", "Exclusive"]);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (wi, &w) in s.workloads.iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        for (pi, _) in policies.iter().enumerate() {
            let base = &outs[wi * stride + pi * 2];
            let red = &outs[wi * stride + pi * 2 + 1];
            let c = Comparison::new(base, red);
            series[pi].push(c.dynamic_saving());
            row.push(TextTable::pct(c.dynamic_saving()));
        }
        t.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for se in &series {
        avg.push(TextTable::pct(mean(se)));
    }
    t.row(avg);
    FigureOutput {
        name: "fig13",
        title: "Dynamic energy savings per inclusion policy".into(),
        json: json!({
            "policies": ["Inclusive", "Hybrid", "Exclusive"],
            "workloads": s.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            "dynamic_saving": &series,
            "averages": series.iter().map(|x| mean(x)).collect::<Vec<_>>(),
            "paper_note": "hybrid ~= inclusive; exclusive ~15 points lower but still >40% better than its base",
        }),
        text: format!(
            "Figure 13: ReDHiP dynamic-energy savings by inclusion policy (each vs Base under the same policy)\n{}\npaper: Hybrid ~= Inclusive; Exclusive saves ~15 points less but still >40%\n",
            t.render()
        ),
    }
}

#[derive(Clone, Copy)]
enum PfCfg {
    Base,
    SpOnly,
    RedhipOnly,
    SpRedhip,
}

const PF_CONFIGS: [PfCfg; 4] = [
    PfCfg::Base,
    PfCfg::SpOnly,
    PfCfg::RedhipOnly,
    PfCfg::SpRedhip,
];

/// Figures 14 & 15: stride prefetching alone, ReDHiP alone, and combined.
pub fn fig14_15(s: &Settings) -> (FigureOutput, FigureOutput) {
    let mut plan = SweepPlan::new();
    let p = plan_fig14_15(s, &mut plan);
    let res = run_plan(&plan, "[figures] fig14-15");
    fig14_15_from(s, &p, &res)
}

/// Planned cell ids for Figures 14/15, per workload: the four
/// prefetch × mechanism combinations.
pub struct Fig1415Plan {
    ids: Vec<CellId>,
}

/// Enumerates the prefetch-interaction study into `plan`.
pub fn plan_fig14_15(s: &Settings, plan: &mut SweepPlan) -> Fig1415Plan {
    let scale = ws(s);
    let mut ids = Vec::new();
    for &w in &s.workloads {
        for pf in PF_CONFIGS {
            let mut cfg = match pf {
                PfCfg::Base | PfCfg::SpOnly => cfg_for(s, Mechanism::Base),
                PfCfg::RedhipOnly | PfCfg::SpRedhip => cfg_for(s, Mechanism::Redhip),
            };
            if matches!(pf, PfCfg::SpOnly | PfCfg::SpRedhip) {
                cfg.prefetch = Some(StrideConfig::default());
            }
            ids.push(plan.cell(&cfg, w, scale));
        }
    }
    Fig1415Plan { ids }
}

/// Renders Figures 14 and 15 from a finished sweep.
pub fn fig14_15_from(
    s: &Settings,
    p: &Fig1415Plan,
    res: &SweepResults,
) -> (FigureOutput, FigureOutput) {
    let outs: Vec<RunResult> = p.ids.iter().map(|&id| res.get(id).clone()).collect();
    let stride = PF_CONFIGS.len();
    let names = ["SP only", "ReDHiP only", "SP+ReDHiP"];
    let mut t14 = TextTable::new(&["workload", names[0], names[1], names[2]]);
    let mut t15 = TextTable::new(&["workload", names[0], names[1], names[2]]);
    let mut sp14: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut sp15: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (wi, &w) in s.workloads.iter().enumerate() {
        let base = &outs[wi * stride];
        let mut r14 = vec![w.name().to_string()];
        let mut r15 = vec![w.name().to_string()];
        for ci in 1..stride {
            let c = Comparison::new(base, &outs[wi * stride + ci]);
            sp14[ci - 1].push(c.speedup());
            sp15[ci - 1].push(c.dynamic_ratio());
            r14.push(TextTable::pct(c.speedup()));
            r15.push(TextTable::ratio(c.dynamic_ratio()));
        }
        t14.row(r14);
        t15.row(r15);
    }
    let mut a14 = vec!["average".to_string()];
    let mut a15 = vec!["average".to_string()];
    for i in 0..3 {
        a14.push(TextTable::pct(mean(&sp14[i])));
        a15.push(TextTable::ratio(mean(&sp15[i])));
    }
    t14.row(a14);
    t15.row(a15);

    let f14 = FigureOutput {
        name: "fig14",
        title: "Speedup: prefetch vs ReDHiP vs both".into(),
        json: json!({
            "configs": names,
            "workloads": s.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            "speedup": &sp14,
            "averages": sp14.iter().map(|x| mean(x)).collect::<Vec<_>>(),
            "paper_note": "performance benefits are additive: SP+ReDHiP beats either alone",
        }),
        text: format!(
            "Figure 14: speedup of SP only / ReDHiP only / SP+ReDHiP over Base\n{}\npaper: complementary — combined speedup exceeds either alone\n",
            t14.render()
        ),
    };
    let f15 = FigureOutput {
        name: "fig15",
        title: "Dynamic energy: prefetch vs ReDHiP vs both".into(),
        json: json!({
            "configs": names,
            "workloads": s.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            "dynamic_ratio": &sp15,
            "averages": sp15.iter().map(|x| mean(x)).collect::<Vec<_>>(),
            "paper_note": "SP alone costs energy (>1.0 on several benchmarks); combined lands between SP's cost and ReDHiP's savings",
        }),
        text: format!(
            "Figure 15: dynamic energy of SP only / ReDHiP only / SP+ReDHiP, normalized to Base\n{}\npaper: prefetching alone is costly; ReDHiP offsets it — combined sits between the two\n",
            t15.render()
        ),
    };
    (f14, f15)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_settings() -> Settings {
        let mut s = Settings::new(FigureScale::Smoke, Some(4_000));
        s.workloads = vec![Benchmark::Mcf, Benchmark::Lbm];
        s
    }

    #[test]
    fn matrix_shape_and_fig6_7_8_9_10() {
        let s = smoke_settings();
        let m = run_matrix(&s);
        assert_eq!(m.base.len(), 2);
        assert_eq!(m.results.len(), 4);
        for f in [fig6(&m), fig7(&m), fig8(&m), fig9(&m), fig10(&m)] {
            assert!(f.text.contains("mcf"), "{} missing workload", f.name);
            assert!(f.text.contains("average"));
            assert!(!f.json.is_null());
        }
    }

    #[test]
    fn shootout_covers_all_non_base_mechanisms() {
        let mut s = smoke_settings();
        s.workloads = vec![Benchmark::Mcf];
        let f = run_shootout(&s);
        for mech in SHOOTOUT {
            assert!(f.text.contains(mech.name()), "{} missing", mech.name());
        }
        assert!(f.text.contains("sequential fallback"));
        assert_eq!(
            f.json["speedup"]["mechanisms"].as_array().unwrap().len(),
            SHOOTOUT.len()
        );
        assert_eq!(
            f.json["parallel_envelope"].as_array().unwrap().len(),
            SHOOTOUT.len()
        );
    }

    #[test]
    fn fig11_sweeps_sizes() {
        let mut s = smoke_settings();
        s.workloads = vec![Benchmark::Mcf];
        let f = fig11(&s);
        assert!(f.text.contains("Figure 11"));
        assert_eq!(f.json["sizes_bytes"].as_array().unwrap().len(), 6);
    }

    #[test]
    fn fig12_includes_every_and_never() {
        let mut s = smoke_settings();
        s.workloads = vec![Benchmark::Mcf];
        let f = fig12(&s);
        assert!(f.text.contains("every"));
        assert!(f.text.contains("never"));
    }

    #[test]
    fn fig13_covers_three_policies() {
        let mut s = smoke_settings();
        s.workloads = vec![Benchmark::Mcf];
        let f = fig13(&s);
        assert!(f.text.contains("Exclusive"));
        assert_eq!(f.json["averages"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn fig14_15_prefetch_combo() {
        let mut s = smoke_settings();
        s.workloads = vec![Benchmark::Lbm];
        let (f14, f15) = fig14_15(&s);
        assert!(f14.text.contains("SP+ReDHiP"));
        assert!(f15.text.contains("SP+ReDHiP"));
    }

    #[test]
    fn table1_prints_platform() {
        let f = table1(FigureScale::Paper);
        assert!(f.text.contains("65536K")); // 64 MB LLC
        assert!(f.text.contains("0.78%"));
    }
}
