//! The `redhip-sim trace` subcommands: record, convert, info, replay.
//!
//! ```text
//! redhip-sim trace record --benchmark NAME --out FILE [options]
//!     Runs the benchmark's per-core generators and records their streams
//!     round-robin-interleaved by index into one v2 trace file. Replaying
//!     with `--mode interleave` on the same core count reconstructs each
//!     core's exact stream, so `trace replay` reproduces the in-process
//!     simulation byte for byte.
//!       --scale S     smoke|demo|paper workload scale  (default demo)
//!       --refs N      records per core                 (default per scale)
//!       --cores N     streams to interleave            (default 8)
//!       --chunk N     records per chunk                (default 65536)
//!
//! redhip-sim trace convert --in FILE --out FILE [--chunk N]
//!     Converts v1 binary, v2 binary (rechunk), or Valgrind/lackey-style
//!     text (sniffed by magic) into a v2 file.
//!
//! redhip-sim trace info --in FILE [--json]
//!     Prints the file layout: records, chunks, bytes/record, compression
//!     vs the fixed-width v1 encoding.
//!
//! redhip-sim trace replay --in FILE [options]
//!     Feeds the file to the simulator chunk-at-a-time (bounded memory,
//!     zero per-record allocation) and reports results + throughput.
//!       --mode M        dup|interleave|range            (default dup)
//!       --mechanism M   registry spec string — see `redhip-sim --help`
//!                       (default redhip)
//!       --scale S       smoke|demo|paper platform       (default demo)
//!       --refs N        references per core             (default: shard len)
//!       --cpi X         CPI charged for gap instructions (default 1.5)
//!       --buffered      positioned reads instead of mmap
//!       --intra-jobs N  worker threads inside the run (deterministic
//!                       bound-weave engine; byte-identical at every N)
//!       --json FILE     write the RunResult as JSON
//!       --quiet         suppress the stderr heartbeat
//! ```

use crate::harness::{mechanism_config, FigureScale};
use mem_trace::codec::{ChunkWriter, DEFAULT_CHUNK_TARGET};
use mem_trace::import::import_lackey;
use mem_trace::stream::{write_v2_file, StreamTrace};
use mem_trace::TraceIoError;
use minijson::{json, ToJson};
use sim::{CoreFeed, Mechanism};
use std::io::BufReader;
use std::time::Instant;
use workloads::{Benchmark, FileMode, TraceFileWorkload};

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `redhip-sim --help` (trace subcommands are documented in tracecli.rs)");
    std::process::exit(2);
}

/// Entry point: `args` are everything after the literal `trace`.
pub fn main(args: Vec<String>) {
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("record") => record(it.collect()),
        Some("convert") => convert(it.collect()),
        Some("info") => info(it.collect()),
        Some("replay") => replay(it.collect()),
        other => usage(&format!(
            "unknown trace subcommand {other:?} (expected record|convert|info|replay)"
        )),
    }
}

/// Tiny flag cursor shared by the subcommands.
struct Flags {
    args: std::vec::IntoIter<String>,
}

impl Flags {
    fn new(args: Vec<String>) -> Self {
        Self {
            args: args.into_iter(),
        }
    }

    fn next(&mut self) -> Option<String> {
        self.args.next()
    }

    fn value(&mut self, name: &str) -> String {
        self.args
            .next()
            .unwrap_or_else(|| usage(&format!("{name} needs a value")))
    }

    fn parse<T: std::str::FromStr>(&mut self, name: &str) -> T {
        self.value(name)
            .parse()
            .unwrap_or_else(|_| usage(&format!("bad {name}")))
    }
}

fn record(args: Vec<String>) {
    let mut benchmark = None;
    let mut out = None;
    let mut scale = FigureScale::Demo;
    let mut refs: Option<usize> = None;
    let mut cores = 8usize;
    let mut chunk = DEFAULT_CHUNK_TARGET;
    let mut f = Flags::new(args);
    while let Some(a) = f.next() {
        match a.as_str() {
            "--benchmark" | "-b" => {
                let v = f.value("--benchmark");
                benchmark = Some(
                    Benchmark::from_name(&v)
                        .unwrap_or_else(|| usage(&format!("unknown benchmark {v}"))),
                );
            }
            "--out" | "-o" => out = Some(f.value("--out")),
            "--scale" => {
                let v = f.value("--scale");
                scale =
                    FigureScale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale {v}")));
            }
            "--refs" => refs = Some(f.parse("--refs")),
            "--cores" => cores = f.parse("--cores"),
            "--chunk" => chunk = f.parse("--chunk"),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let benchmark = benchmark.unwrap_or_else(|| usage("--benchmark is required"));
    let out = out.unwrap_or_else(|| usage("--out is required"));
    let refs = refs.unwrap_or_else(|| scale.default_refs());
    if cores == 0 {
        usage("--cores must be positive");
    }

    eprintln!(
        "[trace record] {} x {cores} cores x {refs} records/core -> {out} (chunk {chunk})",
        benchmark.name()
    );
    let started = Instant::now();
    let ws = scale.workload_scale();
    let mut streams: Vec<_> = (0..cores).map(|c| benchmark.trace(c, ws)).collect();
    let sink = std::io::BufWriter::new(
        std::fs::File::create(&out).unwrap_or_else(|e| usage(&format!("cannot create {out}: {e}"))),
    );
    let mut w = ChunkWriter::with_chunk_target(sink, chunk).expect("write header");
    'outer: for _ in 0..refs {
        for s in streams.iter_mut() {
            // Generators are endless; a None (a short custom stream) just
            // ends the recording at a full round so shards stay aligned.
            let Some(r) = s.next() else { break 'outer };
            w.push(r).expect("write chunk");
        }
    }
    let (sink, summary) = w.finish().expect("write footer");
    sink.into_inner().expect("flush").sync_all().ok();
    let secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[trace record] {} records, {} chunks, {} bytes ({:.1} MB/s) in {secs:.2}s",
        summary.records,
        summary.chunks,
        summary.file_bytes,
        summary.file_bytes as f64 / 1e6 / secs.max(1e-9)
    );
}

fn convert(args: Vec<String>) {
    let mut input = None;
    let mut out = None;
    let mut chunk = DEFAULT_CHUNK_TARGET;
    let mut f = Flags::new(args);
    while let Some(a) = f.next() {
        match a.as_str() {
            "--in" | "-i" => input = Some(f.value("--in")),
            "--out" | "-o" => out = Some(f.value("--out")),
            "--chunk" => chunk = f.parse("--chunk"),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let input = input.unwrap_or_else(|| usage("--in is required"));
    let out = out.unwrap_or_else(|| usage("--out is required"));

    // Sniff: binary traces open with the RDHP magic; anything else is
    // treated as lackey-style text.
    let mut head = [0u8; 4];
    {
        use std::io::Read;
        let mut file = std::fs::File::open(&input)
            .unwrap_or_else(|e| usage(&format!("cannot open {input}: {e}")));
        let n = file.read(&mut head).unwrap_or(0);
        head[n..].fill(0);
    }
    let summary = if u32::from_le_bytes(head) == mem_trace::codec::MAGIC {
        // v2 streams chunk-at-a-time; v1 is decoded whole (its format
        // forces that anyway) then re-encoded.
        match StreamTrace::open(&input) {
            Ok(stream) => write_v2_file(&out, stream, chunk),
            Err(TraceIoError::Decode(mem_trace::codec::DecodeError::BadVersion(1))) => {
                let t = mem_trace::stream::read_any(&input)
                    .unwrap_or_else(|e| usage(&format!("{input}: {e}")));
                write_v2_file(&out, t.iter(), chunk)
            }
            Err(e) => usage(&format!("{input}: {e}")),
        }
        .unwrap_or_else(|e| usage(&format!("writing {out}: {e}")))
    } else {
        let file = std::fs::File::open(&input)
            .unwrap_or_else(|e| usage(&format!("cannot open {input}: {e}")));
        import_lackey(BufReader::new(file), &out, chunk)
            .unwrap_or_else(|e| usage(&format!("{input}: {e}")))
    };
    eprintln!(
        "[trace convert] {input} -> {out}: {} records, {} chunks, {} bytes",
        summary.records, summary.chunks, summary.file_bytes
    );
}

fn info(args: Vec<String>) {
    let mut input = None;
    let mut as_json = false;
    let mut f = Flags::new(args);
    while let Some(a) = f.next() {
        match a.as_str() {
            "--in" | "-i" => input = Some(f.value("--in")),
            "--json" => as_json = true,
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let input = input.unwrap_or_else(|| usage("--in is required"));
    let doc = match StreamTrace::open(&input) {
        Ok(s) => {
            let i = s.info();
            json!({
                "path": input.as_str(),
                "version": 2u64,
                "backend": s.backend(),
                "records": i.total_records,
                "chunks": i.chunks,
                "chunk_target": i.chunk_target as u64,
                "file_bytes": i.file_bytes,
                "payload_bytes": i.payload_bytes,
                "payload_bytes_per_record": i.bytes_per_record(),
                "v1_equivalent_bytes": i.raw_bytes(),
            })
        }
        Err(TraceIoError::Decode(mem_trace::codec::DecodeError::BadVersion(1))) => {
            let t = mem_trace::stream::read_any(&input)
                .unwrap_or_else(|e| usage(&format!("{input}: {e}")));
            let bytes = std::fs::metadata(&input).map(|m| m.len()).unwrap_or(0);
            json!({
                "path": input.as_str(),
                "version": 1u64,
                "records": t.len() as u64,
                "file_bytes": bytes,
            })
        }
        Err(e) => usage(&format!("{input}: {e}")),
    };
    if as_json {
        println!("{}", doc.pretty());
        return;
    }
    let get = |k: &str| doc.member(k).ok().and_then(|v| v.as_u64()).unwrap_or(0);
    println!("path            : {input}");
    println!("version         : v{}", get("version"));
    println!("records         : {}", get("records"));
    if get("version") == 2 {
        println!(
            "chunks          : {} (target {})",
            get("chunks"),
            get("chunk_target")
        );
        println!("file bytes      : {}", get("file_bytes"));
        let per = doc
            .member("payload_bytes_per_record")
            .ok()
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        println!("payload/record  : {per:.2} B (v1: 21 B)");
        let v1 = get("v1_equivalent_bytes");
        if v1 > 0 {
            println!(
                "compression     : {:.2}x vs v1",
                v1 as f64 / get("file_bytes") as f64
            );
        }
    } else {
        println!("file bytes      : {}", get("file_bytes"));
    }
}

fn replay(args: Vec<String>) {
    let mut input = None;
    let mut mode = FileMode::Duplicate;
    let mut mechanism = sim::ParsedSpec::new(Mechanism::Redhip);
    let mut scale = FigureScale::Demo;
    let mut refs: Option<usize> = None;
    let mut cpi: Option<f64> = None;
    let mut buffered = false;
    let mut intra_jobs = 1usize;
    let mut json_path: Option<String> = None;
    let mut quiet = false;
    let mut f = Flags::new(args);
    while let Some(a) = f.next() {
        match a.as_str() {
            "--in" | "-i" => input = Some(f.value("--in")),
            "--mode" => {
                let v = f.value("--mode");
                mode = FileMode::from_tag(&v)
                    .unwrap_or_else(|| usage(&format!("unknown mode {v} (dup|interleave|range)")));
            }
            "--mechanism" | "-m" => {
                let spec = f.value("--mechanism").to_ascii_lowercase();
                mechanism = sim::parse_spec(&spec).unwrap_or_else(|e| usage(&e));
            }
            "--scale" => {
                let v = f.value("--scale");
                scale =
                    FigureScale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale {v}")));
            }
            "--refs" => refs = Some(f.parse("--refs")),
            "--cpi" => cpi = Some(f.parse("--cpi")),
            "--buffered" => buffered = true,
            "--intra-jobs" => {
                intra_jobs = f.parse("--intra-jobs");
                if intra_jobs == 0 {
                    usage("--intra-jobs must be positive");
                }
            }
            "--json" => json_path = Some(f.value("--json")),
            "--quiet" | "-q" => quiet = true,
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let input = input.unwrap_or_else(|| usage("--in is required"));

    // --buffered keeps resident memory at one raw + one decoded chunk per
    // core via positioned reads, even for files far larger than RAM.
    let mut workload = if buffered {
        TraceFileWorkload::open_buffered(&input, mode)
    } else {
        TraceFileWorkload::open(&input, mode)
    }
    .unwrap_or_else(|e| usage(&format!("{input}: {e}")));
    if let Some(c) = cpi {
        workload.set_avg_cpi(c);
    }

    let mut cfg = mechanism_config(scale, mechanism.mechanism, 0);
    mechanism.apply(&mut cfg);
    let mechanism = mechanism.mechanism;
    let cores = cfg.platform.cores;
    // Default target: exactly what the shard can supply, so a replay of a
    // recorded file consumes it fully.
    let shard_len = mode.shard(0, cores).len(workload.total_records()) as usize;
    cfg.refs_per_core = refs.unwrap_or(shard_len.max(1));
    cfg.avg_cpi = workload.avg_cpi();
    if let Err(e) = cfg.validate() {
        usage(&e);
    }

    eprintln!(
        "[trace replay] {input} ({} records, mode {}) under {} x {cores} cores, {} refs/core",
        workload.total_records(),
        mode.tag(),
        mechanism.name(),
        cfg.refs_per_core
    );
    let started = Instant::now();
    let feeds: Vec<CoreFeed> = (0..cores)
        .map(|core| Box::new(workload.feed(core, cores)) as CoreFeed)
        .collect();
    let result = if intra_jobs > 1 {
        if !sim::parallel_supported(&cfg) {
            eprintln!("[trace replay] note: configuration outside the parallel envelope; running sequentially");
        }
        let total = (cfg.refs_per_core * cores) as u64;
        let hb = std::cell::RefCell::new({
            let h = telemetry::Heartbeat::new("[trace replay]", "refs", total);
            if quiet {
                h.silent()
            } else {
                h
            }
        });
        let progress = |done: u64| hb.borrow_mut().set_done(done);
        let opts = sim::IntraOptions {
            jobs: intra_jobs,
            progress: Some(&progress),
            ..Default::default()
        };
        let r = sim::run_feeds_par(&cfg, feeds, &opts);
        hb.borrow_mut().finish();
        r
    } else if quiet {
        sim::run_feeds(&cfg, feeds)
    } else {
        let total = (cfg.refs_per_core * cores) as u64;
        let hb =
            sim::HeartbeatObserver::new(telemetry::Heartbeat::new("[trace replay]", "refs", total));
        sim::run_feeds_with(&cfg, feeds, hb).0
    };
    let secs = started.elapsed().as_secs_f64();

    println!("=== replay {} under {} ===", input, mechanism.name());
    print!("{}", sim::report::render(&result));
    println!(
        "replay throughput    : {:.2} Mrefs/s ({:.2}s wall)",
        result.total_refs() as f64 / 1e6 / secs.max(1e-9),
        secs
    );
    if let Some(path) = json_path {
        std::fs::write(&path, result.to_json().pretty()).expect("write json");
        eprintln!("[trace replay] wrote {path}");
    }
}
