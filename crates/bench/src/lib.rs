//! Figure/table regeneration harness.
//!
//! One function per table/figure of the paper's evaluation (§V), each
//! returning a structured result that the `figures` binary renders as an
//! ASCII table and a JSON file. The experiment index in `DESIGN.md` maps
//! every paper artifact to its function here.

pub mod ablate;
pub mod baseline;
pub mod figdata;
pub mod figures;
pub mod harness;
pub mod micro;
pub mod table;
pub mod tracecli;

pub use harness::{mechanism_config, run_workload, FigureScale};
