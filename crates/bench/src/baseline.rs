//! Simulator-throughput baselines: measured refs/s per mechanism, persisted
//! as JSON so the repo carries a bench trajectory across PRs.
//!
//! `redhip-sim --bench-json FILE` writes one snapshot (see [`measure`]);
//! committed snapshots (`BENCH_baseline.json`, `BENCH_pr5.json`, ...) pin
//! the numbers a PR claims. `redhip-sim --bench-compare OLD NEW` renders the
//! ratio table between two snapshots (see [`compare`]).
//!
//! The measured configuration mirrors `benches/sim_throughput.rs`: the
//! demo-scale platform, 8 cores, smoke-scale traces of one benchmark, and
//! the five compared mechanisms. Wall-clock includes trace generation
//! (~3 ns/ref, i.e. noise next to the simulator itself).

use minijson::{json, Json};
use sim::{run_traces, CoreTrace, Mechanism, SimConfig};
use std::time::Instant;
use workloads::{Benchmark, Scale};

/// Schema tag written into every snapshot.
pub const SCHEMA: &str = "redhip-bench/v1";

/// The five mechanisms measured, in report order.
pub const MECHANISMS: [Mechanism; 5] = [
    Mechanism::Base,
    Mechanism::Redhip,
    Mechanism::Cbf,
    Mechanism::Phased,
    Mechanism::Oracle,
];

/// Knobs for one measurement.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// References per core per run (the sim_throughput default is 5000).
    pub refs_per_core: usize,
    /// Timed runs per mechanism; the fastest is reported. 1 = smoke mode.
    pub samples: usize,
    /// Workload generating the trace.
    pub benchmark: Benchmark,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            refs_per_core: 5_000,
            samples: 3,
            benchmark: Benchmark::Mcf,
        }
    }
}

fn config(mechanism: Mechanism, refs_per_core: usize) -> SimConfig {
    let mut cfg = SimConfig::new(energy_model::presets::demo_scale(), mechanism);
    cfg.refs_per_core = refs_per_core;
    cfg.recalib_period = Some(8_192);
    cfg
}

/// Measures refs/s for every mechanism and returns the snapshot document.
pub fn measure(opts: &BenchOptions) -> Json {
    let cores = config(Mechanism::Base, opts.refs_per_core).platform.cores;
    let total_refs = (opts.refs_per_core * cores) as u64;
    let mut results = Vec::new();
    for mech in MECHANISMS {
        let cfg = config(mech, opts.refs_per_core);
        let mut best = f64::INFINITY;
        for _ in 0..opts.samples.max(1) {
            let traces: Vec<CoreTrace> = (0..cores)
                .map(|c| opts.benchmark.trace(c, Scale::Smoke))
                .collect();
            let start = Instant::now();
            let r = run_traces(&cfg, traces);
            let took = start.elapsed().as_secs_f64();
            assert_eq!(r.total_refs(), total_refs, "run was truncated");
            best = best.min(took);
        }
        results.push(json!({
            "mechanism": mech.name(),
            "ns_per_run": best * 1e9,
            "refs_per_sec": total_refs as f64 / best,
        }));
    }
    json!({
        "schema": SCHEMA,
        "benchmark": opts.benchmark.to_string(),
        "scale": "smoke",
        "refs_per_core": opts.refs_per_core as u64,
        "cores": cores as u64,
        "total_refs": total_refs,
        "samples": opts.samples as u64,
        "results": Json::Arr(results),
    })
}

fn refs_per_sec(doc: &Json, mechanism: &str) -> Option<f64> {
    doc.get("results")?
        .as_array()?
        .iter()
        .find(|r| r.get("mechanism").and_then(Json::as_str) == Some(mechanism))?
        .f64_of("refs_per_sec")
        .ok()
}

/// Renders one snapshot as an aligned refs/s table.
pub fn render(doc: &Json) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{:<10} {:>14}", "mechanism", "refs/s");
    for mech in MECHANISMS {
        if let Some(rps) = refs_per_sec(doc, mech.name()) {
            let _ = writeln!(out, "{:<10} {rps:>14.0}", mech.name());
        }
    }
    out
}

/// Renders the mechanism-by-mechanism ratio table `new / old` between two
/// snapshot documents, ending with the geometric-mean speedup line.
pub fn compare(old: &Json, new: &Json) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>8}",
        "mechanism", "old refs/s", "new refs/s", "ratio"
    );
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for mech in MECHANISMS {
        let (Some(a), Some(b)) = (
            refs_per_sec(old, mech.name()),
            refs_per_sec(new, mech.name()),
        ) else {
            let _ = writeln!(out, "{:<10} (missing from one snapshot)", mech.name());
            continue;
        };
        let ratio = b / a;
        log_sum += ratio.ln();
        n += 1;
        let _ = writeln!(out, "{:<10} {a:>14.0} {b:>14.0} {ratio:>7.2}x", mech.name());
    }
    if n > 0 {
        let _ = writeln!(out, "geomean speedup: {:.2}x", (log_sum / n as f64).exp());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Json {
        measure(&BenchOptions {
            refs_per_core: 200,
            samples: 1,
            benchmark: Benchmark::Mcf,
        })
    }

    #[test]
    fn snapshot_has_schema_and_all_mechanisms() {
        let doc = tiny();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(
            doc.get("results").and_then(Json::as_array).unwrap().len(),
            5
        );
        for mech in MECHANISMS {
            let rps = refs_per_sec(&doc, mech.name()).expect("mechanism present");
            assert!(rps > 0.0, "{}: nonpositive refs/s", mech.name());
        }
        // The document round-trips through text (what --bench-json writes).
        let text = doc.pretty();
        let parsed = minijson::parse(&text).expect("valid JSON");
        assert_eq!(refs_per_sec(&parsed, "Base"), refs_per_sec(&doc, "Base"));
    }

    #[test]
    fn compare_of_identical_snapshots_is_unity() {
        let doc = tiny();
        let table = compare(&doc, &doc);
        assert!(table.contains("geomean speedup: 1.00x"), "{table}");
        for mech in MECHANISMS {
            assert!(table.contains(mech.name()), "{table}");
        }
    }
}
