//! Simulator-throughput baselines: measured refs/s per mechanism, persisted
//! as JSON so the repo carries a bench trajectory across PRs.
//!
//! `redhip-sim --bench-json FILE` writes one snapshot (see [`measure`]);
//! committed snapshots (`BENCH_baseline.json`, `BENCH_pr5.json`, ...) pin
//! the numbers a PR claims. `redhip-sim --bench-compare OLD NEW` renders the
//! ratio table between two snapshots (see [`compare`]).
//!
//! The measured configuration mirrors `benches/sim_throughput.rs`: the
//! demo-scale platform, 8 cores, smoke-scale traces of one benchmark, and
//! every registered mechanism. Wall-clock includes trace generation
//! (~3 ns/ref, i.e. noise next to the simulator itself).

use minijson::{json, Json};
use sim::{run_traces, CoreTrace, Mechanism, SimConfig};
use std::time::Instant;
use sweep::{SweepEngine, SweepPlan};
use workloads::{Benchmark, Scale};

/// Schema tag written into every snapshot.
pub const SCHEMA: &str = "redhip-bench/v1";

/// The mechanisms measured, in report order: the paper's five followed by
/// the registry contenders. `--bench-compare` tolerates snapshots recorded
/// before a mechanism existed (rows are joined by name).
pub const MECHANISMS: [Mechanism; 8] = [
    Mechanism::Base,
    Mechanism::Redhip,
    Mechanism::Cbf,
    Mechanism::Phased,
    Mechanism::Oracle,
    Mechanism::LevelPred,
    Mechanism::Perceptron,
    Mechanism::WayMemo,
];

/// Knobs for one measurement.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// References per core per run (the sim_throughput default is 5000).
    pub refs_per_core: usize,
    /// Timed runs per mechanism; the fastest is reported. 1 = smoke mode.
    pub samples: usize,
    /// Workload generating the trace.
    pub benchmark: Benchmark,
    /// Worker threads for the sweep-level aggregate measurement.
    pub jobs: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            refs_per_core: 5_000,
            samples: 3,
            benchmark: Benchmark::Mcf,
            jobs: sweep::default_jobs(),
        }
    }
}

fn config(mechanism: Mechanism, refs_per_core: usize) -> SimConfig {
    let mut cfg = SimConfig::new(energy_model::presets::demo_scale(), mechanism);
    cfg.refs_per_core = refs_per_core;
    cfg.recalib_period = Some(8_192);
    cfg
}

/// Measures refs/s for every mechanism and returns the snapshot document.
pub fn measure(opts: &BenchOptions) -> Json {
    let cores = config(Mechanism::Base, opts.refs_per_core).platform.cores;
    let total_refs = (opts.refs_per_core * cores) as u64;
    let mut results = Vec::new();
    for mech in MECHANISMS {
        let cfg = config(mech, opts.refs_per_core);
        let mut best = f64::INFINITY;
        for _ in 0..opts.samples.max(1) {
            let traces: Vec<CoreTrace> = (0..cores)
                .map(|c| opts.benchmark.trace(c, Scale::Smoke))
                .collect();
            let start = Instant::now();
            let r = run_traces(&cfg, traces);
            let took = start.elapsed().as_secs_f64();
            assert_eq!(r.total_refs(), total_refs, "run was truncated");
            best = best.min(took);
        }
        results.push(json!({
            "mechanism": mech.name(),
            "ns_per_run": best * 1e9,
            "refs_per_sec": total_refs as f64 / best,
        }));
    }
    // Sweep-level aggregate: all five mechanisms as one deduplicated job
    // graph on the work-stealing engine. A fresh engine per sample keeps
    // the memoizing cache from short-circuiting the later samples.
    let jobs = opts.jobs.max(1);
    let mut best_sweep = f64::INFINITY;
    for _ in 0..opts.samples.max(1) {
        let mut plan = SweepPlan::new();
        for mech in MECHANISMS {
            plan.cell(
                &config(mech, opts.refs_per_core),
                opts.benchmark,
                Scale::Smoke,
            );
        }
        let engine = SweepEngine::new(jobs).quiet();
        let start = Instant::now();
        let r = engine.run(&plan, "[bench] sweep").expect("sweep run");
        let took = start.elapsed().as_secs_f64();
        assert_eq!(r.stats.simulated, MECHANISMS.len() as u64, "cells skipped");
        best_sweep = best_sweep.min(took);
    }
    let sweep_refs = total_refs * MECHANISMS.len() as u64;

    // Trace-ingestion aggregate (PR 7+): record the measured workload's
    // per-core streams round-robin into a v2 temp file, then time (a) a
    // full chunk decode and (b) an end-to-end streaming replay under
    // ReDHiP. Decode must run far ahead of replay for the streaming
    // pipeline to be simulator-bound.
    let trace = {
        use mem_trace::{ShardSpec, StreamTrace};
        use sim::{run_feeds, CoreFeed};
        let path =
            std::env::temp_dir().join(format!("redhip-bench-trace-{}.trace", std::process::id()));
        {
            let mut streams: Vec<_> = (0..cores)
                .map(|c| opts.benchmark.trace(c, Scale::Smoke))
                .collect();
            let interleaved =
                (0..total_refs).map(|i| streams[i as usize % cores].next().expect("infinite"));
            mem_trace::stream::write_v2_file(&path, interleaved, 1 << 14).expect("write trace");
        }
        let stream = StreamTrace::open(&path).expect("open trace");
        let info = stream.info();
        let mut best_decode = f64::INFINITY;
        for _ in 0..opts.samples.max(1) {
            let start = Instant::now();
            let mut acc = 0u64;
            for r in stream.clone() {
                acc ^= r.addr;
            }
            std::hint::black_box(acc);
            best_decode = best_decode.min(start.elapsed().as_secs_f64());
        }
        let cfg = config(Mechanism::Redhip, opts.refs_per_core);
        let mut best_replay = f64::INFINITY;
        for _ in 0..opts.samples.max(1) {
            let feeds: Vec<CoreFeed> = (0..cores)
                .map(|i| {
                    Box::new(stream.shard(ShardSpec::Interleave {
                        shards: cores as u32,
                        index: i as u32,
                    })) as CoreFeed
                })
                .collect();
            let start = Instant::now();
            let r = run_feeds(&cfg, feeds);
            let took = start.elapsed().as_secs_f64();
            assert_eq!(r.total_refs(), total_refs, "replay was truncated");
            best_replay = best_replay.min(took);
        }
        let _ = std::fs::remove_file(&path);
        json!({
            "records": info.total_records,
            "file_bytes": info.file_bytes,
            "decode_records_per_sec": info.total_records as f64 / best_decode,
            "decode_gb_per_sec": info.file_bytes as f64 / 1e9 / best_decode,
            "replay_refs_per_sec": total_refs as f64 / best_replay,
        })
    };

    // Intra-run parallel aggregate (PR 8+): one ReDHiP cell through the
    // production entry point at several --intra-jobs settings. Results
    // are byte-identical at every setting (the bound-weave engine's
    // contract); only throughput varies, and only with host cores —
    // `host_cores` is recorded so a flat curve on a small machine reads
    // as what it is.
    let parallel = {
        let cfg = config(Mechanism::Redhip, opts.refs_per_core);
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut points = Vec::new();
        for intra in [1usize, 2, 4, 8] {
            let io = sim::IntraOptions::with_jobs(intra);
            let mut best = f64::INFINITY;
            for _ in 0..opts.samples.max(1) {
                let traces: Vec<CoreTrace> = (0..cores)
                    .map(|c| opts.benchmark.trace(c, Scale::Smoke))
                    .collect();
                let start = Instant::now();
                let r = sim::run_traces_par(&cfg, traces, &io);
                let took = start.elapsed().as_secs_f64();
                assert_eq!(r.total_refs(), total_refs, "parallel run was truncated");
                best = best.min(took);
            }
            points.push(json!({
                "intra_jobs": intra as u64,
                "refs_per_sec": total_refs as f64 / best,
            }));
        }
        json!({
            "mechanism": "Redhip",
            "host_cores": host_cores as u64,
            "points": Json::Arr(points),
        })
    };

    // Observability aggregate (PR 9+): the parallel engine's observer
    // replay path (collector attached, commit-log events replayed in
    // sequential weave order) and the same run with the metrics registry
    // recording. Both should track par@4 closely; a gap is the overhead
    // this PR's acceptance criteria bound.
    let metrics_section = {
        let cfg = config(Mechanism::Redhip, opts.refs_per_core);
        let io = sim::IntraOptions::with_jobs(4);
        let levels = cfg.platform.levels.len();
        let mut best_replay = f64::INFINITY;
        for _ in 0..opts.samples.max(1) {
            let traces: Vec<CoreTrace> = (0..cores)
                .map(|c| opts.benchmark.trace(c, Scale::Smoke))
                .collect();
            let obs = telemetry::WindowedCollector::new(1_000, levels);
            let start = Instant::now();
            let (r, _) = sim::run_traces_par_with(&cfg, traces, &io, obs);
            let took = start.elapsed().as_secs_f64();
            assert_eq!(r.total_refs(), total_refs, "replay run was truncated");
            best_replay = best_replay.min(took);
        }
        let was_enabled = metrics::enabled();
        metrics::enable();
        let mut best_registry = f64::INFINITY;
        for _ in 0..opts.samples.max(1) {
            let traces: Vec<CoreTrace> = (0..cores)
                .map(|c| opts.benchmark.trace(c, Scale::Smoke))
                .collect();
            let start = Instant::now();
            let r = sim::run_traces_par(&cfg, traces, &io);
            let took = start.elapsed().as_secs_f64();
            assert_eq!(r.total_refs(), total_refs, "registry run was truncated");
            best_registry = best_registry.min(took);
        }
        if !was_enabled {
            metrics::disable();
        }
        json!({
            "intra_jobs": 4u64,
            "observer_replay_refs_per_sec": total_refs as f64 / best_replay,
            "registry_refs_per_sec": total_refs as f64 / best_registry,
        })
    };

    json!({
        "schema": SCHEMA,
        "benchmark": opts.benchmark.to_string(),
        "scale": "smoke",
        "refs_per_core": opts.refs_per_core as u64,
        "cores": cores as u64,
        "total_refs": total_refs,
        "samples": opts.samples as u64,
        "results": Json::Arr(results),
        "sweep": json!({
            "jobs": jobs as u64,
            "cells": MECHANISMS.len() as u64,
            "total_refs": sweep_refs,
            "ns_per_run": best_sweep * 1e9,
            "refs_per_sec": sweep_refs as f64 / best_sweep,
        }),
        "trace": trace,
        "parallel": parallel,
        "metrics": metrics_section,
    })
}

/// A metric from the observability section, if recorded (PR 9+).
fn metrics_metric(doc: &Json, key: &str) -> Option<f64> {
    doc.get("metrics")?.f64_of(key).ok()
}

/// The intra-run scaling points of a snapshot, if recorded (PR 8+):
/// `(intra_jobs, refs_per_sec)` pairs in recorded order.
fn parallel_points(doc: &Json) -> Option<Vec<(u64, f64)>> {
    let pts = doc.get("parallel")?.get("points")?.as_array()?;
    Some(
        pts.iter()
            .filter_map(|p| {
                Some((
                    p.get("intra_jobs")?.as_u64()?,
                    p.f64_of("refs_per_sec").ok()?,
                ))
            })
            .collect(),
    )
}

/// Aggregate sweep throughput of a snapshot, if recorded (PR 6+).
fn sweep_refs_per_sec(doc: &Json) -> Option<f64> {
    doc.get("sweep")?.f64_of("refs_per_sec").ok()
}

/// A metric from the trace-ingestion section, if recorded (PR 7+).
fn trace_metric(doc: &Json, key: &str) -> Option<f64> {
    doc.get("trace")?.f64_of(key).ok()
}

fn refs_per_sec(doc: &Json, mechanism: &str) -> Option<f64> {
    doc.get("results")?
        .as_array()?
        .iter()
        .find(|r| r.get("mechanism").and_then(Json::as_str) == Some(mechanism))?
        .f64_of("refs_per_sec")
        .ok()
}

/// Renders one snapshot as an aligned refs/s table.
pub fn render(doc: &Json) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{:<10} {:>14}", "mechanism", "refs/s");
    for mech in MECHANISMS {
        if let Some(rps) = refs_per_sec(doc, mech.name()) {
            let _ = writeln!(out, "{:<10} {rps:>14.0}", mech.name());
        }
    }
    if let Some(rps) = sweep_refs_per_sec(doc) {
        let jobs = doc
            .get("sweep")
            .and_then(|s| s.get("jobs"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let _ = writeln!(out, "{:<10} {rps:>14.0}  ({jobs} job(s))", "sweep");
    }
    if let Some(rps) = trace_metric(doc, "replay_refs_per_sec") {
        let gbs = trace_metric(doc, "decode_gb_per_sec").unwrap_or(0.0);
        let drps = trace_metric(doc, "decode_records_per_sec").unwrap_or(0.0);
        let _ = writeln!(out, "{:<10} {drps:>14.0}  ({gbs:.2} GB/s)", "decode");
        let _ = writeln!(out, "{:<10} {rps:>14.0}", "replay");
    }
    if let Some(points) = parallel_points(doc) {
        let host = doc
            .get("parallel")
            .and_then(|p| p.get("host_cores"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        for (intra, rps) in points {
            let label = format!("par@{intra}");
            let _ = writeln!(out, "{label:<10} {rps:>14.0}  ({host} host core(s))");
        }
    }
    if let Some(rps) = metrics_metric(doc, "observer_replay_refs_per_sec") {
        let _ = writeln!(out, "{:<10} {rps:>14.0}", "obs-replay");
    }
    if let Some(rps) = metrics_metric(doc, "registry_refs_per_sec") {
        let _ = writeln!(out, "{:<10} {rps:>14.0}", "registry");
    }
    out
}

/// Renders the mechanism-by-mechanism ratio table `new / old` between two
/// snapshot documents, ending with the geometric-mean speedup line.
pub fn compare(old: &Json, new: &Json) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>8}",
        "mechanism", "old refs/s", "new refs/s", "ratio"
    );
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for mech in MECHANISMS {
        let (Some(a), Some(b)) = (
            refs_per_sec(old, mech.name()),
            refs_per_sec(new, mech.name()),
        ) else {
            let _ = writeln!(out, "{:<10} (missing from one snapshot)", mech.name());
            continue;
        };
        let ratio = b / a;
        log_sum += ratio.ln();
        n += 1;
        let _ = writeln!(out, "{:<10} {a:>14.0} {b:>14.0} {ratio:>7.2}x", mech.name());
    }
    // The sweep aggregate is informational (absent from pre-PR6 snapshots)
    // and excluded from the geomean, which stays per-mechanism.
    match (sweep_refs_per_sec(old), sweep_refs_per_sec(new)) {
        (Some(a), Some(b)) => {
            let _ = writeln!(out, "{:<10} {a:>14.0} {b:>14.0} {:>7.2}x", "sweep", b / a);
        }
        (None, Some(b)) => {
            let _ = writeln!(out, "{:<10} {:>14} {b:>14.0}", "sweep", "-");
        }
        _ => {}
    }
    // Trace-ingestion rows likewise (absent from pre-PR7 snapshots).
    for (label, key) in [
        ("decode", "decode_records_per_sec"),
        ("replay", "replay_refs_per_sec"),
    ] {
        match (trace_metric(old, key), trace_metric(new, key)) {
            (Some(a), Some(b)) => {
                let _ = writeln!(out, "{label:<10} {a:>14.0} {b:>14.0} {:>7.2}x", b / a);
            }
            (None, Some(b)) => {
                let _ = writeln!(out, "{label:<10} {:>14} {b:>14.0}", "-");
            }
            _ => {}
        }
    }
    // Observability rows likewise (absent from pre-PR9 snapshots).
    for (label, key) in [
        ("obs-replay", "observer_replay_refs_per_sec"),
        ("registry", "registry_refs_per_sec"),
    ] {
        match (metrics_metric(old, key), metrics_metric(new, key)) {
            (Some(a), Some(b)) => {
                let _ = writeln!(out, "{label:<10} {a:>14.0} {b:>14.0} {:>7.2}x", b / a);
            }
            (None, Some(b)) => {
                let _ = writeln!(out, "{label:<10} {:>14} {b:>14.0}", "-");
            }
            _ => {}
        }
    }
    // Intra-run scaling rows likewise (absent from pre-PR8 snapshots).
    let new_pts = parallel_points(new).unwrap_or_default();
    let old_pts = parallel_points(old).unwrap_or_default();
    for (intra, b) in new_pts {
        let label = format!("par@{intra}");
        match old_pts.iter().find(|(i, _)| *i == intra) {
            Some((_, a)) => {
                let _ = writeln!(out, "{label:<10} {a:>14.0} {b:>14.0} {:>7.2}x", b / a);
            }
            None => {
                let _ = writeln!(out, "{label:<10} {:>14} {b:>14.0}", "-");
            }
        }
    }
    if n > 0 {
        let _ = writeln!(out, "geomean speedup: {:.2}x", (log_sum / n as f64).exp());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Json {
        measure(&BenchOptions {
            refs_per_core: 200,
            samples: 1,
            benchmark: Benchmark::Mcf,
            jobs: 2,
        })
    }

    #[test]
    fn snapshot_has_schema_and_all_mechanisms() {
        let doc = tiny();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(
            doc.get("results").and_then(Json::as_array).unwrap().len(),
            MECHANISMS.len()
        );
        for mech in MECHANISMS {
            let rps = refs_per_sec(&doc, mech.name()).expect("mechanism present");
            assert!(rps > 0.0, "{}: nonpositive refs/s", mech.name());
        }
        // The document round-trips through text (what --bench-json writes).
        let text = doc.pretty();
        let parsed = minijson::parse(&text).expect("valid JSON");
        assert_eq!(refs_per_sec(&parsed, "Base"), refs_per_sec(&doc, "Base"));
    }

    #[test]
    fn snapshot_records_sweep_aggregate() {
        let doc = tiny();
        let rps = sweep_refs_per_sec(&doc).expect("sweep section present");
        assert!(rps > 0.0);
        assert_eq!(
            doc.get("sweep")
                .and_then(|s| s.get("cells"))
                .and_then(Json::as_u64),
            Some(MECHANISMS.len() as u64)
        );
        assert!(render(&doc).contains("sweep"));
    }

    #[test]
    fn snapshot_records_trace_ingestion() {
        let doc = tiny();
        let decode = trace_metric(&doc, "decode_records_per_sec").expect("trace section");
        let replay = trace_metric(&doc, "replay_refs_per_sec").expect("trace section");
        assert!(decode > 0.0 && replay > 0.0);
        // Decode must outrun replay for streaming to be simulator-bound.
        assert!(decode > replay, "decode {decode} <= replay {replay}");
        let table = render(&doc);
        assert!(
            table.contains("decode") && table.contains("replay"),
            "{table}"
        );
    }

    #[test]
    fn snapshot_records_parallel_scaling() {
        let doc = tiny();
        let points = parallel_points(&doc).expect("parallel section present");
        assert_eq!(
            points.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![1, 2, 4, 8]
        );
        assert!(points.iter().all(|&(_, rps)| rps > 0.0));
        let table = render(&doc);
        assert!(table.contains("par@8"), "{table}");
    }

    #[test]
    fn compare_tolerates_missing_parallel_section() {
        let new = tiny();
        // A pre-PR8 snapshot: same document minus the parallel section.
        let mut old = new.clone();
        old.set("parallel", Json::Null);
        let table = compare(&old, &new);
        assert!(table.contains("geomean speedup: 1.00x"), "{table}");
        assert!(table.contains("par@8"), "{table}");
    }

    #[test]
    fn snapshot_records_observability_aggregate() {
        let doc = tiny();
        let replay = metrics_metric(&doc, "observer_replay_refs_per_sec").expect("metrics section");
        let registry = metrics_metric(&doc, "registry_refs_per_sec").expect("metrics section");
        assert!(replay > 0.0 && registry > 0.0);
        let table = render(&doc);
        assert!(
            table.contains("obs-replay") && table.contains("registry"),
            "{table}"
        );
    }

    #[test]
    fn compare_tolerates_missing_metrics_section() {
        let new = tiny();
        // A pre-PR9 snapshot: same document minus the metrics section.
        let mut old = new.clone();
        old.set("metrics", Json::Null);
        let table = compare(&old, &new);
        assert!(table.contains("geomean speedup: 1.00x"), "{table}");
        assert!(table.contains("obs-replay"), "{table}");
        assert!(table.contains("registry"), "{table}");
    }

    #[test]
    fn compare_tolerates_missing_trace_section() {
        let new = tiny();
        let mut old = new.clone();
        old.set("trace", Json::Null);
        let table = compare(&old, &new);
        assert!(table.contains("geomean speedup: 1.00x"), "{table}");
        assert!(table.contains("replay"), "{table}");
    }

    #[test]
    fn compare_tolerates_missing_sweep_section() {
        let new = tiny();
        // A pre-PR6 snapshot: same document minus the sweep section.
        let mut old = new.clone();
        old.set("sweep", Json::Null);
        let table = compare(&old, &new);
        assert!(table.contains("geomean speedup: 1.00x"), "{table}");
        assert!(table.contains("sweep"), "{table}");
    }

    #[test]
    fn compare_of_identical_snapshots_is_unity() {
        let doc = tiny();
        let table = compare(&doc, &doc);
        assert!(table.contains("geomean speedup: 1.00x"), "{table}");
        for mech in MECHANISMS {
            assert!(table.contains(mech.name()), "{table}");
        }
    }
}
