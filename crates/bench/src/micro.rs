//! Minimal std-only micro-benchmark harness.
//!
//! Replaces the criterion dependency for the files under `benches/`. Each
//! benchmark is a closure timed with [`std::time::Instant`]: a short warmup
//! sizes the batch so one timed sample lasts roughly [`SAMPLE_TARGET`], then
//! several samples run and the fastest is reported (ns/op and, when an
//! element count is given, million elements per second). Results print as
//! aligned rows; nothing is persisted — the simulator-level history lives in
//! `BENCH_sim.json` via the `redhip-sim bench` subcommand.

use std::time::{Duration, Instant};

/// Target wall time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
/// Timed samples per benchmark; the fastest is reported.
const SAMPLES: usize = 5;

/// Quick mode (`REDHIP_BENCH_QUICK=1`): one short sample per benchmark.
/// The numbers are meaningless as measurements — this exists so CI can
/// execute every bench body as a smoke test without paying for warmup
/// and repeated samples.
fn quick() -> bool {
    std::env::var_os("REDHIP_BENCH_QUICK").is_some()
}

fn samples() -> usize {
    if quick() {
        1
    } else {
        SAMPLES
    }
}

fn sample_target() -> Duration {
    if quick() {
        Duration::from_millis(1)
    } else {
        SAMPLE_TARGET
    }
}

/// A named group of benchmarks, printed with a header like criterion's.
pub struct Group {
    name: String,
    /// Elements processed per closure invocation (for throughput rows).
    elements: u64,
}

impl Group {
    /// Starts a group; `elements` is the per-iteration element count used
    /// for throughput reporting (0 disables the throughput column).
    pub fn new(name: &str, elements: u64) -> Self {
        println!("group {name}");
        Self {
            name: name.to_string(),
            elements,
        }
    }

    /// Benchmarks `f` repeatedly and prints one result row.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Warmup + calibration: find an iteration count filling the target.
        let target = sample_target();
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let took = start.elapsed();
            if took >= target / 4 {
                let scale = target.as_secs_f64() / took.as_secs_f64().max(1e-9);
                iters = ((iters as f64 * scale) as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(8).max(iters + 1);
        }
        let mut best = Duration::MAX;
        for _ in 0..samples() {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            best = best.min(start.elapsed());
        }
        let ns_per_iter = best.as_secs_f64() * 1e9 / iters as f64;
        let throughput = if self.elements > 0 {
            let eps = self.elements as f64 * iters as f64 / best.as_secs_f64();
            format!("  {:>10.2} Melem/s", eps / 1e6)
        } else {
            String::new()
        };
        println!(
            "  {:<40} {:>12.1} ns/iter{throughput}",
            format!("{}/{name}", self.name),
            ns_per_iter
        );
    }

    /// Like [`Group::bench`], but runs `setup` outside the timed region
    /// before every invocation of `f` (criterion's `iter_batched` with
    /// per-iteration batches).
    pub fn bench_with_setup<T, R>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut f: impl FnMut(T) -> R,
    ) {
        // Per-iteration setup is only used for heavyweight bodies (whole
        // simulations, full-table rebuilds), so time single invocations.
        let mut best = Duration::MAX;
        let mut taken = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while taken < samples() && Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(f(input));
            best = best.min(start.elapsed());
            taken += 1;
        }
        let throughput = if self.elements > 0 {
            let eps = self.elements as f64 / best.as_secs_f64();
            format!("  {:>10.2} Melem/s", eps / 1e6)
        } else {
            String::new()
        };
        println!(
            "  {:<40} {:>12.1} ns/iter{throughput}",
            format!("{}/{name}", self.name),
            best.as_secs_f64() * 1e9
        );
    }
}
