//! Static data for the paper's motivational Figure 1: cache sizes by level
//! and (approximate) year of first appearance in commercial processors.

/// One point of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePoint {
    /// Approximate year of appearance.
    pub year: u32,
    /// Cache level (1–4).
    pub level: u8,
    /// Capacity in kilobytes.
    pub kb: u64,
}

/// Figure 1's series, transcribed from the paper's plot (log-2 KB axis,
/// 1987–2012): L1 from a few KB to tens of KB; L2 appearing in the early
/// 90s; L3 in the early 2000s; L4 (eDRAM-class) arriving around 2012.
pub const FIGURE1: &[CachePoint] = &[
    CachePoint {
        year: 1987,
        level: 1,
        kb: 4,
    },
    CachePoint {
        year: 1992,
        level: 1,
        kb: 8,
    },
    CachePoint {
        year: 1997,
        level: 1,
        kb: 16,
    },
    CachePoint {
        year: 2002,
        level: 1,
        kb: 32,
    },
    CachePoint {
        year: 2007,
        level: 1,
        kb: 32,
    },
    CachePoint {
        year: 2012,
        level: 1,
        kb: 64,
    },
    CachePoint {
        year: 1992,
        level: 2,
        kb: 256,
    },
    CachePoint {
        year: 1997,
        level: 2,
        kb: 512,
    },
    CachePoint {
        year: 2002,
        level: 2,
        kb: 512,
    },
    CachePoint {
        year: 2007,
        level: 2,
        kb: 1024,
    },
    CachePoint {
        year: 2012,
        level: 2,
        kb: 256,
    },
    CachePoint {
        year: 2002,
        level: 3,
        kb: 2048,
    },
    CachePoint {
        year: 2007,
        level: 3,
        kb: 8192,
    },
    CachePoint {
        year: 2012,
        level: 3,
        kb: 16384,
    },
    CachePoint {
        year: 2012,
        level: 4,
        kb: 65536,
    },
];

/// Renders Figure 1 as a text table (rows = level, columns = year).
pub fn render_figure1() -> String {
    let years = [1987u32, 1992, 1997, 2002, 2007, 2012];
    let mut out =
        String::from("Figure 1: cache sizes (KB) by level and approximate year of appearance\n");
    out.push_str("level ");
    for y in years {
        out.push_str(&format!("{y:>8}"));
    }
    out.push('\n');
    for level in 1..=4u8 {
        out.push_str(&format!("L{level}    "));
        for y in years {
            match FIGURE1.iter().find(|p| p.level == level && p.year == y) {
                Some(p) => out.push_str(&format!("{:>8}", p.kb)),
                None => out.push_str(&format!("{:>8}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str("Trend: deeper every decade; L4 caches appear by 2012 (the paper's premise).\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_grow_down_the_hierarchy() {
        for year in [2002u32, 2007, 2012] {
            let mut last = 0;
            for level in 1..=4u8 {
                if let Some(p) = FIGURE1.iter().find(|p| p.level == level && p.year == year) {
                    assert!(
                        p.kb > last,
                        "L{level} in {year} not larger than L{}",
                        level - 1
                    );
                    last = p.kb;
                }
            }
        }
    }

    #[test]
    fn l4_appears_only_at_the_end() {
        assert!(FIGURE1
            .iter()
            .filter(|p| p.level == 4)
            .all(|p| p.year >= 2012));
    }

    #[test]
    fn render_contains_all_levels() {
        let s = render_figure1();
        for l in ["L1", "L2", "L3", "L4"] {
            assert!(s.contains(l));
        }
        assert!(s.contains("65536"));
    }
}
