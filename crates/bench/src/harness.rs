//! Shared experiment plumbing: configs, per-workload runs, parallel sweeps.
//!
//! Parallel execution rides on the `sweep` crate's work-stealing pool;
//! worker counts honor `REDHIP_JOBS` (see [`sweep::default_jobs`]).

use energy_model::presets::{demo_scale, table_i};
use energy_model::PlatformSpec;
use sim::{run_traces, run_traces_with, Mechanism, RunResult, SimConfig, SimObserver};
use sweep::{SweepEngine, SweepPlan, SweepResults};
use workloads::{Benchmark, Scale};

/// Which platform/workload scale an experiment runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureScale {
    /// Tiny: for tests and smoke runs of the harness itself.
    Smoke,
    /// Default: the 8×-scaled platform (see `energy_model::presets`).
    Demo,
    /// Full Table I configuration (slow; paper-sized runs).
    Paper,
}

impl FigureScale {
    /// The matching workload scale.
    pub fn workload_scale(self) -> Scale {
        match self {
            FigureScale::Smoke => Scale::Smoke,
            FigureScale::Demo => Scale::Demo,
            FigureScale::Paper => Scale::Paper,
        }
    }

    /// The matching platform parameters.
    pub fn platform(self) -> PlatformSpec {
        match self {
            // Smoke uses the demo platform: tiny workloads against the
            // demo hierarchy exercise every code path cheaply.
            FigureScale::Smoke | FigureScale::Demo => demo_scale(),
            FigureScale::Paper => table_i(),
        }
    }

    /// Default references per core.
    pub fn default_refs(self) -> usize {
        match self {
            FigureScale::Smoke => 20_000,
            _ => self.workload_scale().default_refs_per_core(),
        }
    }

    /// Parses `smoke` / `demo` / `paper`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(FigureScale::Smoke),
            "demo" => Some(FigureScale::Demo),
            "paper" => Some(FigureScale::Paper),
            _ => None,
        }
    }
}

/// Builds the paper-default configuration for one mechanism at a scale.
pub fn mechanism_config(scale: FigureScale, mechanism: Mechanism, refs: usize) -> SimConfig {
    let mut cfg = SimConfig::new(scale.platform(), mechanism);
    cfg.refs_per_core = refs;
    cfg.recalib_period = Some(scale.workload_scale().recalib_period());
    cfg
}

/// Runs one workload under `cfg`: one generator per core (each core of
/// `mix`/`blas`/`pmf` differs by construction; the SPEC benchmarks are the
/// paper's duplicated-trace setup with per-core seeds).
pub fn run_workload(cfg: &SimConfig, benchmark: Benchmark, scale: FigureScale) -> RunResult {
    let mut cfg = cfg.clone();
    cfg.avg_cpi = benchmark.avg_cpi();
    let ws = scale.workload_scale();
    let traces = (0..cfg.platform.cores)
        .map(|core| benchmark.trace(core, ws))
        .collect();
    run_traces(&cfg, traces)
}

/// Like [`run_workload`], but runs the deterministic bound–weave engine
/// with `opts.jobs` intra-run worker threads (see [`sim::parallel`]).
/// Byte-identical to [`run_workload`] at every thread count; falls back
/// to the sequential scheduler outside the engine's envelope.
pub fn run_workload_par(
    cfg: &SimConfig,
    benchmark: Benchmark,
    scale: FigureScale,
    opts: &sim::IntraOptions,
) -> RunResult {
    let mut cfg = cfg.clone();
    cfg.avg_cpi = benchmark.avg_cpi();
    let ws = scale.workload_scale();
    let traces = (0..cfg.platform.cores)
        .map(|core| benchmark.trace(core, ws))
        .collect();
    sim::run_traces_par(&cfg, traces, opts)
}

/// Like [`run_workload_par`], but reports telemetry to `obs` while
/// running: the bound–weave engine buffers observer events in the commit
/// log and replays them in exact sequential `(clock, core)` weave order,
/// so collector output is byte-identical to [`run_workload_with`] at
/// every thread count.
pub fn run_workload_par_with<O: SimObserver>(
    cfg: &SimConfig,
    benchmark: Benchmark,
    scale: FigureScale,
    opts: &sim::IntraOptions,
    obs: O,
) -> (RunResult, O) {
    let mut cfg = cfg.clone();
    cfg.avg_cpi = benchmark.avg_cpi();
    let ws = scale.workload_scale();
    let traces = (0..cfg.platform.cores)
        .map(|core| benchmark.trace(core, ws))
        .collect();
    sim::run_traces_par_with(&cfg, traces, opts, obs)
}

/// Like [`run_workload`], but reports telemetry to `obs` while running.
pub fn run_workload_with<O: SimObserver>(
    cfg: &SimConfig,
    benchmark: Benchmark,
    scale: FigureScale,
    obs: O,
) -> (RunResult, O) {
    let mut cfg = cfg.clone();
    cfg.avg_cpi = benchmark.avg_cpi();
    let ws = scale.workload_scale();
    let traces = (0..cfg.platform.cores)
        .map(|core| benchmark.trace(core, ws))
        .collect();
    run_traces_with(&cfg, traces, obs)
}

/// [`run_parallel`] with a stderr [`telemetry::Heartbeat`]: the workers
/// bump a shared atomic tick counter and the calling thread drains it into
/// the heartbeat, so long sweeps report jobs/s, % complete and ETA without
/// any lock on the job hot path.
pub fn run_parallel_hb<J, R, F>(label: &str, jobs: Vec<J>, worker: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    run_parallel_inner(Some(label), jobs, worker)
}

/// Runs a set of jobs on the work-stealing pool (the harness is
/// embarrassingly parallel across workload × mechanism). Results return in
/// job order regardless of worker count or completion order.
pub fn run_parallel<J, R, F>(jobs: Vec<J>, worker: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    run_parallel_inner(None, jobs, worker)
}

fn run_parallel_inner<J, R, F>(label: Option<&str>, jobs: Vec<J>, worker: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let n = jobs.len();
    let mut heart = label.map(|l| telemetry::Heartbeat::new(l, "jobs", n as u64));
    let threads = sweep::default_jobs().min(n.max(1));
    if threads <= 1 {
        let out = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let r = worker(j);
                if let Some(h) = heart.as_mut() {
                    h.set_done(i as u64 + 1);
                }
                r
            })
            .collect();
        if let Some(h) = heart.as_mut() {
            h.finish();
        }
        return out;
    }
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let order: Vec<usize> = (0..n).collect();
    let ticks = std::sync::atomic::AtomicU64::new(0);
    sweep::pool::run_ordered(
        threads,
        &order,
        &ticks,
        |done| {
            if let Some(h) = heart.as_mut() {
                h.set_done(done);
            }
        },
        |i| {
            *slots[i].lock().expect("slot poisoned") = Some(worker(&jobs[i]));
        },
    )
    .unwrap_or_else(|e| panic!("{e}"));
    if let Some(h) = heart.as_mut() {
        h.finish();
    }
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("job produced no result")
        })
        .collect()
}

/// Runs a single-figure [`SweepPlan`] immediately on a default engine —
/// the compatibility path for callers that want one figure without
/// assembling the whole-figure-set job graph themselves.
pub fn run_plan(plan: &SweepPlan, label: &str) -> SweepResults {
    SweepEngine::new(sweep::default_jobs())
        .run(plan, label)
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(FigureScale::parse("demo"), Some(FigureScale::Demo));
        assert_eq!(FigureScale::parse("PAPER"), Some(FigureScale::Paper));
        assert_eq!(FigureScale::parse("nope"), None);
    }

    #[test]
    fn smoke_platform_is_demo_hierarchy() {
        let p = FigureScale::Smoke.platform();
        assert_eq!(p.llc().capacity_bytes, 8 << 20);
        assert_eq!(FigureScale::Paper.platform().llc().capacity_bytes, 64 << 20);
    }

    #[test]
    fn mechanism_config_applies_scale_defaults() {
        let c = mechanism_config(FigureScale::Demo, Mechanism::Redhip, 1234);
        assert_eq!(c.refs_per_core, 1234);
        assert_eq!(c.recalib_period, Some(65_536));
    }

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<u64> = (0..20).collect();
        let out = run_parallel(jobs, |&j| j * 2);
        assert_eq!(out, (0..20).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn smoke_workload_run_end_to_end() {
        let cfg = mechanism_config(FigureScale::Smoke, Mechanism::Redhip, 5_000);
        let r = run_workload(&cfg, Benchmark::Mcf, FigureScale::Smoke);
        assert_eq!(r.total_refs(), 5_000 * 8);
        assert!(r.hit_rate(0) > 0.2);
        assert!(r.prediction.lookups > 0);
    }
}
