//! Shared experiment plumbing: configs, per-workload runs, parallel sweeps.

use energy_model::presets::{demo_scale, table_i};
use energy_model::PlatformSpec;
use sim::{run_traces, run_traces_with, Mechanism, RunResult, SimConfig, SimObserver};
use workloads::{Benchmark, Scale};

/// Which platform/workload scale an experiment runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureScale {
    /// Tiny: for tests and smoke runs of the harness itself.
    Smoke,
    /// Default: the 8×-scaled platform (see `energy_model::presets`).
    Demo,
    /// Full Table I configuration (slow; paper-sized runs).
    Paper,
}

impl FigureScale {
    /// The matching workload scale.
    pub fn workload_scale(self) -> Scale {
        match self {
            FigureScale::Smoke => Scale::Smoke,
            FigureScale::Demo => Scale::Demo,
            FigureScale::Paper => Scale::Paper,
        }
    }

    /// The matching platform parameters.
    pub fn platform(self) -> PlatformSpec {
        match self {
            // Smoke uses the demo platform: tiny workloads against the
            // demo hierarchy exercise every code path cheaply.
            FigureScale::Smoke | FigureScale::Demo => demo_scale(),
            FigureScale::Paper => table_i(),
        }
    }

    /// Default references per core.
    pub fn default_refs(self) -> usize {
        match self {
            FigureScale::Smoke => 20_000,
            _ => self.workload_scale().default_refs_per_core(),
        }
    }

    /// Parses `smoke` / `demo` / `paper`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(FigureScale::Smoke),
            "demo" => Some(FigureScale::Demo),
            "paper" => Some(FigureScale::Paper),
            _ => None,
        }
    }
}

/// Builds the paper-default configuration for one mechanism at a scale.
pub fn mechanism_config(scale: FigureScale, mechanism: Mechanism, refs: usize) -> SimConfig {
    let mut cfg = SimConfig::new(scale.platform(), mechanism);
    cfg.refs_per_core = refs;
    cfg.recalib_period = Some(scale.workload_scale().recalib_period());
    cfg
}

/// Runs one workload under `cfg`: one generator per core (each core of
/// `mix`/`blas`/`pmf` differs by construction; the SPEC benchmarks are the
/// paper's duplicated-trace setup with per-core seeds).
pub fn run_workload(cfg: &SimConfig, benchmark: Benchmark, scale: FigureScale) -> RunResult {
    let mut cfg = cfg.clone();
    cfg.avg_cpi = benchmark.avg_cpi();
    let ws = scale.workload_scale();
    let traces = (0..cfg.platform.cores)
        .map(|core| benchmark.trace(core, ws))
        .collect();
    run_traces(&cfg, traces)
}

/// Like [`run_workload`], but reports telemetry to `obs` while running.
pub fn run_workload_with<O: SimObserver>(
    cfg: &SimConfig,
    benchmark: Benchmark,
    scale: FigureScale,
    obs: O,
) -> (RunResult, O) {
    let mut cfg = cfg.clone();
    cfg.avg_cpi = benchmark.avg_cpi();
    let ws = scale.workload_scale();
    let traces = (0..cfg.platform.cores)
        .map(|core| benchmark.trace(core, ws))
        .collect();
    run_traces_with(&cfg, traces, obs)
}

/// [`run_parallel`] with a stderr [`telemetry::Heartbeat`]: one tick per
/// completed job, so long sweeps report jobs/s, % complete and ETA instead
/// of ad-hoc progress lines.
pub fn run_parallel_hb<J, R, F>(label: &str, jobs: Vec<J>, worker: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let heart = std::sync::Mutex::new(telemetry::Heartbeat::new(label, "jobs", jobs.len() as u64));
    let out = run_parallel(jobs, |j| {
        let r = worker(j);
        heart.lock().expect("heartbeat poisoned").add(1);
        r
    });
    heart.lock().expect("heartbeat poisoned").finish();
    out
}

/// Runs a set of jobs across threads (the harness is embarrassingly
/// parallel across workload × mechanism). Results return in job order.
pub fn run_parallel<J, R, F>(jobs: Vec<J>, worker: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs.len().max(1));
    if threads <= 1 {
        return jobs.iter().map(&worker).collect();
    }
    let n = jobs.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = worker(&jobs[i]);
                *slots[i].lock().expect("slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("job produced no result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(FigureScale::parse("demo"), Some(FigureScale::Demo));
        assert_eq!(FigureScale::parse("PAPER"), Some(FigureScale::Paper));
        assert_eq!(FigureScale::parse("nope"), None);
    }

    #[test]
    fn smoke_platform_is_demo_hierarchy() {
        let p = FigureScale::Smoke.platform();
        assert_eq!(p.llc().capacity_bytes, 8 << 20);
        assert_eq!(FigureScale::Paper.platform().llc().capacity_bytes, 64 << 20);
    }

    #[test]
    fn mechanism_config_applies_scale_defaults() {
        let c = mechanism_config(FigureScale::Demo, Mechanism::Redhip, 1234);
        assert_eq!(c.refs_per_core, 1234);
        assert_eq!(c.recalib_period, Some(65_536));
    }

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<u64> = (0..20).collect();
        let out = run_parallel(jobs, |&j| j * 2);
        assert_eq!(out, (0..20).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn smoke_workload_run_end_to_end() {
        let cfg = mechanism_config(FigureScale::Smoke, Mechanism::Redhip, 5_000);
        let r = run_workload(&cfg, Benchmark::Mcf, FigureScale::Smoke);
        assert_eq!(r.total_refs(), 5_000 * 8);
        assert!(r.hit_rate(0) > 0.2);
        assert!(r.prediction.lookups > 0);
    }
}
