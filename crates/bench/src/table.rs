//! Plain-text table rendering for the figure harness output.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Formats a percentage cell (`0.083` → `+8.3%`).
    pub fn pct(v: f64) -> String {
        format!("{:+.1}%", v * 100.0)
    }

    /// Formats a ratio cell (`0.39` → `0.390`).
    pub fn ratio(v: f64) -> String {
        format!("{v:.3}")
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the numbers.
                if c == 0 {
                    line.push_str(&format!("{:<w$}", cell, w = widths[c]));
                } else {
                    line.push_str(&format!("{:>w$}", cell, w = widths[c]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["bench", "Base", "ReDHiP"]);
        t.row(vec!["bwaves".into(), "1.000".into(), "0.390".into()]);
        t.row(vec!["mcf".into(), "1.000".into(), "0.512".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("ReDHiP"));
        assert!(lines[2].starts_with("bwaves"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(TextTable::pct(0.083), "+8.3%");
        assert_eq!(TextTable::pct(-0.03), "-3.0%");
        assert_eq!(TextTable::ratio(0.39), "0.390");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
