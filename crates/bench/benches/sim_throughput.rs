//! End-to-end simulator throughput per mechanism (references/second): the
//! number that determines how long the figure harness takes. Also measures
//! the observer overhead: `NullObserver` (the default path, expected to be
//! free) against an attached `WindowedCollector` and a full telemetry
//! `Tee` (collector + silent heartbeat).

use bench::micro::Group;
use energy_model::presets::demo_scale;
use sim::{run_traces, run_traces_with, CoreTrace, Mechanism, SimConfig};
use telemetry::{Heartbeat, HeartbeatObserver, NullObserver, Tee, WindowedCollector};
use workloads::{Benchmark, Scale};

const REFS: usize = 5_000;

fn traces() -> Vec<CoreTrace> {
    (0..8)
        .map(|c| Benchmark::Mcf.trace(c, Scale::Smoke))
        .collect()
}

fn mechanisms() {
    let g = Group::new("sim", (REFS * 8) as u64);
    for mech in [
        Mechanism::Base,
        Mechanism::Redhip,
        Mechanism::Cbf,
        Mechanism::Phased,
        Mechanism::Oracle,
    ] {
        let mut cfg = SimConfig::new(demo_scale(), mech);
        cfg.refs_per_core = REFS;
        cfg.recalib_period = Some(8_192);
        g.bench_with_setup(&format!("{}_40k_refs", mech.name()), traces, |t| {
            run_traces(&cfg, t)
        });
    }
}

/// Observer overhead on the ReDHiP configuration: explicit `NullObserver`
/// (must match the plain `run_traces` row above), a windowed collector,
/// and the full CLI telemetry stack.
fn observers() {
    let g = Group::new("sim_observer", (REFS * 8) as u64);
    let mut cfg = SimConfig::new(demo_scale(), Mechanism::Redhip);
    cfg.refs_per_core = REFS;
    cfg.recalib_period = Some(8_192);
    let levels = cfg.platform.levels.len();

    g.bench_with_setup("redhip_null_observer", traces, |t| {
        run_traces_with(&cfg, t, NullObserver)
    });
    g.bench_with_setup("redhip_windowed_collector", traces, |t| {
        run_traces_with(&cfg, t, WindowedCollector::new(1_000, levels))
    });
    g.bench_with_setup("redhip_collector_plus_heartbeat", traces, |t| {
        let obs = Tee::new(
            WindowedCollector::new(1_000, levels),
            HeartbeatObserver::new(Heartbeat::new("bench", "refs", (REFS * 8) as u64).silent()),
        );
        run_traces_with(&cfg, t, obs)
    });
    // The parallel engine's commit-log replay path: observer events are
    // buffered per quantum and replayed in sequential weave order, so the
    // collector sees the same stream as the rows above.
    let par4 = sim::IntraOptions::with_jobs(4);
    g.bench_with_setup("redhip_par4_replay_collector", traces, |t| {
        sim::run_traces_par_with(&cfg, t, &par4, WindowedCollector::new(1_000, levels))
    });
    // Registry overhead pair on the instrumented parallel path: disabled
    // must match the row above within noise (every record site is one
    // relaxed load and a branch).
    metrics::disable();
    g.bench_with_setup("redhip_par4_registry_disabled", traces, |t| {
        sim::run_traces_par(&cfg, t, &par4)
    });
    metrics::enable();
    g.bench_with_setup("redhip_par4_registry_enabled", traces, |t| {
        sim::run_traces_par(&cfg, t, &par4)
    });
    metrics::disable();
}

fn prefetch_overhead() {
    let g = Group::new("sim_prefetch", (REFS * 8) as u64);
    let mut cfg = SimConfig::new(demo_scale(), Mechanism::Base);
    cfg.refs_per_core = REFS;
    cfg.prefetch = Some(prefetch::StrideConfig::default());
    g.bench_with_setup("base_plus_stride_prefetch", traces, |t| run_traces(&cfg, t));
}

fn main() {
    mechanisms();
    observers();
    prefetch_overhead();
}
