//! End-to-end simulator throughput per mechanism (references/second): the
//! number that determines how long the figure harness takes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use energy_model::presets::demo_scale;
use sim::{run_traces, CoreTrace, Mechanism, SimConfig};
use workloads::{Benchmark, Scale};

const REFS: usize = 5_000;

fn traces() -> Vec<CoreTrace> {
    (0..8).map(|c| Benchmark::Mcf.trace(c, Scale::Smoke)).collect()
}

fn mechanisms(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.throughput(Throughput::Elements((REFS * 8) as u64));
    for mech in [
        Mechanism::Base,
        Mechanism::Redhip,
        Mechanism::Cbf,
        Mechanism::Phased,
        Mechanism::Oracle,
    ] {
        g.bench_function(format!("{}_40k_refs", mech.name()), |b| {
            let mut cfg = SimConfig::new(demo_scale(), mech);
            cfg.refs_per_core = REFS;
            cfg.recalib_period = Some(8_192);
            b.iter_batched(
                traces,
                |t| run_traces(&cfg, t),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn prefetch_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_prefetch");
    g.sample_size(10);
    g.throughput(Throughput::Elements((REFS * 8) as u64));
    g.bench_function("base_plus_stride_prefetch", |b| {
        let mut cfg = SimConfig::new(demo_scale(), Mechanism::Base);
        cfg.refs_per_core = REFS;
        cfg.prefetch = Some(prefetch::StrideConfig::default());
        b.iter_batched(traces, |t| run_traces(&cfg, t), BatchSize::PerIteration)
    });
    g.finish();
}

criterion_group!(benches, mechanisms, prefetch_overhead);
criterion_main!(benches);
