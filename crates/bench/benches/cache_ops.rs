//! Microbenchmarks of the cache substrate: single-array operations and
//! full hierarchy traversals under each inclusion policy.

use cache_sim::{
    Cache, CacheConfig, DeepHierarchy, HierarchyConfig, InclusionPolicy, ReplacementPolicy,
    Traversal,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn single_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Srrip,
    ] {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 512 << 10,
            assoc: 16,
            block_bytes: 64,
            policy,
        });
        // Warm with a resident working set.
        for b in 0..4096u64 {
            cache.fill(b, false);
        }
        g.bench_function(format!("{policy:?}_hit"), |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = (x + 1) % 4096;
                black_box(cache.access(x, false))
            })
        });
        g.bench_function(format!("{policy:?}_fill_evict"), |b| {
            let mut x = 1u64 << 32;
            b.iter(|| {
                x += 1;
                black_box(cache.fill(x, false))
            })
        });
    }
    g.finish();
}

fn hierarchy_walks(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(1));
    for policy in [
        InclusionPolicy::Inclusive,
        InclusionPolicy::Exclusive,
        InclusionPolicy::Hybrid,
    ] {
        let cfg = HierarchyConfig {
            cores: 2,
            private_levels: vec![
                CacheConfig::lru(32 << 10, 4, 64),
                CacheConfig::lru(256 << 10, 8, 64),
                CacheConfig::lru(512 << 10, 16, 64),
            ],
            shared_llc: CacheConfig::lru(8 << 20, 16, 64),
            policy,
        };
        let mut h = DeepHierarchy::new(&cfg);
        let mut t = Traversal::new();
        g.bench_function(format!("{policy:?}_demand_mixed"), |b| {
            let mut x = 0x9e37_79b9u64;
            b.iter(|| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // 75% hot (32 KB), 25% cold sweep.
                let block = if !x.is_multiple_of(4) { x % 512 } else { (1 << 24) + (x >> 40) };
                let core = (x % 2) as usize;
                t.clear();
                if !h.access_first(core, block, false, &mut t) {
                    let mut hit = false;
                    for lvl in 1..h.levels() {
                        if h.lookup(core, lvl, block, &mut t) {
                            h.promote(core, lvl, block, false, &mut t);
                            hit = true;
                            break;
                        }
                    }
                    if !hit {
                        h.fill_from_memory(core, block, false, &mut t);
                    }
                }
                black_box(t.hit_level)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, single_cache, hierarchy_walks);
criterion_main!(benches);
