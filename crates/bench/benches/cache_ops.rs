//! Microbenchmarks of the cache substrate: single-array operations and
//! full hierarchy traversals under each inclusion policy.

use bench::micro::Group;
use cache_sim::{
    Cache, CacheConfig, DeepHierarchy, HierarchyConfig, InclusionPolicy, ReplacementPolicy,
    Traversal,
};

fn single_cache() {
    let g = Group::new("cache", 1);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Srrip,
    ] {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 512 << 10,
            assoc: 16,
            block_bytes: 64,
            policy,
        });
        // Warm with a resident working set.
        for b in 0..4096u64 {
            cache.fill(b, false);
        }
        let mut x = 0u64;
        g.bench(&format!("{policy:?}_hit"), || {
            x = (x + 1) % 4096;
            cache.access(x, false)
        });
        let mut y = 1u64 << 32;
        g.bench(&format!("{policy:?}_fill_evict"), || {
            y += 1;
            cache.fill(y, false)
        });
    }
}

fn hierarchy_walks() {
    let g = Group::new("hierarchy", 1);
    for policy in [
        InclusionPolicy::Inclusive,
        InclusionPolicy::Exclusive,
        InclusionPolicy::Hybrid,
    ] {
        let cfg = HierarchyConfig {
            cores: 2,
            private_levels: vec![
                CacheConfig::lru(32 << 10, 4, 64),
                CacheConfig::lru(256 << 10, 8, 64),
                CacheConfig::lru(512 << 10, 16, 64),
            ],
            shared_llc: CacheConfig::lru(8 << 20, 16, 64),
            policy,
        };
        let mut h = DeepHierarchy::new(&cfg);
        let mut t = Traversal::new();
        let mut x = 0x9e37_79b9u64;
        g.bench(&format!("{policy:?}_demand_mixed"), || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // 75% hot (32 KB), 25% cold sweep.
            let block = if !x.is_multiple_of(4) {
                x % 512
            } else {
                (1 << 24) + (x >> 40)
            };
            let core = (x % 2) as usize;
            t.clear();
            if !h.access_first(core, block, false, &mut t) {
                let mut hit = false;
                for lvl in 1..h.levels() {
                    if h.lookup(core, lvl, block, &mut t) {
                        h.promote(core, lvl, block, false, &mut t);
                        hit = true;
                        break;
                    }
                }
                if !hit {
                    h.fill_from_memory(core, block, false, &mut t);
                }
            }
            t.hit_level
        });
    }
}

fn main() {
    single_cache();
    hierarchy_walks();
}
