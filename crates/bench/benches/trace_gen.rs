//! Throughput of every workload generator — trace generation must stay far
//! cheaper than simulation so the figure harness is simulator-bound.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use workloads::{Benchmark, Scale};

fn generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    g.throughput(Throughput::Elements(10_000));
    for bench in Benchmark::ALL {
        g.bench_function(bench.name(), |b| {
            // Construction cost (graph building etc.) is paid once outside
            // the timed loop, as the simulator does.
            let mut stream = bench.trace(0, Scale::Smoke);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..10_000 {
                    acc ^= stream.next().expect("infinite").addr;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, generators);
criterion_main!(benches);
