//! Throughput of every workload generator — trace generation must stay far
//! cheaper than simulation so the figure harness is simulator-bound.

use bench::micro::Group;
use workloads::{Benchmark, Scale};

fn main() {
    let g = Group::new("trace_gen", 10_000);
    for bench in Benchmark::ALL {
        // Construction cost (graph building etc.) is paid once outside
        // the timed loop, as the simulator does.
        let mut stream = bench.trace(0, Scale::Smoke);
        g.bench(bench.name(), || {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc ^= stream.next().expect("infinite").addr;
            }
            acc
        });
    }
}
