//! Microbenchmarks of the predictor structures: the operations on the
//! simulator's hottest path (one prediction per L1 miss, one update per
//! LLC fill) plus the full-table recalibration rebuild.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use redhip::{
    BitsHash, CbfConfig, CountingBloomFilter, ExactCountingTable, PredictionTable, PresencePredictor,
    XorHash,
};

fn hash_functions(c: &mut Criterion) {
    let bits = BitsHash::new(19);
    let xor = XorHash::new(19, 0);
    let mut g = c.benchmark_group("hash");
    g.throughput(Throughput::Elements(1));
    g.bench_function("bits_hash", |b| {
        let mut x = 0x1234_5678u64;
        b.iter(|| {
            x = x.wrapping_mul(0x9e37_79b9).wrapping_add(1);
            black_box(bits.index(x))
        })
    });
    g.bench_function("xor_hash", |b| {
        let mut x = 0x1234_5678u64;
        b.iter(|| {
            x = x.wrapping_mul(0x9e37_79b9).wrapping_add(1);
            black_box(xor.index(x))
        })
    });
    g.finish();
}

fn prediction_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("prediction_table");
    g.throughput(Throughput::Elements(1));
    let mut table = PredictionTable::from_capacity_bytes(64 << 10);
    for b in 0..100_000u64 {
        table.on_fill(b * 7);
    }
    g.bench_function("predict", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(table.predict(x >> 20))
        })
    });
    g.bench_function("on_fill", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            table.on_fill(x >> 20);
        })
    });
    g.finish();
}

fn cbf_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbf");
    g.throughput(Throughput::Elements(1));
    for hashes in [1u32, 2] {
        let mut cbf = CountingBloomFilter::new(CbfConfig {
            index_bits: 17,
            counter_bits: 4,
            num_hashes: hashes,
        });
        for b in 0..50_000u64 {
            cbf.on_fill(b * 3);
        }
        g.bench_function(format!("predict_h{hashes}"), |b| {
            let mut x = 1u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                black_box(cbf.predict(x >> 20))
            })
        });
        g.bench_function(format!("fill_evict_h{hashes}"), |b| {
            let mut x = 1u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let blk = x >> 20;
                cbf.on_fill(blk);
                cbf.on_evict(blk);
            })
        });
    }
    g.finish();
}

fn exact_counting(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_counting");
    g.throughput(Throughput::Elements(1));
    let mut t = ExactCountingTable::from_capacity_bytes(64 << 10);
    g.bench_function("fill_evict", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let blk = x >> 20;
            t.on_fill(blk);
            t.on_evict(blk);
        })
    });
    g.finish();
}

fn recalibration(c: &mut Criterion) {
    // Functional rebuild of the demo-scale table from a full 8 MB LLC's
    // resident set (131072 lines).
    let resident: Vec<u64> = (0..131_072u64).map(|i| i * 37 + 5).collect();
    let mut g = c.benchmark_group("recalibration");
    g.throughput(Throughput::Elements(resident.len() as u64));
    g.bench_function("rebuild_64k_table_from_128k_lines", |b| {
        b.iter_batched(
            || PredictionTable::from_capacity_bytes(64 << 10),
            |mut t| t.recalibrate_from(resident.iter().copied()),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    hash_functions,
    prediction_table,
    cbf_ops,
    exact_counting,
    recalibration
);
criterion_main!(benches);
