//! Microbenchmarks of the predictor structures: the operations on the
//! simulator's hottest path (one prediction per L1 miss, one update per
//! LLC fill) plus the full-table recalibration rebuild.

use bench::micro::Group;
use redhip::{
    BitsHash, CbfConfig, CountingBloomFilter, ExactCountingTable, PredictionTable,
    PresencePredictor, XorHash,
};

fn hash_functions() {
    let bits = BitsHash::new(19);
    let xor = XorHash::new(19, 0);
    let g = Group::new("hash", 1);
    let mut x = 0x1234_5678u64;
    g.bench("bits_hash", || {
        x = x.wrapping_mul(0x9e37_79b9).wrapping_add(1);
        bits.index(x)
    });
    let mut x = 0x1234_5678u64;
    g.bench("xor_hash", || {
        x = x.wrapping_mul(0x9e37_79b9).wrapping_add(1);
        xor.index(x)
    });
}

fn prediction_table() {
    let g = Group::new("prediction_table", 1);
    let mut table = PredictionTable::from_capacity_bytes(64 << 10);
    for b in 0..100_000u64 {
        table.on_fill(b * 7);
    }
    let mut x = 1u64;
    g.bench("predict", || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        table.predict(x >> 20)
    });
    let mut x = 1u64;
    g.bench("on_fill", || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        table.on_fill(x >> 20);
    });
}

fn cbf_ops() {
    let g = Group::new("cbf", 1);
    for hashes in [1u32, 2] {
        let mut cbf = CountingBloomFilter::new(CbfConfig {
            index_bits: 17,
            counter_bits: 4,
            num_hashes: hashes,
        });
        for b in 0..50_000u64 {
            cbf.on_fill(b * 3);
        }
        let mut x = 1u64;
        g.bench(&format!("predict_h{hashes}"), || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            cbf.predict(x >> 20)
        });
        let mut x = 1u64;
        g.bench(&format!("fill_evict_h{hashes}"), || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let blk = x >> 20;
            cbf.on_fill(blk);
            cbf.on_evict(blk);
        });
    }
}

fn exact_counting() {
    let g = Group::new("exact_counting", 1);
    let mut t = ExactCountingTable::from_capacity_bytes(64 << 10);
    let mut x = 1u64;
    g.bench("fill_evict", || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let blk = x >> 20;
        t.on_fill(blk);
        t.on_evict(blk);
    });
}

fn recalibration() {
    // Functional rebuild of the demo-scale table from a full 8 MB LLC's
    // resident set (131072 lines).
    let resident: Vec<u64> = (0..131_072u64).map(|i| i * 37 + 5).collect();
    let g = Group::new("recalibration", resident.len() as u64);
    g.bench_with_setup(
        "rebuild_64k_table_from_128k_lines",
        || PredictionTable::from_capacity_bytes(64 << 10),
        |mut t| t.recalibrate_from(resident.iter().copied()),
    );
}

fn main() {
    hash_functions();
    prediction_table();
    cbf_ops();
    exact_counting();
    recalibration();
}
