//! Trace codec and streaming-replay throughput.
//!
//! The streaming pipeline only pays off if decode runs far ahead of the
//! simulator (~1 Mref/s): these rows pin encode, chunk decode (both store
//! backends), bulk refill vs per-record iteration, and end-to-end replay.

use bench::micro::Group;
use mem_trace::codec::DEFAULT_CHUNK_TARGET;
use mem_trace::stream::{write_v2_file, StreamTrace};
use mem_trace::{ShardSpec, TraceFeed, VecTrace};
use sim::{CoreFeed, Mechanism, SimConfig};
use workloads::{Benchmark, Scale};

const RECORDS: usize = 100_000;

fn encode(trace: &VecTrace) -> Vec<u8> {
    mem_trace::codec::encode_v2_chunked(trace, DEFAULT_CHUNK_TARGET)
}

fn main() {
    let records: VecTrace = Benchmark::Mcf
        .trace(0, Scale::Smoke)
        .take(RECORDS)
        .collect();
    let bytes = encode(&records);
    let g = Group::new("trace_io", RECORDS as u64);

    g.bench("encode_v2", || encode(&records).len());

    let mem = StreamTrace::from_bytes(bytes.clone()).expect("valid v2");
    g.bench("decode_mem", || {
        let mut acc = 0u64;
        for r in mem.clone() {
            acc ^= r.addr;
        }
        acc
    });

    // File-backed backends: mmap pages vs positioned reads.
    let path = std::env::temp_dir().join(format!("redhip-trace-io-{}.trace", std::process::id()));
    write_v2_file(&path, records.iter(), DEFAULT_CHUNK_TARGET).expect("write");
    let mapped = StreamTrace::open(&path).expect("open");
    g.bench(&format!("decode_{}", mapped.backend()), || {
        let mut acc = 0u64;
        for r in mapped.clone() {
            acc ^= r.addr;
        }
        acc
    });
    let buffered = StreamTrace::open_buffered(&path).expect("open buffered");
    g.bench(&format!("decode_{}", buffered.backend()), || {
        let mut acc = 0u64;
        for r in buffered.clone() {
            acc ^= r.addr;
        }
        acc
    });

    // Bulk refill is the simulator's ingestion path (BufferedTrace).
    g.bench("refill_bulk", || {
        let mut c = mem.clone();
        let mut buf = Vec::with_capacity(4096);
        let mut total = 0usize;
        loop {
            buf.clear();
            let n = c.refill(&mut buf, 4096);
            if n == 0 {
                break;
            }
            total += n;
        }
        total
    });

    // Interleave sharding decodes every chunk once per shard; the row
    // bounds the cost of the 8-way replay split.
    g.bench("shard_interleave8", || {
        let mut acc = 0u64;
        for i in 0..8 {
            for r in mem.shard(ShardSpec::Interleave {
                shards: 8,
                index: i,
            }) {
                acc ^= r.addr;
            }
        }
        acc
    });

    // End-to-end: stream the file through the simulator under ReDHiP.
    let replay = Group::new("trace_replay", RECORDS as u64);
    let mut cfg = SimConfig::new(energy_model::presets::demo_scale(), Mechanism::Redhip);
    let cores = cfg.platform.cores;
    cfg.refs_per_core = RECORDS / cores;
    cfg.recalib_period = Some(8_192);
    replay.bench_with_setup(
        "interleave_redhip",
        || {
            (0..cores)
                .map(|i| {
                    Box::new(mapped.shard(ShardSpec::Interleave {
                        shards: cores as u32,
                        index: i as u32,
                    })) as CoreFeed
                })
                .collect::<Vec<_>>()
        },
        |feeds| sim::run_feeds(&cfg, feeds).total_refs(),
    );

    let _ = std::fs::remove_file(&path);
}
