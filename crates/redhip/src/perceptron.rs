//! Hashed-perceptron off-chip prediction (the PerceptronOffChip contender).
//!
//! Jamet et al. ("A Two Level Neural Approach Combining Off-Chip Prediction
//! with Adaptive Prefetch Filtering", arXiv:2403.15181) predict whether a
//! load will be served off chip with a hashed perceptron: several weight
//! tables, each indexed by a different hash of the block address and a
//! per-core access history, are summed and compared against a confidence
//! threshold. Only a sum at or above the threshold gates the DRAM bypass;
//! training is thresholded too (weights move only on mispredicts or weak
//! sums), the classic perceptron-branch-predictor recipe.

use crate::hash::BitsHash;

/// Number of hashed feature tables.
pub const NUM_FEATURES: usize = 3;

/// Hashed perceptron predicting "this load leaves the chip".
#[derive(Debug, Clone)]
pub struct OffChipPerceptron {
    /// `NUM_FEATURES` weight tables, all the same power-of-two size.
    weights: Vec<Vec<i8>>,
    hash: BitsHash,
    /// Per-core history of recent off-chip outcomes (1 bit per access).
    histories: Vec<u64>,
    history_mask: u64,
    theta: i32,
}

impl OffChipPerceptron {
    /// `index_bits`-bit tables, `cores` history registers, `history_bits`
    /// of outcome history folded into the hashes, decision threshold
    /// `theta`.
    pub fn new(index_bits: u32, cores: usize, history_bits: u32, theta: i32) -> Self {
        let hash = BitsHash::new(index_bits);
        let entries = hash.table_entries() as usize;
        let mut weights = Vec::with_capacity(NUM_FEATURES);
        for _ in 0..NUM_FEATURES {
            let mut table = vec![0i8; entries];
            crate::prefault(&mut table);
            weights.push(table);
        }
        let history_mask = if history_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << history_bits) - 1
        };
        Self {
            weights,
            hash,
            histories: vec![0; cores],
            history_mask,
            theta,
        }
    }

    /// Builds the tables from an area budget in bytes (`NUM_FEATURES`
    /// tables of 1-byte weights; per-table entries rounded down to a
    /// power of two).
    pub fn from_capacity_bytes(bytes: u64, cores: usize, history_bits: u32, theta: i32) -> Self {
        let entries = (bytes / NUM_FEATURES as u64).max(2);
        let bits = 63 - entries.leading_zeros() as u64;
        Self::new(bits as u32, cores, history_bits, theta)
    }

    /// Total weight-storage budget in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.hash.table_entries() * NUM_FEATURES as u64
    }

    /// The decision threshold.
    pub fn theta(&self) -> i32 {
        self.theta
    }

    #[inline]
    fn feature_indices(&self, core: usize, block: u64) -> [usize; NUM_FEATURES] {
        let hist = self.histories[core];
        [
            self.hash.index(block) as usize,
            self.hash.index(block ^ hist) as usize,
            self.hash.index((block >> 7) ^ hist.rotate_left(13)) as usize,
        ]
    }

    /// Sums the hashed weights for `(core, block)`. Pure: neither weights
    /// nor history move until [`train`](Self::train).
    #[inline]
    pub fn predict(&self, core: usize, block: u64) -> i32 {
        let idx = self.feature_indices(core, block);
        let mut sum = 0i32;
        for (f, table) in self.weights.iter().enumerate() {
            sum += table[idx[f]] as i32;
        }
        sum
    }

    /// Whether `sum` clears the confidence threshold for an off-chip
    /// steer.
    #[inline]
    pub fn confident_off_chip(&self, sum: i32) -> bool {
        sum >= self.theta
    }

    /// Trains on the observed outcome (`went_off_chip`) given the sum the
    /// prediction was made with, then shifts the outcome into the core's
    /// history. Weights move only on a mispredict or a weak (|sum| ≤ θ)
    /// agreement, saturating at the i8 rails.
    pub fn train(&mut self, core: usize, block: u64, sum: i32, went_off_chip: bool) {
        let predicted = self.confident_off_chip(sum);
        if predicted != went_off_chip || sum.abs() <= self.theta {
            let idx = self.feature_indices(core, block);
            for (f, table) in self.weights.iter_mut().enumerate() {
                let w = &mut table[idx[f]];
                *w = if went_off_chip {
                    w.saturating_add(1)
                } else {
                    w.saturating_sub(1)
                };
            }
        }
        self.histories[core] =
            ((self.histories[core] << 1) | u64::from(went_off_chip)) & self.history_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sizing_splits_across_tables() {
        let p = OffChipPerceptron::from_capacity_bytes(64 << 10, 2, 8, 12);
        // 64 KB / 3 tables = 21845 entries, floored to 2^14.
        assert_eq!(p.capacity_bytes(), (1 << 14) * 3);
    }

    #[test]
    fn fresh_perceptron_predicts_zero() {
        let p = OffChipPerceptron::new(8, 1, 8, 12);
        assert_eq!(p.predict(0, 0xdead), 0);
        assert!(!p.confident_off_chip(0));
    }

    #[test]
    fn repeated_off_chip_outcomes_build_confidence() {
        let mut p = OffChipPerceptron::new(8, 1, 8, 6);
        let block = 0x42;
        for _ in 0..8 {
            let sum = p.predict(0, block);
            p.train(0, block, sum, true);
        }
        // History changed along the way so different table entries were
        // touched, but the block-only feature alone keeps climbing.
        assert!(p.predict(0, block) >= 3);
    }

    #[test]
    fn strong_agreement_freezes_weights() {
        let mut p = OffChipPerceptron::new(6, 1, 0, 2);
        let block = 7;
        // With history_bits = 0 the indices never move; train until the
        // sum is strictly above theta.
        loop {
            let sum = p.predict(0, block);
            if sum > p.theta() {
                break;
            }
            p.train(0, block, sum, true);
        }
        let sum = p.predict(0, block);
        p.train(0, block, sum, true);
        assert_eq!(p.predict(0, block), sum); // |sum| > θ, correct → frozen
    }

    #[test]
    fn histories_are_per_core() {
        let mut p = OffChipPerceptron::new(8, 2, 8, 12);
        let sum = p.predict(0, 1);
        p.train(0, 1, sum, true);
        // Core 1's history is untouched, so its indices for the same
        // block still include the zero-history hash.
        assert_eq!(p.predict(1, 1), p.predict(1, 1));
        assert_eq!(p.histories[0], 1);
        assert_eq!(p.histories[1], 0);
    }

    #[test]
    fn weights_saturate_at_the_i8_rails() {
        let mut p = OffChipPerceptron::new(4, 1, 0, i32::MAX);
        // theta = i32::MAX keeps every train in the "weak" regime.
        for _ in 0..300 {
            let sum = p.predict(0, 3);
            p.train(0, 3, sum, true);
        }
        assert_eq!(p.predict(0, 3), 127 * NUM_FEATURES as i32);
    }
}
