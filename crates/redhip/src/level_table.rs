//! Per-load hit-level prediction (the LevelPred contender).
//!
//! Jalili & Erez ("Reducing Load Latency with Cache Level Prediction",
//! arXiv:2103.14808) predict, per load, *which* level of the hierarchy will
//! serve it, and steer the lookup straight there instead of walking the
//! levels in order. Unlike ReDHiP's residency table this is a *value*
//! predictor: each entry remembers the last observed service level for its
//! address class plus a saturating confidence counter, and a prediction is
//! acted on only above a confidence threshold — below it the machine falls
//! back to the conservative in-order walk, so the mechanism degenerates to
//! Base when confidence is unattainable.

use crate::hash::BitsHash;

/// Sentinel level meaning "no observation recorded yet".
pub const LEVEL_UNTRAINED: u8 = u8::MAX;
/// Sentinel level meaning "the load was served by memory" (off chip).
pub const LEVEL_MEMORY: u8 = u8::MAX - 1;

/// One direct-mapped entry: last observed service level + confidence.
#[derive(Debug, Clone, Copy)]
struct Entry {
    level: u8,
    conf: u8,
}

/// Direct-mapped table of `(level, confidence)` pairs, bits-hash indexed
/// like the ReDHiP PT (2 bytes per entry at the same area budget).
#[derive(Debug, Clone)]
pub struct LevelPredictor {
    entries: Vec<Entry>,
    hash: BitsHash,
    conf_max: u8,
}

impl LevelPredictor {
    /// Builds a table with `index_bits`-bit indices; confidences saturate
    /// at `conf_max`.
    pub fn new(index_bits: u32, conf_max: u8) -> Self {
        let hash = BitsHash::new(index_bits);
        let mut entries = vec![
            Entry {
                level: LEVEL_UNTRAINED,
                conf: 0,
            };
            hash.table_entries() as usize
        ];
        crate::prefault(&mut entries);
        Self {
            entries,
            hash,
            conf_max,
        }
    }

    /// Builds the table from an area budget in bytes (2 bytes per entry;
    /// the entry count is rounded down to a power of two).
    pub fn from_capacity_bytes(bytes: u64, conf_max: u8) -> Self {
        let entries = (bytes / 2).max(2);
        let bits = 63 - entries.leading_zeros() as u64;
        Self::new(bits as u32, conf_max)
    }

    /// Capacity in entries.
    pub fn entries(&self) -> u64 {
        self.hash.table_entries()
    }

    /// Capacity in bytes (2 bytes per entry).
    pub fn capacity_bytes(&self) -> u64 {
        self.entries() * 2
    }

    /// The saturation point of the confidence counters.
    pub fn conf_max(&self) -> u8 {
        self.conf_max
    }

    /// Reads the entry for `block`: `(predicted level, confidence)`.
    /// `level` is [`LEVEL_UNTRAINED`] before any training,
    /// [`LEVEL_MEMORY`] for a predicted off-chip service.
    #[inline]
    pub fn predict(&self, block: u64) -> (u8, u8) {
        let e = self.entries[self.hash.index(block) as usize];
        (e.level, e.conf)
    }

    /// Trains on the observed service level (hysteresis update: agreement
    /// bumps confidence, disagreement decays it and replaces the level
    /// once confidence is exhausted).
    pub fn train(&mut self, block: u64, level: u8) {
        let e = &mut self.entries[self.hash.index(block) as usize];
        if e.level == level {
            e.conf = e.conf.saturating_add(1).min(self.conf_max);
        } else if e.conf > 0 && e.level != LEVEL_UNTRAINED {
            e.conf -= 1;
        } else {
            e.level = level;
            e.conf = 1.min(self.conf_max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sizing_rounds_down_to_power_of_two() {
        let t = LevelPredictor::from_capacity_bytes(64 << 10, 3);
        assert_eq!(t.entries(), 1 << 15); // 64 KB / 2 B = 2^15 entries
        assert_eq!(t.capacity_bytes(), 64 << 10);
        let odd = LevelPredictor::from_capacity_bytes(3000, 3);
        assert_eq!(odd.entries(), 1024);
    }

    #[test]
    fn untrained_entries_report_sentinel() {
        let t = LevelPredictor::new(8, 3);
        assert_eq!(t.predict(42), (LEVEL_UNTRAINED, 0));
    }

    #[test]
    fn agreement_saturates_confidence() {
        let mut t = LevelPredictor::new(8, 2);
        for _ in 0..10 {
            t.train(7, 2);
        }
        assert_eq!(t.predict(7), (2, 2));
    }

    #[test]
    fn disagreement_decays_then_replaces() {
        let mut t = LevelPredictor::new(8, 3);
        t.train(7, 2);
        t.train(7, 2); // level 2, conf 2
        t.train(7, LEVEL_MEMORY); // conf 1
        assert_eq!(t.predict(7), (2, 1));
        t.train(7, LEVEL_MEMORY); // conf 0
        assert_eq!(t.predict(7), (2, 0));
        t.train(7, LEVEL_MEMORY); // replaced
        assert_eq!(t.predict(7), (LEVEL_MEMORY, 1));
    }

    #[test]
    fn aliasing_blocks_share_an_entry() {
        let mut t = LevelPredictor::new(8, 3);
        t.train(3, 1);
        assert_eq!(t.predict(3 + 256).0, 1);
        assert_eq!(t.predict(4).0, LEVEL_UNTRAINED);
    }

    #[test]
    fn conf_max_zero_never_gains_confidence() {
        // The degeneracy knob: with conf_max 0 no prediction can clear a
        // positive threshold, so a steering client always walks.
        let mut t = LevelPredictor::new(6, 0);
        for _ in 0..5 {
            t.train(9, 1);
        }
        assert_eq!(t.predict(9), (1, 0));
    }
}
