//! Counting-Bloom-filter predictor — the prior-work baseline (Ghosh et
//! al., "Efficient system-on-chip energy management with a segmented bloom
//! filter", the paper's reference 9), given the same 512 KB area budget as
//! ReDHiP in the paper's comparison.

use crate::hash::XorHash;
use crate::traits::{Prediction, PresencePredictor};

/// CBF design parameters (§II: entries, counter width, hash function count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbfConfig {
    /// log2 of the number of counters.
    pub index_bits: u32,
    /// Bits per counter (the referenced work finds 3 sufficient for a 256 KB
    /// cache; larger caches need more or rely on saturation).
    pub counter_bits: u32,
    /// Number of hash functions (1 is sufficient per the referenced work).
    pub num_hashes: u32,
}

impl CbfConfig {
    /// Derives the largest power-of-two-entry configuration fitting an area
    /// budget in bytes with the given counter width and hash count.
    pub fn from_budget(budget_bytes: u64, counter_bits: u32, num_hashes: u32) -> Self {
        assert!((1..=8).contains(&counter_bits));
        assert!(num_hashes >= 1);
        let bits = budget_bytes * 8;
        let entries = bits / u64::from(counter_bits);
        assert!(entries >= 2, "budget too small");
        // Round down to a power of two for mask indexing.
        let index_bits = 63 - entries.leading_zeros();
        Self {
            index_bits,
            counter_bits,
            num_hashes,
        }
    }

    /// Storage actually used, in bytes.
    pub fn storage_bytes(&self) -> u64 {
        (1u64 << self.index_bits) * u64::from(self.counter_bits) / 8
    }
}

/// A counting Bloom filter over block addresses.
///
/// Counters increment on fills and decrement on evictions. A counter that
/// would overflow is *disabled* (sticky at maximum, never decremented
/// again) — the conservative choice from the referenced work that preserves
/// the no-false-negative guarantee at the price of permanent false
/// positives on that entry.
#[derive(Debug, Clone)]
pub struct CountingBloomFilter {
    config: CbfConfig,
    counters: Vec<u8>,
    disabled: Vec<bool>,
    hashes: Vec<XorHash>,
    max: u8,
    disabled_count: u64,
}

impl CountingBloomFilter {
    /// Builds an empty filter.
    pub fn new(config: CbfConfig) -> Self {
        let entries = 1usize << config.index_bits;
        let hashes = (0..config.num_hashes)
            .map(|s| XorHash::new(config.index_bits, s))
            .collect();
        let mut counters = vec![0; entries];
        crate::prefault(&mut counters);
        let mut disabled = vec![false; entries];
        crate::prefault(&mut disabled);
        Self {
            config,
            counters,
            disabled,
            hashes,
            max: ((1u16 << config.counter_bits) - 1) as u8,
            disabled_count: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> CbfConfig {
        self.config
    }

    /// Number of permanently disabled (overflowed) counters.
    pub fn disabled_counters(&self) -> u64 {
        self.disabled_count
    }

    /// Number of counters currently non-zero (occupancy diagnostic).
    pub fn nonzero_counters(&self) -> u64 {
        self.counters.iter().filter(|&&c| c != 0).count() as u64
    }
}

impl PresencePredictor for CountingBloomFilter {
    fn predict(&self, block: u64) -> Prediction {
        // Bloom semantics: absent iff ANY hash position is zero.
        for h in &self.hashes {
            if self.counters[h.index(block) as usize] == 0 {
                return Prediction::Absent;
            }
        }
        Prediction::MaybePresent
    }

    fn on_fill(&mut self, block: u64) {
        for h in &self.hashes {
            let i = h.index(block) as usize;
            if self.disabled[i] {
                continue;
            }
            if self.counters[i] == self.max {
                // Overflow: disable, leave sticky at max.
                self.disabled[i] = true;
                self.disabled_count += 1;
            } else {
                self.counters[i] += 1;
            }
        }
    }

    fn on_evict(&mut self, block: u64) {
        for h in &self.hashes {
            let i = h.index(block) as usize;
            if self.disabled[i] {
                continue;
            }
            debug_assert!(
                self.counters[i] > 0,
                "CBF decrement below zero: eviction without matching fill"
            );
            self.counters[i] = self.counters[i].saturating_sub(1);
        }
    }

    fn wants_eviction_events(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn splitmix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn small() -> CountingBloomFilter {
        CountingBloomFilter::new(CbfConfig {
            index_bits: 8,
            counter_bits: 3,
            num_hashes: 1,
        })
    }

    #[test]
    fn paper_budget_512kb_4bit_counters() {
        let c = CbfConfig::from_budget(512 << 10, 4, 1);
        assert_eq!(c.index_bits, 20); // 1M counters × 4 bits = 512 KB
        assert_eq!(c.storage_bytes(), 512 << 10);
    }

    #[test]
    fn budget_rounds_down_to_power_of_two() {
        let c = CbfConfig::from_budget(512 << 10, 3, 1);
        // 4 Mbit / 3 = 1398101 entries → 2^20.
        assert_eq!(c.index_bits, 20);
        assert!(c.storage_bytes() <= 512 << 10);
    }

    #[test]
    fn fill_then_evict_restores_absent() {
        let mut f = small();
        assert_eq!(f.predict(42), Prediction::Absent);
        f.on_fill(42);
        assert_eq!(f.predict(42), Prediction::MaybePresent);
        f.on_evict(42);
        assert_eq!(f.predict(42), Prediction::Absent);
        assert!(f.wants_eviction_events());
    }

    #[test]
    fn aliased_fills_keep_counter_positive() {
        let mut f = small();
        // 1 and 257 alias under an 8-bit xor-hash of low bits? Construct
        // aliases by probing: find two blocks with equal index.
        let h = XorHash::new(8, 0);
        let a = 5u64;
        let b = (1..10_000u64)
            .find(|&b| h.index(b) == h.index(a) && b != a)
            .unwrap();
        f.on_fill(a);
        f.on_fill(b);
        f.on_evict(a);
        assert_eq!(f.predict(b), Prediction::MaybePresent);
        f.on_evict(b);
        assert_eq!(f.predict(b), Prediction::Absent);
    }

    #[test]
    fn overflow_disables_counter_sticky() {
        let mut f = CountingBloomFilter::new(CbfConfig {
            index_bits: 4,
            counter_bits: 2, // max 3
            num_hashes: 1,
        });
        let h = XorHash::new(4, 0);
        // Five distinct blocks hashing to one counter overflow it.
        let target = h.index(7);
        let aliases: Vec<u64> = (0..100_000u64)
            .filter(|&b| h.index(b) == target)
            .take(5)
            .collect();
        assert_eq!(aliases.len(), 5);
        for &b in &aliases {
            f.on_fill(b);
        }
        assert_eq!(f.disabled_counters(), 1);
        // Evicting everything cannot clear a disabled counter.
        for &b in &aliases {
            f.on_evict(b);
        }
        assert_eq!(f.predict(aliases[0]), Prediction::MaybePresent);
    }

    #[test]
    fn multi_hash_requires_all_positions() {
        let mut f = CountingBloomFilter::new(CbfConfig {
            index_bits: 10,
            counter_bits: 4,
            num_hashes: 3,
        });
        f.on_fill(1234);
        assert_eq!(f.predict(1234), Prediction::MaybePresent);
        f.on_evict(1234);
        assert_eq!(f.predict(1234), Prediction::Absent);
    }

    #[test]
    fn nonzero_counter_diagnostic() {
        let mut f = small();
        assert_eq!(f.nonzero_counters(), 0);
        f.on_fill(1);
        f.on_fill(2);
        assert!(f.nonzero_counters() >= 1);
    }

    /// No false negatives under arbitrary fill/evict interleavings that
    /// mirror a ground-truth resident set (including deliberate overflow
    /// pressure via a tiny filter). Deterministic randomized test.
    #[test]
    fn no_false_negatives_randomized() {
        let mut st = 0xCBF0u64;
        for _case in 0..128 {
            let counter_bits = 2 + (splitmix(&mut st) % 3) as u32;
            let num_hashes = 1 + (splitmix(&mut st) % 3) as u32;
            let mut f = CountingBloomFilter::new(CbfConfig {
                index_bits: 6,
                counter_bits,
                num_hashes,
            });
            let mut resident: HashSet<u64> = HashSet::new();
            let len = 1 + (splitmix(&mut st) % 399) as usize;
            for _ in 0..len {
                let fill = splitmix(&mut st) & 1 == 1;
                let block = splitmix(&mut st) % 512;
                if fill {
                    if resident.insert(block) {
                        f.on_fill(block);
                    }
                } else if resident.remove(&block) {
                    f.on_evict(block);
                }
                for &r in &resident {
                    assert_eq!(f.predict(r), Prediction::MaybePresent);
                }
            }
        }
    }

    /// Without overflow, the filter returns to exactly-empty when the
    /// resident set empties.
    #[test]
    fn balanced_ops_restore_empty_randomized() {
        let mut st = 0xCBF1u64;
        for _case in 0..256 {
            let n = 1 + (splitmix(&mut st) % 29) as usize;
            let mut blocks: HashSet<u64> = HashSet::new();
            while blocks.len() < n {
                blocks.insert(splitmix(&mut st) % 10_000);
            }
            let mut f = CountingBloomFilter::new(CbfConfig {
                index_bits: 12,
                counter_bits: 6, // ample headroom: ≤30 blocks
                num_hashes: 2,
            });
            for &b in &blocks {
                f.on_fill(b);
            }
            for &b in &blocks {
                f.on_evict(b);
            }
            assert_eq!(f.nonzero_counters(), 0);
            assert_eq!(f.disabled_counters(), 0);
        }
    }
}
