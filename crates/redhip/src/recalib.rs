//! Recalibration hardware cost model (Figures 4 & 5 of the paper).
//!
//! Functionally, recalibration is just "rebuild the table from the LLC tag
//! array" ([`crate::table::PredictionTable::recalibrate_from`]). What makes
//! it *viable* is its cost, which this module models:
//!
//! * The bits-hash guarantees that all cache lines affecting one 64-bit PT
//!   line sit in a single cache set (`p − k = 6` → 2^6 = 64 bit slots per
//!   set). A 6→64 decoder per way plus an OR tree turns one set's ≤16 tags
//!   into one PT line **in one cycle** (Figure 4).
//! * The PT is banked like the LLC tag array, so `banks` sets recalibrate
//!   per cycle (Figure 5). The paper's medium-effort design: 65536 sets / 4
//!   banks = 16384 ≈ 16K stall cycles per full recalibration.
//! * Energy: one tag-array read per set (the whole set reads out at once)
//!   plus one PT line write per line.

/// Cost of one complete recalibration pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecalibCost {
    /// Stall cycles (neither the PT nor the LLC is usable meanwhile).
    pub cycles: u64,
    /// Energy in nanojoules.
    pub energy_nj: f64,
}

/// Models the recalibration hardware for one (cache, table) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecalibrationEngine {
    /// Sets in the covered cache (2^k).
    pub cache_sets: u64,
    /// Ways per set in the covered cache.
    pub cache_assoc: usize,
    /// Table lines of 64 bits (2^p / 64).
    pub table_lines: u64,
    /// Parallel recalibration banks (the paper's medium effort: 4).
    pub banks: u64,
    /// Energy of one tag-array set read, nanojoules.
    pub tag_read_nj: f64,
    /// Energy of one PT line write, nanojoules.
    pub line_write_nj: f64,
}

impl RecalibrationEngine {
    /// Builds the engine, checking the structural prerequisites of the
    /// Figure 4 hardware.
    ///
    /// # Panics
    /// Panics when the table has fewer lines than the cache has sets —
    /// i.e. when `p < k + 6` and several cache sets would have to fold into
    /// one PT line, which the decoder hardware cannot do in one cycle. (The
    /// paper's designs always satisfy `p ≥ k + 6`; smaller tables in the
    /// Fig. 11 sweep are modelled with proportionally more sets per line
    /// and correspondingly more cycles — see [`RecalibrationEngine::cost`].)
    pub fn new(
        cache_sets: u64,
        cache_assoc: usize,
        table_lines: u64,
        banks: u64,
        tag_read_nj: f64,
        line_write_nj: f64,
    ) -> Self {
        assert!(cache_sets.is_power_of_two());
        assert!(table_lines.is_power_of_two());
        assert!(banks >= 1 && banks.is_power_of_two());
        Self {
            cache_sets,
            cache_assoc,
            table_lines,
            banks,
            tag_read_nj,
            line_write_nj,
        }
    }

    /// Sets whose tags feed a single PT line. 1 in the paper's designs
    /// (`p − k = 6`); >1 for undersized tables.
    pub fn sets_per_line(&self) -> u64 {
        (self.cache_sets / self.table_lines).max(1)
    }

    /// PT lines produced per cache set. 1 in the paper's designs; >1 when
    /// the table is oversized (`p − k > 6`), which costs nothing extra —
    /// the set still reads out once.
    pub fn lines_per_set(&self) -> u64 {
        (self.table_lines / self.cache_sets).max(1)
    }

    /// Cost of one full recalibration pass.
    ///
    /// One cache set is processed per bank-cycle (all ≤16 tags of the set
    /// decode and OR in parallel). Energy is one tag-array set read per set
    /// plus one line write per PT line.
    pub fn cost(&self) -> RecalibCost {
        let cycles = self.cache_sets.div_ceil(self.banks);
        let energy_nj = self.cache_sets as f64 * self.tag_read_nj
            + self.table_lines as f64 * self.line_write_nj;
        RecalibCost { cycles, energy_nj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example (§IV): 64 MB 16-way LLC (65536 sets, 1M
    /// tags), 512 KB PT (65536 lines), 4 banks → 16K cycles.
    #[test]
    fn paper_medium_effort_is_16k_cycles() {
        let e = RecalibrationEngine::new(65536, 16, 65536, 4, 1.171, 0.02);
        assert_eq!(e.cost().cycles, 16384);
        assert_eq!(e.sets_per_line(), 1);
        assert_eq!(e.lines_per_set(), 1);
    }

    #[test]
    fn banking_scales_cycles_not_energy() {
        let base = RecalibrationEngine::new(4096, 16, 4096, 1, 1.171, 0.02);
        let banked = RecalibrationEngine::new(4096, 16, 4096, 8, 1.171, 0.02);
        assert_eq!(base.cost().cycles, 4096);
        assert_eq!(banked.cost().cycles, 512);
        assert!((base.cost().energy_nj - banked.cost().energy_nj).abs() < 1e-9);
    }

    #[test]
    fn energy_combines_tag_reads_and_line_writes() {
        let e = RecalibrationEngine::new(1024, 16, 1024, 4, 2.0, 0.5);
        let c = e.cost();
        assert!((c.energy_nj - (1024.0 * 2.0 + 1024.0 * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn undersized_table_folds_sets_per_line() {
        // p − k < 6: table lines < cache sets.
        let e = RecalibrationEngine::new(4096, 16, 1024, 4, 1.0, 0.02);
        assert_eq!(e.sets_per_line(), 4);
        // Still one set read per cycle per bank.
        assert_eq!(e.cost().cycles, 1024);
    }

    #[test]
    fn oversized_table_costs_no_extra_cycles() {
        let e = RecalibrationEngine::new(1024, 16, 4096, 4, 1.0, 0.02);
        assert_eq!(e.lines_per_set(), 4);
        assert_eq!(e.cost().cycles, 256);
        // But writes every line.
        assert!((e.cost().energy_nj - (1024.0 + 4096.0 * 0.02)).abs() < 1e-9);
    }

    #[test]
    fn demo_scale_cost() {
        // 8 MB 16-way LLC (8192 sets), 64 KB PT (8192 lines), 4 banks.
        let e = RecalibrationEngine::new(8192, 16, 8192, 4, 1.171, 0.02);
        assert_eq!(e.cost().cycles, 2048);
    }
}
