//! Continuously-exact bits-hash counting table.
//!
//! Semantically identical to a [`crate::table::PredictionTable`] that is
//! recalibrated after *every* L1 miss (the leftmost point of the paper's
//! Figure 12, "perfect recalibration"): each bits-hash index holds the
//! exact count of resident blocks mapping to it, maintained incrementally
//! on fills and evictions, so a zero count is always exactly "no resident
//! alias". Used by the Fig. 12 sweep (which ignores overhead, as the paper
//! does for that study) and by the entry-width ablation: this is what the
//! 1-bit design would have to become if recalibration were free.

use crate::hash::BitsHash;
use crate::traits::{Prediction, PresencePredictor};

/// Exact per-index reference counts under the bits-hash.
#[derive(Debug, Clone)]
pub struct ExactCountingTable {
    counts: Vec<u32>,
    hash: BitsHash,
}

impl ExactCountingTable {
    /// Builds a table with `index_bits`-bit indices.
    pub fn new(index_bits: u32) -> Self {
        let hash = BitsHash::new(index_bits);
        let mut counts = vec![0; hash.table_entries() as usize];
        crate::prefault(&mut counts);
        Self { counts, hash }
    }

    /// Builds from the same byte-capacity convention as the 1-bit table
    /// (2^p entries for `bytes × 8 = 2^p`) so sweeps compare equal-`p`
    /// designs. Note the *hardware* cost of this design would be 32× the
    /// bits — that is exactly the paper's argument for 1-bit entries.
    pub fn from_capacity_bytes(bytes: u64) -> Self {
        let bits = bytes * 8;
        assert!(bits.is_power_of_two());
        Self::new(bits.trailing_zeros())
    }

    /// Number of indices with a non-zero count.
    pub fn occupied(&self) -> u64 {
        self.counts.iter().filter(|&&c| c > 0).count() as u64
    }

    /// Index width `p`.
    pub fn index_bits(&self) -> u32 {
        self.hash.index_bits
    }
}

impl PresencePredictor for ExactCountingTable {
    fn predict(&self, block: u64) -> Prediction {
        if self.counts[self.hash.index(block) as usize] > 0 {
            Prediction::MaybePresent
        } else {
            Prediction::Absent
        }
    }

    fn on_fill(&mut self, block: u64) {
        self.counts[self.hash.index(block) as usize] += 1;
    }

    fn on_evict(&mut self, block: u64) {
        let c = &mut self.counts[self.hash.index(block) as usize];
        debug_assert!(*c > 0, "eviction without matching fill");
        *c = c.saturating_sub(1);
    }

    fn wants_eviction_events(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn splitmix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn counts_track_aliases_exactly() {
        let mut t = ExactCountingTable::new(8);
        t.on_fill(5);
        t.on_fill(5 + 256); // alias
        assert_eq!(t.predict(5), Prediction::MaybePresent);
        t.on_evict(5);
        assert_eq!(
            t.predict(5),
            Prediction::MaybePresent,
            "alias still resident"
        );
        t.on_evict(5 + 256);
        assert_eq!(t.predict(5), Prediction::Absent);
    }

    #[test]
    fn capacity_convention_matches_table() {
        let t = ExactCountingTable::from_capacity_bytes(64 << 10);
        assert_eq!(t.index_bits(), 19);
    }

    /// Equivalence with recalibrate-every-step: after each operation,
    /// the exact table predicts identically to a freshly recalibrated
    /// 1-bit table. Deterministic randomized test.
    #[test]
    fn equals_fresh_recalibration_randomized() {
        use crate::table::PredictionTable;
        let mut st = 0xE8AC7u64;
        for _case in 0..64 {
            let mut exact = ExactCountingTable::new(7);
            let mut resident: HashSet<u64> = HashSet::new();
            let len = 1 + (splitmix(&mut st) % 199) as usize;
            for _ in 0..len {
                let fill = splitmix(&mut st) & 1 == 1;
                let block = splitmix(&mut st) % 2048;
                if fill {
                    if resident.insert(block) {
                        exact.on_fill(block);
                    }
                } else if resident.remove(&block) {
                    exact.on_evict(block);
                }
                let mut fresh = PredictionTable::new(7);
                fresh.recalibrate_from(resident.iter().copied());
                for probe in [block, block ^ 1, block.wrapping_add(128), 0] {
                    assert_eq!(exact.predict(probe), fresh.predict(probe));
                }
            }
        }
    }
}
