//! Way memoization (the WayMemo contender).
//!
//! Ma, Zhang & Huang ("Way Memoization...", arXiv:0710.4703) cut cache
//! lookup energy by remembering, for recently touched blocks, that the
//! block is resident — a re-touch can then skip the parallel tag-way
//! reads and fetch a single way directly. The structure here is the
//! conservative direct-mapped variant: a table of full block addresses;
//! a probe hit means "this exact block was recorded and not displaced",
//! so the memo can only fire for true re-touches, never for an aliased
//! stranger. Stale entries (block recorded, then evicted) are possible
//! and must be charged by the client as a memo mispredict; `retain`
//! scrubs them against a resident set at recalibration boundaries.

use crate::hash::BitsHash;

const EMPTY: u64 = u64::MAX;

/// Direct-mapped memo of full block addresses recently seen resident.
#[derive(Debug, Clone)]
pub struct WayMemo {
    slots: Vec<u64>,
    hash: BitsHash,
}

impl WayMemo {
    /// Builds a memo with `index_bits`-bit indices.
    pub fn new(index_bits: u32) -> Self {
        let hash = BitsHash::new(index_bits);
        let mut slots = vec![EMPTY; hash.table_entries() as usize];
        crate::prefault(&mut slots);
        Self { slots, hash }
    }

    /// Builds a memo with at least `entries.max(2)` slots rounded down to
    /// a power of two.
    pub fn with_entries(entries: u64) -> Self {
        let entries = entries.max(2);
        let bits = 63 - entries.leading_zeros() as u64;
        Self::new(bits as u32)
    }

    /// Capacity in slots.
    pub fn entries(&self) -> u64 {
        self.hash.table_entries()
    }

    /// Whether `block` is memoized (exact-match: aliases never hit).
    #[inline(always)]
    pub fn probe(&self, block: u64) -> bool {
        self.slots[self.hash.index(block) as usize] == block
    }

    /// Records `block` as resident, displacing whatever aliased the slot.
    #[inline]
    pub fn record(&mut self, block: u64) {
        self.slots[self.hash.index(block) as usize] = block;
    }

    /// Forgets `block` if it is the slot's occupant.
    #[inline]
    pub fn clear(&mut self, block: u64) {
        let slot = &mut self.slots[self.hash.index(block) as usize];
        if *slot == block {
            *slot = EMPTY;
        }
    }

    /// Drops every memoized block not in `resident`, the recalibration
    /// scrub. Idempotent and order-independent: the result depends only
    /// on the membership set, so feeding the same residents twice — or in
    /// any order — leaves the memo identical.
    pub fn retain(&mut self, resident: impl Iterator<Item = u64>) {
        let mut keep = vec![false; self.slots.len()];
        for block in resident {
            let idx = self.hash.index(block) as usize;
            if self.slots[idx] == block {
                keep[idx] = true;
            }
        }
        for (slot, keep) in self.slots.iter_mut().zip(keep) {
            if !keep {
                *slot = EMPTY;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn record_then_probe_hits_exactly() {
        let mut m = WayMemo::new(8);
        m.record(0x1234);
        assert!(m.probe(0x1234));
        assert!(!m.probe(0x1234 + 256)); // aliases the slot but mismatches
        assert!(!m.probe(0x1235));
    }

    #[test]
    fn aliasing_record_displaces() {
        let mut m = WayMemo::new(8);
        m.record(10);
        m.record(10 + 256);
        assert!(!m.probe(10));
        assert!(m.probe(10 + 256));
    }

    #[test]
    fn clear_only_removes_the_occupant() {
        let mut m = WayMemo::new(8);
        m.record(5);
        m.clear(5 + 256); // aliased stranger: no effect
        assert!(m.probe(5));
        m.clear(5);
        assert!(!m.probe(5));
    }

    #[test]
    fn with_entries_rounds_down_to_power_of_two() {
        assert_eq!(WayMemo::with_entries(256).entries(), 256);
        assert_eq!(WayMemo::with_entries(300).entries(), 256);
        assert_eq!(WayMemo::with_entries(1).entries(), 2);
    }

    #[test]
    fn retain_is_idempotent_and_order_independent() {
        let mut seed = 0x5EED_0001u64;
        let blocks: Vec<u64> = (0..200).map(|_| splitmix(&mut seed) >> 20).collect();
        let mut a = WayMemo::new(6);
        for &b in &blocks {
            a.record(b);
        }
        let mut b = a.clone();
        let resident: Vec<u64> = blocks.iter().copied().step_by(3).collect();
        a.retain(resident.iter().copied());
        let once = a.slots.clone();
        a.retain(resident.iter().copied()); // idempotent
        assert_eq!(a.slots, once);
        b.retain(resident.iter().copied().rev()); // order-independent
        assert_eq!(b.slots, once);
    }

    #[test]
    fn retain_drops_non_residents() {
        let mut m = WayMemo::new(8);
        m.record(1);
        m.record(2);
        m.retain([2u64].into_iter());
        assert!(!m.probe(1));
        assert!(m.probe(2));
    }
}
