//! The predictor interface shared by ReDHiP's table and the CBF baseline.

/// Outcome of a presence prediction.
///
/// Conservative semantics: `Absent` is a *guarantee* (bypassing is safe —
/// no false negatives), `MaybePresent` is only a hint (false positives cost
/// wasted lookups but never correctness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// The block is definitely not in the covered cache.
    Absent,
    /// The block may be in the covered cache.
    MaybePresent,
}

impl Prediction {
    /// True for [`Prediction::Absent`].
    pub fn is_absent(self) -> bool {
        matches!(self, Prediction::Absent)
    }
}

/// A structure predicting whether a block is resident in one cache.
///
/// Contract (property-tested for both implementations): after any sequence
/// of `on_fill` / `on_evict` / `recalibrate` calls that mirrors the covered
/// cache's true contents, `predict` never returns `Absent` for a resident
/// block.
pub trait PresencePredictor {
    /// Predicts presence of `block`.
    fn predict(&self, block: u64) -> Prediction;

    /// Notifies the predictor that `block` was installed in the cache.
    fn on_fill(&mut self, block: u64);

    /// Notifies the predictor that `block` left the cache.
    ///
    /// ReDHiP's 1-bit table ignores this (that is the point of the design);
    /// the CBF decrements counters.
    fn on_evict(&mut self, block: u64);

    /// Whether eviction events carry information for this predictor (lets
    /// the simulator skip the call — and its modelled energy — for ReDHiP).
    fn wants_eviction_events(&self) -> bool;

    /// Rebuilds the structure from the cache's true resident set. Default:
    /// unsupported (no-op).
    fn recalibrate(&mut self, _resident: &mut dyn Iterator<Item = u64>) {}

    /// Whether [`PresencePredictor::recalibrate`] does anything.
    fn supports_recalibration(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_is_absent() {
        assert!(Prediction::Absent.is_absent());
        assert!(!Prediction::MaybePresent.is_absent());
    }

    struct Never;
    impl PresencePredictor for Never {
        fn predict(&self, _: u64) -> Prediction {
            Prediction::MaybePresent
        }
        fn on_fill(&mut self, _: u64) {}
        fn on_evict(&mut self, _: u64) {}
        fn wants_eviction_events(&self) -> bool {
            false
        }
    }

    #[test]
    fn default_recalibration_is_a_noop() {
        let mut n = Never;
        assert!(!n.supports_recalibration());
        n.recalibrate(&mut std::iter::empty());
        assert_eq!(n.predict(1), Prediction::MaybePresent);
    }
}
