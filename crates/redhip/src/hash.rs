//! Hash functions over block addresses.
//!
//! ReDHiP's key insight (§III-A): an "accurate" hash like xor-folding costs
//! more than it returns, because it destroys the index structure that makes
//! cheap recalibration possible. The *bits-hash* — just the low `p` bits of
//! the block address — keeps the cache set index as a substring of the PT
//! index (Figure 3), bounding per-entry conflicts by the cache
//! associativity and letting one cache set recalibrate one PT line.

/// The paper's bits-hash: the low `p` bits of the block address (i.e. the
/// low `p` address bits after the block offset has been removed).
///
/// The index mask is materialized at construction so the hash itself is a
/// single AND — the hardware's "hash" is literally wire selection, and the
/// software probe should cost the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitsHash {
    /// Index width `p` in bits.
    pub index_bits: u32,
    mask: u64,
}

impl BitsHash {
    /// Creates a bits-hash producing `index_bits`-bit indices.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=40).contains(&index_bits), "unreasonable index width");
        Self {
            index_bits,
            mask: (1u64 << index_bits) - 1,
        }
    }

    /// Hashes a block address to a table index.
    #[inline]
    pub fn index(&self, block: u64) -> u64 {
        block & self.mask
    }

    /// Number of distinct indices.
    pub fn table_entries(&self) -> u64 {
        1 << self.index_bits
    }
}

/// Xor-folding hash used by the CBF baseline: the block address is split
/// into `index_bits`-wide chunks which are xor'ed together. A per-hash seed
/// rotation yields independent functions for multi-hash filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorHash {
    /// Index width in bits.
    pub index_bits: u32,
    /// Which hash function of a multi-hash family (0-based).
    pub seed: u32,
}

impl XorHash {
    /// Creates the `seed`-th xor-hash of an `index_bits`-bit family.
    pub fn new(index_bits: u32, seed: u32) -> Self {
        assert!((1..=40).contains(&index_bits), "unreasonable index width");
        Self { index_bits, seed }
    }

    /// Hashes a block address to a table index.
    #[inline]
    pub fn index(&self, block: u64) -> u64 {
        // Decorrelate the hash family members by rotating the input; the
        // rotation amount is odd so families differ in every chunk.
        let x = block.rotate_left(self.seed.wrapping_mul(21) % 63);
        let mask = (1u64 << self.index_bits) - 1;
        let mut acc = 0u64;
        let mut v = x;
        while v != 0 {
            acc ^= v & mask;
            v >>= self.index_bits;
        }
        acc
    }

    /// Number of distinct indices.
    pub fn table_entries(&self) -> u64 {
        1 << self.index_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn bits_hash_takes_low_bits() {
        let h = BitsHash::new(22);
        assert_eq!(h.index(0xffff_ffff_ffff), 0x3f_ffff);
        assert_eq!(h.index(0x40_0000), 0);
        assert_eq!(h.table_entries(), 1 << 22);
    }

    #[test]
    fn paper_figure3_set_index_is_substring() {
        // p = 22, k = 16 (64MB 16-way LLC). Two blocks colliding in the PT
        // must belong to the same cache set.
        let h = BitsHash::new(22);
        let k_mask = (1u64 << 16) - 1;
        let (a, b) = (0x1234_5678_9abcu64, 0x5678_1678_9abcu64);
        if h.index(a) == h.index(b) {
            assert_eq!(a & k_mask, b & k_mask);
        }
        // Constructive: same low 22 bits, different tags → same set.
        let base = 0x2_9abcu64 | (7 << 16);
        let other = base | (0x99u64 << 22);
        assert_eq!(h.index(base), h.index(other));
        assert_eq!(base & k_mask, other & k_mask);
    }

    #[test]
    fn xor_hash_stays_in_range_and_differs_by_seed() {
        let h0 = XorHash::new(20, 0);
        let h1 = XorHash::new(20, 1);
        let mut diff = 0;
        for i in 0..1000u64 {
            let block = i * 0x9e37_79b9;
            assert!(h0.index(block) < (1 << 20));
            if h0.index(block) != h1.index(block) {
                diff += 1;
            }
        }
        assert!(diff > 900, "hash family members too correlated: {diff}");
    }

    #[test]
    fn xor_hash_mixes_high_bits() {
        // Unlike bits-hash, xor-hash must distinguish blocks differing only
        // in high bits (most of the time).
        let h = XorHash::new(20, 0);
        let mut collide = 0;
        for t in 0..1000u64 {
            if h.index(0x1234) == h.index(0x1234 | (t + 1) << 20) {
                collide += 1;
            }
        }
        assert!(collide < 50, "xor-hash ignores high bits: {collide}");
    }

    #[test]
    fn bits_hash_collision_implies_same_set_randomized() {
        let mut st = 0x4_A540u64;
        for case in 0..4096u32 {
            let k = 4 + (case % 12);
            let p = k + 6;
            let h = BitsHash::new(p);
            // Mask to a small universe so collisions actually occur.
            let a = splitmix(&mut st) & 0xf_ffff;
            let b = splitmix(&mut st) & 0xf_ffff;
            if h.index(a) == h.index(b) {
                // Figure 3: PT index contains the set index as a substring.
                assert_eq!(a & ((1u64 << k) - 1), b & ((1u64 << k) - 1));
            }
        }
    }

    #[test]
    fn xor_hash_in_range_randomized() {
        let mut st = 0x4_A541u64;
        for case in 0..4096u32 {
            let bits = 4 + (case % 26);
            let seed = case % 4;
            let h = XorHash::new(bits, seed);
            assert!(h.index(splitmix(&mut st)) < (1u64 << bits));
        }
    }

    #[test]
    fn hashes_are_deterministic_randomized() {
        let mut st = 0x4_A542u64;
        let b = BitsHash::new(18);
        let x = XorHash::new(18, 2);
        for _ in 0..4096 {
            let block = splitmix(&mut st);
            assert_eq!(b.index(block), b.index(block));
            assert_eq!(x.index(block), x.index(block));
        }
    }
}
