//! Per-cache predictor bank for the fully-exclusive configuration.
//!
//! §III-C: in a fully exclusive hierarchy, data absent from the LLC may
//! still live in any upper level, so *every* cache below L1 gets its own
//! prediction table, scaled to the same storage-overhead ratio (0.78%).
//! On an L1 miss all tables are consulted simultaneously and every level
//! that predicts absence is skipped.

use crate::table::PredictionTable;
use crate::traits::{Prediction, PresencePredictor};

/// A collection of prediction tables, one per covered cache instance.
#[derive(Debug, Clone)]
pub struct PredictorBank {
    tables: Vec<PredictionTable>,
}

impl PredictorBank {
    /// Builds one table per entry of `index_bits`.
    pub fn new(index_bits: impl IntoIterator<Item = u32>) -> Self {
        Self {
            tables: index_bits.into_iter().map(PredictionTable::new).collect(),
        }
    }

    /// Builds tables sized at `ratio` of each covered cache capacity
    /// (rounded down to a power-of-two entry count, minimum 64 entries).
    pub fn with_overhead_ratio(cache_capacities: &[u64], ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio < 1.0);
        let tables = cache_capacities
            .iter()
            .map(|&cap| {
                let bits = ((cap as f64 * ratio) * 8.0) as u64;
                let index_bits = (63 - bits.leading_zeros().min(57)).max(6);
                PredictionTable::new(index_bits)
            })
            .collect();
        Self { tables }
    }

    /// Number of tables in the bank.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Access to one table.
    pub fn table(&self, i: usize) -> &PredictionTable {
        &self.tables[i]
    }

    /// Mutable access to one table.
    pub fn table_mut(&mut self, i: usize) -> &mut PredictionTable {
        &mut self.tables[i]
    }

    /// Predicts presence in the `i`-th covered cache.
    pub fn predict(&self, i: usize, block: u64) -> Prediction {
        self.tables[i].predict(block)
    }

    /// Records a fill into the `i`-th covered cache.
    pub fn on_fill(&mut self, i: usize, block: u64) {
        self.tables[i].on_fill(block);
    }

    /// Recalibrates the `i`-th table from its cache's resident set.
    pub fn recalibrate(&mut self, i: usize, resident: impl Iterator<Item = u64>) {
        self.tables[i].recalibrate_from(resident);
    }

    /// Total storage across all tables, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.capacity_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_independent() {
        let mut b = PredictorBank::new([8u32, 10, 12]);
        assert_eq!(b.len(), 3);
        b.on_fill(1, 42);
        assert_eq!(b.predict(1, 42), Prediction::MaybePresent);
        assert_eq!(b.predict(0, 42), Prediction::Absent);
        assert_eq!(b.predict(2, 42), Prediction::Absent);
    }

    #[test]
    fn recalibrate_targets_one_table() {
        let mut b = PredictorBank::new([8u32, 8]);
        b.on_fill(0, 7);
        b.on_fill(1, 7);
        b.recalibrate(0, std::iter::empty());
        assert_eq!(b.predict(0, 7), Prediction::Absent);
        assert_eq!(b.predict(1, 7), Prediction::MaybePresent);
    }

    #[test]
    fn overhead_ratio_sizing_matches_paper() {
        // 0.78% of a 64 MB LLC → 512 KB → 2^22 entries; of 4 MB L3 → 32 KB;
        // of 256 KB L2 → 2 KB.
        let b = PredictorBank::with_overhead_ratio(&[256 << 10, 4 << 20, 64 << 20], 0.0078125);
        assert_eq!(b.table(0).capacity_bytes(), 2 << 10);
        assert_eq!(b.table(1).capacity_bytes(), 32 << 10);
        assert_eq!(b.table(2).capacity_bytes(), 512 << 10);
        assert_eq!(b.total_bytes(), (2 << 10) + (32 << 10) + (512 << 10));
    }

    #[test]
    fn tiny_caches_get_minimum_table() {
        let b = PredictorBank::with_overhead_ratio(&[1 << 10], 0.0078125);
        assert!(b.table(0).entries() >= 64);
    }

    #[test]
    fn is_empty_reports() {
        let b = PredictorBank::new(std::iter::empty::<u32>());
        assert!(b.is_empty());
    }
}
