//! The ReDHiP prediction table: direct-mapped, 1-bit entries, bits-hash.

use crate::hash::BitsHash;
use crate::traits::{Prediction, PresencePredictor};

/// Direct-mapped bitmap predicting LLC residency.
///
/// A bit is set when a block whose hash maps to it is filled into the LLC
/// and is *never cleared on eviction* (§III-A, "Entry Width"): with a 1-bit
/// entry there is nothing to decrement. Staleness accumulates as false
/// positives until [`PredictionTable::recalibrate_from`] rebuilds the whole
/// table from the LLC's true contents.
///
/// The invariant that makes bypassing safe: the set of bits is always a
/// superset of the hashes of resident blocks (fills set bits immediately;
/// recalibration replaces the table with exactly the resident hashes).
/// Therefore a zero bit proves absence — no false negatives, ever.
#[derive(Debug, Clone)]
pub struct PredictionTable {
    words: Vec<u64>,
    hash: BitsHash,
}

/// Bits per table word (the paper's "64-bit line", one per LLC set when
/// `p − k = 6`).
pub const WORD_BITS: u32 = 64;
/// `log2(WORD_BITS)`.
const WORD_SHIFT: u32 = WORD_BITS.trailing_zeros();

impl PredictionTable {
    /// Builds a table with `index_bits`-bit indices (capacity
    /// `2^index_bits` one-bit entries = `2^index_bits / 8` bytes).
    pub fn new(index_bits: u32) -> Self {
        let hash = BitsHash::new(index_bits);
        let words = (hash.table_entries() / u64::from(WORD_BITS)).max(1);
        let mut words = vec![0; words as usize];
        crate::prefault(&mut words);
        Self { words, hash }
    }

    /// Builds the table from a capacity in bytes (must give a power-of-two
    /// entry count; the paper's 512 KB → 2^22 entries → p = 22).
    pub fn from_capacity_bytes(bytes: u64) -> Self {
        let bits = bytes * 8;
        assert!(
            bits.is_power_of_two(),
            "table capacity must hold a power-of-two number of 1-bit entries"
        );
        Self::new(bits.trailing_zeros())
    }

    /// Index width `p`.
    pub fn index_bits(&self) -> u32 {
        self.hash.index_bits
    }

    /// Capacity in 1-bit entries.
    pub fn entries(&self) -> u64 {
        self.hash.table_entries()
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.entries() / 8
    }

    /// Number of 64-bit lines.
    pub fn lines(&self) -> u64 {
        self.words.len() as u64
    }

    #[inline]
    fn locate(&self, block: u64) -> (usize, u64) {
        let idx = self.hash.index(block);
        ((idx >> WORD_SHIFT) as usize, idx & u64::from(WORD_BITS - 1))
    }

    /// Tests the bit for `block`: one masked load — the probe the paper
    /// prices at a single small-SRAM access.
    #[inline(always)]
    pub fn test(&self, block: u64) -> bool {
        let (w, b) = self.locate(block);
        self.words[w] >> b & 1 != 0
    }

    /// Sets the bit for `block`.
    #[inline]
    pub fn set(&mut self, block: u64) {
        let (w, b) = self.locate(block);
        self.words[w] |= 1 << b;
    }

    /// Number of set bits (diagnostics: table occupancy / staleness).
    pub fn popcount(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Rebuilds the table from the true resident block set — the functional
    /// effect of the Figure 4 hardware (the decoder + OR-tree per set). The
    /// cycle/energy *cost* of doing this is modelled separately by
    /// [`crate::recalib::RecalibrationEngine`].
    pub fn recalibrate_from(&mut self, resident: impl Iterator<Item = u64>) {
        self.words.fill(0);
        for block in resident {
            self.set(block);
        }
    }
}

impl PresencePredictor for PredictionTable {
    fn predict(&self, block: u64) -> Prediction {
        if self.test(block) {
            Prediction::MaybePresent
        } else {
            Prediction::Absent
        }
    }

    fn on_fill(&mut self, block: u64) {
        self.set(block);
    }

    fn on_evict(&mut self, _block: u64) {
        // 1-bit entries intentionally ignore evictions (§III-A).
    }

    fn wants_eviction_events(&self) -> bool {
        false
    }

    fn recalibrate(&mut self, resident: &mut dyn Iterator<Item = u64>) {
        self.recalibrate_from(resident);
    }

    fn supports_recalibration(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn splitmix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn paper_sizing_512kb_is_p22() {
        let t = PredictionTable::from_capacity_bytes(512 << 10);
        assert_eq!(t.index_bits(), 22);
        assert_eq!(t.entries(), 1 << 22);
        assert_eq!(t.capacity_bytes(), 512 << 10);
        assert_eq!(t.lines(), 65536); // one 64-bit line per 64MB-LLC set
    }

    #[test]
    fn demo_sizing_64kb_is_p19() {
        let t = PredictionTable::from_capacity_bytes(64 << 10);
        assert_eq!(t.index_bits(), 19);
        assert_eq!(t.lines(), 8192); // one line per 8MB-LLC set (demo scale)
    }

    #[test]
    fn fill_sets_bit_evict_does_not_clear() {
        let mut t = PredictionTable::new(10);
        assert_eq!(t.predict(5), Prediction::Absent);
        t.on_fill(5);
        assert_eq!(t.predict(5), Prediction::MaybePresent);
        t.on_evict(5);
        assert_eq!(
            t.predict(5),
            Prediction::MaybePresent,
            "1-bit: stale positive"
        );
        assert!(!t.wants_eviction_events());
    }

    #[test]
    fn aliasing_blocks_share_a_bit() {
        let mut t = PredictionTable::new(8);
        t.on_fill(3);
        // 3 + 256 aliases with 3 under an 8-bit bits-hash.
        assert_eq!(t.predict(3 + 256), Prediction::MaybePresent);
        assert_eq!(t.predict(4), Prediction::Absent);
    }

    #[test]
    fn recalibration_clears_stale_bits() {
        let mut t = PredictionTable::new(12);
        for b in 0..100u64 {
            t.on_fill(b);
        }
        assert_eq!(t.popcount(), 100);
        // Cache now only holds blocks 0..10.
        t.recalibrate_from(0..10u64);
        assert_eq!(t.popcount(), 10);
        assert_eq!(t.predict(50), Prediction::Absent);
        assert_eq!(t.predict(5), Prediction::MaybePresent);
    }

    #[test]
    fn recalibrate_equals_fresh_fill() {
        let resident: Vec<u64> = vec![1, 77, 4096, 123_456, 99];
        let mut stale = PredictionTable::new(14);
        for b in 0..500u64 {
            stale.on_fill(b * 3);
        }
        stale.recalibrate_from(resident.iter().copied());

        let mut fresh = PredictionTable::new(14);
        for &b in &resident {
            fresh.on_fill(b);
        }
        assert_eq!(stale.words, fresh.words);
    }

    #[test]
    fn trait_recalibrate_routes_to_rebuild() {
        let mut t = PredictionTable::new(10);
        t.on_fill(900);
        assert!(t.supports_recalibration());
        PresencePredictor::recalibrate(&mut t, &mut (0..4u64));
        assert_eq!(t.predict(900), Prediction::Absent);
        assert_eq!(t.predict(2), Prediction::MaybePresent);
    }

    /// The bypass-safety invariant: under arbitrary interleavings of
    /// fills, evictions, and recalibrations mirroring a ground-truth
    /// resident set, no resident block is ever predicted Absent.
    /// Deterministic randomized test.
    #[test]
    fn no_false_negatives_randomized() {
        let mut st = 0x7AB1Eu64;
        for _case in 0..96 {
            let index_bits = 6 + (splitmix(&mut st) % 8) as u32;
            let mut t = PredictionTable::new(index_bits);
            let mut resident: HashSet<u64> = HashSet::new();
            let len = 1 + (splitmix(&mut st) % 299) as usize;
            for _ in 0..len {
                let op = splitmix(&mut st) % 3;
                let block = splitmix(&mut st) % 4096;
                match op {
                    0 => {
                        if resident.insert(block) {
                            t.on_fill(block);
                        }
                    }
                    1 => {
                        if resident.remove(&block) {
                            t.on_evict(block);
                        }
                    }
                    _ => t.recalibrate_from(resident.iter().copied()),
                }
                for &r in &resident {
                    assert_eq!(t.predict(r), Prediction::MaybePresent);
                }
            }
        }
    }

    /// Right after recalibration the only positives are aliases of
    /// resident blocks (per-bit exactness).
    #[test]
    fn recalibration_exact_per_bit_randomized() {
        let mut st = 0x7AB1Fu64;
        for _case in 0..256 {
            let n_resident = (splitmix(&mut st) % 64) as usize;
            let resident: HashSet<u64> = (0..n_resident)
                .map(|_| splitmix(&mut st) % 100_000)
                .collect();
            let probe: Vec<u64> = (0..32).map(|_| splitmix(&mut st) % 100_000).collect();
            let mut t = PredictionTable::new(10);
            for b in 0..2000u64 {
                t.on_fill(b); // heavy staleness
            }
            t.recalibrate_from(resident.iter().copied());
            let hash = BitsHash::new(10);
            let live: HashSet<u64> = resident.iter().map(|&b| hash.index(b)).collect();
            for p in probe {
                let predicted = t.predict(p) == Prediction::MaybePresent;
                assert_eq!(predicted, live.contains(&hash.index(p)));
            }
        }
    }
}
