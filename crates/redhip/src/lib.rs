//! ReDHiP — Recalibrating Deep Hierarchy Prediction.
//!
//! This crate is the paper's primary contribution: predicting, on every L1
//! miss, whether the requested block is resident in the (inclusive)
//! last-level cache, so that predicted misses can bypass every lower cache
//! level and go straight to memory.
//!
//! The design deliberately trades *standing accuracy* for *recalibratability*
//! (§III of the paper):
//!
//! * [`table::PredictionTable`] — a direct-mapped table of **1-bit** entries
//!   indexed by [`hash::BitsHash`] (the low `p` address bits above the block
//!   offset). Bits are set on LLC fills and never cleared on evictions, so
//!   the table drifts toward false positives…
//! * [`recalib::RecalibrationEngine`] — …until it is periodically rebuilt
//!   from the LLC tag array. Because the PT index *contains* the cache set
//!   index (`p > k`, Figure 3), all lines affecting one 64-bit PT line live
//!   in a single cache set, and a whole set recalibrates in one cycle
//!   through a decoder + OR tree (Figure 4). The engine models that
//!   hardware's cycle and energy cost.
//! * [`cbf::CountingBloomFilter`] — the prior-work baseline (Ghosh et al.):
//!   xor-hashed k-bit saturating counters updated on fills *and* evictions.
//! * [`bank::PredictorBank`] — a set of independently-sized tables for the
//!   fully-exclusive configuration (§III-C), one per cache instance.
//!
//! The crate is substrate-agnostic: it never touches a cache directly. The
//! `sim` crate feeds it fill/evict events and tag-array iterators.

/// Faults in the pages behind a freshly zero-allocated table. The
/// predictor tables are touched with hashed (effectively random) indices,
/// so leaving them as untouched copy-on-write zero pages scatters page
/// faults across the simulation hot path; one sequential pass here is far
/// cheaper. The volatile write keeps the value-preserving store alive.
pub(crate) fn prefault<T: Copy>(v: &mut [T]) {
    const PAGE: usize = 4096;
    let step = (PAGE / std::mem::size_of::<T>().max(1)).max(1);
    let mut i = 0;
    while i < v.len() {
        // SAFETY: `i` is in bounds; the element is rewritten with its own
        // value, so contents are unchanged.
        unsafe {
            let p = v.as_mut_ptr().add(i);
            std::ptr::write_volatile(p, std::ptr::read(p));
        }
        i += step;
    }
}

pub mod bank;
pub mod cbf;
pub mod exact;
pub mod hash;
pub mod level_table;
pub mod perceptron;
pub mod recalib;
pub mod table;
pub mod traits;
pub mod waymemo;

pub use bank::PredictorBank;
pub use cbf::{CbfConfig, CountingBloomFilter};
pub use exact::ExactCountingTable;
pub use hash::{BitsHash, XorHash};
pub use level_table::{LevelPredictor, LEVEL_MEMORY, LEVEL_UNTRAINED};
pub use perceptron::OffChipPerceptron;
pub use recalib::{RecalibCost, RecalibrationEngine};
pub use table::PredictionTable;
pub use traits::{Prediction, PresencePredictor};
pub use waymemo::WayMemo;
