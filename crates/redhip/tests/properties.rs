//! Property tests for the prediction-table primitives: the bits-hash
//! spreads random blocks uniformly, and recalibration is idempotent.

use redhip::{BitsHash, PredictionTable};

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The bits-hash is a low-bits selection, so on uniformly random block
/// addresses every bucket must be hit equally often. With 4096 expected
/// samples per bucket, the binomial standard deviation is ~64 — the ±10%
/// corridor is a ~6σ bound, so this never flakes on a fixed seed and
/// still catches any masking or shifting defect.
#[test]
fn bits_hash_bucket_occupancy_is_uniform_within_ten_percent() {
    const INDEX_BITS: u32 = 8;
    const BUCKETS: usize = 1 << INDEX_BITS;
    const PER_BUCKET: u64 = 4096;
    let h = BitsHash::new(INDEX_BITS);
    let mut counts = vec![0u64; BUCKETS];
    let mut st = 0xB175_4A54_u64;
    for _ in 0..(BUCKETS as u64 * PER_BUCKET) {
        counts[h.index(splitmix(&mut st)) as usize] += 1;
    }
    let lo = PER_BUCKET * 9 / 10;
    let hi = PER_BUCKET * 11 / 10;
    for (bucket, &n) in counts.iter().enumerate() {
        assert!(
            (lo..=hi).contains(&n),
            "bucket {bucket}: {n} outside [{lo}, {hi}] (expected {PER_BUCKET})"
        );
    }
}

/// Recalibrating twice from the same resident set must be a no-op the
/// second time: the table state is a pure function of the resident set.
#[test]
fn recalibration_is_idempotent() {
    const INDEX_BITS: u32 = 10;
    let mut st = 0x1D34_D07E_u64;
    for _case in 0..64 {
        let n = (splitmix(&mut st) % 300) as usize;
        let resident: Vec<u64> = (0..n).map(|_| splitmix(&mut st) % 1_000_000).collect();

        let mut table = PredictionTable::new(INDEX_BITS);
        // Accumulate staleness so recalibration has something to clear.
        for b in 0..2_000u64 {
            table.set(b.wrapping_mul(7));
        }
        table.recalibrate_from(resident.iter().copied());
        let once: Vec<bool> = (0..1u64 << INDEX_BITS).map(|i| table.test(i)).collect();
        let pop_once = table.popcount();

        table.recalibrate_from(resident.iter().copied());
        let twice: Vec<bool> = (0..1u64 << INDEX_BITS).map(|i| table.test(i)).collect();

        assert_eq!(once, twice, "second recalibration changed the table");
        assert_eq!(pop_once, table.popcount());

        // And the result equals a fresh table built from the same set:
        // recalibration erases all history.
        let mut fresh = PredictionTable::new(INDEX_BITS);
        fresh.recalibrate_from(resident.iter().copied());
        let fresh_bits: Vec<bool> = (0..1u64 << INDEX_BITS).map(|i| fresh.test(i)).collect();
        assert_eq!(once, fresh_bits, "recalibration kept stale history");
    }
}

/// Recalibration order-independence: the rebuilt table depends on the
/// resident *set*, not the sweep order the hardware happens to use.
#[test]
fn recalibration_is_order_independent() {
    let mut st = 0x0_5EEDu64;
    let resident: Vec<u64> = (0..200).map(|_| splitmix(&mut st) % 50_000).collect();
    let mut reversed = resident.clone();
    reversed.reverse();

    let mut a = PredictionTable::new(12);
    let mut b = PredictionTable::new(12);
    a.recalibrate_from(resident.iter().copied());
    b.recalibrate_from(reversed.iter().copied());
    for i in 0..1u64 << 12 {
        assert_eq!(a.test(i), b.test(i), "index {i} differs by sweep order");
    }
}
