//! Windowed time-series collection.
//!
//! A [`WindowedCollector`] buckets the hook stream into fixed-size windows
//! of N references per core and emits one [`WindowSample`] per closed
//! window, with [`RecalibMarker`]s interleaved in event order. Summing the
//! integer counters of all samples (plus markers, for energy/stalls)
//! reproduces the end-of-run aggregates exactly — the consistency
//! invariant the `sim` integration tests pin down.

use crate::SimObserver;
use minijson::{json, Json, ToJson};

/// Number of log2 latency buckets. Bucket 0 holds zero-cycle references,
/// bucket `b >= 1` holds latencies in `[2^(b-1), 2^b)`, and the final
/// bucket additionally absorbs everything larger.
pub const LATENCY_BUCKETS: usize = 16;

/// Bucket index for an access latency, per the [`LATENCY_BUCKETS`] scheme.
pub fn latency_bucket(cycles: u64) -> usize {
    let bits = (u64::BITS - cycles.leading_zeros()) as usize;
    bits.min(LATENCY_BUCKETS - 1)
}

/// Metrics for one closed window of references on one core.
///
/// All counters are raw integers over the window (energy excepted); the
/// rate methods derive the paper's headline metrics. Level vectors are
/// indexed by cache level, 0 = L1; they cover *demand* traversals only,
/// matching what `HierarchyStats` aggregates (prefetch probes and fills
/// are accounted separately by the simulator and appear here only through
/// `energy_nj`).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Core the window belongs to.
    pub core: usize,
    /// Zero-based window index on this core.
    pub index: u64,
    /// Per-core reference number of the first reference in the window.
    pub start_ref: u64,
    /// References in the window (equal to the configured width except for
    /// a final partial window).
    pub refs: u64,
    /// Demand array lookups per cache level.
    pub level_lookups: Vec<u64>,
    /// Demand lookup hits per cache level.
    pub level_hits: Vec<u64>,
    /// Demand line fills per cache level.
    pub level_fills: Vec<u64>,
    /// Predicted-absent outcomes (hierarchy bypassed).
    pub bypasses: u64,
    /// Predicted-maybe-present outcomes where the walk hit on chip.
    pub walk_hits: u64,
    /// Predicted-maybe-present outcomes where the walk missed everywhere.
    pub false_positives: u64,
    /// Dynamic energy added during the window, nJ (demand + predictor +
    /// prefetch; recalibration energy is on the markers).
    pub energy_nj: f64,
    /// Summed serialized access latency of the window's references.
    pub access_cycles: u64,
    /// Log2-bucketed access-latency histogram ([`LATENCY_BUCKETS`] bins).
    pub latency_hist: Vec<u64>,
}

impl WindowSample {
    fn new(core: usize, index: u64, start_ref: u64, levels: usize) -> Self {
        Self {
            core,
            index,
            start_ref,
            refs: 0,
            level_lookups: vec![0; levels],
            level_hits: vec![0; levels],
            level_fills: vec![0; levels],
            bypasses: 0,
            walk_hits: 0,
            false_positives: 0,
            energy_nj: 0.0,
            access_cycles: 0,
            latency_hist: vec![0; LATENCY_BUCKETS],
        }
    }

    fn ensure_level(&mut self, level: usize) {
        if self.level_lookups.len() <= level {
            self.level_lookups.resize(level + 1, 0);
            self.level_hits.resize(level + 1, 0);
            self.level_fills.resize(level + 1, 0);
        }
    }

    fn is_empty(&self) -> bool {
        self.refs == 0
            && self.bypasses == 0
            && self.walk_hits == 0
            && self.false_positives == 0
            && self.level_lookups.iter().all(|&n| n == 0)
    }

    /// Predictor consultations in the window. Every lookup has exactly one
    /// outcome, so this is the sum of the three outcome counters.
    pub fn pred_lookups(&self) -> u64 {
        self.bypasses + self.walk_hits + self.false_positives
    }

    /// Fraction of true LLC misses the predictor caught, mirroring
    /// `PredictionStats::miss_coverage`.
    pub fn miss_coverage(&self) -> f64 {
        let misses = self.bypasses + self.false_positives;
        if misses == 0 {
            0.0
        } else {
            self.bypasses as f64 / misses as f64
        }
    }

    /// Fraction of predictions that were exactly right, mirroring
    /// `PredictionStats::accuracy`.
    pub fn accuracy(&self) -> f64 {
        let lookups = self.pred_lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.bypasses + self.walk_hits) as f64 / lookups as f64
        }
    }

    /// False positives per predictor lookup.
    pub fn false_positive_rate(&self) -> f64 {
        let lookups = self.pred_lookups();
        if lookups == 0 {
            0.0
        } else {
            self.false_positives as f64 / lookups as f64
        }
    }

    /// Bypasses per reference in the window.
    pub fn bypass_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.bypasses as f64 / self.refs as f64
        }
    }

    /// Hit rate of one cache level within the window; 0.0 when the level
    /// saw no lookups (or does not exist).
    pub fn hit_rate(&self, level: usize) -> f64 {
        match (self.level_hits.get(level), self.level_lookups.get(level)) {
            (Some(&h), Some(&n)) if n > 0 => h as f64 / n as f64,
            _ => 0.0,
        }
    }

    /// Mean access latency (cycles) of the window's references.
    pub fn mean_access_cycles(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.access_cycles as f64 / self.refs as f64
        }
    }
}

impl ToJson for WindowSample {
    fn to_json(&self) -> Json {
        let hit_rates: Vec<Json> = (0..self.level_lookups.len())
            .map(|l| Json::Float(self.hit_rate(l)))
            .collect();
        json!({
            "kind": "window",
            "core": self.core,
            "index": self.index,
            "start_ref": self.start_ref,
            "refs": self.refs,
            "level_lookups": &self.level_lookups,
            "level_hits": &self.level_hits,
            "level_fills": &self.level_fills,
            "bypasses": self.bypasses,
            "walk_hits": self.walk_hits,
            "false_positives": self.false_positives,
            "energy_nj": self.energy_nj,
            "access_cycles": self.access_cycles,
            "latency_hist": &self.latency_hist,
            "hit_rates": Json::Arr(hit_rates),
            "miss_coverage": self.miss_coverage(),
            "accuracy": self.accuracy(),
            "false_positive_rate": self.false_positive_rate(),
            "bypass_rate": self.bypass_rate(),
        })
    }
}

fn u64_vec(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    v.arr_of(key)?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("{key}: not a u64")))
        .collect()
}

impl minijson::FromJson for WindowSample {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            core: v.u64_of("core")? as usize,
            index: v.u64_of("index")?,
            start_ref: v.u64_of("start_ref")?,
            refs: v.u64_of("refs")?,
            level_lookups: u64_vec(v, "level_lookups")?,
            level_hits: u64_vec(v, "level_hits")?,
            level_fills: u64_vec(v, "level_fills")?,
            bypasses: v.u64_of("bypasses")?,
            walk_hits: v.u64_of("walk_hits")?,
            false_positives: v.u64_of("false_positives")?,
            energy_nj: v.f64_of("energy_nj")?,
            access_cycles: v.u64_of("access_cycles")?,
            latency_hist: u64_vec(v, "latency_hist")?,
        })
    }
}

/// A completed recalibration, placed chronologically between window
/// samples. Kept separate from the per-core windows because recalibration
/// is a global event — folding its cost into one core's window would
/// double-count it when summing across cores.
#[derive(Debug, Clone, PartialEq)]
pub struct RecalibMarker {
    /// Zero-based recalibration number.
    pub index: u64,
    /// Energy charged for the table rebuild, nJ.
    pub energy_nj: f64,
    /// Stall cycles charged to every core.
    pub stall_cycles: u64,
    /// Per-core reference counts at the instant of the event — the x-axis
    /// position for sawtooth plots.
    pub core_refs: Vec<u64>,
}

impl ToJson for RecalibMarker {
    fn to_json(&self) -> Json {
        json!({
            "kind": "recalib",
            "index": self.index,
            "energy_nj": self.energy_nj,
            "stall_cycles": self.stall_cycles,
            "core_refs": &self.core_refs,
        })
    }
}

impl minijson::FromJson for RecalibMarker {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            index: v.u64_of("index")?,
            energy_nj: v.f64_of("energy_nj")?,
            stall_cycles: v.u64_of("stall_cycles")?,
            core_refs: u64_vec(v, "core_refs")?,
        })
    }
}

/// One line of the telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryRecord {
    /// A closed per-core window.
    Window(WindowSample),
    /// A global recalibration event.
    Recalib(RecalibMarker),
}

impl ToJson for TelemetryRecord {
    fn to_json(&self) -> Json {
        match self {
            TelemetryRecord::Window(w) => w.to_json(),
            TelemetryRecord::Recalib(r) => r.to_json(),
        }
    }
}

impl minijson::FromJson for TelemetryRecord {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.str_of("kind")? {
            "window" => Ok(TelemetryRecord::Window(WindowSample::from_json(v)?)),
            "recalib" => Ok(TelemetryRecord::Recalib(RecalibMarker::from_json(v)?)),
            other => Err(format!("unknown telemetry record kind {other:?}")),
        }
    }
}

/// Observer that closes a metrics window every N references per core.
#[derive(Debug, Clone)]
pub struct WindowedCollector {
    width: u64,
    levels: usize,
    current: Vec<WindowSample>,
    refs_done: Vec<u64>,
    recalibs: u64,
    records: Vec<TelemetryRecord>,
}

impl WindowedCollector {
    /// Creates a collector that closes a window every `width` references
    /// on each core. `levels` pre-sizes the per-level vectors (they also
    /// grow on demand); pass the hierarchy depth when known.
    pub fn new(width: u64, levels: usize) -> Self {
        assert!(width > 0, "window width must be positive");
        Self {
            width,
            levels,
            current: Vec::new(),
            refs_done: Vec::new(),
            recalibs: 0,
            records: Vec::new(),
        }
    }

    fn ensure_core(&mut self, core: usize) {
        while self.current.len() <= core {
            let c = self.current.len();
            self.current.push(WindowSample::new(c, 0, 0, self.levels));
            self.refs_done.push(0);
        }
    }

    fn close_window(&mut self, core: usize) {
        let next_index = self.current[core].index + 1;
        let next_start = self.refs_done[core];
        let closed = std::mem::replace(
            &mut self.current[core],
            WindowSample::new(core, next_index, next_start, self.levels),
        );
        self.records.push(TelemetryRecord::Window(closed));
    }

    /// The closed records so far, in event order.
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.records
    }

    /// Consumes the collector, returning the record stream.
    pub fn into_records(self) -> Vec<TelemetryRecord> {
        self.records
    }

    /// Iterator over closed window samples only.
    pub fn windows(&self) -> impl Iterator<Item = &WindowSample> {
        self.records.iter().filter_map(|r| match r {
            TelemetryRecord::Window(w) => Some(w),
            _ => None,
        })
    }

    /// Iterator over recalibration markers only.
    pub fn recalibrations(&self) -> impl Iterator<Item = &RecalibMarker> {
        self.records.iter().filter_map(|r| match r {
            TelemetryRecord::Recalib(m) => Some(m),
            _ => None,
        })
    }

    /// Serializes the record stream as JSON Lines (one record per line,
    /// trailing newline). Deterministic: identical runs produce identical
    /// bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&rec.to_json().dump());
            out.push('\n');
        }
        out
    }

    /// Parses a JSON Lines telemetry stream back into records.
    pub fn parse_jsonl(text: &str) -> Result<Vec<TelemetryRecord>, String> {
        use minijson::FromJson;
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| TelemetryRecord::from_json(&minijson::parse(l)?))
            .collect()
    }
}

impl SimObserver for WindowedCollector {
    fn on_ref(&mut self, core: usize, access_cycles: u64, energy_nj: f64) {
        self.ensure_core(core);
        self.refs_done[core] += 1;
        let w = &mut self.current[core];
        w.refs += 1;
        w.access_cycles += access_cycles;
        w.energy_nj += energy_nj;
        w.latency_hist[latency_bucket(access_cycles)] += 1;
        if w.refs >= self.width {
            self.close_window(core);
        }
    }

    fn on_level_access(&mut self, core: usize, level: u8, hit: bool) {
        self.ensure_core(core);
        let w = &mut self.current[core];
        w.ensure_level(level as usize);
        w.level_lookups[level as usize] += 1;
        if hit {
            w.level_hits[level as usize] += 1;
        }
    }

    fn on_bypass(&mut self, core: usize) {
        self.ensure_core(core);
        self.current[core].bypasses += 1;
    }

    fn on_walk_hit(&mut self, core: usize) {
        self.ensure_core(core);
        self.current[core].walk_hits += 1;
    }

    fn on_false_positive(&mut self, core: usize) {
        self.ensure_core(core);
        self.current[core].false_positives += 1;
    }

    fn on_fill(&mut self, core: usize, level: u8) {
        self.ensure_core(core);
        let w = &mut self.current[core];
        w.ensure_level(level as usize);
        w.level_fills[level as usize] += 1;
    }

    fn on_recalibration(&mut self, energy_nj: f64, stall_cycles: u64) {
        let marker = RecalibMarker {
            index: self.recalibs,
            energy_nj,
            stall_cycles,
            core_refs: self.refs_done.clone(),
        };
        self.recalibs += 1;
        self.records.push(TelemetryRecord::Recalib(marker));
    }

    fn on_window_close(&mut self) {
        for core in 0..self.current.len() {
            if !self.current[core].is_empty() {
                self.close_window(core);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 1);
        assert_eq!(latency_bucket(2), 2);
        assert_eq!(latency_bucket(3), 2);
        assert_eq!(latency_bucket(4), 3);
        assert_eq!(latency_bucket(7), 3);
        assert_eq!(latency_bucket(8), 4);
        assert_eq!(latency_bucket(1 << 13), 14);
        assert_eq!(latency_bucket(1 << 14), LATENCY_BUCKETS - 1);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    fn feed_refs(c: &mut WindowedCollector, core: usize, n: u64) {
        for _ in 0..n {
            c.on_level_access(core, 0, true);
            c.on_ref(core, 4, 1.0);
        }
    }

    #[test]
    fn windows_close_every_n_refs_per_core() {
        let mut c = WindowedCollector::new(10, 2);
        feed_refs(&mut c, 0, 25);
        feed_refs(&mut c, 1, 10);
        c.on_window_close();
        let wins: Vec<_> = c.windows().cloned().collect();
        // Core 0: two full windows + one partial of 5; core 1: one full.
        assert_eq!(wins.len(), 4);
        let core0: Vec<_> = wins.iter().filter(|w| w.core == 0).collect();
        assert_eq!(core0.len(), 3);
        assert_eq!(core0[0].refs, 10);
        assert_eq!(core0[0].start_ref, 0);
        assert_eq!(core0[1].start_ref, 10);
        assert_eq!(core0[2].refs, 5);
        assert_eq!(core0[2].index, 2);
        let total: u64 = wins.iter().map(|w| w.refs).sum();
        assert_eq!(total, 35);
    }

    #[test]
    fn final_flush_is_idempotent_and_skips_empty() {
        let mut c = WindowedCollector::new(10, 1);
        feed_refs(&mut c, 0, 10); // exactly one full window, nothing pending
        c.on_window_close();
        c.on_window_close();
        assert_eq!(c.windows().count(), 1);
    }

    #[test]
    fn recalib_markers_interleave_in_event_order() {
        let mut c = WindowedCollector::new(5, 1);
        feed_refs(&mut c, 0, 5);
        c.on_recalibration(12.5, 100);
        feed_refs(&mut c, 0, 5);
        c.on_window_close();
        let recs = c.records();
        assert_eq!(recs.len(), 3);
        assert!(matches!(recs[0], TelemetryRecord::Window(_)));
        match &recs[1] {
            TelemetryRecord::Recalib(m) => {
                assert_eq!(m.index, 0);
                assert_eq!(m.core_refs, vec![5]);
                assert_eq!(m.stall_cycles, 100);
            }
            _ => panic!("expected recalib marker"),
        }
        assert!(matches!(recs[2], TelemetryRecord::Window(_)));
    }

    #[test]
    fn predictor_outcomes_and_rates() {
        let mut c = WindowedCollector::new(100, 2);
        for i in 0..10u64 {
            c.on_level_access(0, 0, false);
            match i % 4 {
                0 => c.on_bypass(0),
                1 | 2 => {
                    c.on_walk_hit(0);
                    c.on_level_access(0, 1, true);
                }
                _ => {
                    c.on_false_positive(0);
                    c.on_level_access(0, 1, false);
                    c.on_fill(0, 1);
                }
            }
            c.on_ref(0, 20, 2.0);
        }
        c.on_window_close();
        let w = c.windows().next().unwrap().clone();
        assert_eq!(w.pred_lookups(), 10);
        assert_eq!(w.bypasses, 3);
        assert_eq!(w.walk_hits, 5);
        assert_eq!(w.false_positives, 2);
        assert!((w.accuracy() - 0.8).abs() < 1e-12);
        assert!((w.miss_coverage() - 0.6).abs() < 1e-12);
        assert!((w.false_positive_rate() - 0.2).abs() < 1e-12);
        assert!((w.bypass_rate() - 0.3).abs() < 1e-12);
        assert_eq!(w.hit_rate(0), 0.0);
        assert!((w.hit_rate(1) - 5.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.level_fills[1], 2);
        assert!((w.mean_access_cycles() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut c = WindowedCollector::new(5, 2);
        feed_refs(&mut c, 0, 7);
        c.on_recalibration(3.0, 42);
        c.on_window_close();
        let text = c.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let parsed = WindowedCollector::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.as_slice(), c.records());
    }

    #[test]
    fn jsonl_is_deterministic() {
        let run = || {
            let mut c = WindowedCollector::new(3, 1);
            feed_refs(&mut c, 0, 8);
            c.on_recalibration(1.25, 7);
            c.on_window_close();
            c.to_jsonl()
        };
        assert_eq!(run(), run());
    }
}
