//! Simulator instrumentation: observer hooks, windowed time-series
//! metrics, and a run heartbeat.
//!
//! The paper's central claim is *temporal* — the 1-bit prediction table's
//! accuracy decays between recalibrations and snaps back at each
//! recalibration event (Figs. 9–12) — yet end-of-run aggregates cannot show
//! that dynamic. This crate provides the observation layer:
//!
//! * [`SimObserver`] — a statically-dispatched hook trait the simulator
//!   calls on every reference, array lookup, predictor outcome, fill, and
//!   recalibration. All methods have empty default bodies.
//! * [`NullObserver`] — the default observer. Its hooks are empty and its
//!   [`SimObserver::ENABLED`] constant is `false`, so the simulator skips
//!   computing hook arguments entirely and the instrumented hot path
//!   compiles down to the uninstrumented one.
//! * [`WindowedCollector`] — closes a window every N references per core
//!   and emits a [`WindowSample`]: per-level hit rates, predictor
//!   coverage/accuracy/false-positive rate, bypass rate, dynamic energy and
//!   access cycles in the window, and a log2-bucketed latency histogram.
//!   Recalibration events become [`RecalibMarker`]s, interleaved with the
//!   samples in event order. [`WindowedCollector::to_jsonl`] serializes the
//!   whole stream as JSON Lines.
//! * [`Heartbeat`] / [`HeartbeatObserver`] — rate-limited stderr progress
//!   (units/s, % complete, ETA) for long runs; shared by `redhip-sim` and
//!   the `figures` harness.
//! * [`Tee`] — forwards every hook to two observers (e.g. a collector plus
//!   a heartbeat).

mod heartbeat;
mod window;

pub use heartbeat::{Heartbeat, HeartbeatObserver};
pub use window::{RecalibMarker, TelemetryRecord, WindowSample, WindowedCollector};

/// Hooks the simulator invokes while processing references.
///
/// Static dispatch: the simulator is generic over its observer, so with
/// [`NullObserver`] every call site inlines to nothing. Implementations
/// override only the hooks they care about.
///
/// # Hook timing
///
/// For one trace record the simulator emits, in order: at most one
/// predictor outcome ([`on_bypass`](Self::on_bypass) /
/// [`on_walk_hit`](Self::on_walk_hit) /
/// [`on_false_positive`](Self::on_false_positive)), then one
/// [`on_level_access`](Self::on_level_access) per array lookup of the
/// demand traversal (L1 first) and one [`on_fill`](Self::on_fill) per
/// demand fill, then exactly one [`on_ref`](Self::on_ref).
/// A recalibration triggered by that reference emits
/// [`on_recalibration`](Self::on_recalibration) *after* its `on_ref`, so
/// windowed collectors attribute the event to the boundary between
/// references — the paper's semantics (recalibration happens between
/// accesses, not during one).
pub trait SimObserver {
    /// `false` only for observers whose hooks are all no-ops. The simulator
    /// consults this to skip computing hook arguments (per-reference energy
    /// deltas) on the default path.
    const ENABLED: bool = true;

    /// One trace record fully processed on `core`. `access_cycles` is the
    /// serialized hierarchy lookup-chain latency of the reference
    /// (excluding compute gaps, predictor wire delay, and recalibration
    /// stalls); `energy_nj` is the total dynamic energy the reference added
    /// (demand + predictor + prefetch), excluding recalibration energy,
    /// which is reported by [`on_recalibration`](Self::on_recalibration).
    fn on_ref(&mut self, core: usize, access_cycles: u64, energy_nj: f64) {
        let _ = (core, access_cycles, energy_nj);
    }

    /// One demand array lookup against cache `level` (0 = L1) issued by
    /// `core`. Shared-LLC lookups are attributed to the issuing core.
    fn on_level_access(&mut self, core: usize, level: u8, hit: bool) {
        let _ = (core, level, hit);
    }

    /// Predictor said *absent*; the lower hierarchy was bypassed.
    fn on_bypass(&mut self, core: usize) {
        let _ = core;
    }

    /// Predictor said *maybe present* and the walk hit on chip.
    fn on_walk_hit(&mut self, core: usize) {
        let _ = core;
    }

    /// Predictor said *maybe present* but the walk missed everywhere.
    fn on_false_positive(&mut self, core: usize) {
        let _ = core;
    }

    /// A demand line fill into cache `level` on behalf of `core`.
    fn on_fill(&mut self, core: usize, level: u8) {
        let _ = (core, level);
    }

    /// The predictor table(s) were rebuilt from cache contents.
    /// `energy_nj` / `stall_cycles` are the overheads actually charged
    /// (zero when `count_prediction_overhead` is off).
    fn on_recalibration(&mut self, energy_nj: f64, stall_cycles: u64) {
        let _ = (energy_nj, stall_cycles);
    }

    /// The run ended: force-close any partially filled windows and flush
    /// buffered output.
    fn on_window_close(&mut self) {}
}

/// The default do-nothing observer; compiles away entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    const ENABLED: bool = false;
}

/// Forwards every hook to both `a` and `b`.
#[derive(Debug, Clone)]
pub struct Tee<A, B> {
    /// First receiver (hooks are delivered to it first).
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A: SimObserver, B: SimObserver> Tee<A, B> {
    /// Combines two observers.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: SimObserver, B: SimObserver> SimObserver for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_ref(&mut self, core: usize, access_cycles: u64, energy_nj: f64) {
        self.a.on_ref(core, access_cycles, energy_nj);
        self.b.on_ref(core, access_cycles, energy_nj);
    }

    fn on_level_access(&mut self, core: usize, level: u8, hit: bool) {
        self.a.on_level_access(core, level, hit);
        self.b.on_level_access(core, level, hit);
    }

    fn on_bypass(&mut self, core: usize) {
        self.a.on_bypass(core);
        self.b.on_bypass(core);
    }

    fn on_walk_hit(&mut self, core: usize) {
        self.a.on_walk_hit(core);
        self.b.on_walk_hit(core);
    }

    fn on_false_positive(&mut self, core: usize) {
        self.a.on_false_positive(core);
        self.b.on_false_positive(core);
    }

    fn on_fill(&mut self, core: usize, level: u8) {
        self.a.on_fill(core, level);
        self.b.on_fill(core, level);
    }

    fn on_recalibration(&mut self, energy_nj: f64, stall_cycles: u64) {
        self.a.on_recalibration(energy_nj, stall_cycles);
        self.b.on_recalibration(energy_nj, stall_cycles);
    }

    fn on_window_close(&mut self) {
        self.a.on_window_close();
        self.b.on_window_close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        refs: u64,
        accesses: u64,
        closes: u64,
    }

    impl SimObserver for Counting {
        fn on_ref(&mut self, _c: usize, _l: u64, _e: f64) {
            self.refs += 1;
        }
        fn on_level_access(&mut self, _c: usize, _l: u8, _h: bool) {
            self.accesses += 1;
        }
        fn on_window_close(&mut self) {
            self.closes += 1;
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the consts ARE the contract
    fn null_observer_is_disabled() {
        assert!(!NullObserver::ENABLED);
        // And callable: the default bodies do nothing.
        let mut n = NullObserver;
        n.on_ref(0, 1, 2.0);
        n.on_recalibration(0.0, 0);
        n.on_window_close();
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut t = Tee::new(Counting::default(), Counting::default());
        t.on_ref(0, 4, 0.5);
        t.on_level_access(0, 0, true);
        t.on_level_access(0, 1, false);
        t.on_window_close();
        assert_eq!(t.a.refs, 1);
        assert_eq!(t.b.refs, 1);
        assert_eq!(t.a.accesses, 2);
        assert_eq!(t.b.accesses, 2);
        assert_eq!(t.a.closes, 1);
        assert_eq!(t.b.closes, 1);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the consts ARE the contract
    fn tee_enabled_is_or_of_parts() {
        assert!(<Tee<Counting, NullObserver> as SimObserver>::ENABLED);
        assert!(!<Tee<NullObserver, NullObserver> as SimObserver>::ENABLED);
    }
}
