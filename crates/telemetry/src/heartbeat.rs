//! Rate-limited stderr progress reporting.
//!
//! [`Heartbeat`] is a plain progress meter any long-running loop can tick
//! (the `figures` harness ticks it per job); [`HeartbeatObserver`] adapts
//! it to the [`SimObserver`](crate::SimObserver) hook stream so `redhip-sim`
//! gets per-reference progress with negligible overhead.

use crate::SimObserver;
use std::io::Write;
use std::time::Instant;

/// Emits `done/total (pct) unit/s ETA` lines to stderr, at most once per
/// `interval_secs`.
#[derive(Debug)]
pub struct Heartbeat {
    label: String,
    unit: String,
    total: u64,
    done: u64,
    started: Instant,
    last_emit: Option<Instant>,
    interval_secs: f64,
    enabled: bool,
    /// The final 100% line went out (exactly once, whether `set_done`
    /// crossing the total or `finish` got there first).
    done_emitted: bool,
    /// Progress lines emitted (counted even when silent, so tests can
    /// assert emission behavior without capturing stderr).
    emits: u64,
}

impl Heartbeat {
    /// Creates a heartbeat for `total` units of work (0 = unknown total;
    /// percentage and ETA are then omitted). `label` prefixes each line,
    /// `unit` names the work item (e.g. `"refs"`, `"jobs"`).
    pub fn new(label: &str, unit: &str, total: u64) -> Self {
        Self {
            label: label.to_string(),
            unit: unit.to_string(),
            total,
            done: 0,
            started: Instant::now(),
            last_emit: None,
            interval_secs: 1.0,
            enabled: true,
            done_emitted: false,
            emits: 0,
        }
    }

    /// Overrides the minimum seconds between emitted lines (default 1.0).
    pub fn with_interval_secs(mut self, secs: f64) -> Self {
        self.interval_secs = secs;
        self
    }

    /// Disables output entirely (progress is still counted).
    pub fn silent(mut self) -> Self {
        self.enabled = false;
        self
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Progress lines emitted so far (still counted when silent).
    pub fn emits(&self) -> u64 {
        self.emits
    }

    /// Records `n` more completed units and emits a line if the rate
    /// limit allows.
    pub fn add(&mut self, n: u64) {
        self.done += n;
        self.maybe_emit(false);
    }

    /// Sets the absolute completed count and emits a line if the rate
    /// limit allows. This is the contention-free shape for parallel work:
    /// workers tick a shared `AtomicU64` and a single reporting thread
    /// drains it here, so job completion never takes a lock.
    ///
    /// Reaching a known total forces the final 100% line through the
    /// rate limiter — a run completing inside the last interval still
    /// reports completion — and emits it exactly once ([`Heartbeat::finish`]
    /// will not repeat it).
    pub fn set_done(&mut self, done: u64) {
        self.done = done;
        if self.total > 0 && done >= self.total && !self.done_emitted {
            self.done_emitted = true;
            self.maybe_emit(true);
        } else {
            self.maybe_emit(false);
        }
    }

    /// Emits a final line unconditionally (marks the run complete) —
    /// unless `set_done` already emitted the final 100% line.
    pub fn finish(&mut self) {
        if self.done_emitted && self.total > 0 && self.done >= self.total {
            return;
        }
        self.done_emitted = true;
        self.maybe_emit(true);
    }

    /// Formats the current progress line (without emitting it).
    pub fn line(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            self.done as f64 / elapsed
        } else {
            0.0
        };
        let mut s = format!("{}: {} {}", self.label, self.done, self.unit);
        if self.total > 0 {
            let pct = 100.0 * self.done as f64 / self.total as f64;
            s.push_str(&format!("/{} ({:.1}%)", self.total, pct));
        }
        s.push_str(&format!(" at {}/s", human_rate(rate)));
        if self.total > 0 && rate > 0.0 && self.done < self.total {
            let eta = (self.total - self.done) as f64 / rate;
            s.push_str(&format!(", ETA {}", human_secs(eta)));
        }
        if self.done >= self.total && self.total > 0 {
            s.push_str(&format!(", done in {}", human_secs(elapsed)));
        }
        s
    }

    fn maybe_emit(&mut self, force: bool) {
        let now = Instant::now();
        let due = match self.last_emit {
            None => self.started.elapsed().as_secs_f64() >= self.interval_secs,
            Some(prev) => now.duration_since(prev).as_secs_f64() >= self.interval_secs,
        };
        if force || due {
            self.last_emit = Some(now);
            self.emits += 1;
            if self.enabled {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{}", self.line());
            }
        }
    }
}

/// `units/s` with k/M suffixes, three significant-ish digits.
fn human_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Seconds as `Ns`, `NmNNs`, or `NhNNm`.
fn human_secs(secs: f64) -> String {
    let s = secs.round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

/// Adapts a [`Heartbeat`] to the observer hook stream. Checks the wall
/// clock only every `stride` references so the hot path stays cheap.
#[derive(Debug)]
pub struct HeartbeatObserver {
    heart: Heartbeat,
    pending: u64,
    stride: u64,
}

impl HeartbeatObserver {
    /// Wraps `heart`, batching reference counts so the clock is consulted
    /// roughly every 8192 references.
    pub fn new(heart: Heartbeat) -> Self {
        Self {
            heart,
            pending: 0,
            stride: 8192,
        }
    }

    /// The wrapped heartbeat.
    pub fn heartbeat(&self) -> &Heartbeat {
        &self.heart
    }
}

impl SimObserver for HeartbeatObserver {
    fn on_ref(&mut self, _core: usize, _access_cycles: u64, _energy_nj: f64) {
        self.pending += 1;
        if self.pending >= self.stride {
            self.heart.add(self.pending);
            self.pending = 0;
        }
    }

    fn on_window_close(&mut self) {
        if self.pending > 0 {
            self.heart.add(self.pending);
            self.pending = 0;
        }
        self.heart.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_formats_progress() {
        let mut h = Heartbeat::new("sim", "refs", 1000).silent();
        h.add(250);
        let line = h.line();
        assert!(line.starts_with("sim: 250 refs/1000 (25.0%)"), "{line}");
        assert!(line.contains("/s"), "{line}");
    }

    #[test]
    fn set_done_is_absolute() {
        let mut h = Heartbeat::new("sweep", "cells", 50).silent();
        h.set_done(10);
        h.set_done(30);
        assert_eq!(h.done(), 30);
        h.add(5);
        assert_eq!(h.done(), 35);
    }

    #[test]
    fn unknown_total_omits_percentage() {
        let mut h = Heartbeat::new("gen", "rows", 0).silent();
        h.add(42);
        let line = h.line();
        assert!(line.contains("42 rows"), "{line}");
        assert!(!line.contains('%'), "{line}");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_rate(12.0), "12");
        assert_eq!(human_rate(1200.0), "1.2k");
        assert_eq!(human_rate(2_500_000.0), "2.50M");
        assert_eq!(human_secs(5.0), "5s");
        assert_eq!(human_secs(125.0), "2m05s");
        assert_eq!(human_secs(7260.0), "2h01m");
    }

    #[test]
    fn set_done_forces_the_final_line_through_the_rate_limiter() {
        // Interval far longer than the test: every emission below is
        // either the completion override or a double-print bug.
        let mut h = Heartbeat::new("sweep", "cells", 4)
            .silent()
            .with_interval_secs(3_600.0);
        h.set_done(1);
        assert_eq!(h.emits(), 0, "mid-run tick must stay rate-limited");
        h.set_done(4);
        assert_eq!(h.emits(), 1, "reaching the total must emit 100%");
        h.set_done(4);
        assert_eq!(h.emits(), 1, "completion line must not repeat");
        h.finish();
        assert_eq!(h.emits(), 1, "finish must not double-print the final line");
    }

    #[test]
    fn finish_still_emits_when_total_is_unknown_or_unreached() {
        let mut h = Heartbeat::new("gen", "rows", 0)
            .silent()
            .with_interval_secs(3_600.0);
        h.add(10);
        assert_eq!(h.emits(), 0);
        h.finish();
        assert_eq!(h.emits(), 1);

        let mut p = Heartbeat::new("sweep", "cells", 100)
            .silent()
            .with_interval_secs(3_600.0);
        p.set_done(40); // aborted early: finish must still report
        p.finish();
        assert_eq!(p.emits(), 1);
    }

    /// `Tee` fans one hook stream out to a collector-style observer and a
    /// `HeartbeatObserver`: both sides must see every reference, and the
    /// heartbeat must emit its single 100% line at window close.
    #[test]
    fn tee_composes_with_a_heartbeat_observer() {
        use crate::Tee;

        #[derive(Default)]
        struct CountRefs {
            refs: u64,
            closed: bool,
        }
        impl SimObserver for CountRefs {
            fn on_ref(&mut self, _core: usize, _cycles: u64, _nj: f64) {
                self.refs += 1;
            }
            fn on_window_close(&mut self) {
                self.closed = true;
            }
        }

        let hb = HeartbeatObserver::new(
            Heartbeat::new("sim", "refs", 64)
                .silent()
                .with_interval_secs(3_600.0),
        );
        let mut tee = Tee::new(CountRefs::default(), hb);
        for i in 0..64 {
            tee.on_ref(i % 2, 3, 0.25);
        }
        tee.on_window_close();
        assert_eq!(tee.a.refs, 64);
        assert!(tee.a.closed);
        assert_eq!(tee.b.heartbeat().done(), 64);
        assert_eq!(tee.b.heartbeat().emits(), 1, "exactly one final line");
    }

    #[test]
    fn observer_batches_refs() {
        let mut o = HeartbeatObserver::new(Heartbeat::new("sim", "refs", 100).silent());
        for _ in 0..100 {
            o.on_ref(0, 1, 0.0);
        }
        // Below the stride: counted only at flush.
        assert_eq!(o.heartbeat().done(), 0);
        o.on_window_close();
        assert_eq!(o.heartbeat().done(), 100);
    }
}
