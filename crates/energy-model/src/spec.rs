//! Architecture parameter structures (the shape of the paper's Table I).

use minijson::{json, FromJson, Json, ToJson};

/// Parameters of one cache level's arrays.
///
/// L1/L2 in Table I publish a single access delay and energy; we model them
/// with `tag_energy_nj = 0` and the full energy on the data array, and equal
/// tag/data delays — lookups then cost exactly the published values under
/// parallel access, and the Phased optimization (which the paper applies
/// only to L3/L4) is never enabled for them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSpec {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Cycles until a tag check resolves (miss detection latency).
    pub tag_delay: u64,
    /// Cycles until data is available on a hit (parallel tag+data access).
    pub data_delay: u64,
    /// Energy of one tag-array access, nanojoules.
    pub tag_energy_nj: f64,
    /// Energy of one data-array access, nanojoules.
    pub data_energy_nj: f64,
    /// Leakage power of one instance of this cache, watts.
    pub leakage_w: f64,
}

impl CacheSpec {
    /// Energy of a full parallel-mode lookup (tag + data in parallel).
    pub fn parallel_lookup_nj(&self) -> f64 {
        self.tag_energy_nj + self.data_energy_nj
    }

    /// Energy of a phased-mode lookup: tag always, data only on hit.
    pub fn phased_lookup_nj(&self, hit: bool) -> f64 {
        self.tag_energy_nj + if hit { self.data_energy_nj } else { 0.0 }
    }

    /// Latency of a parallel-mode lookup: data delay on a hit, tag delay on
    /// a miss (the miss is known as soon as the tag check resolves).
    pub fn parallel_latency(&self, hit: bool) -> u64 {
        if hit {
            self.data_delay
        } else {
            self.tag_delay
        }
    }

    /// Latency of a phased-mode lookup: tag first, then data on a hit.
    pub fn phased_latency(&self, hit: bool) -> u64 {
        self.tag_delay + if hit { self.data_delay } else { 0 }
    }

    /// Energy of a single-way lookup: when a way predictor (or memo) names
    /// the way holding the block, only one of the `assoc` tag+data pairs
    /// is read. Modelled as the parallel lookup divided by associativity —
    /// the per-way array slice.
    pub fn way_lookup_nj(&self) -> f64 {
        (self.tag_energy_nj + self.data_energy_nj) / self.assoc as f64
    }
}

/// Parameters of the ReDHiP prediction table (or the CBF given the same
/// area budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorSpec {
    /// Table capacity in bytes (512 KB in the paper = 0.78% of the LLC).
    pub size_bytes: u64,
    /// Table array access delay, cycles.
    pub access_delay: u64,
    /// One-way wire delay from the core to the table (located beside the
    /// LLC), cycles.
    pub wire_delay: u64,
    /// Energy of one table access, nanojoules.
    pub access_energy_nj: f64,
    /// Leakage power, watts. Table I does not publish this; the preset uses
    /// the same per-byte leakage as the (same-technology, same-size-class)
    /// L2: 0.02 W / 256 KB → 0.04 W for 512 KB.
    pub leakage_w: f64,
}

impl PredictorSpec {
    /// Total lookup latency seen by an L1 miss: wire there + array access
    /// (the paper charges a ~3% performance overhead for prediction; this
    /// is its source).
    pub fn lookup_latency(&self) -> u64 {
        self.wire_delay + self.access_delay
    }

    /// Derives the spec for a different table capacity, scaling energy with
    /// the square root of capacity (the CACTI trend for small SRAM arrays;
    /// used only by the Fig. 11 sweep, which ignores predictor overhead as
    /// the paper does).
    pub fn scaled_to(&self, size_bytes: u64) -> Self {
        let ratio = size_bytes as f64 / self.size_bytes as f64;
        Self {
            size_bytes,
            access_delay: self.access_delay,
            wire_delay: self.wire_delay,
            access_energy_nj: self.access_energy_nj * ratio.sqrt(),
            leakage_w: self.leakage_w * ratio,
        }
    }
}

/// Full platform description.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Core count (each runs one trace).
    pub cores: usize,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Cache levels outermost-first; the *last* entry is the shared LLC,
    /// all earlier entries are per-core private caches.
    pub levels: Vec<CacheSpec>,
    /// The prediction table beside the LLC.
    pub predictor: PredictorSpec,
}

impl PlatformSpec {
    /// Number of cache levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The shared LLC spec.
    pub fn llc(&self) -> &CacheSpec {
        self.levels.last().expect("platform has at least one level")
    }

    /// Seconds elapsed for a cycle count at this clock.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Number of instances of level `i` on the chip (cores for private
    /// levels, 1 for the shared LLC).
    pub fn instances(&self, level: usize) -> usize {
        if level + 1 == self.levels.len() {
            1
        } else {
            self.cores
        }
    }

    /// Chip-wide leakage power of all cache arrays plus the predictor, watts.
    pub fn total_leakage_w(&self, include_predictor: bool) -> f64 {
        let caches: f64 = self
            .levels
            .iter()
            .enumerate()
            .map(|(i, l)| l.leakage_w * self.instances(i) as f64)
            .sum();
        caches
            + if include_predictor {
                self.predictor.leakage_w
            } else {
                0.0
            }
    }

    /// Predictor capacity as a fraction of LLC capacity (the paper's
    /// headline 0.78% hardware-overhead figure).
    pub fn predictor_overhead_ratio(&self) -> f64 {
        self.predictor.size_bytes as f64 / self.llc().capacity_bytes as f64
    }
}

impl ToJson for CacheSpec {
    fn to_json(&self) -> Json {
        json!({
            "capacity_bytes": self.capacity_bytes,
            "assoc": self.assoc,
            "tag_delay": self.tag_delay,
            "data_delay": self.data_delay,
            "tag_energy_nj": self.tag_energy_nj,
            "data_energy_nj": self.data_energy_nj,
            "leakage_w": self.leakage_w,
        })
    }
}

impl FromJson for CacheSpec {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            capacity_bytes: v.u64_of("capacity_bytes")?,
            assoc: v.u64_of("assoc")? as usize,
            tag_delay: v.u64_of("tag_delay")?,
            data_delay: v.u64_of("data_delay")?,
            tag_energy_nj: v.f64_of("tag_energy_nj")?,
            data_energy_nj: v.f64_of("data_energy_nj")?,
            leakage_w: v.f64_of("leakage_w")?,
        })
    }
}

impl ToJson for PredictorSpec {
    fn to_json(&self) -> Json {
        json!({
            "size_bytes": self.size_bytes,
            "access_delay": self.access_delay,
            "wire_delay": self.wire_delay,
            "access_energy_nj": self.access_energy_nj,
            "leakage_w": self.leakage_w,
        })
    }
}

impl FromJson for PredictorSpec {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            size_bytes: v.u64_of("size_bytes")?,
            access_delay: v.u64_of("access_delay")?,
            wire_delay: v.u64_of("wire_delay")?,
            access_energy_nj: v.f64_of("access_energy_nj")?,
            leakage_w: v.f64_of("leakage_w")?,
        })
    }
}

impl ToJson for PlatformSpec {
    fn to_json(&self) -> Json {
        json!({
            "cores": self.cores,
            "freq_ghz": self.freq_ghz,
            "levels": Json::Arr(self.levels.iter().map(|l| l.to_json()).collect()),
            "predictor": self.predictor.to_json(),
        })
    }
}

impl FromJson for PlatformSpec {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            cores: v.u64_of("cores")? as usize,
            freq_ghz: v.f64_of("freq_ghz")?,
            levels: v
                .arr_of("levels")?
                .iter()
                .map(CacheSpec::from_json)
                .collect::<Result<_, _>>()?,
            predictor: PredictorSpec::from_json(v.member("predictor")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l3() -> CacheSpec {
        CacheSpec {
            capacity_bytes: 4 << 20,
            assoc: 16,
            tag_delay: 9,
            data_delay: 12,
            tag_energy_nj: 0.348,
            data_energy_nj: 0.839,
            leakage_w: 0.16,
        }
    }

    #[test]
    fn parallel_mode_costs() {
        let s = l3();
        assert!((s.parallel_lookup_nj() - 1.187).abs() < 1e-9);
        assert_eq!(s.parallel_latency(true), 12);
        assert_eq!(s.parallel_latency(false), 9);
    }

    #[test]
    fn phased_mode_costs() {
        let s = l3();
        assert!((s.phased_lookup_nj(true) - 1.187).abs() < 1e-9);
        assert!((s.phased_lookup_nj(false) - 0.348).abs() < 1e-9);
        assert_eq!(s.phased_latency(true), 21);
        assert_eq!(s.phased_latency(false), 9);
    }

    #[test]
    fn way_lookup_is_parallel_lookup_per_way() {
        let s = l3();
        assert!((s.way_lookup_nj() - 1.187 / 16.0).abs() < 1e-9);
        assert!(s.way_lookup_nj() < s.phased_lookup_nj(false));
    }

    #[test]
    fn predictor_lookup_latency_includes_wire() {
        let p = PredictorSpec {
            size_bytes: 512 << 10,
            access_delay: 1,
            wire_delay: 5,
            access_energy_nj: 0.02,
            leakage_w: 0.04,
        };
        assert_eq!(p.lookup_latency(), 6);
    }

    #[test]
    fn predictor_scaling_is_sqrt_in_energy_linear_in_leakage() {
        let p = PredictorSpec {
            size_bytes: 512 << 10,
            access_delay: 1,
            wire_delay: 5,
            access_energy_nj: 0.02,
            leakage_w: 0.04,
        };
        let q = p.scaled_to(128 << 10); // ÷4 capacity
        assert!((q.access_energy_nj - 0.01).abs() < 1e-12);
        assert!((q.leakage_w - 0.01).abs() < 1e-12);
        assert_eq!(q.size_bytes, 128 << 10);
    }

    #[test]
    fn seconds_conversion() {
        let p = PlatformSpec {
            cores: 8,
            freq_ghz: 3.7,
            levels: vec![l3()],
            predictor: PredictorSpec {
                size_bytes: 512 << 10,
                access_delay: 1,
                wire_delay: 5,
                access_energy_nj: 0.02,
                leakage_w: 0.04,
            },
        };
        let s = p.seconds(3_700_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
