//! CACTI-style latency/energy parameters and energy accounting.
//!
//! The paper derives per-access energies and delays from CACTI 6.5 and
//! publishes them in Table I; leakage comes from published SRAM data. We
//! encode those constants verbatim ([`presets::table_i`]) and provide:
//!
//! * [`spec::CacheSpec`] / [`spec::PlatformSpec`] — the architecture
//!   parameters (sizes, delays, energies, leakage) for every level plus the
//!   prediction table.
//! * [`presets`] — the paper's Table I configuration and a capacity-scaled
//!   "demo" variant that keeps per-access costs and all structural ratios
//!   (so relative results are preserved) while shrinking L3/L4/PT 16× for
//!   tractable run times.
//! * [`account::EnergyAccount`] — accumulates dynamic energy by component
//!   during simulation and folds in leakage at finalization.

pub mod account;
pub mod presets;
pub mod spec;

pub use account::{EnergyAccount, EnergyReport};
pub use spec::{CacheSpec, PlatformSpec, PredictorSpec};
