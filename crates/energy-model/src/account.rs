//! Dynamic-energy accumulation and end-of-run reporting.

use crate::spec::PlatformSpec;
use minijson::{json, Json, ToJson};

/// Streaming accumulator for dynamic energy, split by component.
///
/// All values are in nanojoules until [`EnergyAccount::finalize`] converts
/// to joules and adds leakage.
#[derive(Debug, Clone)]
pub struct EnergyAccount {
    per_level_nj: Vec<f64>,
    predictor_nj: f64,
    recalibration_nj: f64,
    prefetcher_nj: f64,
}

impl EnergyAccount {
    /// Creates a zeroed account for `levels` cache levels.
    pub fn new(levels: usize) -> Self {
        Self {
            per_level_nj: vec![0.0; levels],
            predictor_nj: 0.0,
            recalibration_nj: 0.0,
            prefetcher_nj: 0.0,
        }
    }

    /// Adds dynamic energy at a cache level.
    #[inline]
    pub fn add_level(&mut self, level: usize, nj: f64) {
        self.per_level_nj[level] += nj;
    }

    /// Adds predictor lookup/update energy.
    #[inline]
    pub fn add_predictor(&mut self, nj: f64) {
        self.predictor_nj += nj;
    }

    /// Adds recalibration energy (tag-array sweeps + table writes).
    #[inline]
    pub fn add_recalibration(&mut self, nj: f64) {
        self.recalibration_nj += nj;
    }

    /// Adds prefetcher table energy (RPT lookups/updates).
    #[inline]
    pub fn add_prefetcher(&mut self, nj: f64) {
        self.prefetcher_nj += nj;
    }

    /// Total dynamic energy so far, nanojoules.
    pub fn total_dynamic_nj(&self) -> f64 {
        self.per_level_nj.iter().sum::<f64>()
            + self.predictor_nj
            + self.recalibration_nj
            + self.prefetcher_nj
    }

    /// Closes the account: computes leakage over `cycles` and produces the
    /// report. `include_predictor_leakage` should be true for mechanisms
    /// that instantiate a table (ReDHiP, CBF).
    pub fn finalize(
        &self,
        spec: &PlatformSpec,
        cycles: u64,
        include_predictor_leakage: bool,
    ) -> EnergyReport {
        let seconds = spec.seconds(cycles);
        let leakage_j: Vec<f64> = spec
            .levels
            .iter()
            .enumerate()
            .map(|(i, l)| l.leakage_w * spec.instances(i) as f64 * seconds)
            .collect();
        let predictor_leakage_j = if include_predictor_leakage {
            spec.predictor.leakage_w * seconds
        } else {
            0.0
        };
        EnergyReport {
            dynamic_by_level_j: self.per_level_nj.iter().map(|nj| nj * 1e-9).collect(),
            predictor_dynamic_j: self.predictor_nj * 1e-9,
            recalibration_j: self.recalibration_nj * 1e-9,
            prefetcher_j: self.prefetcher_nj * 1e-9,
            leakage_by_level_j: leakage_j,
            predictor_leakage_j,
            cycles,
            seconds,
        }
    }
}

/// Finalized energy report for one simulation run.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// Dynamic energy per cache level, joules.
    pub dynamic_by_level_j: Vec<f64>,
    /// Predictor lookup/update dynamic energy, joules.
    pub predictor_dynamic_j: f64,
    /// Recalibration dynamic energy, joules.
    pub recalibration_j: f64,
    /// Prefetcher table dynamic energy, joules.
    pub prefetcher_j: f64,
    /// Leakage per cache level over the run, joules.
    pub leakage_by_level_j: Vec<f64>,
    /// Predictor leakage over the run, joules.
    pub predictor_leakage_j: f64,
    /// Run length in cycles.
    pub cycles: u64,
    /// Run length in seconds.
    pub seconds: f64,
}

impl EnergyReport {
    /// Total dynamic energy (caches + predictor + recalibration +
    /// prefetcher), joules. This is the quantity the paper's Figures 7,
    /// 11–13 and 15 normalize.
    pub fn total_dynamic_j(&self) -> f64 {
        self.dynamic_by_level_j.iter().sum::<f64>()
            + self.predictor_dynamic_j
            + self.recalibration_j
            + self.prefetcher_j
    }

    /// Total leakage ("static") energy, joules.
    pub fn total_leakage_j(&self) -> f64 {
        self.leakage_by_level_j.iter().sum::<f64>() + self.predictor_leakage_j
    }

    /// Total cache-subsystem energy, joules — the paper's "overall energy"
    /// (22% average saving headline).
    pub fn total_j(&self) -> f64 {
        self.total_dynamic_j() + self.total_leakage_j()
    }

    /// Share of dynamic energy spent below L2 — the paper's motivation
    /// observation (lower levels ≈ 80% of dynamic cache energy).
    pub fn lower_level_dynamic_share(&self) -> f64 {
        let total = self.total_dynamic_j();
        if total == 0.0 {
            return 0.0;
        }
        self.dynamic_by_level_j.iter().skip(2).sum::<f64>() / total
    }
}

impl ToJson for EnergyReport {
    fn to_json(&self) -> Json {
        json!({
            "dynamic_by_level_j": Json::from(self.dynamic_by_level_j.clone()),
            "predictor_dynamic_j": self.predictor_dynamic_j,
            "recalibration_j": self.recalibration_j,
            "prefetcher_j": self.prefetcher_j,
            "leakage_by_level_j": Json::from(self.leakage_by_level_j.clone()),
            "predictor_leakage_j": self.predictor_leakage_j,
            "cycles": self.cycles,
            "seconds": self.seconds,
        })
    }
}

impl minijson::FromJson for EnergyReport {
    fn from_json(v: &Json) -> Result<Self, String> {
        let f64_arr = |key: &str| -> Result<Vec<f64>, String> {
            v.arr_of(key)?
                .iter()
                .map(|x| x.as_f64().ok_or_else(|| format!("{key}: not an f64")))
                .collect()
        };
        Ok(Self {
            dynamic_by_level_j: f64_arr("dynamic_by_level_j")?,
            predictor_dynamic_j: v.f64_of("predictor_dynamic_j")?,
            recalibration_j: v.f64_of("recalibration_j")?,
            prefetcher_j: v.f64_of("prefetcher_j")?,
            leakage_by_level_j: f64_arr("leakage_by_level_j")?,
            predictor_leakage_j: v.f64_of("predictor_leakage_j")?,
            cycles: v.u64_of("cycles")?,
            seconds: v.f64_of("seconds")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::table_i;

    #[test]
    fn accumulation_by_component() {
        let mut a = EnergyAccount::new(4);
        a.add_level(0, 1.0);
        a.add_level(3, 2.0);
        a.add_predictor(0.5);
        a.add_recalibration(0.25);
        a.add_prefetcher(0.125);
        assert!((a.total_dynamic_nj() - 3.875).abs() < 1e-12);
    }

    #[test]
    fn finalize_converts_units_and_adds_leakage() {
        let spec = table_i();
        let mut a = EnergyAccount::new(4);
        a.add_level(3, 1e9); // 1 J dynamic at the LLC
        let cycles = 3_700_000_000; // exactly one second at 3.7 GHz
        let r = a.finalize(&spec, cycles, true);
        assert!((r.seconds - 1.0).abs() < 1e-9);
        assert!((r.dynamic_by_level_j[3] - 1.0).abs() < 1e-9);
        // Leakage: L1/L2/L3 ×8 cores + L4 + PT, 1 second.
        let expected_leak = (0.0013 + 0.02 + 0.16) * 8.0 + 2.56 + 0.04;
        assert!((r.total_leakage_j() - expected_leak).abs() < 1e-6);
        assert!((r.total_j() - (1.0 + expected_leak)).abs() < 1e-6);
    }

    #[test]
    fn predictor_leakage_excluded_for_base() {
        let spec = table_i();
        let a = EnergyAccount::new(4);
        let with = a.finalize(&spec, 3_700_000_000, true);
        let without = a.finalize(&spec, 3_700_000_000, false);
        assert!(with.total_leakage_j() > without.total_leakage_j());
        assert!((with.predictor_leakage_j - 0.04).abs() < 1e-9);
        assert_eq!(without.predictor_leakage_j, 0.0);
    }

    #[test]
    fn lower_level_share() {
        let mut a = EnergyAccount::new(4);
        a.add_level(0, 10.0);
        a.add_level(1, 10.0);
        a.add_level(2, 40.0);
        a.add_level(3, 40.0);
        let r = a.finalize(&table_i(), 0, false);
        assert!((r.lower_level_dynamic_share() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_run_is_all_zero() {
        let a = EnergyAccount::new(4);
        let r = a.finalize(&table_i(), 0, false);
        assert_eq!(r.total_j(), 0.0);
        assert_eq!(r.lower_level_dynamic_share(), 0.0);
    }
}
