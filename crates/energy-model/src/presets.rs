//! The paper's Table I parameters and derived scaled configurations.

use crate::spec::{CacheSpec, PlatformSpec, PredictorSpec};

/// Table I of the paper, verbatim: an 8-core 3.7 GHz processor with private
/// L1/L2/L3 and a shared 64 MB L4, plus the 512 KB prediction table beside
/// the L4.
pub fn table_i() -> PlatformSpec {
    PlatformSpec {
        cores: 8,
        freq_ghz: 3.7,
        levels: vec![
            // L1: private, 4-way, 32 KB, 2 cycles, 0.0144 nJ, 0.0013 W.
            CacheSpec {
                capacity_bytes: 32 << 10,
                assoc: 4,
                tag_delay: 2,
                data_delay: 2,
                tag_energy_nj: 0.0,
                data_energy_nj: 0.0144,
                leakage_w: 0.0013,
            },
            // L2: private, 8-way, 256 KB, 6 cycles, 0.0634 nJ, 0.02 W.
            CacheSpec {
                capacity_bytes: 256 << 10,
                assoc: 8,
                tag_delay: 6,
                data_delay: 6,
                tag_energy_nj: 0.0,
                data_energy_nj: 0.0634,
                leakage_w: 0.02,
            },
            // L3: private, 16-way, 4 MB, tag 9 / data 12 cycles,
            // tag 0.348 nJ / data 0.839 nJ, 0.16 W.
            CacheSpec {
                capacity_bytes: 4 << 20,
                assoc: 16,
                tag_delay: 9,
                data_delay: 12,
                tag_energy_nj: 0.348,
                data_energy_nj: 0.839,
                leakage_w: 0.16,
            },
            // L4: shared, 16-way, 64 MB, tag 13 / data 22 cycles,
            // tag 1.171 nJ / data 5.542 nJ, 2.56 W.
            CacheSpec {
                capacity_bytes: 64 << 20,
                assoc: 16,
                tag_delay: 13,
                data_delay: 22,
                tag_energy_nj: 1.171,
                data_energy_nj: 5.542,
                leakage_w: 2.56,
            },
        ],
        // Prediction table: 512 KB, 64-bit entries, access 1 cycle, wire 5
        // cycles, 0.02 nJ per access. Leakage estimated at the L2 per-byte
        // rate (see PredictorSpec docs).
        predictor: PredictorSpec {
            size_bytes: 512 << 10,
            access_delay: 1,
            wire_delay: 5,
            access_energy_nj: 0.02,
            leakage_w: 0.04,
        },
    }
}

/// Demo-scale platform: L3, L4 and the prediction table shrunk by
/// `DEMO_SCALE_FACTOR` (8×), everything else identical to Table I.
///
/// Why this preserves the paper's *relative* results:
/// * Per-access energies and delays stay at the published values, so the
///   cost ratio between levels — the quantity every figure normalizes by —
///   is unchanged.
/// * The PT-index/set-index relationship of Figure 3 is preserved exactly:
///   8 MB 16-way LLC → 8192 sets (k = 13); 64 KB PT → 2^19 one-bit entries
///   (p = 19); p − k = 6, i.e. the same 64-bit PT line per cache set as the
///   full-scale design (this holds for any common factor, since LLC and PT
///   scale together).
/// * The inclusion headroom matches: 8 cores × 512 KB L3 = L4/2, exactly
///   the paper's 8 × 4 MB vs 64 MB.
/// * Workload footprints are scaled with the hierarchy (see `workloads`),
///   keeping the hit-rate structure comparable.
///
/// The factor is 8 rather than 16 because L2 stays unscaled: at 16× the L3
/// would collapse to the L2's 256 KB and the level would degenerate.
pub fn demo_scale() -> PlatformSpec {
    scaled_capacities(&table_i(), DEMO_SCALE_FACTOR)
}

/// Capacity scale factor used by [`demo_scale`].
pub const DEMO_SCALE_FACTOR: u64 = 8;

/// Scales the capacities of the lower levels (L3 and beyond) and the
/// predictor by `factor`, leaving L1/L2 (which dominate neither energy nor
/// simulation cost) untouched.
pub fn scaled_capacities(base: &PlatformSpec, factor: u64) -> PlatformSpec {
    assert!(factor >= 1 && factor.is_power_of_two());
    let mut spec = base.clone();
    let n = spec.levels.len();
    for (i, level) in spec.levels.iter_mut().enumerate() {
        // Scale L3 upward (levels past the first two) so LLC >> L2 remains.
        if i >= 2 || n <= 2 {
            level.capacity_bytes /= factor;
        }
    }
    spec.predictor.size_bytes /= factor;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_constants_match_the_paper() {
        let p = table_i();
        assert_eq!(p.cores, 8);
        assert!((p.freq_ghz - 3.7).abs() < 1e-12);
        assert_eq!(p.levels.len(), 4);

        let l1 = &p.levels[0];
        assert_eq!(l1.capacity_bytes, 32 << 10);
        assert_eq!(l1.assoc, 4);
        assert_eq!(l1.data_delay, 2);
        assert!((l1.parallel_lookup_nj() - 0.0144).abs() < 1e-12);
        assert!((l1.leakage_w - 0.0013).abs() < 1e-12);

        let l2 = &p.levels[1];
        assert_eq!(l2.capacity_bytes, 256 << 10);
        assert_eq!(l2.assoc, 8);
        assert_eq!(l2.data_delay, 6);
        assert!((l2.parallel_lookup_nj() - 0.0634).abs() < 1e-12);

        let l3 = &p.levels[2];
        assert_eq!(l3.capacity_bytes, 4 << 20);
        assert_eq!((l3.tag_delay, l3.data_delay), (9, 12));
        assert!((l3.tag_energy_nj - 0.348).abs() < 1e-12);
        assert!((l3.data_energy_nj - 0.839).abs() < 1e-12);

        let l4 = &p.levels[3];
        assert_eq!(l4.capacity_bytes, 64 << 20);
        assert_eq!((l4.tag_delay, l4.data_delay), (13, 22));
        assert!((l4.tag_energy_nj - 1.171).abs() < 1e-12);
        assert!((l4.data_energy_nj - 5.542).abs() < 1e-12);
        assert!((l4.leakage_w - 2.56).abs() < 1e-12);

        let pt = &p.predictor;
        assert_eq!(pt.size_bytes, 512 << 10);
        assert_eq!(pt.access_delay, 1);
        assert_eq!(pt.wire_delay, 5);
        assert!((pt.access_energy_nj - 0.02).abs() < 1e-12);
    }

    #[test]
    fn predictor_overhead_is_the_papers_0_78_percent() {
        let p = table_i();
        let ratio = p.predictor_overhead_ratio();
        assert!((ratio - 0.0078125).abs() < 1e-9, "got {ratio}");
    }

    #[test]
    fn demo_scale_preserves_figure3_relationship() {
        let p = demo_scale();
        // LLC: 8 MB, 16-way, 64 B blocks → 8192 sets → k = 13.
        let llc = p.llc();
        assert_eq!(llc.capacity_bytes, 8 << 20);
        let sets = llc.capacity_bytes / 64 / llc.assoc as u64;
        assert_eq!(sets, 8192);
        // PT: 64 KB → 2^19 bits → p = 19; p − k = 6.
        assert_eq!(p.predictor.size_bytes, 64 << 10);
        let bits = p.predictor.size_bytes * 8;
        assert_eq!(bits, 1 << 19);
        assert_eq!(19 - 13, 6);
        // Overhead ratio unchanged.
        assert!((p.predictor_overhead_ratio() - 0.0078125).abs() < 1e-9);
        // Inclusion headroom: 8 private L3s fill exactly half the LLC.
        assert_eq!(
            p.levels[2].capacity_bytes * p.cores as u64,
            llc.capacity_bytes / 2
        );
        // Levels stay strictly monotonic.
        for w in p.levels.windows(2) {
            assert!(w[0].capacity_bytes < w[1].capacity_bytes);
        }
    }

    #[test]
    fn demo_scale_keeps_l1_l2_and_costs() {
        let base = table_i();
        let p = demo_scale();
        assert_eq!(p.levels[0].capacity_bytes, base.levels[0].capacity_bytes);
        assert_eq!(p.levels[1].capacity_bytes, base.levels[1].capacity_bytes);
        assert_eq!(
            p.levels[2].capacity_bytes,
            base.levels[2].capacity_bytes / 8
        );
        for (a, b) in p.levels.iter().zip(base.levels.iter()) {
            assert!((a.parallel_lookup_nj() - b.parallel_lookup_nj()).abs() < 1e-12);
            assert_eq!(a.data_delay, b.data_delay);
        }
    }

    #[test]
    fn lower_levels_dominate_leakage() {
        // The intro's observation: the lower levels carry ~80%+ of cache power.
        let p = table_i();
        let total = p.total_leakage_w(false);
        let lower = p.levels[2].leakage_w * 8.0 + p.levels[3].leakage_w;
        assert!(lower / total > 0.8, "lower-level share {}", lower / total);
    }

    #[test]
    fn instances_private_vs_shared() {
        let p = table_i();
        assert_eq!(p.instances(0), 8);
        assert_eq!(p.instances(2), 8);
        assert_eq!(p.instances(3), 1);
    }
}
