//! Kernel-driven trace generators standing in for the paper's workloads.
//!
//! The paper traces 8 SPEC 2006 benchmarks (astar, bwaves, cactusADM,
//! GemsFDTD, lbm, mcf, milc, soplex — chosen to exercise the deep memory
//! hierarchy), a Graph500 BFS built on CombBLAS, a probabilistic matrix
//! factorization built on GraphLab, and a `mix` of the 8 SPEC applications
//! across the 8 cores. We cannot run SPEC under Pin here, so each generator
//! *runs a real kernel with the benchmark's documented memory structure*
//! over real data structures and emits the resulting address stream:
//!
//! | paper workload | kernel here |
//! |---|---|
//! | bwaves  | blocked dense-solver streaming over multiple large arrays |
//! | GemsFDTD| 7-point 3-D FDTD stencil sweep, two grids |
//! | lbm     | two-lattice streaming update (read A / write B) |
//! | mcf     | network-simplex-like pointer chasing with node-field locality |
//! | milc    | 4-D lattice QCD sweep over SU(3)-matrix-sized records |
//! | soplex  | sparse simplex: row streaming + column scatter + hot vectors |
//! | astar   | open-list graph search: skewed node reuse + random successors |
//! | cactusADM| 3-D ADM stencil with coefficient arrays |
//! | blas    | Graph500: level-synchronous BFS over an RMAT graph in CSR |
//! | pmf     | SGD matrix factorization with Zipf item popularity |
//! | mix     | one SPEC kernel per core |
//!
//! Each generator is validated (unit tests) for the properties the
//! evaluation depends on: footprint larger than the LLC, short-reuse
//! fraction (≈ L1 hit-rate proxy) in a realistic band, and
//! stride-predictability matching the benchmark's character.

//!
//! Besides the synthetic generators, [`file::TraceFileWorkload`] registers
//! recorded v2 trace files as workloads (`file:PATH[:dup|:interleave|:range]`
//! specs), replayed chunk-at-a-time with bounded memory.

pub mod file;
pub mod graph500;
pub mod pmf;
pub mod registry;
pub mod scale;
pub mod spec;

pub use file::{FileMode, TraceFileWorkload};
pub use registry::{Benchmark, DynTrace, WorkloadSource};
pub use scale::Scale;
