//! Workload scale presets, matched to the platform presets in
//! `energy-model`.

/// How big to make each workload's data structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny footprints for unit/integration tests (seconds of wall time).
    Smoke,
    /// Matches `energy_model::presets::demo_scale()` (4 MB LLC): per-core
    /// footprints of one to a few tens of MB, several times the LLC — the
    /// same LLC-pressure regime as the paper. Default for figure runs.
    Demo,
    /// Matches Table I (64 MB LLC): footprints in the hundreds of MB, as
    /// the paper's workloads ("SPEC benchmarks typically consume tens to
    /// hundreds of megabytes, the large-scale applications several GB").
    Paper,
}

impl Scale {
    /// Multiplier applied to the Demo-scale byte footprints.
    pub fn mem_factor(self) -> u64 {
        match self {
            Scale::Smoke => 1, // divided separately, see bytes()
            Scale::Demo => 1,
            Scale::Paper => 16,
        }
    }

    /// Scales a Demo-reference byte size.
    pub fn bytes(self, demo_bytes: u64) -> u64 {
        match self {
            Scale::Smoke => (demo_bytes / 16).max(4096),
            Scale::Demo => demo_bytes,
            Scale::Paper => demo_bytes * 16,
        }
    }

    /// Scales a Demo-reference element/vertex count.
    pub fn count(self, demo_count: u64) -> u64 {
        match self {
            Scale::Smoke => (demo_count / 16).max(64),
            Scale::Demo => demo_count,
            Scale::Paper => demo_count * 16,
        }
    }

    /// Default number of memory references simulated per core at this scale
    /// (the paper: 500 M per core; Demo is sized so the full figure suite
    /// regenerates in minutes on one CPU while still cycling the scaled
    /// LLC several times; pass `--refs` to the figures harness for longer
    /// runs).
    pub fn default_refs_per_core(self) -> usize {
        match self {
            Scale::Smoke => 60_000,
            Scale::Demo => 600_000,
            Scale::Paper => 24_000_000,
        }
    }

    /// Recalibration period in L1 misses, scaled like the paper's 1 M (the
    /// ratio of recalibrations per simulated reference stays comparable).
    pub fn recalib_period(self) -> u64 {
        match self {
            Scale::Smoke => 4_096,
            Scale::Demo => 65_536,
            Scale::Paper => 1_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_is_16x_demo() {
        assert_eq!(Scale::Paper.bytes(1 << 20), 16 << 20);
        assert_eq!(Scale::Paper.count(1000), 16_000);
    }

    #[test]
    fn smoke_shrinks_with_floors() {
        assert_eq!(Scale::Smoke.bytes(1 << 20), 1 << 16);
        assert_eq!(Scale::Smoke.bytes(100), 4096);
        assert_eq!(Scale::Smoke.count(32), 64);
    }

    #[test]
    fn demo_is_identity() {
        assert_eq!(Scale::Demo.bytes(12345678), 12345678);
        assert_eq!(Scale::Demo.count(777), 777);
    }

    #[test]
    fn recalib_period_scales_with_the_llc() {
        // The paper recalibrates every 1M L1 misses against a 64 MB LLC;
        // the demo hierarchy is 8× smaller, and so is its period (to the
        // nearest power of two), keeping per-miss recalibration overhead
        // comparable.
        assert_eq!(Scale::Paper.recalib_period(), 1_000_000);
        assert!(Scale::Demo.recalib_period() >= 1_000_000 / 16);
        assert!(Scale::Demo.recalib_period() <= 1_000_000 / 8);
    }
}
