//! File-backed workloads: recorded traces replayed through the registry.
//!
//! A [`TraceFileWorkload`] wraps an open [`StreamTrace`] (v2 trace file)
//! plus a policy for distributing its records across simulated cores:
//!
//! * **dup** — every core replays the whole file (the paper's
//!   multi-programmed methodology: duplicate one benchmark per core; the
//!   harness's per-core physical mapping keeps the copies competing).
//! * **interleave** — core `i` of `n` takes records `i, i+n, i+2n, …`.
//!   A file recorded by round-robin interleaving `n` per-core streams
//!   (`redhip-sim trace record`) replays each core's exact stream,
//!   reproducing the in-process simulation byte for byte.
//! * **range** — core `i` takes the `i`-th contiguous `1/n` slice, for
//!   treating one long single-threaded trace as `n` independent programs.
//!
//! Workload specs name these as `file:PATH`, `file:PATH:interleave`,
//! `file:PATH:range` (default `dup`); [`crate::WorkloadSource::parse`]
//! accepts either a registry benchmark name or such a spec.

use crate::registry::DynTrace;
use mem_trace::{ShardSpec, StreamTrace, TraceIoError};
use std::io;
use std::path::Path;

/// Average CPI charged for a recorded trace's gap instructions. External
/// traces carry no CPI metadata, so a mid-pack SPEC-like default applies;
/// override with [`TraceFileWorkload::set_avg_cpi`].
pub const DEFAULT_FILE_CPI: f64 = 1.5;

/// How a trace file's records are distributed across cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FileMode {
    /// Every core replays the whole file.
    #[default]
    Duplicate,
    /// Core `i` of `n` replays interleave shard `i`.
    Interleave,
    /// Core `i` of `n` replays the `i`-th contiguous range.
    Range,
}

impl FileMode {
    /// Stable tag used in specs and canonical keys.
    pub fn tag(self) -> &'static str {
        match self {
            FileMode::Duplicate => "dup",
            FileMode::Interleave => "interleave",
            FileMode::Range => "range",
        }
    }

    /// Parses a spec suffix.
    pub fn from_tag(s: &str) -> Option<FileMode> {
        match s {
            "dup" => Some(FileMode::Duplicate),
            "interleave" => Some(FileMode::Interleave),
            "range" => Some(FileMode::Range),
            _ => None,
        }
    }

    /// The shard one core replays under this mode.
    pub fn shard(self, core: usize, cores: usize) -> ShardSpec {
        match self {
            FileMode::Duplicate => ShardSpec::All,
            FileMode::Interleave => ShardSpec::Interleave {
                shards: cores as u32,
                index: core as u32,
            },
            FileMode::Range => ShardSpec::Range {
                shards: cores as u32,
                index: core as u32,
            },
        }
    }
}

/// An open trace file registered as a workload. Cheap to share: cursors
/// handed to cores borrow one underlying mapping.
#[derive(Debug)]
pub struct TraceFileWorkload {
    base: StreamTrace,
    mode: FileMode,
    avg_cpi: f64,
    /// The path exactly as given in the spec (not canonicalized), so
    /// canonical keys are reproducible across machines and sessions.
    spec_path: String,
}

impl TraceFileWorkload {
    /// Opens `path` with the given distribution mode.
    pub fn open(path: impl AsRef<Path>, mode: FileMode) -> Result<Self, TraceIoError> {
        let path = path.as_ref();
        Ok(Self {
            base: StreamTrace::open(path)?,
            mode,
            avg_cpi: DEFAULT_FILE_CPI,
            spec_path: path.display().to_string(),
        })
    }

    /// Like [`open`](Self::open) but with positioned reads instead of
    /// mmap — same records, bounded resident memory without a mapping.
    pub fn open_buffered(path: impl AsRef<Path>, mode: FileMode) -> Result<Self, TraceIoError> {
        let path = path.as_ref();
        Ok(Self {
            base: StreamTrace::open_buffered(path)?,
            mode,
            avg_cpi: DEFAULT_FILE_CPI,
            spec_path: path.display().to_string(),
        })
    }

    /// Parses a `file:PATH[:dup|:interleave|:range]` spec and opens it.
    pub fn from_spec(spec: &str) -> Result<Self, TraceIoError> {
        let rest = spec.strip_prefix("file:").ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("not a file workload spec: {spec}"),
            )
        })?;
        let (path, mode) = match rest.rsplit_once(':') {
            Some((path, tag)) if FileMode::from_tag(tag).is_some() && !path.is_empty() => {
                (path, FileMode::from_tag(tag).expect("checked"))
            }
            _ => (rest, FileMode::default()),
        };
        Self::open(path, mode)
    }

    /// Overrides the CPI charged for gap instructions.
    pub fn set_avg_cpi(&mut self, cpi: f64) {
        self.avg_cpi = cpi;
    }

    /// CPI charged for gap instructions.
    pub fn avg_cpi(&self) -> f64 {
        self.avg_cpi
    }

    /// The distribution mode.
    pub fn mode(&self) -> FileMode {
        self.mode
    }

    /// The path as given in the spec.
    pub fn spec_path(&self) -> &str {
        &self.spec_path
    }

    /// Total records in the file.
    pub fn total_records(&self) -> u64 {
        self.base.total_records()
    }

    /// File-level summary (chunks, sizes).
    pub fn info(&self) -> mem_trace::stream::TraceInfo {
        self.base.info()
    }

    /// The stream cursor core `core` of `cores` replays — a
    /// [`mem_trace::TraceFeed`] the simulator refills from in bulk.
    pub fn feed(&self, core: usize, cores: usize) -> StreamTrace {
        self.base.shard(self.mode.shard(core, cores))
    }

    /// Same records as [`feed`](Self::feed), boxed as a plain iterator
    /// for the registry's [`DynTrace`] interface.
    pub fn trace(&self, core: usize, cores: usize) -> DynTrace {
        Box::new(self.feed(core, cores))
    }

    /// Stable identity for canonical keys: spec, mode, and the file's
    /// record/byte counts (so a rewritten file invalidates caches).
    pub fn identity_tag(&self) -> String {
        let info = self.base.info();
        format!(
            "file:{}:{}:r{}:b{}",
            self.spec_path,
            self.mode.tag(),
            info.total_records,
            info.file_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::record::TraceRecord;
    use mem_trace::VecTrace;

    fn write_sample(tag: &str, n: u64) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("redhip-filewl-{}-{tag}.trace", std::process::id()));
        let t: VecTrace = (0..n)
            .map(|i| TraceRecord::load(0x400 + i % 13, i * 64))
            .collect();
        mem_trace::stream::write_v2_file(&path, t.iter(), 64).unwrap();
        path
    }

    #[test]
    fn spec_parsing_covers_modes_and_defaults() {
        let path = write_sample("spec", 100);
        let p = path.display().to_string();
        let dup = TraceFileWorkload::from_spec(&format!("file:{p}")).unwrap();
        assert_eq!(dup.mode(), FileMode::Duplicate);
        assert_eq!(dup.spec_path(), p);
        for (suffix, mode) in [
            ("dup", FileMode::Duplicate),
            ("interleave", FileMode::Interleave),
            ("range", FileMode::Range),
        ] {
            let w = TraceFileWorkload::from_spec(&format!("file:{p}:{suffix}")).unwrap();
            assert_eq!(w.mode(), mode, "{suffix}");
        }
        assert!(TraceFileWorkload::from_spec("mcf").is_err());
        assert!(TraceFileWorkload::from_spec("file:/does/not/exist").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn modes_distribute_records_as_documented() {
        let path = write_sample("modes", 90);
        let all: Vec<TraceRecord> = {
            let w = TraceFileWorkload::open(&path, FileMode::Duplicate).unwrap();
            w.trace(0, 3).collect()
        };
        assert_eq!(all.len(), 90);

        let w = TraceFileWorkload::open(&path, FileMode::Duplicate).unwrap();
        for core in 0..3 {
            let got: Vec<_> = w.trace(core, 3).collect();
            assert_eq!(got, all, "dup core {core}");
        }

        let w = TraceFileWorkload::open(&path, FileMode::Interleave).unwrap();
        let mut rebuilt = Vec::new();
        let parts: Vec<Vec<_>> = (0..3).map(|c| w.trace(c, 3).collect()).collect();
        for i in 0..all.len() {
            rebuilt.push(parts[i % 3][i / 3]);
        }
        assert_eq!(rebuilt, all);

        let w = TraceFileWorkload::open(&path, FileMode::Range).unwrap();
        let joined: Vec<_> = (0..3)
            .flat_map(|c| w.trace(c, 3).collect::<Vec<_>>())
            .collect();
        assert_eq!(joined, all);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn identity_tag_tracks_file_content() {
        let path = write_sample("ident", 50);
        let a = TraceFileWorkload::open(&path, FileMode::Interleave).unwrap();
        let tag = a.identity_tag();
        assert!(tag.contains("interleave") && tag.contains(":r50:"));
        drop(a);
        // Rewriting the file with different content changes the tag.
        let t: VecTrace = (0..60u64).map(|i| TraceRecord::load(0x400, i)).collect();
        mem_trace::stream::write_v2_file(&path, t.iter(), 64).unwrap();
        let b = TraceFileWorkload::open(&path, FileMode::Interleave).unwrap();
        assert_ne!(b.identity_tag(), tag);
        let _ = std::fs::remove_file(&path);
    }
}
