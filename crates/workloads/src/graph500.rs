//! Graph500 BFS (`blas` in the paper's figures).
//!
//! The paper runs the Graph500 benchmark implemented on the Combinatorial
//! BLAS in 8 processes and traces each process. We implement the benchmark
//! itself: a Kronecker/RMAT graph (Graph500 parameters A=0.57, B=0.19,
//! C=0.19) stored in CSR, searched with level-synchronous BFS. The trace is
//! the *actual* address stream of the kernel: frontier reads, offset-array
//! lookups, adjacency streaming, and distance-array scatter.

use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::record::{MemOp, TraceRecord};
use mem_trace::Rng64;

const XADJ_BASE: u64 = 0x09_0000_0000;
const ADJ_BASE: u64 = 0x09_4000_0000;
const DIST_BASE: u64 = 0x09_c000_0000;
const VISITED_BASE: u64 = 0x09_e000_0000;
const FRONT_BASE: u64 = 0x09_f000_0000;

/// RMAT generator parameters (Graph500).
const RMAT_A: f64 = 0.57;
const RMAT_B: f64 = 0.19;
const RMAT_C: f64 = 0.19;

/// An RMAT graph in CSR form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Offsets, `n + 1` entries.
    pub xadj: Vec<u64>,
    /// Flattened adjacency.
    pub adj: Vec<u32>,
}

impl CsrGraph {
    /// Generates an RMAT graph with `2^log_n` vertices and
    /// `edge_factor × 2^log_n` directed edges.
    pub fn rmat(log_n: u32, edge_factor: u64, seed: u64) -> Self {
        let n = 1u64 << log_n;
        let m = n * edge_factor;
        let mut rng = Rng64::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m as usize);
        for _ in 0..m {
            let (mut u, mut v) = (0u64, 0u64);
            for _ in 0..log_n {
                let r: f64 = rng.gen_f64();
                let (du, dv) = if r < RMAT_A {
                    (0, 0)
                } else if r < RMAT_A + RMAT_B {
                    (0, 1)
                } else if r < RMAT_A + RMAT_B + RMAT_C {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            edges.push((u as u32, v as u32));
        }
        // Counting-sort into CSR.
        let mut degree = vec![0u64; n as usize];
        for &(u, _) in &edges {
            degree[u as usize] += 1;
        }
        let mut xadj = vec![0u64; n as usize + 1];
        for i in 0..n as usize {
            xadj[i + 1] = xadj[i] + degree[i];
        }
        let mut cursor = xadj.clone();
        let mut adj = vec![0u32; m as usize];
        for &(u, v) in &edges {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
        }
        Self { xadj, adj }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Directed edge count.
    pub fn m(&self) -> usize {
        self.adj.len()
    }
}

/// Lazily emits the BFS kernel's memory references. When a search finishes,
/// a new root restarts it (the Graph500 benchmark runs 64 searches).
pub struct BfsTrace {
    graph: CsrGraph,
    dist: Vec<u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    fi: usize,
    level: u32,
    rng: Rng64,
    buf: Vec<TraceRecord>,
    pos: usize,
}

impl BfsTrace {
    /// Starts BFS emission over `graph`.
    pub fn new(graph: CsrGraph, seed: u64) -> Self {
        let n = graph.n();
        let mut s = Self {
            graph,
            dist: vec![u32::MAX; n],
            frontier: Vec::new(),
            next: Vec::new(),
            fi: 0,
            level: 0,
            rng: Rng64::seed_from_u64(seed),
            buf: Vec::with_capacity(512),
            pos: 0,
        };
        s.restart();
        s
    }

    fn restart(&mut self) {
        self.dist.fill(u32::MAX);
        // Pick a root with outgoing edges so the search is non-trivial.
        let n = self.graph.n();
        let root = loop {
            let r = self.rng.gen_index(n);
            if self.graph.xadj[r + 1] > self.graph.xadj[r] {
                break r;
            }
        };
        self.dist[root] = 0;
        self.frontier.clear();
        self.frontier.push(root as u32);
        self.next.clear();
        self.fi = 0;
        self.level = 0;
    }

    /// Processes one frontier vertex, emitting its records into `buf`.
    /// Returns false when the whole search has finished.
    fn step(&mut self) -> bool {
        if self.fi >= self.frontier.len() {
            if self.next.is_empty() {
                return false;
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
            self.next.clear();
            self.fi = 0;
            self.level += 1;
        }
        let u = self.frontier[self.fi] as u64;
        // Read the frontier entry (sequential) and the two offsets.
        self.buf.push(TraceRecord::new(
            0x9000,
            FRONT_BASE + self.fi as u64 * 4,
            MemOp::Load,
            1,
        ));
        self.buf
            .push(TraceRecord::new(0x9004, XADJ_BASE + u * 8, MemOp::Load, 1));
        self.buf.push(TraceRecord::new(
            0x9008,
            XADJ_BASE + (u + 1) * 8,
            MemOp::Load,
            0,
        ));
        self.fi += 1;
        let (lo, hi) = (
            self.graph.xadj[u as usize] as usize,
            self.graph.xadj[u as usize + 1] as usize,
        );
        for e in lo..hi {
            let v = self.graph.adj[e];
            // Stream the adjacency array; test the visited *bitmap* (as the
            // Graph500 reference implementations do — n/8 bytes, so the hot
            // search's bitmap largely fits the upper caches).
            self.buf.push(TraceRecord::new(
                0x900c,
                ADJ_BASE + e as u64 * 4,
                MemOp::Load,
                1,
            ));
            self.buf.push(TraceRecord::new(
                0x9010,
                VISITED_BASE + u64::from(v) / 8,
                MemOp::Load,
                2,
            ));
            if self.dist[v as usize] == u32::MAX {
                self.dist[v as usize] = self.level + 1;
                // Mark visited, write the distance, append to the frontier.
                self.buf.push(TraceRecord::new(
                    0x9014,
                    VISITED_BASE + u64::from(v) / 8,
                    MemOp::Store,
                    1,
                ));
                self.buf.push(TraceRecord::new(
                    0x9018,
                    DIST_BASE + u64::from(v) * 4,
                    MemOp::Store,
                    1,
                ));
                self.buf.push(TraceRecord::new(
                    0x901c,
                    FRONT_BASE + 0x100_0000 + self.next.len() as u64 * 4,
                    MemOp::Store,
                    0,
                ));
                self.next.push(v);
            }
        }
        true
    }
}

impl Iterator for BfsTrace {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        while self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if !self.step() {
                self.restart();
            }
        }
        let r = self.buf[self.pos];
        self.pos += 1;
        Some(r)
    }
}

/// Builds the Graph500 trace for one process rank.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    let log_n = match scale {
        Scale::Smoke => 10,
        Scale::Demo => 15,
        Scale::Paper => 19,
    };
    let edge_factor = 16;
    let seed = 0x6500 ^ (core as u64).wrapping_mul(0x9e37_79b9);
    let graph = CsrGraph::rmat(log_n, edge_factor, seed);
    Box::new(BfsTrace::new(graph, seed ^ 0xffff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::stats::TraceStats;

    #[test]
    fn rmat_builds_consistent_csr() {
        let g = CsrGraph::rmat(8, 8, 1);
        assert_eq!(g.n(), 256);
        assert_eq!(g.m(), 2048);
        assert_eq!(*g.xadj.last().unwrap() as usize, g.adj.len());
        for w in g.xadj.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(g.adj.iter().all(|&v| (v as usize) < g.n()));
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let g = CsrGraph::rmat(12, 16, 7);
        let mut degrees: Vec<u64> = g.xadj.windows(2).map(|w| w[1] - w[0]).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = degrees.iter().take(g.n() / 100).sum();
        let total: u64 = degrees.iter().sum();
        assert!(
            top1pct as f64 / total as f64 > 0.1,
            "RMAT should concentrate degree: top1% = {}",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn bfs_visits_reachable_vertices() {
        let g = CsrGraph::rmat(9, 16, 3);
        let mut b = BfsTrace::new(g, 11);
        // Drain enough records to complete at least one search.
        let _: Vec<_> = (&mut b).take(100_000).collect();
        let visited = b.dist.iter().filter(|&&d| d != u32::MAX).count();
        assert!(visited > 10, "BFS explored {visited} vertices");
    }

    #[test]
    fn trace_runs_forever_and_mixes_ops() {
        let stats = TraceStats::measure(trace(0, Scale::Smoke), 50_000);
        assert_eq!(stats.records, 50_000);
        assert!(stats.store_fraction() > 0.01 && stats.store_fraction() < 0.5);
        assert!(stats.distinct_pcs >= 5);
    }

    #[test]
    fn demo_footprint_pressures_llc() {
        let stats = TraceStats::measure(trace(0, Scale::Demo), 1_500_000);
        // xadj 256 KB + adj 2 MB + dist 128 KB touched portions.
        assert!(stats.footprint_bytes() > 1 << 20);
    }

    #[test]
    fn ranks_get_distinct_graphs() {
        let a: Vec<_> = trace(0, Scale::Smoke).take(64).collect();
        let b: Vec<_> = trace(1, Scale::Smoke).take(64).collect();
        assert_ne!(a, b);
    }
}
