//! `soplex` — simplex linear-programming solver.
//!
//! Works over a large sparse constraint matrix: row-wise pricing streams
//! nonzeros sequentially, column updates scatter into the matrix with a
//! popularity skew (dense columns get hit far more often), and small dense
//! vectors (reduced costs, basis) are reused constantly.

use super::{boxed, seed_for};
use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::record::TraceRecord;
use mem_trace::synth::{Region, SequentialStream, WeightedMix, ZipfOverRecords};

/// Walks four consecutive 16 B entries from each column start produced by
/// the inner stream.
struct ColumnWalk<T> {
    inner: T,
    current: Option<TraceRecord>,
    phase: u8,
}

impl<T> ColumnWalk<T> {
    fn new(inner: T) -> Self {
        Self {
            inner,
            current: None,
            phase: 0,
        }
    }
}

impl<T: Iterator<Item = TraceRecord>> Iterator for ColumnWalk<T> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.phase == 0 || self.current.is_none() {
            self.current = Some(self.inner.next()?);
        }
        let base = self.current.expect("set above");
        let rec = TraceRecord::new(
            base.pc + u64::from(self.phase) * 4,
            base.addr + u64::from(self.phase) * 16,
            base.op,
            if self.phase == 0 { base.gap } else { 1 },
        );
        self.phase = (self.phase + 1) % 4;
        Some(rec)
    }
}

const MATRIX: u64 = 0x07_0000_0000;
const COLS: u64 = 0x07_8000_0000;
const VECS: u64 = 0x07_f000_0000;

/// Builds the soplex-like trace for one core.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    let nnz_bytes = scale.bytes(10 << 20);
    let col_bytes = scale.bytes(8 << 20);
    let vec_bytes = scale.bytes(160 << 10);
    let seed = seed_for(0x50b1e0, core);

    // Row pricing: stream the nonzero array (value+index pairs, 16 B).
    let rows = SequentialStream::new(Region::new(MATRIX, nnz_bytes), 16, 0x7000, 0, 2);
    // Column updates: Zipf-skewed scatter over column starts, with stores;
    // each visit walks four 16 B nonzeros of the column (one line).
    let cols = ColumnWalk::new(ZipfOverRecords::new(
        Region::new(COLS, col_bytes),
        256,
        0.9,
        seed ^ 1,
        0x7040,
        0.5,
        2,
    ));
    // Dense work vectors: tight reuse loop.
    let vecs = SequentialStream::new(Region::new(VECS, vec_bytes), 8, 0x7080, 5, 2);

    boxed(WeightedMix::new(
        vec![Box::new(rows), Box::new(cols), Box::new(vecs)],
        &[0.38, 0.20, 0.42],
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::{check_workload, demo_sample};

    #[test]
    fn character_matches_soplex() {
        let (scale, refs) = demo_sample();
        let stats = check_workload(trace(0, scale), refs, (0.6, 0.92), (0.5, 0.95), 512 << 10);
        assert!(stats.store_fraction() > 0.1 && stats.store_fraction() < 0.35);
    }

    #[test]
    fn column_scatter_is_skewed() {
        use mem_trace::stats::TraceStats;
        // The Zipf component alone: high footprint yet substantial reuse of
        // hot columns relative to a uniform scatter would show in the
        // short-reuse fraction; just confirm the whole mix touches >LLC/2.
        let stats = TraceStats::measure(trace(0, Scale::Demo), 1_000_000);
        assert!(stats.footprint_bytes() > 2 << 20);
    }
}
